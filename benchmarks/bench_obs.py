"""Observability overhead gates.

`repro.obs` promises that *disabled* observability — the default for
every bare library call — costs effectively nothing.  The frame
kernels pay one ``record_kernel`` call per entry point (a module-level
read, an ``enabled`` attribute load, and a branch) and instrumented
blocks pay one shared null span.  These benchmarks hold that promise
to numbers:

* the disabled hook cost per ``aggregate`` call must stay under 3% of
  the aggregate hot-loop time on the ``bench_frame`` workload;
* the null span enter/exit must stay in the same no-op cost class as
  the hook, so wrapping more call sites cannot change the contract.

The hook cost is measured directly (a tight loop over the no-op calls)
rather than by differencing two timings of the full kernel — the
difference of two ~ms measurements is noise-dominated, while the
per-call cost of the no-op path is stable to nanoseconds.
"""

import time

import numpy as np

from repro.bench import record_bench_stat
from repro.frame import Table
from repro.obs import NULL_TRACER
from repro.obs.runtime import get_metrics, record_kernel

NUM_ROWS = 50_000
AGG_SPEC = {
    "m00": ["mean", "sum", "max"],
    "m01": ["mean", "std"],
    "job_id": ["count"],
}

#: Disabled-observability overhead budget on the aggregate hot loop.
MAX_DISABLED_OVERHEAD = 0.03

#: obs calls one ``aggregate`` makes: a single ``record_kernel``.
HOOK_CALLS_PER_AGGREGATE = 1


def _bench_table() -> Table:
    rng = np.random.default_rng(20220214)
    return Table(
        {
            "job_id": np.arange(NUM_ROWS, dtype=np.int64),
            "num_gpus": rng.choice(np.array([1, 2, 4, 8, 16]), NUM_ROWS),
            "m00": rng.random(NUM_ROWS) * 100.0,
            "m01": rng.random(NUM_ROWS) * 100.0,
        }
    )


def _best_of(fn, repeats=5):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_observability_is_disabled_by_default():
    assert get_metrics().enabled is False
    assert NULL_TRACER.enabled is False


def test_disabled_hook_overhead_on_aggregate_under_3pct():
    """The null ``record_kernel`` path costs <3% of one aggregate."""
    table = _bench_table()
    grouped = table.group_by("num_gpus")
    aggregate_s = _best_of(lambda: grouped.aggregate(AGG_SPEC))

    calls = 20_000

    def hook_loop():
        for _ in range(calls):
            record_kernel("aggregate", NUM_ROWS)

    hook_per_call_s = _best_of(hook_loop) / calls

    overhead = hook_per_call_s * HOOK_CALLS_PER_AGGREGATE / aggregate_s
    record_bench_stat(
        "disabled_hook",
        ns_per_call=hook_per_call_s * 1e9,
        overhead_frac=overhead,
        aggregate_rows_per_s=NUM_ROWS / aggregate_s,
    )
    assert overhead < MAX_DISABLED_OVERHEAD, (
        f"disabled obs hook: {hook_per_call_s * 1e9:.0f} ns/call on a "
        f"{aggregate_s * 1e3:.2f} ms aggregate = {overhead:.2%} "
        f"(budget {MAX_DISABLED_OVERHEAD:.0%})"
    )


def test_null_span_stays_in_the_noop_cost_class():
    """Entering/exiting the shared null span is a no-op, not a span.

    Gate it against the same 3% budget on the aggregate loop so adding
    a ``with tracer.span(...)`` to a kernel-sized block can never
    break the overhead contract.
    """
    table = _bench_table()
    grouped = table.group_by("num_gpus")
    aggregate_s = _best_of(lambda: grouped.aggregate(AGG_SPEC))

    calls = 20_000

    def span_loop():
        for _ in range(calls):
            with NULL_TRACER.span("x", category="bench", rows=1):
                pass

    span_per_call_s = _best_of(span_loop) / calls
    overhead = span_per_call_s / aggregate_s
    record_bench_stat(
        "null_span",
        ns_per_call=span_per_call_s * 1e9,
        overhead_frac=overhead,
    )
    assert overhead < MAX_DISABLED_OVERHEAD, (
        f"null span: {span_per_call_s * 1e9:.0f} ns/enter-exit on a "
        f"{aggregate_s * 1e3:.2f} ms aggregate = {overhead:.2%} "
        f"(budget {MAX_DISABLED_OVERHEAD:.0%})"
    )


def test_disabled_event_emission_stays_in_the_noop_cost_class():
    """``record_event`` against the null recorder is a no-op.

    The flight recorder rides the same ambient-runtime pattern as the
    metrics hook: one module-global read, one ``enabled`` attribute
    load, one branch.  Gate it against the same 3% budget so wiring
    event emission into stage/cache/spill paths cannot change the
    disabled-path contract.
    """
    from repro.obs.runtime import record_event

    table = _bench_table()
    grouped = table.group_by("num_gpus")
    aggregate_s = _best_of(lambda: grouped.aggregate(AGG_SPEC))

    calls = 20_000

    def event_loop():
        for _ in range(calls):
            record_event("bench", category="bench", rows=1)

    event_per_call_s = _best_of(event_loop) / calls
    overhead = event_per_call_s / aggregate_s
    record_bench_stat(
        "disabled_event",
        ns_per_call=event_per_call_s * 1e9,
        overhead_frac=overhead,
    )
    assert overhead < MAX_DISABLED_OVERHEAD, (
        f"disabled record_event: {event_per_call_s * 1e9:.0f} ns/call on a "
        f"{aggregate_s * 1e3:.2f} ms aggregate = {overhead:.2%} "
        f"(budget {MAX_DISABLED_OVERHEAD:.0%})"
    )


def test_unwatched_heartbeat_hook_stays_in_the_noop_cost_class():
    """``progress.emit`` with no sink installed is a read + branch.

    Island runners call it once per interchange epoch; gating it here
    keeps the heartbeat hook free to sit on the epoch hot path even
    when nobody passed ``--progress``.
    """
    from repro.obs import progress

    assert progress.get_sink() is None
    table = _bench_table()
    grouped = table.group_by("num_gpus")
    aggregate_s = _best_of(lambda: grouped.aggregate(AGG_SPEC))

    calls = 20_000
    payload = {"island": 0, "epoch": 1}

    def emit_loop():
        for _ in range(calls):
            progress.emit(payload)

    emit_per_call_s = _best_of(emit_loop) / calls
    overhead = emit_per_call_s / aggregate_s
    record_bench_stat(
        "unwatched_heartbeat",
        ns_per_call=emit_per_call_s * 1e9,
        overhead_frac=overhead,
    )
    assert overhead < MAX_DISABLED_OVERHEAD, (
        f"unwatched progress.emit: {emit_per_call_s * 1e9:.0f} ns/call on a "
        f"{aggregate_s * 1e3:.2f} ms aggregate = {overhead:.2%} "
        f"(budget {MAX_DISABLED_OVERHEAD:.0%})"
    )


def test_enabled_aggregate_records_without_distorting_results():
    """Sanity: enabling metrics changes counters, not results."""
    from repro.obs import MetricsRegistry
    from repro.obs import runtime

    table = _bench_table()
    baseline = table.group_by("num_gpus").aggregate(AGG_SPEC)
    metrics = MetricsRegistry()
    with runtime.use(None, metrics):
        traced = table.group_by("num_gpus").aggregate(AGG_SPEC)
    assert traced.to_dict() == baseline.to_dict()
    assert metrics.counter_value(
        "repro_frame_kernel_calls_total", kernel="aggregate") == 1
    assert metrics.counter_value(
        "repro_frame_kernel_rows_total", kernel="aggregate") == NUM_ROWS
