"""Tests for the discrete-event loop."""

import pytest

from repro.errors import SchedulerError
from repro.slurm.events import EventLoop


class TestEventLoop:
    def test_pops_in_time_order(self):
        loop = EventLoop()
        loop.schedule(3.0, "c")
        loop.schedule(1.0, "a")
        loop.schedule(2.0, "b")
        kinds = [loop.pop().kind for _ in range(3)]
        assert kinds == ["a", "b", "c"]

    def test_ties_break_by_insertion_order(self):
        loop = EventLoop()
        loop.schedule(1.0, "first")
        loop.schedule(1.0, "second")
        assert loop.pop().kind == "first"
        assert loop.pop().kind == "second"

    def test_clock_advances(self):
        loop = EventLoop()
        loop.schedule(5.0, "x")
        assert loop.now == 0.0
        loop.pop()
        assert loop.now == 5.0

    def test_scheduling_in_past_rejected(self):
        loop = EventLoop()
        loop.schedule(5.0, "x")
        loop.pop()
        with pytest.raises(SchedulerError, match="before now"):
            loop.schedule(4.0, "y")

    def test_scheduling_at_now_allowed(self):
        loop = EventLoop()
        loop.schedule(5.0, "x")
        loop.pop()
        loop.schedule(5.0, "y")
        assert loop.pop().kind == "y"

    def test_pop_empty_rejected(self):
        with pytest.raises(SchedulerError, match="empty"):
            EventLoop().pop()

    def test_bool_and_counters(self):
        loop = EventLoop()
        assert not loop
        loop.schedule(1.0, "x", payload=123)
        assert loop
        assert loop.pending == 1
        event = loop.pop()
        assert event.payload == 123
        assert loop.processed == 1
        assert not loop
