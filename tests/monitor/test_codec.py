"""Tests for the time-series codec."""

import numpy as np
import pytest

from repro.errors import MonitoringError
from repro.monitor.codec import (
    QUANT_STEP,
    compression_ratio,
    decode_series,
    encode_series,
    load_store,
    save_store,
)
from repro.monitor.timeseries import METRIC_NAMES, GpuTimeSeries, TimeSeriesStore


def make_series(job_id=1, gpu_index=0, n=500, seed=0):
    rng = np.random.default_rng(seed)
    times = np.arange(n) * 0.1
    level = rng.uniform(5, 60)
    metrics = {}
    for name in METRIC_NAMES:
        # piecewise-constant with occasional jumps: nvidia-smi-like
        jumps = rng.random(n) < 0.02
        values = level + np.cumsum(np.where(jumps, rng.normal(0, 5, n), 0.0))
        metrics[name] = np.clip(values, 0.0, 100.0)
    return GpuTimeSeries(job_id, gpu_index, times, metrics)


class TestRoundTrip:
    def test_values_within_quantisation(self):
        series = make_series()
        decoded = decode_series(encode_series(series))
        for name in METRIC_NAMES:
            np.testing.assert_allclose(
                decoded.metrics[name], series.metrics[name], atol=QUANT_STEP / 2 + 1e-9
            )

    def test_times_preserved(self):
        series = make_series()
        decoded = decode_series(encode_series(series))
        np.testing.assert_allclose(decoded.times_s, series.times_s, atol=1e-5)

    def test_identity_metadata(self):
        series = make_series(job_id=42, gpu_index=1)
        decoded = decode_series(encode_series(series))
        assert decoded.job_id == 42
        assert decoded.gpu_index == 1

    def test_empty_series(self):
        empty = GpuTimeSeries(1, 0, np.empty(0), {m: np.empty(0) for m in METRIC_NAMES})
        decoded = decode_series(encode_series(empty))
        assert decoded.num_samples == 0

    def test_version_check(self):
        payload = encode_series(make_series())
        payload["format_version"] = np.asarray([99])
        with pytest.raises(MonitoringError, match="version"):
            decode_series(payload)

    def test_corrupt_lengths_detected(self):
        payload = encode_series(make_series())
        payload["sm_lengths"] = payload["sm_lengths"][:-1]
        with pytest.raises(MonitoringError):
            decode_series(payload)


class TestStoreIO:
    def test_store_round_trip(self, tmp_path):
        store = TimeSeriesStore()
        store.add(make_series(job_id=1, gpu_index=0))
        store.add(make_series(job_id=1, gpu_index=1, seed=1))
        store.add(make_series(job_id=7, seed=2))
        path = save_store(store, tmp_path / "series.npz")
        again = load_store(path)
        assert len(again) == 3
        assert again.job_ids() == [1, 7]
        original = store.get(7, 0)
        decoded = again.get(7, 0)
        np.testing.assert_allclose(
            decoded.metrics["power_w"], original.metrics["power_w"], atol=QUANT_STEP
        )

    def test_compression_beats_raw(self, tmp_path):
        store = TimeSeriesStore()
        for i in range(5):
            store.add(make_series(job_id=i, n=2000, seed=i))
        path = save_store(store, tmp_path / "series.npz")
        assert compression_ratio(store, path) > 5.0

    def test_generated_store_round_trips(self, small_dataset, tmp_path):
        path = save_store(small_dataset.timeseries, tmp_path / "ts.npz")
        again = load_store(path)
        assert len(again) == len(small_dataset.timeseries)
        assert compression_ratio(small_dataset.timeseries, path) > 3.0
