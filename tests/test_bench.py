"""Unit tests for the machine-readable bench runner plumbing."""

import json

import pytest

from repro.bench import (
    FIRST_BENCH_ID,
    SuiteResult,
    check_regressions,
    load_bench_history,
    next_bench_path,
    record_bench_stat,
    write_bench_json,
)


class TestNextBenchPath:
    def test_starts_at_first_id(self, tmp_path):
        assert next_bench_path(tmp_path).name == f"BENCH_{FIRST_BENCH_ID}.json"

    def test_never_overwrites_history(self, tmp_path):
        (tmp_path / "BENCH_6.json").write_text("{}")
        (tmp_path / "BENCH_11.json").write_text("{}")
        (tmp_path / "BENCH_notes.json").write_text("{}")  # ignored: not BENCH_<n>
        assert next_bench_path(tmp_path).name == "BENCH_12.json"


class TestRecordBenchStat:
    def test_noop_without_env(self, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_BENCH_STATS_DIR", raising=False)
        record_bench_stat("x", rows=1)  # must not raise or write anywhere
        assert list(tmp_path.iterdir()) == []

    def test_writes_sidecar_under_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_BENCH_STATS_DIR", str(tmp_path))
        record_bench_stat("stream_sketch", rows=100, rows_per_s=5.5)
        payload = json.loads((tmp_path / "stream_sketch.json").read_text())
        assert payload == {"rows": 100, "rows_per_s": 5.5}

    def test_last_write_wins(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_BENCH_STATS_DIR", str(tmp_path))
        record_bench_stat("s", attempt=1)
        record_bench_stat("s", attempt=2)
        assert json.loads((tmp_path / "s.json").read_text()) == {"attempt": 2}


class TestWriteBenchJson:
    def test_payload_schema(self, tmp_path):
        results = [
            SuiteResult("frame", "benchmarks/bench_frame.py", True, 1.25),
            SuiteResult(
                "stream",
                "benchmarks/bench_stream.py",
                False,
                2.5,
                stats={"stream_sketch": {"rows_per_s": 1e6}},
            ),
        ]
        path = tmp_path / "BENCH_6.json"
        payload = write_bench_json(results, path)
        on_disk = json.loads(path.read_text())
        assert on_disk == payload
        assert payload["schema"] == 1
        assert payload["passed"] is False
        assert payload["total_seconds"] == pytest.approx(3.75)
        assert payload["runner_peak_rss_bytes"] > 0
        suites = {s["name"]: s for s in payload["suites"]}
        assert suites["frame"]["passed"] is True
        assert suites["stream"]["stats"]["stream_sketch"]["rows_per_s"] == 1e6


def write_run(root, bench_id, seconds_by_suite, scale="0.05", stats=None):
    payload = {
        "schema": 1,
        "bench_scale": scale,
        "suites": [
            {"name": name, "seconds": seconds, "stats": (stats or {}).get(name, {})}
            for name, seconds in seconds_by_suite.items()
        ],
    }
    (root / f"BENCH_{bench_id}.json").write_text(json.dumps(payload))


class TestLoadBenchHistory:
    def test_sorted_by_id_and_skips_garbage(self, tmp_path):
        write_run(tmp_path, 8, {"frame": 1.0})
        write_run(tmp_path, 6, {"frame": 1.0})
        (tmp_path / "BENCH_7.json").write_text("{not json")
        (tmp_path / "BENCH_9.json").write_text('{"no": "suites"}')
        ids = [bench_id for bench_id, _ in load_bench_history(tmp_path)]
        assert ids == [6, 8]

    def test_empty_root(self, tmp_path):
        assert load_bench_history(tmp_path) == []


class TestCheckRegressions:
    def test_no_history(self, tmp_path):
        check = check_regressions(tmp_path)
        assert check.ok
        assert "no BENCH" in check.to_text()

    def test_first_run_has_no_baseline(self, tmp_path):
        write_run(tmp_path, 6, {"frame": 1.0})
        check = check_regressions(tmp_path)
        assert check.ok
        assert check.baseline_runs == 0
        assert "no comparable" in check.to_text()

    def test_flags_large_absolute_slowdown(self, tmp_path):
        for i, seconds in enumerate([10.0, 10.5, 9.8]):
            write_run(tmp_path, 6 + i, {"frame": seconds})
        write_run(tmp_path, 9, {"frame": 20.0})
        check = check_regressions(tmp_path)
        assert not check.ok
        assert check.regressions[0]["suite"] == "frame"
        assert "REGRESSION" in check.to_text()

    def test_small_suites_never_trip_on_noise(self, tmp_path):
        # 3x slower but under the absolute min_seconds floor
        write_run(tmp_path, 6, {"tiny": 0.4})
        write_run(tmp_path, 7, {"tiny": 1.2})
        assert check_regressions(tmp_path).ok

    def test_within_threshold_passes(self, tmp_path):
        write_run(tmp_path, 6, {"frame": 10.0})
        write_run(tmp_path, 7, {"frame": 12.0})  # 1.2x < 1.35x
        check = check_regressions(tmp_path)
        assert check.ok
        assert check.checked  # still compared, just not flagged

    def test_different_scales_are_incomparable(self, tmp_path):
        write_run(tmp_path, 6, {"frame": 1.0}, scale="0.05")
        write_run(tmp_path, 7, {"frame": 50.0}, scale="1.0")
        check = check_regressions(tmp_path)
        assert check.ok
        assert check.baseline_runs == 0

    def test_new_suite_exempt_until_baselined(self, tmp_path):
        write_run(tmp_path, 6, {"frame": 1.0})
        write_run(tmp_path, 7, {"frame": 1.0, "scale": 300.0})
        assert check_regressions(tmp_path).ok

    def test_median_baseline_resists_one_outlier(self, tmp_path):
        for i, seconds in enumerate([10.0, 10.2, 90.0, 10.1, 10.3]):
            write_run(tmp_path, 6 + i, {"frame": seconds})
        write_run(tmp_path, 11, {"frame": 11.0})
        assert check_regressions(tmp_path).ok

    def test_window_limits_baseline(self, tmp_path):
        write_run(tmp_path, 6, {"frame": 100.0})  # ancient, outside window
        for i in range(5):
            write_run(tmp_path, 7 + i, {"frame": 10.0})
        write_run(tmp_path, 12, {"frame": 20.0})
        check = check_regressions(tmp_path, window=5)
        assert check.baseline_runs == 5
        assert not check.ok


def stat_run(root, bench_id, stats):
    """One 'scale' suite run with the given stat block."""
    write_run(root, bench_id, {"scale": 10.0}, stats={"scale": stats})


class TestStatDetectors:
    """Throughput / peak-memory stat gates alongside wall time."""

    def test_throughput_drop_flagged(self, tmp_path):
        for i in range(3):
            stat_run(tmp_path, 6 + i, {"merge": {"rows_per_s": 1_000_000.0}})
        stat_run(tmp_path, 9, {"merge": {"rows_per_s": 400_000.0}})
        check = check_regressions(tmp_path)
        assert not check.ok
        row = check.stat_regressions[0]
        assert row["metric"] == "merge.rows_per_s"
        assert row["kind"] == "throughput"
        assert "REGRESSION" in check.to_text()

    def test_memory_growth_flagged(self, tmp_path):
        for i in range(3):
            stat_run(tmp_path, 6 + i, {"build": {"island_peak_rss_bytes": 2e8}})
        stat_run(tmp_path, 9, {"build": {"island_peak_rss_bytes": 5e8}})
        check = check_regressions(tmp_path)
        assert not check.ok
        assert check.stat_regressions[0]["kind"] == "memory"

    def test_absolute_floor_protects_small_throughput(self, tmp_path):
        # Halved, but only 5k rows/s lost — under MIN_ROWS_PER_S_DROP.
        stat_run(tmp_path, 6, {"merge": {"rows_per_s": 10_000.0}})
        stat_run(tmp_path, 7, {"merge": {"rows_per_s": 5_000.0}})
        check = check_regressions(tmp_path)
        assert check.ok
        assert check.stat_checked  # compared, just not flagged

    def test_absolute_floor_protects_small_memory(self, tmp_path):
        # Doubled, but only 2 MiB grown — under MIN_PEAK_BYTES_GROWTH.
        stat_run(tmp_path, 6, {"build": {"parent_peak_bytes": 2 * 2**20}})
        stat_run(tmp_path, 7, {"build": {"parent_peak_bytes": 4 * 2**20}})
        assert check_regressions(tmp_path).ok

    def test_new_stat_exempt_until_baselined(self, tmp_path):
        stat_run(tmp_path, 6, {})
        stat_run(tmp_path, 7, {"merge": {"rows_per_s": 1.0}})
        check = check_regressions(tmp_path)
        assert check.ok
        assert check.stat_checked == []

    def test_non_gateable_keys_ignored(self, tmp_path):
        # Context keys (counts, seeds, speedups) never gate.
        stat_run(tmp_path, 6, {"merge": {"jobs": 100.0, "speedup_x": 4.0}})
        stat_run(tmp_path, 7, {"merge": {"jobs": 1.0, "speedup_x": 0.1}})
        check = check_regressions(tmp_path)
        assert check.ok
        assert check.stat_checked == []

    def test_within_threshold_passes(self, tmp_path):
        stat_run(tmp_path, 6, {"merge": {"rows_per_s": 1_000_000.0}})
        stat_run(tmp_path, 7, {"merge": {"rows_per_s": 900_000.0}})
        check = check_regressions(tmp_path)
        assert check.ok
        assert check.stat_checked[0]["ratio"] == pytest.approx(0.9)

    def test_to_text_renders_stat_rows(self, tmp_path):
        stat_run(tmp_path, 6, {"merge": {"rows_per_s": 1_000_000.0}})
        stat_run(tmp_path, 7, {"merge": {"rows_per_s": 950_000.0}})
        text = check_regressions(tmp_path).to_text()
        assert "merge.rows_per_s" in text
        assert "ok" in text


class TestSpillCodecStatDetectors:
    """Spill-volume and compression-ratio stats gate like memory and
    throughput, with their own absolute floors."""

    def test_spill_bytes_growth_flagged(self, tmp_path):
        for i in range(3):
            stat_run(tmp_path, 6 + i, {"codec": {"lossless_spill_bytes": 50e6}})
        stat_run(tmp_path, 9, {"codec": {"lossless_spill_bytes": 120e6}})
        check = check_regressions(tmp_path)
        assert not check.ok
        row = check.stat_regressions[0]
        assert row["metric"] == "codec.lossless_spill_bytes"
        assert row["kind"] == "spill"

    def test_compression_ratio_drop_flagged(self, tmp_path):
        for i in range(3):
            stat_run(tmp_path, 6 + i, {"codec": {"compression_ratio": 4.7}})
        stat_run(tmp_path, 9, {"codec": {"compression_ratio": 1.5}})
        check = check_regressions(tmp_path)
        assert not check.ok
        assert check.stat_regressions[0]["kind"] == "ratio"

    def test_spill_floor_protects_small_volumes(self, tmp_path):
        # Doubled, but only 2 MiB grown — under MIN_SPILL_BYTES_GROWTH.
        stat_run(tmp_path, 6, {"codec": {"spill_bytes": 2 * 2**20}})
        stat_run(tmp_path, 7, {"codec": {"spill_bytes": 4 * 2**20}})
        assert check_regressions(tmp_path).ok

    def test_ratio_floor_protects_small_drops(self, tmp_path):
        # A 0.2x loss is under MIN_COMPRESSION_RATIO_DROP even though
        # the relative threshold would trip at these magnitudes.
        stat_run(tmp_path, 6, {"codec": {"compression_ratio": 0.5}})
        stat_run(tmp_path, 7, {"codec": {"compression_ratio": 0.3}})
        check = check_regressions(tmp_path)
        assert check.ok
        assert check.stat_checked

    def test_trend_report_notes_spill_drift(self, tmp_path):
        from repro.bench import trend_report

        for i, ratio in enumerate((5.0, 4.0, 3.0, 2.0, 1.2)):
            stat_run(tmp_path, 6 + i, {"codec": {"compression_ratio": ratio}})
        report = trend_report(tmp_path)
        assert "DRIFT" in report
        assert "spill-path drift" in report
        assert "codec.compression_ratio" in report


class TestGitSha:
    def test_payload_stamped_inside_checkout(self, tmp_path):
        import subprocess

        payload = write_bench_json([], tmp_path / "BENCH_6.json")
        # tmp_path is outside any repo -> None; write one inside ours.
        assert payload["git_sha"] is None
        here = subprocess.run(
            ["git", "rev-parse", "HEAD"], capture_output=True, text=True
        )
        if here.returncode == 0:
            import pathlib

            target = pathlib.Path("BENCH_sha_probe.json")
            try:
                stamped = write_bench_json([], target)
                assert stamped["git_sha"] == here.stdout.strip()
            finally:
                target.unlink(missing_ok=True)


class TestBenchTrend:
    def test_no_history(self, tmp_path):
        from repro.bench import bench_trend, trend_report

        trend = bench_trend(tmp_path)
        assert trend["run_ids"] == []
        assert "no BENCH_<n>.json history" in trend_report(tmp_path)

    def test_series_aligned_with_gaps(self, tmp_path):
        from repro.bench import bench_trend

        write_run(tmp_path, 6, {"frame": 1.0})
        write_run(tmp_path, 7, {"frame": 1.1, "stream": 4.0})
        trend = bench_trend(tmp_path)
        assert trend["run_ids"] == [6, 7]
        by_metric = {(s["suite"], s["metric"]): s for s in trend["series"]}
        assert by_metric[("frame", "wall_s")]["values"] == [1.0, 1.1]
        # stream only exists in run 7: a None gap keeps runs aligned
        assert by_metric[("stream", "wall_s")]["values"] == [None, 4.0]

    def test_other_scales_skipped(self, tmp_path):
        from repro.bench import bench_trend

        write_run(tmp_path, 6, {"frame": 1.0}, scale="1.0")
        write_run(tmp_path, 7, {"frame": 2.0}, scale="0.05")
        write_run(tmp_path, 8, {"frame": 2.1}, scale="0.05")
        trend = bench_trend(tmp_path)
        assert trend["scale"] == "0.05"
        assert trend["run_ids"] == [7, 8]
        assert trend["skipped_runs"] == 1

    def test_rising_wall_time_flagged_as_worsening(self, tmp_path):
        from repro.bench import bench_trend

        for offset, seconds in enumerate([1.0, 1.3, 1.6, 2.0]):
            write_run(tmp_path, 6 + offset, {"frame": seconds})
        (row,) = bench_trend(tmp_path)["series"]
        assert row["kind"] == "seconds"
        assert row["slope"] > 0
        assert row["worsening"] is True

    def test_falling_throughput_flagged_rising_is_fine(self, tmp_path):
        from repro.bench import bench_trend

        stats = lambda v: {"frame": {"agg": {"rows_per_s": v}}}
        write_run(tmp_path, 6, {"frame": 1.0}, stats=stats(1e6))
        write_run(tmp_path, 7, {"frame": 1.0}, stats=stats(5e5))
        by_metric = {s["metric"]: s for s in bench_trend(tmp_path)["series"]}
        assert by_metric["agg.rows_per_s"]["kind"] == "throughput"
        assert by_metric["agg.rows_per_s"]["worsening"] is True
        assert by_metric["wall_s"]["worsening"] is False

    def test_single_run_never_flags(self, tmp_path):
        from repro.bench import bench_trend

        write_run(tmp_path, 6, {"frame": 99.0})
        (row,) = bench_trend(tmp_path)["series"]
        assert row["slope"] == 0.0
        assert row["worsening"] is False

    def test_window_limits_runs(self, tmp_path):
        from repro.bench import bench_trend

        for offset in range(6):
            write_run(tmp_path, 6 + offset, {"frame": 1.0 + offset})
        trend = bench_trend(tmp_path, window=3)
        assert trend["run_ids"] == [9, 10, 11]


class TestSparkline:
    def test_scales_min_to_max(self):
        from repro.bench import _sparkline

        spark = _sparkline([1.0, 2.0, 3.0])
        assert spark[0] == "▁"
        assert spark[-1] == "█"

    def test_flat_series(self):
        from repro.bench import _sparkline

        assert _sparkline([5.0, 5.0, 5.0]) == "▁▁▁"

    def test_gaps_render_as_dots(self):
        from repro.bench import _sparkline

        assert _sparkline([None, 1.0, None, 2.0]) == "·▁·█"
        assert _sparkline([None, None]) == "··"


class TestTrendReport:
    def test_renders_two_run_trend_table(self, tmp_path):
        from repro.bench import trend_report

        write_run(tmp_path, 6, {"frame": 1.0, "stream": 3.0})
        write_run(tmp_path, 7, {"frame": 1.05, "stream": 2.9})
        text = trend_report(tmp_path)
        assert "bench report: 2 run(s) at scale 0.05 (BENCH_6..BENCH_7)" in text
        assert "frame" in text and "wall_s" in text
        assert "1.00s" in text and "1.05s" in text
        assert "▁" in text or "█" in text

    def test_drift_flag_and_footer(self, tmp_path):
        from repro.bench import trend_report

        write_run(tmp_path, 6, {"frame": 1.0})
        write_run(tmp_path, 7, {"frame": 2.0})
        text = trend_report(tmp_path)
        assert "DRIFT" in text
        assert "investigate" in text

    def test_sha_span_in_header(self, tmp_path):
        payload = {
            "schema": 1,
            "bench_scale": "0.05",
            "git_sha": "abcdef0123456789",
            "suites": [{"name": "frame", "seconds": 1.0, "stats": {}}],
        }
        (tmp_path / "BENCH_6.json").write_text(json.dumps(payload))
        payload = dict(payload, git_sha="1234567aaaaaaaaa")
        (tmp_path / "BENCH_7.json").write_text(json.dumps(payload))
        from repro.bench import trend_report

        assert "abcdef0..1234567" in trend_report(tmp_path)

    def test_markdown_table(self, tmp_path):
        from repro.bench import trend_report

        write_run(tmp_path, 6, {"frame": 1.0})
        write_run(tmp_path, 7, {"frame": 2.0})
        text = trend_report(tmp_path, markdown=True)
        assert "| suite | metric | first | last | slope/run | trend | flag |" in text
        assert "| frame | wall_s |" in text
        assert "DRIFT" in text
        # sparkline fenced in backticks so the bars survive markdown
        assert "`" in text

    def test_memory_stat_formatting(self, tmp_path):
        from repro.bench import trend_report

        stats = {"scale": {"build": {"island_peak_rss_bytes": 512 * 1024 * 1024}}}
        write_run(tmp_path, 6, {"scale": 10.0}, stats=stats)
        write_run(tmp_path, 7, {"scale": 10.0}, stats=stats)
        text = trend_report(tmp_path)
        assert "build.island_peak_rss_bytes" in text
        assert "512MiB" in text
