"""User-behavior correlations (Fig 12).

The paper correlates a user's activity (number of jobs, total GPU
hours) against their average job characteristics and against the
variability (CoV) of those characteristics, using Spearman rank
correlation.  Finding: expert users use GPUs more efficiently (high
positive correlation with average utilization) but are *not* more
predictable (low correlation with CoV).
"""

from __future__ import annotations

from repro.analysis.stats import spearman
from repro.errors import AnalysisError
from repro.frame import Table

#: Activity columns on the x side of the correlation.
ACTIVITY_COLUMNS = ("num_jobs", "gpu_hours")

#: Behavior columns on the y side.
BEHAVIOR_COLUMNS = (
    "avg_runtime",
    "avg_sm",
    "avg_mem_bw",
    "cov_runtime",
    "cov_sm",
    "cov_mem_bw",
)


def user_behavior_correlations(users: Table) -> Table:
    """Spearman correlation of each (activity, behavior) pair.

    Returns a table with columns ``activity``, ``behavior``, ``rho``,
    ``p_value``.  Users whose behavior column is NaN (e.g. CoV of an
    all-zero metric) are dropped pairwise, as the paper's pipeline
    does implicitly through pandas.
    """
    if users.num_rows < 3:
        raise AnalysisError("need at least 3 users for correlations")
    rows = []
    for activity in ACTIVITY_COLUMNS:
        for behavior in BEHAVIOR_COLUMNS:
            rho, p = spearman(users[activity], users[behavior])
            rows.append(
                {"activity": activity, "behavior": behavior, "rho": rho, "p_value": p}
            )
    return Table.from_rows(rows)
