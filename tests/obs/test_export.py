"""Exporter coverage: Chrome trace-event schema validation, the
Prometheus text round trip, and the run-report / trace-summary text
paths."""

import json

import pytest

from repro.obs import (
    MetricsRegistry,
    Tracer,
    chrome_trace_events,
    parse_prometheus_text,
    prometheus_text,
    run_report,
    summarize_chrome_trace,
    write_chrome_trace,
)


def _sample_tracer():
    tracer = Tracer()
    with tracer.span("build", category="pipeline", rows=100):
        with tracer.span("workload", category="pipeline"):
            pass
        with tracer.span("schedule", category="pipeline"):
            pass
    return tracer


class TestChromeTraceSchema:
    def test_complete_event_fields(self):
        events = chrome_trace_events(_sample_tracer())
        complete = [e for e in events if e["ph"] == "X"]
        assert len(complete) == 3
        for event in complete:
            # required Trace Event Format fields for a complete event
            assert isinstance(event["pid"], int)
            assert isinstance(event["tid"], int)
            assert isinstance(event["ts"], int)
            assert isinstance(event["dur"], int)
            assert event["dur"] >= 0
            assert isinstance(event["name"], str)
            assert isinstance(event["cat"], str)
            assert "span_id" in event["args"]
            assert "parent_id" in event["args"]

    def test_metadata_event_per_process(self):
        events = chrome_trace_events(_sample_tracer())
        meta = [e for e in events if e["ph"] == "M"]
        assert len(meta) == 1
        assert meta[0]["name"] == "process_name"
        assert "name" in meta[0]["args"]

    def test_events_sorted_by_monotonic_ts(self):
        events = [e for e in chrome_trace_events(_sample_tracer()) if e["ph"] == "X"]
        stamps = [e["ts"] for e in events]
        assert stamps == sorted(stamps)

    def test_nesting_is_matched(self):
        # every child interval lies inside its parent's interval
        events = [e for e in chrome_trace_events(_sample_tracer()) if e["ph"] == "X"]
        by_id = {e["args"]["span_id"]: e for e in events}
        for event in events:
            parent_id = event["args"]["parent_id"]
            if parent_id is None:
                continue
            parent = by_id[parent_id]
            assert parent["ts"] <= event["ts"]
            assert event["ts"] + event["dur"] <= parent["ts"] + parent["dur"]

    def test_attrs_travel_in_args(self):
        events = chrome_trace_events(_sample_tracer())
        build = next(e for e in events if e.get("name") == "build")
        assert build["args"]["rows"] == 100

    def test_write_and_reload(self, tmp_path):
        path = write_chrome_trace(
            tmp_path / "trace.json", _sample_tracer(), metadata={"k": "v"}
        )
        document = json.loads(path.read_text(encoding="utf-8"))
        assert document["displayTimeUnit"] == "ms"
        assert document["otherData"] == {"k": "v"}
        assert len(document["traceEvents"]) == 4

    def test_summarize(self, tmp_path):
        path = write_chrome_trace(tmp_path / "trace.json", _sample_tracer())
        text = summarize_chrome_trace(path)
        assert "3 spans across 1 process(es)" in text
        assert "build" in text

    def test_summarize_empty(self, tmp_path):
        path = write_chrome_trace(tmp_path / "trace.json", Tracer())
        assert summarize_chrome_trace(path) == "empty trace (no complete events)"


def _tracer_with_island_tracks():
    """A parent tracer that adopted spans from two island workers."""
    parent = _sample_tracer()
    for island in range(2):
        worker = Tracer(process_name=f"island-{island}")
        with worker.span("island.run", category="interchange"):
            pass
        parent.adopt(worker.drain_payload())
    return parent


class TestChromeTraceTracks:
    def test_adopted_island_spans_get_their_own_lanes(self):
        events = chrome_trace_events(_tracer_with_island_tracks())
        complete = [e for e in events if e["ph"] == "X"]
        parent_tids = {
            e["tid"] for e in complete if e["name"] != "island.run"
        }
        island_events = [e for e in complete if e["name"] == "island.run"]
        island_tids = {e["tid"] for e in island_events}
        # one synthetic lane per island, never colliding with real tids
        assert len(island_tids) == 2
        assert not (island_tids & parent_tids)
        assert min(island_tids) > max(parent_tids)

    def test_island_lanes_are_named(self):
        events = chrome_trace_events(_tracer_with_island_tracks())
        names = {
            e["args"]["name"]
            for e in events
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert {"island-0", "island-1"} <= names

    def test_island_spans_keep_their_real_pid(self):
        # the lane is synthetic; the pid must stay truthful so
        # summarize_chrome_trace still counts processes correctly
        tracer = _tracer_with_island_tracks()
        events = chrome_trace_events(tracer)
        by_name = {e["name"]: e for e in events if e["ph"] == "X"}
        records = {r.name: r for r in tracer.finished()}
        assert by_name["island.run"]["pid"] == records["island.run"].pid

    def test_summarize_totals_unchanged_by_tracks(self, tmp_path):
        tracer = _tracer_with_island_tracks()
        path = write_chrome_trace(tmp_path / "trace.json", tracer)
        text = summarize_chrome_trace(path)
        assert "5 spans" in text
        assert "island.run" in text

    def test_untracked_tracer_emits_no_synthetic_lanes(self):
        events = chrome_trace_events(_sample_tracer())
        thread_meta = [
            e for e in events if e["ph"] == "M" and e["name"] == "thread_name"
        ]
        assert thread_meta == []


def _sample_metrics():
    m = MetricsRegistry()
    m.counter("repro_cache_events_total", help="cache ops", kind="hit").inc(3)
    m.counter("repro_cache_events_total", kind="miss").inc()
    m.gauge("repro_scheduler_peak_queue", help="peak queue").set(17)
    h = m.histogram("repro_stage_seconds", buckets=(0.1, 1.0), help="stage s", stage="workload")
    h.observe(0.05)
    h.observe(0.5)
    h.observe(5.0)
    return m


class TestPrometheusText:
    def test_help_and_type_lines(self):
        text = prometheus_text(_sample_metrics())
        assert "# HELP repro_cache_events_total cache ops" in text
        assert "# TYPE repro_cache_events_total counter" in text
        assert "# TYPE repro_scheduler_peak_queue gauge" in text
        assert "# TYPE repro_stage_seconds histogram" in text
        # TYPE emitted once per metric name, not per series
        assert text.count("# TYPE repro_cache_events_total counter") == 1

    def test_histogram_exposition(self):
        text = prometheus_text(_sample_metrics())
        assert 'repro_stage_seconds_bucket{stage="workload",le="0.1"} 1' in text
        assert 'repro_stage_seconds_bucket{stage="workload",le="1"} 2' in text
        assert 'repro_stage_seconds_bucket{stage="workload",le="+Inf"} 3' in text
        assert 'repro_stage_seconds_count{stage="workload"} 3' in text

    def test_round_trip(self):
        metrics = _sample_metrics()
        samples = parse_prometheus_text(prometheus_text(metrics))
        assert samples[("repro_cache_events_total", (("kind", "hit"),))] == 3
        assert samples[("repro_cache_events_total", (("kind", "miss"),))] == 1
        assert samples[("repro_scheduler_peak_queue", ())] == 17
        assert samples[
            ("repro_stage_seconds_bucket", (("stage", "workload"), ("le", "+Inf")))
        ] == 3
        assert samples[("repro_stage_seconds_sum", (("stage", "workload"),))] == pytest.approx(5.55)

    def test_label_escaping_round_trip(self):
        m = MetricsRegistry()
        m.counter("c", path='a"b\\c', note="x,y").inc()
        samples = parse_prometheus_text(prometheus_text(m))
        assert samples[("c", (("note", "x,y"), ("path", 'a"b\\c')))] == 1

    def test_label_newline_round_trip(self):
        # a newline in a label value must not break the line-oriented
        # exposition format: it is escaped to \n and parsed back
        m = MetricsRegistry()
        m.counter("c", cmd="python -m repro\n--scale 1.0").inc(2)
        text = prometheus_text(m)
        assert "repro\\n--scale" in text
        samples = parse_prometheus_text(text)
        assert samples[("c", (("cmd", "python -m repro\n--scale 1.0"),))] == 2

    def test_label_adversarial_mix_round_trip(self):
        # quote + backslash + newline in one value, several labels deep
        value = 'say "hi",\\ then\nnewline'
        m = MetricsRegistry()
        m.gauge("g", a=value, b='tail\\').set(7)
        samples = parse_prometheus_text(prometheus_text(m))
        assert samples[("g", (("a", value), ("b", "tail\\")))] == 7

    def test_escaped_text_stays_line_oriented(self):
        m = MetricsRegistry()
        m.counter("c", cmd="one\ntwo\nthree").inc()
        body = [
            line
            for line in prometheus_text(m).splitlines()
            if not line.startswith("#")
        ]
        assert len(body) == 1  # the newlines never leak into the framing

    def test_ends_with_newline(self):
        assert prometheus_text(_sample_metrics()).endswith("\n")


class TestRunReport:
    def test_span_tree_and_metric_digest(self):
        report = run_report(_sample_tracer(), _sample_metrics())
        assert "== trace (3 spans) ==" in report
        lines = report.splitlines()
        build = next(l for l in lines if "build" in l)
        workload = next(l for l in lines if "workload" in l and "repro_" not in l)
        # children render indented under their parent
        assert len(workload) - len(workload.lstrip()) > len(build) - len(build.lstrip())
        assert 'repro_cache_events_total{kind="hit"} = 3' in report
        assert "repro_stage_seconds" in report

    def test_empty_report(self):
        report = run_report(Tracer(), MetricsRegistry())
        assert "== trace (empty) ==" in report
        assert "(none recorded)" in report
