"""Fig 12: correlation of user activity with job characteristics."""

from __future__ import annotations

import numpy as np

from repro.analysis.correlation import user_behavior_correlations
from repro.analysis.users import user_table
from repro.dataset import SupercloudDataset
from repro.figures.base import Comparison, FigureResult


def run(dataset: SupercloudDataset) -> FigureResult:
    """Spearman correlations (Fig 12) plus the paper's two claims:
    high positive activity-vs-average-utilization correlation and low
    (<0.5) activity-vs-CoV correlation."""
    users = user_table(dataset.gpu_jobs).filter(
        lambda t: np.asarray(t["num_jobs"], dtype=float) >= 3
    )
    correlations = user_behavior_correlations(users)

    def rho(activity: str, behavior: str) -> float:
        match = correlations.filter(
            lambda t: (np.asarray(list(t["activity"])) == activity)
            & (np.asarray(list(t["behavior"])) == behavior)
        )
        return float(match["rho"][0])

    comparisons = [
        # The paper's bar chart is read qualitatively: avg-utilization
        # correlations are "high positive" (we target >= 0.5) while CoV
        # correlations are "quite low" (< 0.5).
        Comparison("njobs vs avg SM (high +)", 0.6, rho("num_jobs", "avg_sm")),
        Comparison("GPU hours vs avg SM (high +)", 0.6, rho("gpu_hours", "avg_sm")),
        Comparison("njobs vs avg memory (high +)", 0.6, rho("num_jobs", "avg_mem_bw")),
        Comparison("njobs vs SM CoV (< 0.5)", 0.3, rho("num_jobs", "cov_sm")),
        Comparison("GPU hours vs SM CoV (< 0.5)", 0.3, rho("gpu_hours", "cov_sm")),
    ]
    return FigureResult(
        figure_id="fig12",
        title="Spearman correlation of user activity vs job characteristics",
        series={"correlations": correlations},
        comparisons=comparisons,
        notes="paper reports qualitative levels; targets encode its thresholds",
    )
