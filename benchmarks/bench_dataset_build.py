"""Cold-dataset-build perf gates: deferred batched sampling.

The monitor epilog used to evaluate each job's activity model one GPU
at a time; the deferred sampling path batches every GPU of a job into
one ``metrics_at_all`` call and can shard the task queue across a
process pool.  These benchmarks hold the batched path to the speedup
that justified the refactor and pin the contract that makes deferral
safe at all: serial and parallel flushes produce bit-for-bit the same
dataset.

The ``>=1.5x`` gate is deliberately below the measured ratio (~2x on
single-core containers where the vector math dominates, 4-8x where
per-call Python overhead does) so it catches a silent fall-back to
the per-GPU loop — which measures ~1.0x — without flaking on the
slowest machines.
"""

import time

import numpy as np

from repro.bench import record_bench_stat
from repro.monitor.nvidia_smi import NvidiaSmiSampler
from repro.pipeline import Session
from repro.workload.activity import (
    JobActivityModel,
    PhaseSchedule,
    PowerModel,
    build_metric_process,
)
from repro.workload.generator import WorkloadConfig

NUM_JOBS = 48
NUM_GPUS = 16
SUMMARY_SAMPLES = 256


def _make_model(job_id: int, num_gpus: int, rng: np.random.Generator) -> JobActivityModel:
    duration = float(rng.uniform(600.0, 3600.0))
    schedule = PhaseSchedule.generate(rng, duration, 0.7, 60.0, 1.69, 1.26)
    processes = {
        name: build_metric_process(
            rng,
            level=float(rng.uniform(5, 95)),
            noise_cov=float(rng.uniform(0, 0.4)),
            burst_level=float(rng.uniform(50, 100)),
            schedule=schedule,
            num_bursts=int(rng.integers(0, 4)),
        )
        for name in ("sm", "mem_bw", "mem_size", "pcie_tx", "pcie_rx")
    }
    return JobActivityModel(
        job_id,
        num_gpus,
        duration,
        schedule,
        processes,
        rng.uniform(0.3, 1.0, num_gpus),
        PowerModel(25.0, 1.25, 0.4, 0.03, 0.2),
    )


class _PerGpuView:
    """The same model with ``metrics_at_all`` hidden — forces the
    sampler onto its per-GPU ``metrics_at`` reference loop."""

    def __init__(self, model: JobActivityModel) -> None:
        self._model = model

    @property
    def num_gpus(self) -> int:
        return self._model.num_gpus

    def metrics_at(self, times_s, gpu_index):
        return self._model.metrics_at(times_s, gpu_index)

    def analytic_max(self, gpu_index):
        return self._model.analytic_max(gpu_index)


def _best_of(fn, repeats=3):
    best, result = float("inf"), None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def test_batched_summaries_faster():
    """Batched ``metrics_at_all`` summaries: >=1.5x over the per-GPU
    loop on a multi-GPU-heavy workload, with bit-identical output."""
    rng = np.random.default_rng(20220402)
    sampler = NvidiaSmiSampler(0.1, SUMMARY_SAMPLES)
    jobs = []
    for job_id in range(NUM_JOBS):
        model = _make_model(job_id, NUM_GPUS, rng)
        offsets = sampler.draw_offsets(model.duration_s, NUM_GPUS, rng)
        jobs.append((model, offsets))

    def batched():
        return [
            sampler.summarize_with_offsets(model, model.duration_s, offsets)
            for model, offsets in jobs
        ]

    def per_gpu():
        return [
            sampler.summarize_with_offsets(_PerGpuView(model), model.duration_s, offsets)
            for model, offsets in jobs
        ]

    fast_s, fast = _best_of(batched)
    naive_s, naive = _best_of(per_gpu)
    record_bench_stat(
        "batched_summaries",
        rows_per_s=NUM_JOBS * NUM_GPUS * SUMMARY_SAMPLES / fast_s,
        speedup_x=naive_s / fast_s,
    )
    for fast_job, naive_job in zip(fast, naive):
        assert fast_job.keys() == naive_job.keys()
        for name, values in fast_job.items():
            assert np.array_equal(values, naive_job[name]), name
    assert naive_s >= 1.5 * fast_s, (
        f"summaries[{NUM_JOBS} jobs x {NUM_GPUS} GPUs]: batched "
        f"{fast_s * 1e3:.1f}ms vs per-GPU {naive_s * 1e3:.1f}ms "
        f"({naive_s / fast_s:.1f}x < 1.5x)"
    )


def test_parallel_build_is_bit_identical():
    """Serial and parallel deferred sampling build the same dataset.

    This is the contract that lets ``--workers`` touch a cold build at
    all: the process pool only shards deterministic evaluation, so
    every table and every dense series must match the serial build
    exactly.
    """
    serial = Session(WorkloadConfig(scale=0.01, seed=7), workers=1).dataset()
    parallel = Session(WorkloadConfig(scale=0.01, seed=7), workers=2).dataset()
    assert serial.jobs.to_dict() == parallel.jobs.to_dict()
    assert serial.gpu_jobs.to_dict() == parallel.gpu_jobs.to_dict()
    assert serial.per_gpu.to_dict() == parallel.per_gpu.to_dict()
    assert len(serial.timeseries) == len(parallel.timeseries)
    for series in serial.timeseries:
        twin = parallel.timeseries.get(series.job_id, series.gpu_index)
        assert np.array_equal(series.times_s, twin.times_s)
        for name, values in series.metrics.items():
            assert np.array_equal(values, twin.metrics[name]), name
