"""Deferred batched sampling — the expensive half of the monitor epilog.

The scheduler epilog stays cheap and strictly ordered: it consumes the
collector RNG in job-completion order (CPU summary, keep-series draw,
stratified offsets) and enqueues a :class:`SamplingTask` instead of
evaluating the activity model inline.  Everything a task needs is
frozen at enqueue time, and ``metrics_at`` / ``analytic_max`` are
deterministic functions of those inputs, so the task list can be
evaluated *after* the simulation — serially, or sharded across a
process pool via :func:`repro.pipeline.parallel.parallel_map` — and
merged back in job order with bit-for-bit the dataset the old inline
epilog produced.

Inside each task the sampler takes the model's batched
``metrics_at_all`` path (one vectorized call per job instead of a
per-GPU Python loop), for both the stratified summaries and the dense
series; ``benchmarks/bench_dataset_build.py`` gates that batching at
>=2x the per-GPU reference.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial

import numpy as np

from repro.monitor.nvidia_smi import ActivityModel, NvidiaSmiSampler
from repro.monitor.timeseries import GpuTimeSeries


@dataclass(frozen=True)
class SamplingPlan:
    """Deterministic evaluation parameters shared by every task."""

    #: Dense-series sampling cadence (100 ms in production).
    gpu_interval_s: float = 0.1
    #: Dense series are decimated beyond this many samples per GPU.
    timeseries_max_samples: int = 20000


@dataclass
class SamplingTask:
    """One job's deferred telemetry evaluation.

    ``offsets`` is the job's stratified ``(num_gpus, n)`` draw — the
    only random input — taken from the collector RNG in the epilog, so
    deferral leaves the generator stream untouched.
    """

    job_id: int
    model: ActivityModel
    run_time_s: float
    offsets: np.ndarray
    keep_series: bool

    @property
    def num_gpus(self) -> int:
        return int(self.offsets.shape[0])


@dataclass
class SamplingResult:
    """What one task produced, ready to merge into the collector."""

    job_id: int
    num_gpus: int
    #: ``{"<metric>_<stat>": (num_gpus,) array}`` column fragments.
    summary: dict[str, np.ndarray]
    #: Dense series (one per GPU) when the task kept them, else empty.
    series: list[GpuTimeSeries]


def evaluate_task(plan: SamplingPlan, task: SamplingTask) -> SamplingResult:
    """Evaluate one task — pure function of ``(plan, task)``."""
    sampler = NvidiaSmiSampler(plan.gpu_interval_s, max(task.offsets.shape[1], 2))
    summary = sampler.summarize_with_offsets(task.model, task.run_time_s, task.offsets)
    series: list[GpuTimeSeries] = []
    if task.keep_series:
        series = sampler.sample_series_job(
            task.job_id,
            task.model,
            task.run_time_s,
            max_samples=plan.timeseries_max_samples,
        )
    return SamplingResult(
        job_id=task.job_id,
        num_gpus=task.num_gpus,
        summary=summary,
        series=series,
    )


def run_sampling(
    tasks: list[SamplingTask],
    plan: SamplingPlan,
    workers: int | None = None,
) -> list[SamplingResult]:
    """Evaluate every task, in task (= job-completion) order.

    With ``workers > 1`` the tasks are sharded across a process pool;
    :func:`~repro.pipeline.parallel.parallel_map` preserves item order
    and falls back to the serial path when a pool cannot start, so the
    merged results are identical either way.
    """
    from repro.pipeline.parallel import parallel_map

    return parallel_map(partial(evaluate_task, plan), tasks, workers=workers)
