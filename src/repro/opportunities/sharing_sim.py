"""Cluster-level GPU-sharing simulation.

:mod:`repro.opportunities.colocation` scores *pairs* of jobs; this
module answers the operator's actual question: **if the fleet allowed
two jobs per GPU (below a demand headroom), how much smaller could it
be for the same queueing behavior?**

A compact event-driven queue simulation: jobs arrive with a duration
and a mean GPU demand, each device hosts up to ``max_jobs_per_gpu``
residents as long as the summed demand stays under ``headroom`` — an
empty device accepts any job (exclusive fallback for hot jobs).  FCFS
with no preemption and *no backfill*: a job can only start once every
earlier arrival has started, so a pending high-demand job is never
starved by later light jobs slipping past it.  Head-of-line order is
what makes sharing provably never worse than exclusive placement —
sharing starts every job no later than the exclusive fleet does,
because whenever the exclusive fleet has an empty device at most
``num_gpus - 1`` jobs are still running, which on the sharing fleet
also leaves a device empty.  Runtimes are not stretched (the headroom
bound is what keeps interference negligible, per the pair-level
study).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.errors import AnalysisError


@dataclass(frozen=True)
class SharingConfig:
    """Sharing policy of the simulated fleet."""

    headroom: float = 60.0
    max_jobs_per_gpu: int = 2

    def __post_init__(self) -> None:
        if not 0 < self.headroom <= 100.0:
            raise AnalysisError("headroom must be in (0, 100]")
        if self.max_jobs_per_gpu < 1:
            raise AnalysisError("max_jobs_per_gpu must be >= 1")


@dataclass(frozen=True)
class QueueOutcome:
    """Waiting behavior of one simulated configuration."""

    num_gpus: int
    sharing: bool
    mean_wait_s: float
    median_wait_s: float
    p95_wait_s: float
    max_queue_length: int


@dataclass(frozen=True)
class SharingJob:
    """One single-GPU job offered to the simulated fleet."""

    arrival_s: float
    duration_s: float
    demand: float  # mean SM demand, percent

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise AnalysisError("job duration must be positive")
        if not 0.0 <= self.demand <= 100.0:
            raise AnalysisError("demand must be a percentage")


class GpuSharingSimulator:
    """Simulates an FCFS queue over a (possibly shared) GPU fleet."""

    def __init__(self, config: SharingConfig | None = None) -> None:
        self.config = config or SharingConfig()

    def run(self, jobs: list[SharingJob], num_gpus: int, sharing: bool) -> QueueOutcome:
        """Simulate the job list on ``num_gpus`` devices."""
        if num_gpus < 1:
            raise AnalysisError("need at least one GPU")
        if not jobs:
            raise AnalysisError("no jobs")
        ordered = sorted(jobs, key=lambda j: j.arrival_s)

        residents: list[list[float]] = [[] for _ in range(num_gpus)]
        finish_heap: list[tuple[float, int, int, float]] = []  # (time, seq, gpu, demand)
        pending: list[SharingJob] = []
        waits: list[float] = []
        max_queue = 0
        seq = 0

        def try_place(job: SharingJob, now: float) -> bool:
            nonlocal seq
            slot = self._find_slot(residents, job.demand, sharing)
            if slot is None:
                return False
            residents[slot].append(job.demand)
            heapq.heappush(finish_heap, (now + job.duration_s, seq, slot, job.demand))
            seq += 1
            waits.append(now - job.arrival_s)
            return True

        def drain_finishes(until: float) -> None:
            while finish_heap and finish_heap[0][0] <= until:
                finish_time, _, gpu, demand = heapq.heappop(finish_heap)
                residents[gpu].remove(demand)
                # Finished capacity admits pending jobs in strict queue
                # order; the head blocks everything behind it (FCFS, no
                # backfill).
                while pending and try_place(pending[0], finish_time):
                    pending.pop(0)

        for job in ordered:
            drain_finishes(job.arrival_s)
            # A new arrival queues behind any pending job — it must not
            # slip past a high-demand head waiting for an empty device.
            if pending or not try_place(job, job.arrival_s):
                pending.append(job)
                max_queue = max(max_queue, len(pending))
        drain_finishes(float("inf"))

        if pending:
            raise AnalysisError(f"{len(pending)} jobs never placed (internal error)")
        wait_arr = np.asarray(waits)
        return QueueOutcome(
            num_gpus=num_gpus,
            sharing=sharing,
            mean_wait_s=float(wait_arr.mean()),
            median_wait_s=float(np.median(wait_arr)),
            p95_wait_s=float(np.percentile(wait_arr, 95)),
            max_queue_length=max_queue,
        )

    def _find_slot(self, residents: list[list[float]], demand: float, sharing: bool) -> int | None:
        """Best device for a job: an empty one, else (sharing only) the
        fullest device that still has headroom."""
        empty = next((i for i, r in enumerate(residents) if not r), None)
        if not sharing:
            return empty
        best = None
        best_load = -1.0
        for index, loads in enumerate(residents):
            if not loads:
                continue
            if len(loads) >= self.config.max_jobs_per_gpu:
                continue
            total = sum(loads)
            if total + demand <= self.config.headroom and total > best_load:
                best, best_load = index, total
        if best is not None:
            return best
        return empty

    # ------------------------------------------------------------------
    def right_size(
        self,
        jobs: list[SharingJob],
        target_median_wait_s: float,
        max_gpus: int,
    ) -> dict[str, int]:
        """Smallest fleet meeting a wait target, with and without sharing.

        Binary search over the fleet size (queue waits are monotone in
        capacity for FCFS).
        """
        out = {}
        for label, sharing in (("exclusive", False), ("shared", True)):
            lo, hi = 1, max_gpus
            best = None
            while lo <= hi:
                mid = (lo + hi) // 2
                outcome = self.run(jobs, mid, sharing)
                if outcome.median_wait_s <= target_median_wait_s:
                    best = mid
                    hi = mid - 1
                else:
                    lo = mid + 1
            if best is None:
                raise AnalysisError(
                    f"{label}: even {max_gpus} GPUs miss the wait target"
                )
            out[label] = best
        return out


def jobs_from_dataset(dataset, max_jobs: int = 2000) -> list[SharingJob]:
    """Extract single-GPU jobs (arrival, duration, mean SM demand)."""
    jobs = []
    for row in dataset.gpu_jobs.iter_rows():
        if row["num_gpus"] != 1:
            continue
        jobs.append(
            SharingJob(
                arrival_s=float(row["submit_time_s"]),
                duration_s=float(row["run_time_s"]),
                demand=float(row["sm_mean"]),
            )
        )
        if len(jobs) >= max_jobs:
            break
    if not jobs:
        raise AnalysisError("dataset has no single-GPU jobs")
    return jobs


def sharing_study(dataset, num_gpus: int | None = None, max_jobs: int = 2000):
    """Compare shared vs exclusive queue behavior on a dataset.

    ``num_gpus`` defaults to a deliberately tight fleet (1/40 of the
    job count) so queueing differences are visible.
    """
    jobs = jobs_from_dataset(dataset, max_jobs)
    if num_gpus is None:
        num_gpus = max(len(jobs) // 40, 2)
    simulator = GpuSharingSimulator()
    return (
        simulator.run(jobs, num_gpus, sharing=False),
        simulator.run(jobs, num_gpus, sharing=True),
    )
