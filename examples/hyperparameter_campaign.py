"""Simulate one researcher's hyper-parameter tuning campaign.

The paper's Sec. VI motivates its life-cycle classification with the
typical deep-learning workflow: prototype in an IDE session, debug a
few development runs, sweep hyper-parameters (killing bad ones early),
then run the final mature training job.  This example drives the
*public scheduler + monitoring API directly* — no workload generator —
to replay exactly that workflow and analyse its footprint.

Run with ``python examples/hyperparameter_campaign.py``.
"""

import numpy as np

from repro.cluster.spec import supercloud_spec
from repro.analysis.lifecycle import lifecycle_breakdown
from repro.monitor.collector import MonitoringCollector, MonitoringConfig
from repro.slurm.accounting import accounting_table
from repro.slurm.job import JobRequest
from repro.slurm.scheduler import SlurmSimulator
from repro.workload.activity import (
    JobActivityModel,
    PhaseSchedule,
    PowerModel,
    build_metric_process,
)

POWER = PowerModel(idle_w=25.0, per_sm=1.25, per_mem=0.4, per_pcie=0.03, per_size=0.2)
HOUR = 3600.0


def make_activity(rng, duration_s, sm_level, active_fraction, num_gpus=1):
    """A simple single-level activity model for one job."""
    schedule = PhaseSchedule.generate(
        rng, duration_s, active_fraction, mean_active_s=120.0, active_cov=1.7, idle_cov=1.3
    )
    processes = {
        name: build_metric_process(
            rng,
            level=level,
            noise_cov=0.12,
            burst_level=min(level * 1.8, 97.0),
            schedule=schedule,
            num_bursts=2,
        )
        for name, level in {
            "sm": sm_level,
            "mem_bw": sm_level * 0.12,
            "mem_size": sm_level * 0.6,
            "pcie_tx": 15.0,
            "pcie_rx": 25.0,
        }.items()
    }
    return JobActivityModel(
        job_id=-1,
        num_gpus=num_gpus,
        duration_s=duration_s,
        schedule=schedule,
        processes=processes,
        gpu_scale=np.ones(num_gpus),
        power_model=POWER,
    )


def build_campaign(rng):
    """IDE session -> debug runs -> 12-trial sweep -> final training."""
    requests = []
    clock = 0.0

    def submit(runtime_s, intended_class, sm_level, active_fraction,
               num_gpus=1, time_limit_s=24 * HOUR, gap_s=300.0):
        nonlocal clock
        request = JobRequest(
            job_id=len(requests),
            user="researcher",
            submit_time_s=clock,
            runtime_s=runtime_s,
            num_gpus=num_gpus,
            cores=4 * num_gpus,
            memory_gb=40.0,
            interface="interactive" if intended_class == "ide" else "other",
            intended_class=intended_class,
            time_limit_s=time_limit_s,
        )
        request.tags["activity"] = make_activity(
            rng, min(runtime_s, time_limit_s), sm_level, active_fraction, num_gpus
        )
        requests.append(request)
        clock += gap_s

    # 1. design in a notebook until the 12 h session times out
    submit(13 * HOUR, "ide", sm_level=0.0, active_fraction=0.02, time_limit_s=12 * HOUR)
    # 2. three debug runs that crash quickly
    for _ in range(3):
        submit(rng.uniform(120, 600), "development", sm_level=3.0, active_fraction=0.2)
    # 3. a 12-trial sweep; bad trials get killed at various points
    for trial in range(12):
        keep = trial == 7  # one winner
        runtime = 6 * HOUR if keep else rng.uniform(0.5, 3.0) * HOUR
        submit(runtime, "mature" if keep else "exploratory",
               sm_level=rng.uniform(25, 60), active_fraction=0.9, gap_s=60.0)
    # 4. the final multi-GPU training run with the winning config
    submit(10 * HOUR, "mature", sm_level=55.0, active_fraction=0.95, num_gpus=2)
    return requests


def main() -> None:
    rng = np.random.default_rng(7)
    requests = build_campaign(rng)

    simulator = SlurmSimulator(supercloud_spec(4))
    collector = MonitoringCollector(
        MonitoringConfig(timeseries_fraction=0.0)
    ).attach(simulator)
    result = simulator.run(requests)

    jobs = accounting_table(result.records).join(collector.job_gpu_table(), on="job_id")
    print(f"campaign: {len(jobs)} jobs, {sum(jobs['gpu_hours']):.1f} GPU-hours\n")
    print(
        jobs.select(
            ["job_id", "lifecycle_class", "run_time_s", "num_gpus", "sm_mean", "power_w_mean"]
        ).to_string(max_rows=20)
    )
    print()

    breakdown = lifecycle_breakdown(jobs)
    print("footprint by life-cycle class (the paper's Fig 15, for one user):")
    print(breakdown.to_string())
    print()
    ide_row = [r for r in breakdown.iter_rows() if r["lifecycle_class"] == "ide"][0]
    print(
        f"the single IDE session burned {ide_row['gpu_hour_fraction']:.0%} of the "
        "campaign's GPU hours while using ~0% of the GPU - the paper's key finding."
    )


if __name__ == "__main__":
    main()
