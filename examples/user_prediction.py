"""Can an operator predict what a user's next job will do?

The paper's Sec. IV finding: even heavy users have wildly variable
jobs, so "user-specific predictive resource management strategies may
not remain effective".  This example replays the job stream with five
prediction strategies and scores them — reproducing the negative
result quantitatively.

Run with ``python examples/user_prediction.py``.
"""

from repro import WorkloadConfig, generate_dataset
from repro.analysis.prediction import predictability_gain, strategy_comparison


def main() -> None:
    dataset = generate_dataset(WorkloadConfig(scale=0.05, seed=31))
    print(dataset.describe())
    print()

    comparison = strategy_comparison(
        dataset.gpu_jobs, metrics=("run_time_s", "sm_mean"), warmup=3
    )
    print("online prediction of the next job, per strategy:")
    print(comparison.to_string(max_rows=20))
    print()

    for metric, label in (("run_time_s", "runtime"), ("sm_mean", "SM utilization")):
        gain = predictability_gain(comparison, metric)
        print(
            f"{label}: best per-user strategy beats the global baseline by "
            f"{gain:.0%} (log-error reduction)"
        )
    print()
    print(
        "Runtime predictions are off by ~2x even with user history — the paper's\n"
        "conclusion that user-specific prediction is unreliable holds on this data."
    )


if __name__ == "__main__":
    main()
