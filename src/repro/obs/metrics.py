"""Counters, gauges, and fixed-bucket histograms — the metrics half of
`repro.obs`.

A :class:`MetricsRegistry` is a flat namespace of labelled
instruments::

    metrics = MetricsRegistry()
    metrics.counter("repro_cache_events_total", kind="hit").inc()
    metrics.histogram("repro_stage_seconds", stage="workload").observe(1.8)

Instruments are get-or-create: the first call for a ``(name, labels)``
pair creates it, later calls return the same object, so hot paths can
cache the handle outside their loop.  Label values are stringified
(Prometheus semantics).  A registry snapshots to a plain picklable
dict (:meth:`snapshot` / :meth:`drain`) and merges snapshots from
worker processes (:meth:`merge`): counters and histograms add,
gauges keep the maximum — the only gauge-merge that makes sense for
the peak-style gauges used here.

:data:`NULL_METRICS` is the disabled registry: every accessor returns
one shared inert instrument, so the disabled path costs one method
call and no allocation.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Any, Iterable, Mapping

#: Default histogram upper bounds, in seconds (latency-shaped).
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0, 300.0,
)

#: Bounds suited to count-valued histograms (queue depths, row counts).
COUNT_BUCKETS: tuple[float, ...] = (
    1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0, 5000.0,
)

LabelItems = tuple[tuple[str, str], ...]


def _label_items(labels: Mapping[str, Any]) -> LabelItems:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """Monotonically increasing value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, by: float = 1.0) -> None:
        self.value += by


class Gauge:
    """A point-in-time value (merged across processes by maximum)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def set_max(self, value: float) -> None:
        if value > self.value:
            self.value = float(value)


class Histogram:
    """Fixed-bucket histogram with Prometheus cumulative semantics."""

    __slots__ = ("buckets", "counts", "sum", "count")

    def __init__(self, buckets: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        self.buckets = tuple(sorted(buckets))
        #: per-bucket (non-cumulative) counts; the extra slot is +Inf
        self.counts = [0] * (len(self.buckets) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.buckets, value)] += 1
        self.sum += value
        self.count += 1

    def cumulative(self) -> list[tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs ending at +Inf."""
        out, running = [], 0
        for bound, count in zip(self.buckets, self.counts):
            running += count
            out.append((bound, running))
        out.append((float("inf"), running + self.counts[-1]))
        return out


class _NullInstrument:
    """Shared no-op counter/gauge/histogram for the disabled registry."""

    __slots__ = ()
    value = 0.0
    sum = 0.0
    count = 0

    def inc(self, by: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def set_max(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()


class NullMetrics:
    """The disabled registry: every accessor is a no-op."""

    __slots__ = ()
    enabled = False

    def counter(self, name: str, help: str = "", **labels: Any) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str, help: str = "", **labels: Any) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(
        self, name: str, buckets: tuple[float, ...] = DEFAULT_BUCKETS,
        help: str = "", **labels: Any,
    ) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def snapshot(self) -> dict[str, Any]:
        return {"counters": [], "gauges": [], "histograms": []}

    def drain(self) -> dict[str, Any]:
        return self.snapshot()

    def merge(self, snapshot: Mapping[str, Any]) -> None:
        pass


NULL_METRICS = NullMetrics()


class MetricsRegistry:
    """A namespace of labelled counters, gauges, and histograms."""

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[tuple[str, LabelItems], Counter] = {}
        self._gauges: dict[tuple[str, LabelItems], Gauge] = {}
        self._histograms: dict[tuple[str, LabelItems], Histogram] = {}
        self._help: dict[str, str] = {}
        self._kind: dict[str, str] = {}

    # ------------------------------------------------------------------
    # Instrument access (get-or-create)
    # ------------------------------------------------------------------
    def _register(self, name: str, kind: str, help: str) -> None:
        seen = self._kind.get(name)
        if seen is None:
            self._kind[name] = kind
        elif seen != kind:
            raise ValueError(f"metric {name!r} already registered as a {seen}")
        # first non-empty help wins (it may have arrived via merge()
        # before the first local registration)
        if help and not self._help.get(name):
            self._help[name] = help

    def counter(self, name: str, help: str = "", **labels: Any) -> Counter:
        key = (name, _label_items(labels))
        try:
            return self._counters[key]
        except KeyError:
            with self._lock:
                self._register(name, "counter", help)
                return self._counters.setdefault(key, Counter())

    def gauge(self, name: str, help: str = "", **labels: Any) -> Gauge:
        key = (name, _label_items(labels))
        try:
            return self._gauges[key]
        except KeyError:
            with self._lock:
                self._register(name, "gauge", help)
                return self._gauges.setdefault(key, Gauge())

    def histogram(
        self, name: str, buckets: tuple[float, ...] = DEFAULT_BUCKETS,
        help: str = "", **labels: Any,
    ) -> Histogram:
        key = (name, _label_items(labels))
        try:
            return self._histograms[key]
        except KeyError:
            with self._lock:
                self._register(name, "histogram", help)
                return self._histograms.setdefault(key, Histogram(buckets))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def names(self) -> list[str]:
        return sorted(self._kind)

    def kind(self, name: str) -> str | None:
        return self._kind.get(name)

    def help_text(self, name: str) -> str:
        return self._help.get(name, "")

    def counter_value(self, name: str, **labels: Any) -> float:
        entry = self._counters.get((name, _label_items(labels)))
        return entry.value if entry is not None else 0.0

    def samples(self, kind: str) -> list[tuple[str, LabelItems, Any]]:
        """``(name, label_items, instrument)`` rows sorted by name."""
        store = {
            "counter": self._counters,
            "gauge": self._gauges,
            "histogram": self._histograms,
        }[kind]
        return sorted(
            ((name, labels, inst) for (name, labels), inst in store.items()),
            key=lambda row: (row[0], row[1]),
        )

    # ------------------------------------------------------------------
    # Cross-process propagation
    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """The registry as a plain picklable dict."""
        with self._lock:
            return {
                "counters": [
                    (name, labels, c.value) for (name, labels), c in self._counters.items()
                ],
                "gauges": [
                    (name, labels, g.value) for (name, labels), g in self._gauges.items()
                ],
                "histograms": [
                    (name, labels, h.buckets, list(h.counts), h.sum, h.count)
                    for (name, labels), h in self._histograms.items()
                ],
                "help": dict(self._help),
                "kind": dict(self._kind),
            }

    def drain(self) -> dict[str, Any]:
        """Snapshot, then reset every instrument (worker hand-off)."""
        snap = self.snapshot()
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
        return snap

    def merge(self, snapshot: Mapping[str, Any]) -> None:
        """Fold a worker snapshot into this registry."""
        for name, help in snapshot.get("help", {}).items():
            self._help.setdefault(name, help)
        for name, labels, value in snapshot.get("counters", []):
            self.counter(name, **dict(labels)).inc(value)
        for name, labels, value in snapshot.get("gauges", []):
            self.gauge(name, **dict(labels)).set_max(value)
        for name, labels, buckets, counts, total, count in snapshot.get("histograms", []):
            hist = self.histogram(name, buckets=tuple(buckets), **dict(labels))
            if hist.buckets != tuple(buckets):  # pragma: no cover - defensive
                raise ValueError(f"histogram {name!r} bucket mismatch on merge")
            for i, c in enumerate(counts):
                hist.counts[i] += c
            hist.sum += total
            hist.count += count
