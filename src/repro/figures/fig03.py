"""Fig 3: run times and queue waits of GPU vs CPU jobs.

This producer is a streaming proof-of-concept consumer: it reads the
job tables only through :func:`~repro.analysis.stats.column_ecdf` and
:func:`~repro.analysis.stats.column_fraction`, so it accepts either
the materialized dataset or ``dataset.streaming_view()`` — exact CDFs
in the first case, one-pass quantile sketches (tracked rank-error
bound) with bit-identical threshold fractions in the second.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.stats import column_ecdf, column_fraction
from repro.dataset import SupercloudDataset
from repro.figures.base import Comparison, FigureResult


def run(dataset: SupercloudDataset) -> FigureResult:
    """Fig 3(a): runtime CDFs; Fig 3(b): wait time as % of service time."""
    gpu = dataset.gpu_jobs
    cpu = dataset.jobs.filter(lambda t: np.asarray(t["num_gpus"]) == 0)

    to_minutes = lambda seconds: seconds / 60.0  # noqa: E731
    gpu_runtime = column_ecdf(gpu, "run_time_s", transform=to_minutes)
    cpu_runtime = column_ecdf(cpu, "run_time_s", transform=to_minutes)
    gpu_wait_frac = column_ecdf(gpu, "wait_fraction")
    cpu_wait_frac = column_ecdf(cpu, "wait_fraction")

    comparisons = [
        Comparison("GPU runtime p25", 4.0, gpu_runtime.quantile(0.25), " min"),
        Comparison("GPU runtime median", 30.0, gpu_runtime.median(), " min"),
        Comparison("GPU runtime p75", 300.0, gpu_runtime.quantile(0.75), " min"),
        Comparison("CPU runtime median", 8.0, cpu_runtime.median(), " min"),
        Comparison(
            "GPU jobs waiting <2% of service", 0.50, float(gpu_wait_frac.evaluate(0.02))
        ),
        Comparison(
            "CPU jobs waiting <2% of service", 0.20, float(cpu_wait_frac.evaluate(0.02))
        ),
        Comparison(
            "GPU jobs waiting <1 min",
            0.70,
            column_fraction(gpu, "wait_time_s", lambda w: w < 60.0),
        ),
        Comparison(
            "CPU jobs waiting >1 min",
            0.70,
            column_fraction(cpu, "wait_time_s", lambda w: w > 60.0),
        ),
    ]
    return FigureResult(
        figure_id="fig03",
        title="Run times and queue waits, GPU vs CPU jobs",
        series={
            "gpu_runtime_cdf": gpu_runtime,
            "cpu_runtime_cdf": cpu_runtime,
            "gpu_wait_fraction_cdf": gpu_wait_frac,
            "cpu_wait_fraction_cdf": cpu_wait_frac,
        },
        comparisons=comparisons,
        notes="waits emerge from the scheduler simulation, not from anchors",
    )
