"""Tests for repro.frame.GroupBy."""

import numpy as np
import pytest

from repro.errors import FrameError
from repro.frame import Table


@pytest.fixture
def table():
    return Table(
        {
            "user": ["a", "b", "a", "c", "b", "a"],
            "cls": ["m", "m", "e", "m", "e", "m"],
            "hours": [1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
        }
    )


class TestGrouping:
    def test_num_groups(self, table):
        assert table.group_by("user").num_groups == 3

    def test_keys_first_seen_order(self, table):
        assert table.group_by("user").keys() == [("a",), ("b",), ("c",)]

    def test_iteration_yields_subtables(self, table):
        groups = {key: sub for key, sub in table.group_by("user")}
        assert groups[("a",)].num_rows == 3
        assert groups[("c",)].num_rows == 1

    def test_multi_key_grouping(self, table):
        gb = table.group_by("user", "cls")
        assert gb.num_groups == 5
        assert gb.group("a", "m").num_rows == 2

    def test_group_lookup_missing(self, table):
        with pytest.raises(FrameError, match="no group"):
            table.group_by("user").group("zzz")

    def test_no_keys_rejected(self, table):
        with pytest.raises(FrameError):
            table.group_by()

    def test_sizes(self, table):
        sizes = table.group_by("user").sizes().sort_by("user")
        assert list(sizes["count"]) == [3, 2, 1]


class TestAggregate:
    def test_single_reducer(self, table):
        agg = table.group_by("user").aggregate({"hours": "sum"}).sort_by("user")
        assert list(agg["hours_sum"]) == [10.0, 7.0, 4.0]

    def test_multiple_reducers(self, table):
        agg = table.group_by("user").aggregate({"hours": ["min", "max", "count"]})
        row = agg.sort_by("user").row(0)
        assert (row["hours_min"], row["hours_max"], row["hours_count"]) == (1.0, 6.0, 3)

    def test_mean_median_std(self, table):
        agg = table.group_by("cls").aggregate({"hours": ["mean", "median", "std"]})
        m_row = [r for r in agg.iter_rows() if r["cls"] == "m"][0]
        assert m_row["hours_mean"] == pytest.approx(13.0 / 4)
        assert m_row["hours_median"] == pytest.approx(3.0)

    def test_first_last(self, table):
        agg = table.group_by("user").aggregate({"cls": ["first", "last"]}).sort_by("user")
        assert agg.row(0)["cls_first"] == "m"
        assert agg.row(0)["cls_last"] == "m"

    def test_unknown_reducer_rejected(self, table):
        with pytest.raises(FrameError, match="unknown reducer"):
            table.group_by("user").aggregate({"hours": "variance"})

    def test_shorthand_mean(self, table):
        agg = table.group_by("user").mean("hours").sort_by("user")
        assert agg.row(2)["hours_mean"] == 4.0

    def test_shorthand_sum(self, table):
        agg = table.group_by("cls").sum("hours")
        total = sum(agg["hours_sum"])
        assert total == pytest.approx(21.0)


class TestApply:
    def test_apply_collects_dicts(self, table):
        result = table.group_by("user").apply(
            lambda g: {"n": g.num_rows, "top": float(np.max(g["hours"]))}
        )
        a_row = [r for r in result.iter_rows() if r["user"] == "a"][0]
        assert a_row == {"user": "a", "n": 3, "top": 6.0}

    def test_apply_key_columns_present(self, table):
        result = table.group_by("user", "cls").apply(lambda g: {"n": g.num_rows})
        assert set(result.column_names) == {"user", "cls", "n"}
