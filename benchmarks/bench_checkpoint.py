"""Opportunity study: checkpoint/restart for dev/IDE state loss."""

from repro.opportunities.checkpoint import checkpoint_study, interval_sweep


def test_checkpoint_accounting(benchmark, dataset):
    study = benchmark(checkpoint_study, dataset.gpu_jobs)
    assert study.lossy_job_fraction > 0.05
    assert study.net_saving_gpu_hours > 0


def test_checkpoint_interval_sweep(benchmark, dataset):
    sweep = benchmark(interval_sweep, dataset.gpu_jobs)
    assert sweep.num_rows == 5
