"""Development life-cycle classification (Fig 15-17; Sec. VI).

The paper's novel contribution: classify every job by where it sits in
the algorithm-development cycle, *derived purely from how it ended*:

* ``mature`` — completed with exit code 0;
* ``exploratory`` — cancelled by the user (suboptimal hyper-parameters);
* ``development`` — crashed with a non-zero exit (debugging);
* ``ide`` — interactive session that hit its timeout limit.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.streaming import is_chunked
from repro.errors import AnalysisError
from repro.frame import QuantileSketch, Table
from repro.slurm.job import LIFECYCLE_CLASSES


def classify_exit(exit_code: int, cancelled_by_user: bool, timed_out: bool) -> str:
    """Classify one job from its raw scheduler exit facts.

    Mirrors the paper's rules; precedence follows how Slurm reports
    states (TIMEOUT and CANCELLED are states, not exit codes).
    """
    if timed_out:
        return "ide"
    if cancelled_by_user:
        return "exploratory"
    if exit_code == 0:
        return "mature"
    return "development"


def lifecycle_breakdown(gpu_jobs: Table) -> Table:
    """Job share, GPU-hour share, and median runtime per class (Fig 15).

    On a chunked stream the job shares stay exact (integer counts),
    hour shares fold chunk partials, and each class's median runtime
    comes from a one-pass :class:`~repro.frame.QuantileSketch`.
    """
    if is_chunked(gpu_jobs):
        counts = {cls: 0 for cls in LIFECYCLE_CLASSES}
        hours_by_class = {cls: 0.0 for cls in LIFECYCLE_CLASSES}
        runtime_sketches = {cls: QuantileSketch() for cls in LIFECYCLE_CLASSES}
        total = 0
        total_hours = 0.0
        for chunk in gpu_jobs.chunks():
            classes = np.asarray(list(chunk["lifecycle_class"]))
            hours = np.asarray(chunk["gpu_hours"], dtype=float)
            runtimes = np.asarray(chunk["run_time_s"], dtype=float)
            total += classes.size
            total_hours += float(hours.sum())
            for cls in LIFECYCLE_CLASSES:
                mask = classes == cls
                counts[cls] += int(mask.sum())
                hours_by_class[cls] += float(hours[mask].sum())
                runtime_sketches[cls].update(runtimes[mask])
        if total == 0:
            raise AnalysisError("no jobs")
        return Table.from_rows(
            [
                {
                    "lifecycle_class": cls,
                    "job_fraction": counts[cls] / total,
                    "gpu_hour_fraction": hours_by_class[cls] / total_hours if total_hours else 0.0,
                    "median_runtime_min": (
                        runtime_sketches[cls].quantile(0.5) / 60.0 if counts[cls] else float("nan")
                    ),
                    "num_jobs": counts[cls],
                }
                for cls in LIFECYCLE_CLASSES
            ]
        )
    if gpu_jobs.num_rows == 0:
        raise AnalysisError("no jobs")
    classes = np.asarray(list(gpu_jobs["lifecycle_class"]))
    hours = np.asarray(gpu_jobs["gpu_hours"], dtype=float)
    runtimes = np.asarray(gpu_jobs["run_time_s"], dtype=float)
    total_hours = hours.sum()
    rows = []
    for cls in LIFECYCLE_CLASSES:
        mask = classes == cls
        rows.append(
            {
                "lifecycle_class": cls,
                "job_fraction": float(mask.mean()),
                "gpu_hour_fraction": float(hours[mask].sum() / total_hours) if total_hours else 0.0,
                "median_runtime_min": float(np.median(runtimes[mask]) / 60.0) if mask.any() else float("nan"),
                "num_jobs": int(mask.sum()),
            }
        )
    return Table.from_rows(rows)


def class_utilization_boxes(
    gpu_jobs: Table,
    metrics: tuple[str, ...] = ("sm_mean", "mem_bw_mean", "mem_size_mean"),
) -> Table:
    """Box-plot statistics of utilization per class (Fig 16).

    A chunked stream keeps one rank-bounded quantile sketch per
    ``(class, metric)`` cell and reads p25/median/p75 off it.
    """
    if is_chunked(gpu_jobs):
        sketches = {
            (cls, metric): QuantileSketch() for cls in LIFECYCLE_CLASSES for metric in metrics
        }
        counts = {cls: 0 for cls in LIFECYCLE_CLASSES}
        total = 0
        for chunk in gpu_jobs.chunks():
            classes = np.asarray(list(chunk["lifecycle_class"]))
            total += classes.size
            for cls in LIFECYCLE_CLASSES:
                mask = classes == cls
                count = int(mask.sum())
                counts[cls] += count
                if not count:
                    continue
                for metric in metrics:
                    values = np.asarray(chunk[metric], dtype=float)[mask]
                    sketches[(cls, metric)].update(values)
        if total == 0:
            raise AnalysisError("no jobs")
        return Table.from_rows(
            [
                {
                    "lifecycle_class": cls,
                    "metric": metric,
                    "p25": sketches[(cls, metric)].quantile(0.25),
                    "median": sketches[(cls, metric)].quantile(0.5),
                    "p75": sketches[(cls, metric)].quantile(0.75),
                }
                for cls in LIFECYCLE_CLASSES
                if counts[cls]
                for metric in metrics
            ]
        )
    if gpu_jobs.num_rows == 0:
        raise AnalysisError("no jobs")
    classes = np.asarray(list(gpu_jobs["lifecycle_class"]))
    rows = []
    for cls in LIFECYCLE_CLASSES:
        mask = classes == cls
        if not mask.any():
            continue
        for metric in metrics:
            values = np.asarray(gpu_jobs[metric], dtype=float)[mask]
            rows.append(
                {
                    "lifecycle_class": cls,
                    "metric": metric,
                    "p25": float(np.percentile(values, 25)),
                    "median": float(np.median(values)),
                    "p75": float(np.percentile(values, 75)),
                }
            )
    return Table.from_rows(rows)


def user_lifecycle_composition(gpu_jobs: Table, by: str = "jobs") -> Table:
    """Per-user composition of the four classes (Fig 17).

    ``by`` selects the quantity being decomposed: ``"jobs"`` (Fig 17a)
    or ``"gpu_hours"`` (Fig 17b).  The result is sorted by the user's
    mature fraction descending, with a ``user_percentile`` column for
    the x-axis of the paper's stacked plot.
    """
    if by not in ("jobs", "gpu_hours"):
        raise AnalysisError(f"by must be 'jobs' or 'gpu_hours', got {by!r}")
    reducer = "count" if by == "jobs" else "sum"

    if is_chunked(gpu_jobs):
        # The cross-tabulation streams as a (user, class) group-by —
        # O(users x 4) state — and pivots the small aggregate in
        # memory.  Job-count cells are exact integers, so the Fig 17a
        # fractions match the materialized pivot bit for bit.
        cells = gpu_jobs.group_by("user", "lifecycle_class").aggregate({"gpu_hours": reducer})
        if cells.num_rows == 0:
            raise AnalysisError("no jobs")
        users: list = []
        index: dict = {}
        for user in cells["user"]:
            if user not in index:
                index[user] = len(users)
                users.append(user)
        per_class = {cls: np.zeros(len(users)) for cls in LIFECYCLE_CLASSES}
        values = np.asarray(cells[f"gpu_hours_{reducer}"], dtype=float)
        for user, cls, value in zip(cells["user"], cells["lifecycle_class"], values):
            per_class[str(cls)][index[user]] = value
        user_column = np.asarray(users, dtype=object)
    else:
        if gpu_jobs.num_rows == 0:
            raise AnalysisError("no jobs")
        # One cross-tabulation computes every (user, class) cell at
        # once: job counts for Fig 17a, summed GPU hours for Fig 17b.
        # Absent combinations fill with 0, absent classes get a zero
        # column.
        pivoted = gpu_jobs.pivot("user", "lifecycle_class", "gpu_hours", reducer)
        per_class = {
            cls: (
                np.asarray(pivoted[cls], dtype=float)
                if cls in pivoted
                else np.zeros(pivoted.num_rows)
            )
            for cls in LIFECYCLE_CLASSES
        }
        user_column = pivoted["user"]

    total = np.sum(list(per_class.values()), axis=0)
    data: dict[str, np.ndarray] = {"user": user_column}
    with np.errstate(divide="ignore", invalid="ignore"):
        for cls, weights in per_class.items():
            data[f"{cls}_fraction"] = np.where(total > 0, weights / total, 0.0)
    table = Table(data)
    table = table.sort_by("mature_fraction", descending=True)
    n = table.num_rows
    percentiles = (np.arange(n) + 0.5) / n * 100.0
    return table.with_column("user_percentile", percentiles)
