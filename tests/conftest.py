"""Shared fixtures.

Dataset generation dominates test time, so the expensive fixtures are
session-scoped and shared: ``small_dataset`` for structural tests and
``medium_dataset`` for the distribution-shape tests that need more
samples.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dataset import generate_dataset
from repro.workload.generator import WorkloadConfig


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def small_dataset():
    """A tiny end-to-end dataset (~750 jobs) for structural tests."""
    return generate_dataset(WorkloadConfig(scale=0.01, seed=101))


@pytest.fixture(scope="session")
def medium_dataset():
    """A mid-size dataset (~5k GPU jobs) for shape/calibration tests."""
    return generate_dataset(WorkloadConfig(scale=0.1, seed=202))


@pytest.fixture(scope="session")
def gpu_jobs(medium_dataset):
    return medium_dataset.gpu_jobs


@pytest.fixture(scope="session")
def cpu_jobs(medium_dataset):
    return medium_dataset.jobs.filter(
        lambda t: np.asarray(t["num_gpus"]) == 0
    )
