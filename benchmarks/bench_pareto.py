"""Sec. IV: concentration of user activity."""

from repro.figures.registry import run_figure


def test_pareto_concentration(benchmark, dataset):
    result = benchmark(run_figure, "pareto", dataset)
    # shape: top users dominate submissions
    assert result.get("top 5% users' job share").measured > 0.25
    assert result.get("top 20% users' job share").measured > 0.6
