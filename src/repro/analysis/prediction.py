"""Online prediction of user behavior (paper Sec. IV takeaway).

The paper finds that even "expert" users have high within-user
variance, so "user-specific predictive resource management strategies
may not remain effective".  This module makes that claim testable: it
replays the job stream in submission order, predicts each job's
runtime / utilization from the submitting user's history with several
simple strategies, and scores the errors.

The reproducible insight: per-user predictors barely improve on a
global baseline for runtime (within-user CoV ~155 %), while
utilization is somewhat more learnable.
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass

import numpy as np

from repro.errors import AnalysisError
from repro.frame import Table

STRATEGIES = ("user_mean", "user_median", "user_last", "user_ewma", "global_median")

#: EWMA smoothing factor for the ``user_ewma`` strategy.
EWMA_ALPHA = 0.3


@dataclass(frozen=True)
class PredictionReport:
    """Accuracy of one strategy on one metric."""

    metric: str
    strategy: str
    num_predictions: int
    #: median of |prediction - actual| / actual
    median_relative_error: float
    #: mean of |log(prediction / actual)| — symmetric, scale-free
    mean_log_error: float
    #: fraction of predictions within a factor of two of the actual
    within_2x_fraction: float


class _History:
    """Per-user running state for all strategies at once.

    Kept incremental (running sum, sorted inserts, last value, EWMA)
    so a heavy user with thousands of jobs costs O(log n) per update
    rather than O(n) per prediction.
    """

    __slots__ = ("sorted_values", "total", "count", "last", "ewma")

    def __init__(self) -> None:
        self.sorted_values: list[float] = []
        self.total = 0.0
        self.count = 0
        self.last = 0.0
        self.ewma: float | None = None

    def predict(self, strategy: str, global_median: float) -> float:
        if strategy == "global_median":
            return global_median
        if strategy == "user_mean":
            return self.total / self.count
        if strategy == "user_median":
            values = self.sorted_values
            mid = len(values) // 2
            if len(values) % 2:
                return values[mid]
            return 0.5 * (values[mid - 1] + values[mid])
        if strategy == "user_last":
            return self.last
        if strategy == "user_ewma":
            assert self.ewma is not None
            return self.ewma
        raise AnalysisError(f"unknown strategy {strategy!r}")

    def update(self, value: float) -> None:
        import bisect

        bisect.insort(self.sorted_values, value)
        self.total += value
        self.count += 1
        self.last = value
        if self.ewma is None:
            self.ewma = value
        else:
            self.ewma = EWMA_ALPHA * value + (1.0 - EWMA_ALPHA) * self.ewma


def predict_user_behavior(
    gpu_jobs: Table,
    metric: str = "run_time_s",
    strategy: str = "user_mean",
    warmup: int = 3,
) -> PredictionReport:
    """Replay the job stream and score one prediction strategy.

    Predictions start after ``warmup`` prior jobs by the same user;
    the running global median serves both as the baseline strategy and
    as the cold-start value it is compared against.
    """
    from repro.analysis.streaming import is_chunked

    if strategy not in STRATEGIES:
        raise AnalysisError(f"unknown strategy {strategy!r}; choose from {STRATEGIES}")
    if warmup < 1:
        raise AnalysisError("warmup must be >= 1")
    if is_chunked(gpu_jobs):
        # The pipeline's job stream is already submit-ordered (job ids
        # ascend with submit time); the generator verifies that, so
        # the replay visits rows in exactly the order the materialized
        # sort produces and every score is bit-identical.
        def pairs():
            last_submit = -math.inf
            for chunk in gpu_jobs.chunks():
                if chunk.num_rows == 0:
                    continue
                submits = np.asarray(chunk["submit_time_s"], dtype=float)
                if submits[0] < last_submit or np.any(np.diff(submits) < 0):
                    raise AnalysisError(
                        "streaming prediction replay needs a submit-time-sorted job stream"
                    )
                last_submit = float(submits[-1])
                yield from zip(
                    list(chunk["user"]), np.asarray(chunk[metric], dtype=float)
                )

        stream = pairs()
    else:
        if gpu_jobs.num_rows == 0:
            raise AnalysisError("no jobs")
        ordered = gpu_jobs.sort_by("submit_time_s")
        stream = zip(list(ordered["user"]), np.asarray(ordered[metric], dtype=float))

    import bisect

    histories: dict[str, _History] = defaultdict(_History)
    seen_sorted: list[float] = []
    rel_errors: list[float] = []
    log_errors: list[float] = []
    within_2x = 0

    def running_median() -> float:
        mid = len(seen_sorted) // 2
        if len(seen_sorted) % 2:
            return seen_sorted[mid]
        return 0.5 * (seen_sorted[mid - 1] + seen_sorted[mid])

    for user, actual in stream:
        history = histories[user]
        if actual > 0 and history.count >= warmup and seen_sorted:
            global_median = running_median()
            prediction = history.predict(strategy, global_median)
            if prediction > 0:
                rel_errors.append(abs(prediction - actual) / actual)
                ratio = prediction / actual
                log_errors.append(abs(math.log(ratio)))
                if 0.5 <= ratio <= 2.0:
                    within_2x += 1
        history.update(float(actual))
        bisect.insort(seen_sorted, float(actual))

    if not rel_errors:
        raise AnalysisError(f"no predictions possible (warmup={warmup})")
    return PredictionReport(
        metric=metric,
        strategy=strategy,
        num_predictions=len(rel_errors),
        median_relative_error=float(np.median(rel_errors)),
        mean_log_error=float(np.mean(log_errors)),
        within_2x_fraction=within_2x / len(rel_errors),
    )


def strategy_comparison(
    gpu_jobs: Table,
    metrics: tuple[str, ...] = ("run_time_s", "sm_mean"),
    warmup: int = 3,
) -> Table:
    """Score every strategy on every metric; one row per pair."""
    rows = []
    for metric in metrics:
        for strategy in STRATEGIES:
            report = predict_user_behavior(gpu_jobs, metric, strategy, warmup)
            rows.append(
                {
                    "metric": metric,
                    "strategy": strategy,
                    "median_relative_error": report.median_relative_error,
                    "mean_log_error": report.mean_log_error,
                    "within_2x_fraction": report.within_2x_fraction,
                    "num_predictions": report.num_predictions,
                }
            )
    return Table.from_rows(rows)


def predictability_gain(comparison: Table, metric: str) -> float:
    """How much the best per-user strategy beats the global baseline.

    Returns the relative reduction in mean log error; values near zero
    reproduce the paper's "users are not predictable" conclusion.
    """
    rows = [r for r in comparison.iter_rows() if r["metric"] == metric]
    if not rows:
        raise AnalysisError(f"metric {metric!r} not in comparison table")
    baseline = next(
        (r for r in rows if r["strategy"] == "global_median"), None
    )
    if baseline is None:
        raise AnalysisError("comparison table lacks the global_median baseline")
    best = min(
        (r for r in rows if r["strategy"] != "global_median"),
        key=lambda r: r["mean_log_error"],
    )
    if baseline["mean_log_error"] == 0:
        return 0.0
    return 1.0 - best["mean_log_error"] / baseline["mean_log_error"]
