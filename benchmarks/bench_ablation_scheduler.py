"""Ablations of scheduler design choices called out in DESIGN.md.

* backfill depth — without backfill, small jobs stall behind large
  ones and CPU waits inflate;
* multi-GPU priority — without the expedited path, multi-GPU jobs
  lose their 1 s median wait.
"""

import numpy as np

from repro.cluster.spec import supercloud_spec
from repro.slurm.scheduler import SchedulerConfig, SlurmSimulator
from repro.workload.generator import WorkloadConfig, WorkloadGenerator


def _requests(scale=0.02, seed=3):
    return WorkloadGenerator(WorkloadConfig(scale=scale, seed=seed)).generate()


def _median_wait(result, gpus_predicate):
    waits = [
        r.wait_time_s for r in result.records if gpus_predicate(r.request.num_gpus)
    ]
    return float(np.median(waits))


def test_backfill_ablation(benchmark):
    requests = _requests()
    nodes = WorkloadConfig(scale=0.02).scaled_nodes

    def run_both():
        deep = SlurmSimulator(
            supercloud_spec(nodes), SchedulerConfig(backfill_depth=64)
        ).run(list(requests))
        shallow = SlurmSimulator(
            supercloud_spec(nodes), SchedulerConfig(backfill_depth=1)
        ).run(list(requests))
        return deep, shallow

    deep, shallow = benchmark.pedantic(run_both, rounds=1, iterations=1)
    deep_wait = np.mean([r.wait_time_s for r in deep.records])
    shallow_wait = np.mean([r.wait_time_s for r in shallow.records])
    # backfill never hurts average wait on this workload
    assert deep_wait <= shallow_wait + 1.0


def test_priority_ablation(benchmark):
    requests = _requests()
    nodes = WorkloadConfig(scale=0.02).scaled_nodes

    def run_both():
        with_priority = SlurmSimulator(supercloud_spec(nodes)).run(list(requests))
        without = SlurmSimulator(
            supercloud_spec(nodes),
            SchedulerConfig(multi_gpu_priority=0.0, priority_dispatch_overhead_s=3.0),
        ).run(list(requests))
        return with_priority, without

    with_priority, without = benchmark.pedantic(run_both, rounds=1, iterations=1)
    multi = lambda g: g > 1
    assert _median_wait(with_priority, multi) < _median_wait(without, multi)
