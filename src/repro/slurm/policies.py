"""Pluggable queue-priority policies.

The Supercloud of the paper ran a single FCFS-with-backfill queue plus
a priority boost for multi-GPU jobs.  For what-if studies the
simulator also supports alternative priority functions:

* :class:`FcfsPolicy` — the paper's configuration (default);
* :class:`SmallestJobFirstPolicy` — favor small GPU footprints (a
  throughput-oriented heuristic);
* :class:`FairSharePolicy` — penalise users by resources consumed so
  far (Slurm's multifactor fair-share, simplified);
* :class:`ShortestTimeLimitPolicy` — favor jobs with tight requested
  wall times (an SJF proxy using only submit-time information).

A policy maps a job request (plus scheduler state) to a priority
number; higher runs earlier.  All policies preserve the multi-GPU
boost so the Sec. V wait-time behavior stays comparable.
"""

from __future__ import annotations

from collections import defaultdict

from repro.slurm.job import JobRequest


class PriorityPolicy:
    """Interface: assign a priority to a request at submit time."""

    #: boost applied to multi-GPU jobs on top of the base priority
    multi_gpu_boost: float = 10.0

    def base_priority(self, request: JobRequest) -> float:
        raise NotImplementedError

    def priority(self, request: JobRequest) -> float:
        boost = self.multi_gpu_boost if request.num_gpus > 1 else 0.0
        return self.base_priority(request) + boost

    def observe_completion(self, request: JobRequest, gpu_hours: float) -> None:
        """Hook for stateful policies (fair share); default: ignore."""


class FcfsPolicy(PriorityPolicy):
    """First-come first-served: every job has the same base priority."""

    def base_priority(self, request: JobRequest) -> float:
        return 0.0


class SmallestJobFirstPolicy(PriorityPolicy):
    """Fewer GPUs first; CPU-only jobs rank below all GPU jobs.

    The multi-GPU boost is disabled — it would contradict the policy.
    """

    multi_gpu_boost = 0.0

    def base_priority(self, request: JobRequest) -> float:
        if request.num_gpus == 0:
            return -100.0
        return -float(request.num_gpus)


class ShortestTimeLimitPolicy(PriorityPolicy):
    """Tighter requested wall time runs earlier (SJF on declared time).

    Scaled so that the difference between a 1-hour and a 24-hour
    request stays below the multi-GPU boost.
    """

    def base_priority(self, request: JobRequest) -> float:
        hours = request.time_limit_s / 3600.0
        return -min(hours, 96.0) / 96.0 * 9.0


class FairSharePolicy(PriorityPolicy):
    """Users pay for GPU hours already consumed.

    ``half_decay_gpu_hours`` sets how many consumed GPU hours halve a
    user's priority weight; the effect saturates so no user starves.
    """

    def __init__(self, half_decay_gpu_hours: float = 100.0) -> None:
        self._consumed: dict[str, float] = defaultdict(float)
        self._pending_sync: dict[str, float] = defaultdict(float)
        self.half_decay_gpu_hours = half_decay_gpu_hours

    def base_priority(self, request: JobRequest) -> float:
        consumed = self._consumed[request.user]
        # 0 for the heaviest consumers, up to +5 for untouched users
        share = 0.5 ** (consumed / self.half_decay_gpu_hours)
        return 5.0 * share

    def observe_completion(self, request: JobRequest, gpu_hours: float) -> None:
        self._consumed[request.user] += gpu_hours
        self._pending_sync[request.user] += gpu_hours

    # -- cross-partition synchronisation (see repro.slurm.interchange) --
    def drain_usage(self) -> dict[str, float]:
        """Per-user GPU hours consumed since the last drain.

        The partitioned runner collects these deltas from every island
        at each interchange epoch and merges them into the global
        ledger, so fair-share decisions lag reality by at most one
        epoch.
        """
        delta = {user: hours for user, hours in self._pending_sync.items() if hours}
        self._pending_sync.clear()
        return delta

    def set_usage(self, totals: dict[str, float]) -> None:
        """Replace the ledger with globally merged per-user totals."""
        self._consumed = defaultdict(float, totals)


POLICIES = {
    "fcfs": FcfsPolicy,
    "smallest_first": SmallestJobFirstPolicy,
    "shortest_limit": ShortestTimeLimitPolicy,
    "fair_share": FairSharePolicy,
}


def make_policy(name: str) -> PriorityPolicy:
    """Instantiate a policy by registry name."""
    if name not in POLICIES:
        raise KeyError(f"unknown policy {name!r}; choose from {sorted(POLICIES)}")
    return POLICIES[name]()
