"""Monitoring substrate: the simulated nvidia-smi / Slurm telemetry path.

Mirrors the paper's data-collection design (Sec. II):

* a prolog starts per-node samplers when a job starts;
* GPU metrics are sampled at 100 ms, CPU metrics at 10 s;
* samples land in per-node local buffers (never the shared FS);
* an epilog stops sampling and copies data to the central store;
* production jobs keep only min/mean/max summaries; a subset keeps
  the full time series (the paper's 2,149-job / 42 GB dataset).

The sampler consumes any object implementing the
:class:`~repro.monitor.nvidia_smi.ActivityModel` protocol — the
calibrated models live in :mod:`repro.workload.activity`.

Sampling is *deferred*: epilogs record the cheap ordered facts (RNG
draws, CPU summary) and enqueue
:class:`~repro.monitor.sampling.SamplingTask` objects; the expensive
activity-model evaluation runs after the simulation — optionally
across a process pool — with bit-for-bit identical output
(:mod:`repro.monitor.sampling`).
"""

from repro.monitor.codec import compression_ratio, load_store, save_store
from repro.monitor.collector import MonitoringCollector, MonitoringConfig
from repro.monitor.cpu_sampler import CpuSampler
from repro.monitor.nvidia_smi import ActivityModel, NvidiaSmiSampler
from repro.monitor.overhead import interval_tradeoff, monitoring_volume
from repro.monitor.sampling import (
    SamplingPlan,
    SamplingResult,
    SamplingTask,
    evaluate_task,
    run_sampling,
)
from repro.monitor.timeseries import (
    METRIC_NAMES,
    GpuTimeSeries,
    SpilledTimeSeriesStore,
    TimeSeriesStore,
)

__all__ = [
    "METRIC_NAMES",
    "ActivityModel",
    "CpuSampler",
    "GpuTimeSeries",
    "MonitoringCollector",
    "MonitoringConfig",
    "NvidiaSmiSampler",
    "SamplingPlan",
    "SamplingResult",
    "SamplingTask",
    "SpilledTimeSeriesStore",
    "TimeSeriesStore",
    "compression_ratio",
    "evaluate_task",
    "interval_tradeoff",
    "load_store",
    "monitoring_volume",
    "run_sampling",
    "save_store",
]
