"""Fig 5: utilization conditioned on submission interface."""

from repro.figures.registry import run_figure


def test_fig05_interface_conditioning(benchmark, dataset):
    result = benchmark(run_figure, "fig05", dataset)
    # shape: interface mix near the paper's 1/30/4/65 split
    assert result.get("other job share").measured > 0.5
    assert result.get("map-reduce job share").measured < 0.05
