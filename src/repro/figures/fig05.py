"""Fig 5: SM and memory utilization by job interface type.

Like fig03/fig04, this producer reads the job tables only through
streaming-safe verbs — ``value_counts`` for the interface shares,
``filter`` + :func:`~repro.analysis.stats.column_ecdf` for the
per-interface distributions — so it accepts either the materialized
dataset or ``dataset.streaming_view()``.  Shares are integer-count
ratios and therefore bit-identical on both paths; the CDFs are exact
on a :class:`~repro.frame.Table` and one-pass quantile sketches on a
:class:`~repro.frame.ChunkedTable`.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.stats import column_ecdf
from repro.dataset import SupercloudDataset
from repro.figures.base import Comparison, FigureResult
from repro.slurm.job import INTERFACE_TYPES

#: Job shares per interface reported by the paper.
PAPER_SHARES = {"map-reduce": 0.01, "batch": 0.30, "interactive": 0.04, "other": 0.65}


def run(dataset: SupercloudDataset) -> FigureResult:
    """Utilization CDFs conditioned on submission interface."""
    gpu = dataset.gpu_jobs

    # One pass for the shares: integer counts divide exactly like the
    # materialized ``(interfaces == x).mean()``, so streaming and
    # in-memory runs report bit-identical share comparisons.
    counts = {interface: 0 for interface in INTERFACE_TYPES}
    interface_counts = gpu.value_counts("interface")
    for value, count in zip(
        interface_counts["interface"], interface_counts["count"]
    ):
        counts[str(value)] = int(count)
    total = sum(counts.values())

    series: dict[str, object] = {}
    medians: dict[str, float] = {}
    comparisons = []
    for interface in INTERFACE_TYPES:
        share = counts[interface] / total if total else 0.0
        comparisons.append(
            Comparison(f"{interface} job share", PAPER_SHARES[interface], share)
        )
        if counts[interface]:
            sub = gpu.filter(
                lambda t, i=interface: np.asarray(t["interface"]) == i
            )
            sm = column_ecdf(sub, "sm_mean")
            mem = column_ecdf(sub, "mem_bw_mean")
            series[f"sm_{interface}"] = sm
            series[f"mem_{interface}"] = mem
            medians[interface] = sm.median()

    # Ordering claim: "other" jobs have the highest SM utilization,
    # followed by batch; map-reduce and interactive are lowest.
    ordered = all(
        medians.get("other", 0.0) >= medians.get(k, 0.0)
        for k in ("batch", "interactive", "map-reduce")
    ) and medians.get("batch", 0.0) >= max(
        medians.get("interactive", 0.0), medians.get("map-reduce", 0.0)
    )
    comparisons.append(
        Comparison("SM ordering other>batch>interactive/map-reduce holds", 1.0, float(ordered))
    )
    return FigureResult(
        figure_id="fig05",
        title="Utilization by interface type",
        series=series,
        comparisons=comparisons,
        notes=f"per-interface SM medians: { {k: round(v, 1) for k, v in medians.items()} }",
    )
