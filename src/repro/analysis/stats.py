"""Statistical primitives used throughout the characterization.

The paper presents almost everything as empirical CDFs, coefficients
of variation, and Spearman rank correlations; these are implemented
here once and reused by every figure module.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import AnalysisError


@dataclass(frozen=True)
class Ecdf:
    """An empirical CDF: ``values`` sorted ascending, ``probabilities``
    the fraction of samples <= the value."""

    values: np.ndarray
    probabilities: np.ndarray

    @property
    def num_samples(self) -> int:
        return len(self.values)

    def evaluate(self, x: float | np.ndarray) -> float | np.ndarray:
        """P(sample <= x)."""
        out = np.searchsorted(self.values, np.asarray(x), side="right") / max(len(self.values), 1)
        if np.ndim(x) == 0:
            return float(out)
        return out

    def quantile(self, p: float) -> float:
        """Inverse CDF at probability ``p`` (linear interpolation)."""
        if not 0.0 <= p <= 1.0:
            raise AnalysisError(f"probability {p} outside [0, 1]")
        return float(np.quantile(self.values, p))

    def fraction_above(self, threshold: float) -> float:
        """P(sample > threshold)."""
        return 1.0 - float(self.evaluate(threshold))

    def median(self) -> float:
        return self.quantile(0.5)


def ecdf(values) -> Ecdf:
    """Build an :class:`Ecdf`, dropping NaNs."""
    arr = np.asarray(values, dtype=float)
    arr = arr[np.isfinite(arr)]
    if arr.size == 0:
        raise AnalysisError("cannot build an ECDF from zero finite samples")
    ordered = np.sort(arr)
    probs = np.arange(1, ordered.size + 1) / ordered.size
    return Ecdf(ordered, probs)


def column_ecdf(source, name: str, *, transform=None, k: int | None = None):
    """The distribution of one column, exact or sketched by source type.

    For a materialized :class:`~repro.frame.Table` this is the exact
    :func:`ecdf` of the column; for a
    :class:`~repro.frame.ChunkedTable` it is a one-pass
    :class:`~repro.frame.QuantileSketch` (same query surface:
    ``values``/``probabilities``/``evaluate``/``quantile``/``median``/
    ``fraction_above``), so figure code can consume either without
    branching.  ``transform`` is applied vectorized per chunk (e.g.
    seconds to minutes); non-finite samples are dropped on both paths.
    """
    from repro.frame import DEFAULT_SKETCH_K, ChunkedTable, QuantileSketch

    if isinstance(source, ChunkedTable):
        sketch = QuantileSketch(k=DEFAULT_SKETCH_K if k is None else k)
        for chunk in source.chunks():
            arr = np.asarray(chunk.column(name), dtype=float)
            if transform is not None:
                arr = transform(arr)
            sketch.update(arr)
        if sketch.num_samples == 0:
            raise AnalysisError("cannot build an ECDF from zero finite samples")
        return sketch
    arr = np.asarray(source.column(name), dtype=float)
    if transform is not None:
        arr = transform(arr)
    return ecdf(arr)


def column_fraction(source, name: str, predicate) -> float:
    """The exact mean of a boolean predicate over one column.

    ``predicate`` maps a float array to a boolean array.  Streaming a
    :class:`~repro.frame.ChunkedTable` accumulates integer true/total
    counts, so the result is bit-for-bit the materialized
    ``predicate(column).mean()``.
    """
    from repro.frame import ChunkedTable

    if isinstance(source, ChunkedTable):
        true_count = 0
        total = 0
        for chunk in source.chunks():
            hits = np.asarray(predicate(np.asarray(chunk.column(name), dtype=float)))
            true_count += int(hits.sum())
            total += int(hits.size)
        if total == 0:
            raise AnalysisError("cannot take a fraction of zero samples")
        return true_count / total
    hits = np.asarray(predicate(np.asarray(source.column(name), dtype=float)))
    if hits.size == 0:
        raise AnalysisError("cannot take a fraction of zero samples")
    return float(hits.mean())


def coefficient_of_variation(values) -> float:
    """Standard deviation as a fraction of the mean (paper's CoV).

    The paper reports CoV as a percentage; we return a fraction
    (1.26 == "126%").  Zero-mean input has undefined CoV and returns
    NaN rather than raising, since per-user aggregation routinely hits
    all-zero utilization groups.
    """
    arr = np.asarray(values, dtype=float)
    arr = arr[np.isfinite(arr)]
    if arr.size == 0:
        return float("nan")
    mean = arr.mean()
    if mean == 0:
        return float("nan")
    return float(arr.std(ddof=0) / abs(mean))


def spearman(x, y) -> tuple[float, float]:
    """Spearman rank correlation and p-value.

    Implemented directly (rank + Pearson + t-test) so the library has
    no hidden dependency on scipy.stats for its core path; scipy is
    used only for the p-value's t CDF.
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.shape != y.shape:
        raise AnalysisError(f"shape mismatch: {x.shape} vs {y.shape}")
    mask = np.isfinite(x) & np.isfinite(y)
    x, y = x[mask], y[mask]
    n = x.size
    if n < 3:
        raise AnalysisError(f"need >= 3 paired samples, got {n}")
    rx = _rank(x)
    ry = _rank(y)
    rho = _pearson(rx, ry)
    # t-distribution approximation for the p-value
    from scipy import stats as _scipy_stats

    if abs(rho) >= 1.0:
        return float(np.sign(rho)), 0.0
    t = rho * np.sqrt((n - 2) / (1.0 - rho * rho))
    p = 2.0 * float(_scipy_stats.t.sf(abs(t), df=n - 2))
    return float(rho), p


def _rank(values: np.ndarray) -> np.ndarray:
    """Average ranks (ties share the mean of their positions)."""
    order = np.argsort(values, kind="stable")
    ranks = np.empty(len(values), dtype=float)
    ranks[order] = np.arange(1, len(values) + 1, dtype=float)
    # average ties
    sorted_vals = values[order]
    i = 0
    while i < len(sorted_vals):
        j = i
        while j + 1 < len(sorted_vals) and sorted_vals[j + 1] == sorted_vals[i]:
            j += 1
        if j > i:
            mean_rank = (i + j) / 2.0 + 1.0
            ranks[order[i : j + 1]] = mean_rank
        i = j + 1
    return ranks


def _pearson(x: np.ndarray, y: np.ndarray) -> float:
    xc = x - x.mean()
    yc = y - y.mean()
    denom = np.sqrt((xc * xc).sum() * (yc * yc).sum())
    if denom == 0:
        return 0.0
    return float((xc * yc).sum() / denom)


def quantiles(values, probs=(0.25, 0.5, 0.75)) -> dict[float, float]:
    """Convenience: several quantiles at once, NaNs dropped."""
    arr = np.asarray(values, dtype=float)
    arr = arr[np.isfinite(arr)]
    if arr.size == 0:
        raise AnalysisError("cannot take quantiles of zero finite samples")
    return {float(p): float(np.quantile(arr, p)) for p in probs}


def gini(values) -> float:
    """Gini coefficient of a non-negative distribution (used for the
    Pareto-principle framing of user activity)."""
    arr = np.sort(np.asarray(values, dtype=float))
    if (arr < 0).any():
        raise AnalysisError("Gini is defined for non-negative values")
    if arr.size == 0 or arr.sum() == 0:
        return 0.0
    n = arr.size
    index = np.arange(1, n + 1)
    return float((2.0 * (index * arr).sum() - (n + 1) * arr.sum()) / (n * arr.sum()))
