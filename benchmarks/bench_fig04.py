"""Fig 4: average GPU resource and PCIe utilization CDFs."""

from repro.figures.registry import run_figure


def test_fig04_utilization_cdfs(benchmark, dataset):
    result = benchmark(run_figure, "fig04", dataset)
    # shape: SM > memory-size > memory-BW medians; low utilization overall
    sm = result.get("SM util median").measured
    mem = result.get("memory util median").measured
    assert sm > mem
    assert result.get("jobs with SM util >50%").measured < 0.5
