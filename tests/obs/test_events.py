"""Flight recorder: ring bounding, spill, cross-process merge, JSONL."""

from __future__ import annotations

import multiprocessing

import pytest

from repro.obs import runtime
from repro.obs.events import (
    DEFAULT_CAPACITY,
    EventRecord,
    FlightRecorder,
    NULL_RECORDER,
    read_jsonl,
    summarize_events,
)


def test_emit_stamps_time_pid_and_island():
    import os

    recorder = FlightRecorder(island=3)
    recorder.emit("cache", category="cache", kind="hit")
    (event,) = recorder.events()
    assert event.name == "cache"
    assert event.category == "cache"
    assert event.island == 3
    assert event.pid == os.getpid()
    assert event.wall_us > 0
    assert event.mono_ns > 0
    assert event.attrs == {"kind": "hit"}


def test_emit_island_attr_overrides_recorder_island():
    recorder = FlightRecorder(island=0)
    recorder.emit("island.epoch", island=7, epoch=2)
    (event,) = recorder.events()
    assert event.island == 7
    assert event.attrs == {"epoch": 2}  # island is a stamp, not an attr


def test_ring_stays_bounded_and_counts_drops():
    recorder = FlightRecorder(capacity=4)
    for index in range(10):
        recorder.emit("e", index=index)
    assert len(recorder) == 4
    assert recorder.dropped == 6
    assert [e.attrs["index"] for e in recorder.events()] == [6, 7, 8, 9]


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        FlightRecorder(capacity=0)


def test_eviction_spills_to_jsonl(tmp_path):
    spill = tmp_path / "spill.jsonl"
    recorder = FlightRecorder(capacity=2, spill_path=spill)
    for index in range(5):
        recorder.emit("e", index=index)
    assert recorder.spilled == 3
    assert recorder.dropped == 0
    spilled = list(read_jsonl(spill))
    assert [e.attrs["index"] for e in spilled] == [0, 1, 2]
    assert [e.attrs["index"] for e in recorder.events()] == [3, 4]


def test_tail_returns_most_recent_events():
    recorder = FlightRecorder()
    for index in range(30):
        recorder.emit("e", index=index)
    tail = recorder.tail(5)
    assert [e.attrs["index"] for e in tail] == [25, 26, 27, 28, 29]
    assert len(recorder.tail(100)) == 30


def test_payload_round_trip():
    recorder = FlightRecorder(island=1)
    recorder.emit("stage", category="pipeline", stage="workload", rows=10)
    (payload,) = recorder.drain_payload()
    assert len(recorder) == 0  # drain clears the ring
    twin = EventRecord.from_payload(payload)
    assert twin.name == "stage"
    assert twin.category == "pipeline"
    assert twin.island == 1
    assert twin.attrs == {"stage": "workload", "rows": 10}


def test_adopt_merges_sorted_on_wall_clock():
    parent = FlightRecorder()
    worker = FlightRecorder(island=2)
    parent.emit("first")
    worker.emit("second")
    parent.emit("third")
    adopted = parent.adopt(worker.drain_payload())
    assert adopted == 1
    names = [e.name for e in parent.events()]
    assert names == ["first", "second", "third"]
    assert parent.events()[1].island == 2


def test_adopt_rebounds_to_capacity():
    parent = FlightRecorder(capacity=3)
    worker = FlightRecorder(island=0)
    for index in range(3):
        parent.emit("p", index=index)
    for index in range(3):
        worker.emit("w", index=index)
    parent.adopt(worker.drain_payload())
    assert len(parent) == 3
    assert parent.dropped == 3
    assert [e.name for e in parent.events()] == ["w"] * 3


def test_adopt_empty_payload_is_a_noop():
    parent = FlightRecorder()
    parent.emit("only")
    assert parent.adopt([]) == 0
    assert len(parent) == 1


def test_span_closed_mirrors_span_into_ring():
    from repro.obs.trace import Tracer

    tracer = Tracer()
    recorder = FlightRecorder()
    tracer.listener = recorder.span_closed
    with tracer.span("workload", category="pipeline", rows=42):
        pass
    (event,) = recorder.events()
    assert event.name == "span:workload"
    assert event.category == "pipeline"
    assert event.attrs["rows"] == 42
    assert event.attrs["duration_us"] >= 0


def test_write_jsonl_round_trip(tmp_path):
    path = tmp_path / "events.jsonl"
    recorder = FlightRecorder(island=4)
    recorder.emit("a", category="x", value=1)
    recorder.emit("b", category="y", value=2)
    recorder.write_jsonl(path)
    assert len(recorder) == 2  # non-draining copy
    loaded = list(read_jsonl(path))
    assert [(e.name, e.category, e.island) for e in loaded] == [
        ("a", "x", 4),
        ("b", "y", 4),
    ]
    recorder.write_jsonl(path, drain=True)
    assert len(recorder) == 0
    assert len(list(read_jsonl(path))) == 4  # appends


def test_null_recorder_is_inert():
    assert NULL_RECORDER.enabled is False
    NULL_RECORDER.emit("anything", category="x", a=1)
    assert NULL_RECORDER.events() == []
    assert NULL_RECORDER.drain_payload() == []
    assert NULL_RECORDER.adopt([{"name": "x", "wall_us": 1}]) == 0
    assert len(NULL_RECORDER) == 0


def test_record_event_routes_through_ambient_runtime():
    recorder = FlightRecorder()
    with runtime.use(None, None, recorder):
        runtime.record_event("hello", category="test", n=1)
    runtime.record_event("dropped-after-scope", category="test")
    (event,) = recorder.events()
    assert event.name == "hello"
    assert runtime.get_recorder() is NULL_RECORDER


def test_default_capacity_is_sane():
    recorder = FlightRecorder()
    assert recorder.capacity == DEFAULT_CAPACITY


def _fork_worker(island: int, conn) -> None:
    recorder = FlightRecorder(island=island)
    for epoch in range(3):
        recorder.emit("island.epoch", category="interchange", epoch=epoch)
    conn.send(recorder.drain_payload())
    conn.close()


def test_drain_and_merge_across_fork_workers():
    """Worker rings merge into one parent timeline, stamps intact."""
    ctx = multiprocessing.get_context("fork")
    parent = FlightRecorder()
    parent.emit("parent.start")
    conns = []
    procs = []
    for island in range(2):
        recv, send = ctx.Pipe(duplex=False)
        proc = ctx.Process(target=_fork_worker, args=(island, send))
        proc.start()
        send.close()
        conns.append(recv)
        procs.append(proc)
    for conn in conns:
        parent.adopt(conn.recv())
        conn.close()
    for proc in procs:
        proc.join()
        assert proc.exitcode == 0
    events = parent.events()
    assert len(events) == 1 + 2 * 3
    assert {e.island for e in events if e.island is not None} == {0, 1}
    pids = {e.pid for e in events}
    assert len(pids) == 3  # parent + two workers
    assert [e.wall_us for e in events] == sorted(e.wall_us for e in events)
    summary = summarize_events(events)
    assert "2 island(s)" in summary
    assert "3 process(es)" in summary


def test_summarize_events_empty():
    assert "no events" in summarize_events([])
