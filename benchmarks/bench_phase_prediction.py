"""Sec. III follow-on: predicting idle GPU phases for co-location."""

from repro.analysis.features import predictor_study


def test_idle_phase_prediction(benchmark, dataset):
    scores, accuracy, skill = benchmark(
        predictor_study, dataset.timeseries, 60.0, 100
    )
    # phases mostly outlast a one-minute horizon: prediction is viable
    assert accuracy > 0.75
    assert len(scores) > 5
