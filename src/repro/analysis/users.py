"""Per-user aggregation (Fig 10, Fig 11) and the Pareto statistics (Sec. IV).

The paper aggregates every job statistic twice: pooled over jobs, and
per user (mean and CoV across a user's jobs).  :func:`user_table`
builds the per-user view once; figure modules read columns off it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.stats import gini
from repro.analysis.streaming import is_chunked
from repro.errors import AnalysisError
from repro.frame import Table

#: Job columns averaged per user, with short output names.
USER_METRICS = {
    "run_time_s": "runtime",
    "sm_mean": "sm",
    "mem_bw_mean": "mem_bw",
    "mem_size_mean": "mem_size",
}


def user_table(gpu_jobs: Table) -> Table:
    """One row per user: job count, GPU hours, mean and CoV of each metric.

    Runs entirely on the vectorized ``aggregate`` kernels (one grouped
    pass computing count/sum/mean/std for every metric) instead of a
    per-user Python ``apply``; the CoV is then ``std / |mean|`` across
    all users at once, NaN where the mean is zero (same convention as
    :func:`repro.analysis.stats.coefficient_of_variation` — pipeline
    metrics are finite by construction, so no filtering is needed).

    A chunked ``gpu_jobs`` dispatches to the streaming group-by — the
    same spec and output naming, O(users) state — so the per-user view
    never materializes the job stream.  Job counts stay exact;
    mean/std fold chunk partials (deterministic for a fixed chunking).
    """
    if not is_chunked(gpu_jobs) and gpu_jobs.num_rows == 0:
        raise AnalysisError("no jobs to aggregate")

    spec: dict[str, list[str]] = {"gpu_hours": ["count", "sum"]}
    for column in USER_METRICS:
        spec[column] = ["mean", "std"]
    aggregated = gpu_jobs.group_by("user").aggregate(spec)
    if aggregated.num_rows == 0:
        raise AnalysisError("no jobs to aggregate")

    data: dict[str, np.ndarray] = {
        "user": aggregated["user"],
        "num_jobs": aggregated["gpu_hours_count"],
        "gpu_hours": aggregated["gpu_hours_sum"],
    }
    for column, name in USER_METRICS.items():
        means = np.asarray(aggregated[f"{column}_mean"], dtype=float)
        stds = np.asarray(aggregated[f"{column}_std"], dtype=float)
        with np.errstate(divide="ignore", invalid="ignore"):
            cov = np.where(means == 0.0, np.nan, stds / np.abs(means))
        data[f"avg_{name}"] = means
        data[f"cov_{name}"] = cov
    return Table(data)


@dataclass(frozen=True)
class ParetoStats:
    """Concentration of job submissions across users (Sec. IV)."""

    num_users: int
    median_jobs_per_user: float
    top5pct_job_share: float
    top20pct_job_share: float
    gini_coefficient: float


def pareto_stats(users: Table) -> ParetoStats:
    """The "top few users submit most jobs" statistics."""
    counts = np.sort(np.asarray(users["num_jobs"], dtype=float))[::-1]
    if counts.size == 0:
        raise AnalysisError("no users")
    total = counts.sum()
    k5 = max(1, int(round(0.05 * counts.size)))
    k20 = max(1, int(round(0.20 * counts.size)))
    return ParetoStats(
        num_users=int(counts.size),
        median_jobs_per_user=float(np.median(counts)),
        top5pct_job_share=float(counts[:k5].sum() / total),
        top20pct_job_share=float(counts[:k20].sum() / total),
        gini_coefficient=gini(counts),
    )
