"""Analytic queueing cross-check and capacity answers."""

from repro.analysis.queueing import required_gpus_for_wait, workload_parameters


def test_queueing_capacity_answer(benchmark, dataset):
    params = benchmark(workload_parameters, dataset.gpu_jobs)
    servers = required_gpus_for_wait(
        params["arrival_rate_per_s"],
        params["mean_service_s"],
        params["service_scv"],
        target_wait_s=60.0,
    )
    # the analytic answer stays below the provisioned fleet — the
    # paper's over-provisioning claim in closed form
    assert servers <= dataset.spec.total_gpus
