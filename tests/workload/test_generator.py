"""Structural tests for the workload generator."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workload.generator import WorkloadConfig, WorkloadGenerator


@pytest.fixture(scope="module")
def requests():
    return WorkloadGenerator(WorkloadConfig(scale=0.02, seed=9)).generate()


@pytest.fixture(scope="module")
def gpu_requests(requests):
    return [r for r in requests if r.num_gpus > 0]


class TestConfig:
    def test_scale_bounds(self):
        with pytest.raises(WorkloadError):
            WorkloadConfig(scale=0.0)
        with pytest.raises(WorkloadError):
            WorkloadConfig(scale=101.0)

    def test_scale_above_one_grows_the_trace(self):
        config = WorkloadConfig(scale=2.0)
        assert config.scaled_gpu_jobs == 103000
        assert config.scaled_nodes == 448
        # users grow sub-linearly: sqrt(2) * 191
        assert config.scaled_users == 270

    def test_scaled_sizes(self):
        config = WorkloadConfig(scale=0.5)
        assert config.scaled_gpu_jobs == 25750
        assert config.scaled_nodes == 112
        assert 12 <= config.scaled_users <= 191

    def test_full_scale_matches_paper(self):
        config = WorkloadConfig(scale=1.0)
        assert config.scaled_gpu_jobs == 51500
        assert config.scaled_users == 191
        assert config.scaled_nodes == 224
        # 51,500 raw GPU jobs * (1 - 8.5% short) ~= 47,120 analyzed
        assert config.scaled_gpu_jobs * 0.915 == pytest.approx(47120, rel=0.01)

    def test_cpu_jobs_can_be_disabled(self):
        config = WorkloadConfig(scale=0.1, include_cpu_jobs=False)
        assert config.scaled_cpu_jobs == 0


class TestGenerateStructure:
    def test_sorted_by_submit_time(self, requests):
        times = [r.submit_time_s for r in requests]
        assert times == sorted(times)

    def test_job_ids_sequential(self, requests):
        assert [r.job_id for r in requests] == list(range(len(requests)))

    def test_contains_cpu_and_gpu_jobs(self, requests):
        kinds = {r.num_gpus > 0 for r in requests}
        assert kinds == {True, False}

    def test_submit_times_within_study(self, requests):
        duration = WorkloadConfig(scale=0.02).duration_s
        assert all(0.0 <= r.submit_time_s <= duration for r in requests)

    def test_gpu_jobs_have_activity_models(self, gpu_requests):
        for request in gpu_requests:
            model = request.tags.get("activity")
            assert model is not None
            assert model.num_gpus == request.num_gpus

    def test_cpu_jobs_request_whole_nodes(self, requests):
        cpu = [r for r in requests if r.num_gpus == 0]
        assert all(r.cores == 40 for r in cpu)

    def test_gpu_jobs_request_few_cores(self, gpu_requests):
        assert all(r.cores <= 16 for r in gpu_requests)

    def test_cores_cover_gpus(self, gpu_requests):
        assert all(r.cores >= r.num_gpus for r in gpu_requests)

    def test_ide_jobs_exceed_their_limit(self, gpu_requests):
        ide = [r for r in gpu_requests if r.intended_class == "ide" and not r.tags["short"]]
        assert ide, "generator produced no IDE jobs"
        assert all(r.runtime_s > r.time_limit_s for r in ide)

    def test_non_ide_jobs_fit_their_limit(self, gpu_requests):
        rest = [r for r in gpu_requests if r.intended_class != "ide"]
        assert all(r.runtime_s <= r.time_limit_s for r in rest)

    def test_short_jobs_flagged_and_short(self, gpu_requests):
        short = [r for r in gpu_requests if r.tags["short"]]
        assert short
        assert all(r.runtime_s < 30.0 for r in short)
        assert all(r.intended_class == "development" for r in short)

    def test_bottlenecks_only_on_active_classes(self, gpu_requests):
        for request in gpu_requests:
            if request.tags["bottlenecks"]:
                assert request.intended_class in ("mature", "exploratory")

    def test_deterministic_given_seed(self):
        a = WorkloadGenerator(WorkloadConfig(scale=0.01, seed=3)).generate()
        b = WorkloadGenerator(WorkloadConfig(scale=0.01, seed=3)).generate()
        assert len(a) == len(b)
        assert all(
            (x.user, x.submit_time_s, x.runtime_s, x.num_gpus)
            == (y.user, y.submit_time_s, y.runtime_s, y.num_gpus)
            for x, y in zip(a, b)
        )

    def test_different_seeds_differ(self):
        a = WorkloadGenerator(WorkloadConfig(scale=0.01, seed=3)).generate()
        b = WorkloadGenerator(WorkloadConfig(scale=0.01, seed=4)).generate()
        assert any(
            x.runtime_s != y.runtime_s for x, y in zip(a, b)
        )


class TestArrivalProcess:
    def test_deadline_surge_increases_rate(self):
        generator = WorkloadGenerator(WorkloadConfig(scale=0.05, seed=5))
        requests = generator.generate()
        days = np.asarray([r.submit_time_s / 86400.0 for r in requests])
        surge = ((days >= 20.0) & (days < 27.0)).sum() / 7.0
        baseline = ((days >= 40.0) & (days < 75.0)).sum() / 35.0
        assert surge > 1.3 * baseline

    def test_weekends_quieter(self):
        generator = WorkloadGenerator(WorkloadConfig(scale=0.05, seed=5))
        requests = generator.generate()
        day_index = np.asarray([int(r.submit_time_s // 86400.0) for r in requests])
        weekend = np.isin(day_index % 7, (5, 6))
        weekend_rate = weekend.sum() / 2.0
        weekday_rate = (~weekend).sum() / 5.0
        assert weekend_rate < weekday_rate
