"""The collector tying the monitors into the scheduler's prolog/epilog.

At job start the prolog notes the placement; at job end the epilog
records everything *ordered* about the job — the CPU summary, the
keep-series decision, and the stratified sample offsets, all drawn
from the collector RNG in job-completion order — and enqueues the
expensive activity-model evaluation as a
:class:`~repro.monitor.sampling.SamplingTask`.  :meth:`flush`
evaluates the queue after the simulation (optionally across a process
pool) and lands min/mean/max summary rows (one per GPU) plus the dense
series subset, reproducing the paper's 2,149-job detailed dataset with
bit-for-bit the output of the old inline epilog.

The activity model travels on the job request under
``request.tags["activity"]`` so the monitoring substrate stays
decoupled from the workload generator.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.errors import MonitoringError
from repro.frame import Table, TableBuilder
from repro.monitor.cpu_sampler import CpuSampler
from repro.monitor.nvidia_smi import NvidiaSmiSampler
from repro.monitor.sampling import SamplingPlan, SamplingTask, run_sampling
from repro.monitor.timeseries import METRIC_NAMES, TimeSeriesStore
from repro.slurm.job import JobRecord, JobRequest


@dataclass
class MonitoringConfig:
    """Knobs of the telemetry pipeline (paper Sec. II defaults)."""

    gpu_interval_s: float = 0.1
    cpu_interval_s: float = 10.0
    #: Stratified samples used for production summaries.
    summary_samples: int = 256
    #: Fraction of GPU jobs that keep a dense series (2149 / 47120).
    timeseries_fraction: float = 2149.0 / 47120.0
    #: Dense series are decimated beyond this many samples per GPU.
    timeseries_max_samples: int = 20000
    #: When set, per-GPU summary rows rotate into sealed chunks of this
    #: many rows as sampling flushes (the streaming path for
    #: :meth:`MonitoringCollector.per_gpu_chunked`).  ``None`` keeps the
    #: single-builder behavior; either way :meth:`per_gpu_table` returns
    #: bit-identical rows.
    summary_chunk_rows: int | None = None
    seed: int = 20220402


class MonitoringCollector:
    """Collects summaries and dense series as jobs finish.

    GPU sampling is deferred: epilogs enqueue tasks, :meth:`flush`
    evaluates them (``workers > 1`` shards the queue across a process
    pool).  Every dataset accessor flushes serially first, so callers
    that never learned about deferral still see the finished tables.
    """

    def __init__(self, config: MonitoringConfig | None = None) -> None:
        self.config = config or MonitoringConfig()
        if not 0.0 <= self.config.timeseries_fraction <= 1.0:
            raise MonitoringError("timeseries_fraction must be in [0, 1]")
        self._rng = np.random.default_rng(self.config.seed)
        self._gpu_sampler = NvidiaSmiSampler(
            self.config.gpu_interval_s, self.config.summary_samples
        )
        self._cpu_sampler = CpuSampler(self.config.cpu_interval_s)
        self._plan = SamplingPlan(
            gpu_interval_s=self.config.gpu_interval_s,
            timeseries_max_samples=self.config.timeseries_max_samples,
        )
        self._store = TimeSeriesStore()
        self._gpu_builder = TableBuilder(columns=["job_id", "gpu_index"])
        self._gpu_chunks: list[Table] = []
        self._cpu_builder = TableBuilder(columns=["job_id"])
        self._started: dict[int, tuple[float, tuple[int, ...]]] = {}
        self._pending: list[SamplingTask] = []
        #: Seal threshold actually in force — starts at the config value
        #: and may be tightened at runtime by :meth:`enable_spill`
        #: without touching the config (the config participates in
        #: dataset cache keys; spilling must not change them).
        self._seal_rows = self.config.summary_chunk_rows
        self._spill_dir: Path | None = None
        self._spill_runs: list[Path] = []
        self._spill_codec = None

    # ------------------------------------------------------------------
    # Scheduler hooks
    # ------------------------------------------------------------------
    def prolog(self, request: JobRequest, start_time_s: float, nodes: tuple[int, ...]) -> None:
        """Called when a job starts: begin "sampling"."""
        self._started[request.job_id] = (start_time_s, nodes)

    def epilog(self, record: JobRecord) -> None:
        """Called when a job ends: the cheap, RNG-ordered half.

        Consumes the collector RNG exactly as the old inline epilog
        did (CPU summary, keep-series draw, stratified offsets) and
        defers the activity-model evaluation to :meth:`flush`.
        """
        from repro.obs import runtime

        request = record.request
        self._started.pop(request.job_id, None)
        self._cpu_builder.append_row(
            {
                "job_id": request.job_id,
                **self._cpu_sampler.summarize(
                    record.run_time_s, request.cores, request.memory_gb, self._rng
                ),
            }
        )
        metrics = runtime.get_metrics()
        if not request.is_gpu_job:
            if metrics.enabled:
                metrics.counter(
                    "repro_monitor_jobs_total",
                    help="jobs summarized by the monitoring epilog",
                    kind="cpu",
                ).inc()
            return
        model = request.tags.get("activity")
        if model is None:
            raise MonitoringError(f"GPU job {request.job_id} has no activity model")
        keep_series = self._rng.random() < self.config.timeseries_fraction
        if metrics.enabled:
            metrics.counter(
                "repro_monitor_jobs_total",
                help="jobs summarized by the monitoring epilog",
                kind="gpu",
            ).inc()
            metrics.counter(
                "repro_monitor_summary_rows_total",
                help="per-GPU summary rows emitted",
            ).inc(model.num_gpus)
            if keep_series:
                metrics.counter(
                    "repro_monitor_series_kept_total",
                    help="dense time series retained (one per GPU)",
                ).inc(model.num_gpus)
        self._pending.append(
            SamplingTask(
                job_id=request.job_id,
                model=model,
                run_time_s=record.run_time_s,
                offsets=self._gpu_sampler.draw_offsets(
                    record.run_time_s, model.num_gpus, self._rng
                ),
                keep_series=keep_series,
            )
        )

    def run_end(self, result) -> None:
        """Called when the simulation drains: record the deferred load."""
        from repro.obs import runtime

        metrics = runtime.get_metrics()
        if metrics.enabled:
            metrics.gauge(
                "repro_sampling_pending_tasks",
                help="sampling tasks deferred by the epilog, awaiting flush",
            ).set(len(self._pending))

    def attach(self, simulator) -> "MonitoringCollector":
        """Register this collector on a :class:`SlurmSimulator`."""
        simulator.add_prolog(self.prolog)
        simulator.add_epilog(self.epilog)
        simulator.add_run_end(self.run_end)
        return self

    # ------------------------------------------------------------------
    # Deferred sampling
    # ------------------------------------------------------------------
    @property
    def pending_tasks(self) -> int:
        """Sampling tasks enqueued but not yet evaluated."""
        return len(self._pending)

    def flush(self, workers: int | None = None) -> int:
        """Evaluate every pending task and merge the results.

        Tasks are evaluated in job-completion order (sharded across a
        process pool when ``workers > 1``, with identical output), so
        repeated partial flushes, one big flush, and the old inline
        epilog all build the same tables and series store.  Returns
        the number of per-GPU summary rows produced.
        """
        from repro.obs import runtime

        if not self._pending:
            return 0
        tasks, self._pending = self._pending, []
        results = run_sampling(tasks, self._plan, workers=workers)
        rows = 0
        for result in results:
            # All of the job's GPUs land in the builder as column
            # fragments — no per-GPU row dict.
            self._gpu_builder.extend_columns(
                {
                    "job_id": np.full(result.num_gpus, result.job_id, dtype=np.int64),
                    "gpu_index": np.arange(result.num_gpus, dtype=np.int64),
                    **result.summary,
                }
            )
            rows += result.num_gpus
            for series in result.series:
                self._store.add(series)
            if self._seal_rows is not None and self._gpu_builder.num_rows >= self._seal_rows:
                self._seal_gpu_chunk()
        metrics = runtime.get_metrics()
        if metrics.enabled:
            mode = "parallel" if workers is not None and workers > 1 else "serial"
            metrics.counter(
                "repro_sampling_tasks_total",
                help="deferred sampling tasks evaluated",
                mode=mode,
            ).inc(len(tasks))
            metrics.counter(
                "repro_sampling_rows_total",
                help="per-GPU summary rows produced by deferred sampling",
            ).inc(rows)
            metrics.counter(
                "repro_sampling_series_total",
                help="dense series materialized by deferred sampling",
            ).inc(sum(len(result.series) for result in results))
        return rows

    # ------------------------------------------------------------------
    # Dataset assembly
    # ------------------------------------------------------------------
    @property
    def store(self) -> TimeSeriesStore:
        """The dense-series store (flushes pending tasks first)."""
        self.flush()
        return self._store

    def enable_spill(
        self,
        directory: str | Path,
        chunk_rows: int | None = None,
        codec: "SpillCodec | None | str" = "default",
    ) -> None:
        """Seal per-GPU summary chunks to ``.npz`` files instead of memory.

        A runtime switch, deliberately *not* a :class:`MonitoringConfig`
        field: the config hashes into dataset cache keys, and spilling
        is an execution detail that must leave them untouched.  Chunks
        already sealed in memory are written out immediately, so the
        switch can be flipped at any point before the final flush.
        ``chunk_rows`` tightens the seal threshold (defaults to the
        config value, or the frame default when the config has none).
        Runs are written through the spill codec — lossless by default,
        so read-back stays bit-identical; pass ``codec=None`` for the
        legacy raw layout.
        """
        from repro.frame import DEFAULT_CHUNK_ROWS, LOSSLESS

        target = Path(directory)
        target.mkdir(parents=True, exist_ok=True)
        self._spill_dir = target
        self._spill_codec = LOSSLESS if codec == "default" else codec
        if chunk_rows is not None:
            self._seal_rows = chunk_rows
        elif self._seal_rows is None:
            self._seal_rows = DEFAULT_CHUNK_ROWS
        for table in self._gpu_chunks:
            self._write_spill_run(table)
        self._gpu_chunks = []

    def _write_spill_run(self, table: Table) -> None:
        """Write one sealed run through the codec, counting its bytes."""
        from repro.frame.io import table_raw_bytes, write_table_npz
        from repro.obs import runtime

        path = self._spill_dir / f"run_{len(self._spill_runs):06d}.npz"
        write_table_npz(table, path, codec=self._spill_codec)
        self._spill_runs.append(path)
        metrics = runtime.get_metrics()
        if metrics.enabled:
            metrics.counter(
                "repro_frame_spill_chunks_total",
                help="table chunks spilled to disk by the streaming engine",
            ).inc()
            metrics.counter(
                "repro_frame_spill_bytes_total",
                help="bytes of spill files written by the streaming engine (encoded)",
            ).inc(path.stat().st_size)
            metrics.counter(
                "repro_frame_spill_raw_bytes_total",
                help="bytes the raw (uncodec'd) spill layout would have written",
            ).inc(table_raw_bytes(table))

    def _seal_gpu_chunk(self) -> None:
        """Rotate the summary builder into a sealed chunk (disk or RAM)."""
        from repro.obs import runtime

        table = self._gpu_builder.finish()
        if self._spill_dir is not None:
            self._write_spill_run(table)
        else:
            self._gpu_chunks.append(table)
        self._gpu_builder = TableBuilder(columns=self._gpu_builder.column_names)
        metrics = runtime.get_metrics()
        if metrics.enabled:
            metrics.counter(
                "repro_monitor_summary_chunks_total",
                help="sealed per-GPU summary chunks emitted by the collector",
            ).inc()

    def _sealed_parts(self) -> list:
        """Sealed chunks as lazy thunks plus the live builder remainder.

        Each element is a zero-arg callable returning a Table; disk
        runs load on call so only one run is resident at a time.
        """
        from repro.frame.io import read_table_npz

        parts: list = [
            (lambda p=path: read_table_npz(p)) for path in self._spill_runs
        ]
        parts.extend((lambda t=table: t) for table in self._gpu_chunks)
        if self._gpu_builder.num_rows or not parts:
            remainder = self._gpu_builder.finish()
            parts.append(lambda t=remainder: t)
        return parts

    def per_gpu_table(self) -> Table:
        """One row per (job, GPU) with min/mean/max of every metric."""
        from repro.frame import concat_tables

        self.flush()
        parts = [thunk() for thunk in self._sealed_parts()]
        if len(parts) == 1:
            return parts[0]
        return concat_tables(parts)

    def per_gpu_chunked(self, chunk_rows: int | None = None) -> "ChunkedTable":
        """The per-GPU summary as a :class:`~repro.frame.ChunkedTable`.

        With ``summary_chunk_rows`` configured (or spilling enabled),
        the sealed chunks stream through one at a time — disk runs are
        read back lazily, never concatenated; otherwise the single
        builder table is split into ``chunk_rows`` batches.
        """
        from repro.frame import ChunkedTable

        self.flush()
        if self._spill_runs or self._gpu_chunks:
            parts = self._sealed_parts()

            def produce():
                for thunk in parts:
                    table = thunk()
                    if table.num_rows:
                        yield table

            return ChunkedTable(produce)
        table = self._gpu_builder.finish()
        return table.to_chunked(chunk_rows)

    def sorted_summary_stream(self, chunk_rows: int | None = None) -> "ChunkedTable":
        """Per-GPU summary rows in global ``(job_id, gpu_index)`` order.

        Sealed runs are each job-completion-ordered internally, so a
        lazily sorted view of every run feeds a k-way
        :func:`~repro.frame.merge_sorted_chunked` — at most one run is
        fully resident per source while merging.  Bit-identical to
        ``per_gpu_table().sort_by("job_id", "gpu_index")`` because the
        merge preserves source order on ties and sorts are stable.
        """
        from repro.frame import DEFAULT_CHUNK_ROWS, ChunkedTable, merge_sorted_chunked

        self.flush()
        parts = self._sealed_parts()
        rows = chunk_rows if chunk_rows is not None else DEFAULT_CHUNK_ROWS

        def source(thunk):
            def produce():
                table = thunk().sort_by("job_id", "gpu_index")
                if table.num_rows:
                    yield table

            return ChunkedTable(produce)

        return merge_sorted_chunked(
            [source(thunk) for thunk in parts],
            ("job_id", "gpu_index"),
            chunk_rows=rows,
        )

    def cpu_table(self) -> Table:
        """One row per job with CPU-side summary metrics."""
        return self._cpu_builder.finish()

    def job_gpu_table(self) -> Table:
        """Per-job GPU summary averaged over the job's GPUs.

        Matches the paper's methodology: "the average over multiple
        GPUs was computed to get a single number for multi-GPU jobs".
        Minima take the min over GPUs and maxima the max, so bottleneck
        detection still sees the most-loaded device.
        """
        per_gpu = self.per_gpu_table()
        if not per_gpu.num_rows:
            return Table.empty(["job_id"])
        spec = {}
        for name in METRIC_NAMES:
            spec[f"{name}_min"] = "min"
            spec[f"{name}_mean"] = "mean"
            spec[f"{name}_max"] = "max"
        aggregated = per_gpu.group_by("job_id").aggregate(spec)
        renames = {}
        for name in METRIC_NAMES:
            renames[f"{name}_min_min"] = f"{name}_min"
            renames[f"{name}_mean_mean"] = f"{name}_mean"
            renames[f"{name}_max_max"] = f"{name}_max"
        return aggregated.rename(renames)
