"""Tests for the power-cap over-provisioning model."""

import pytest

from repro.errors import AnalysisError
from repro.frame import Table
from repro.opportunities.powercap import best_design, powercap_study


def power_jobs(rows):
    return Table.from_rows(
        [{"power_w_mean": avg, "power_w_max": peak} for avg, peak in rows]
    )


class TestStudy:
    def test_device_counts_follow_budget(self):
        study = powercap_study(power_jobs([(40.0, 80.0)]), base_gpus=100, caps_w=(300.0, 150.0))
        rows = {r["cap_w"]: r for r in study.iter_rows()}
        assert rows[300.0]["num_gpus"] == 100
        assert rows[150.0]["num_gpus"] == 200

    def test_unaffected_jobs_full_speed(self):
        study = powercap_study(power_jobs([(40.0, 100.0)]), caps_w=(150.0,))
        assert study.row(0)["mean_job_speed"] == 1.0
        assert study.row(0)["impacted_job_fraction"] == 0.0

    def test_throttled_jobs_slow_down(self):
        study = powercap_study(power_jobs([(190.0, 200.0)]), caps_w=(150.0,))
        row = study.row(0)
        assert row["impacted_job_fraction"] == 1.0
        assert row["mean_job_speed"] < 1.0

    def test_throughput_gain_when_jobs_light(self):
        study = powercap_study(power_jobs([(40.0, 80.0)] * 10), caps_w=(150.0,))
        assert study.row(0)["relative_throughput"] == pytest.approx(2.0)

    def test_invalid_cap_rejected(self):
        with pytest.raises(AnalysisError):
            powercap_study(power_jobs([(1.0, 2.0)]), caps_w=(-5.0,))

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            powercap_study(power_jobs([]))


class TestBestDesign:
    def test_picks_highest_throughput(self):
        study = powercap_study(power_jobs([(40.0, 80.0)]), caps_w=(300.0, 150.0))
        design = best_design(study)
        assert design.cap_w == 150.0
        assert design.relative_throughput == pytest.approx(2.0)

    def test_on_generated_data_capping_wins(self, gpu_jobs):
        study = powercap_study(gpu_jobs)
        design = best_design(study)
        # the paper's claim: low power draw makes aggressive capping a
        # clear throughput win
        assert design.cap_w <= 200.0
        assert design.relative_throughput > 1.3

    def test_speed_monotone_in_cap(self, gpu_jobs):
        study = powercap_study(gpu_jobs, caps_w=(300.0, 250.0, 200.0, 150.0))
        speeds = [r["mean_job_speed"] for r in study.iter_rows()]
        assert speeds == sorted(speeds, reverse=True)
