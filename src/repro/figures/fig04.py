"""Fig 4: distribution of average GPU resource utilization.

A streaming proof-of-concept consumer (like fig03): every distribution
is read through :func:`~repro.analysis.stats.column_ecdf`, so a
materialized ``gpu_jobs`` table yields exact CDFs while a
``dataset.streaming_view()`` yields one-pass quantile sketches with
the same query surface — including ``values``/``probabilities`` for
the KS-against-uniform deviation below.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.stats import column_ecdf
from repro.dataset import SupercloudDataset
from repro.figures.base import Comparison, FigureResult


def run(dataset: SupercloudDataset) -> FigureResult:
    """Fig 4(a): SM / memory-BW / memory-size CDFs; Fig 4(b): PCIe."""
    gpu = dataset.gpu_jobs
    sm = column_ecdf(gpu, "sm_mean")
    mem = column_ecdf(gpu, "mem_bw_mean")
    size = column_ecdf(gpu, "mem_size_mean")
    tx = column_ecdf(gpu, "pcie_tx_mean")
    rx = column_ecdf(gpu, "pcie_rx_mean")

    comparisons = [
        Comparison("SM util median", 16.0, sm.median(), "%"),
        Comparison("memory util median", 2.0, mem.median(), "%"),
        Comparison("memory size median", 9.0, size.median(), "%"),
        Comparison("jobs with SM util >50%", 0.20, sm.fraction_above(50.0)),
        Comparison("jobs with memory util >50%", 0.04, mem.fraction_above(50.0)),
        Comparison("jobs with memory size >50%", 0.15, size.fraction_above(50.0)),
    ]
    # PCIe uniformity: the paper reads the linear CDF as a uniform
    # bandwidth distribution.  Quantify with the max CDF deviation from
    # a straight line over the occupied support (a KS-against-uniform).
    # On the streaming path the sketch's summary points play the role
    # of the sample points.
    for name, dist in (("Tx", tx), ("Rx", rx)):
        support = dist.values[-1] - dist.values[0]
        if support > 0:
            uniform = (dist.values - dist.values[0]) / support
            deviation = float(np.abs(dist.probabilities - uniform).max())
        else:
            deviation = 1.0
        comparisons.append(
            Comparison(f"PCIe {name} CDF deviation from uniform", 0.0, deviation)
        )
    return FigureResult(
        figure_id="fig04",
        title="Average GPU resource and PCIe utilization",
        series={"sm": sm, "mem_bw": mem, "mem_size": size, "pcie_tx": tx, "pcie_rx": rx},
        comparisons=comparisons,
    )
