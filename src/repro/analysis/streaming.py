"""Shared primitives for the streaming analysis kernels.

Every heavy kernel in :mod:`repro.analysis` follows the
exact-or-sketch contract that :func:`repro.analysis.stats.column_ecdf`
established: a materialized :class:`~repro.frame.Table` takes the
original vectorized path, while a :class:`~repro.frame.ChunkedTable`
folds the chunk stream with bounded state.  Integer counts (and the
shares derived from them) stay bit-identical to the materialized
result; float accumulations are deterministic for a fixed chunking but
may differ in the last ULP from a single-pass sum; quantiles come from
a rank-bounded :class:`~repro.frame.QuantileSketch` (exact until the
sketch first compacts).  This module holds the pieces those folds
share so each kernel only contributes its own arithmetic.
"""

from __future__ import annotations

from typing import Any, Iterator

import numpy as np

from repro.frame import Table, concat_tables


def is_chunked(source: Any) -> bool:
    """Whether ``source`` is a chunk stream (vs a materialized Table)."""
    from repro.frame import ChunkedTable

    return isinstance(source, ChunkedTable)


def iter_sorted_groups(source: Any, key: str) -> Iterator[tuple[Any, Table]]:
    """Yield ``(key_value, group)`` from a ``key``-sorted chunk stream.

    The stream must arrive grouped by ``key`` (e.g. the pipeline's
    ``per_gpu`` table, sorted by ``(job_id, gpu_index)``); consecutive
    equal keys form one group.  Exactly one group is resident at a time
    beyond the chunk being read, so a per-group fold costs O(largest
    group) memory rather than O(rows).  Groups straddling chunk
    boundaries are stitched back together with ``concat_tables``, which
    keeps each group's row order — and therefore any per-group
    arithmetic — bit-identical to iterating the materialized
    ``group_by(key)``.
    """
    pending_key: Any = None
    parts: list[Table] = []
    for chunk in source.chunks():
        if chunk.num_rows == 0:
            continue
        keys = np.asarray(chunk.column(key))
        change = np.nonzero(keys[1:] != keys[:-1])[0]
        starts = np.concatenate(([0], change + 1))
        ends = np.concatenate((change + 1, [len(keys)]))
        for start, end in zip(starts, ends):
            sub = chunk.take(np.arange(start, end))
            value = keys[start]
            if parts and value == pending_key:
                parts.append(sub)
                continue
            if parts:
                yield pending_key, parts[0] if len(parts) == 1 else concat_tables(parts)
            pending_key, parts = value, [sub]
    if parts:
        yield pending_key, parts[0] if len(parts) == 1 else concat_tables(parts)
