"""`repro.obs` — end-to-end tracing and metrics for the reproduction.

The paper's contribution is a monitoring pipeline turned into
analysis; this package is the reproduction watching *itself* the same
way.  One instrumentation spine threads through the dataset engine,
the scheduler, the monitoring collector, the frame kernels, and the
figure harness:

* :class:`~repro.obs.trace.Tracer` — nested, attribute-carrying spans
  (thread-safe, context-manager API, a true no-op fast path via
  :data:`~repro.obs.trace.NULL_TRACER`);
* :class:`~repro.obs.metrics.MetricsRegistry` — labelled counters,
  gauges, and fixed-bucket histograms, with snapshot/merge for
  process-pool propagation;
* :class:`~repro.obs.events.FlightRecorder` — a bounded ring of
  structured events (span closes, stage transitions, cache probes,
  epoch boundaries, spill/merge ops) with JSONL drain/spill and the
  same no-op fast path via :data:`~repro.obs.events.NULL_RECORDER`;
* :mod:`~repro.obs.progress` — live island telemetry: worker
  heartbeats, the ``--progress`` / ``repro obs top`` renderers, and
  the background :class:`~repro.obs.progress.ResourceSampler`;
* :mod:`~repro.obs.runtime` — the ambient (tracer, metrics, recorder)
  triple library code reads, scoped by sessions and pool workers;
* :mod:`~repro.obs.export` — Chrome trace-event JSON, Prometheus text
  exposition, and the human-readable run report.

See ``docs/observability.md`` for the span model, the metric catalog,
and the overhead contract.
"""

from repro.obs.events import (
    EventRecord,
    FlightRecorder,
    NULL_RECORDER,
    NullRecorder,
    read_jsonl,
    summarize_events,
)
from repro.obs.export import (
    chrome_trace_events,
    parse_prometheus_text,
    prometheus_text,
    run_report,
    summarize_chrome_trace,
    write_chrome_trace,
)
from repro.obs.metrics import (
    COUNT_BUCKETS,
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_METRICS,
    NullMetrics,
)
from repro.obs.progress import (
    Heartbeat,
    ProgressAggregator,
    ProgressPrinter,
    ResourceSampler,
)
from repro.obs.trace import NULL_TRACER, NullTracer, SpanRecord, Tracer

__all__ = [
    "COUNT_BUCKETS",
    "Counter",
    "DEFAULT_BUCKETS",
    "EventRecord",
    "FlightRecorder",
    "Gauge",
    "Heartbeat",
    "Histogram",
    "MetricsRegistry",
    "NULL_METRICS",
    "NULL_RECORDER",
    "NULL_TRACER",
    "NullMetrics",
    "NullRecorder",
    "NullTracer",
    "ProgressAggregator",
    "ProgressPrinter",
    "ResourceSampler",
    "SpanRecord",
    "Tracer",
    "chrome_trace_events",
    "parse_prometheus_text",
    "prometheus_text",
    "read_jsonl",
    "run_report",
    "summarize_chrome_trace",
    "summarize_events",
    "write_chrome_trace",
]
