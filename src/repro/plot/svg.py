"""Minimal SVG chart renderer.

Supports line series (ECDFs), grouped bars, and box plots on a shared
axes system with linear or log-10 x scales.  Output is a plain SVG
string — no external dependencies, viewable in any browser.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

from repro.errors import ReproError

#: Categorical palette (colorblind-safe Okabe-Ito subset).
PALETTE = ("#0072B2", "#D55E00", "#009E73", "#CC79A7", "#E69F00", "#56B4E9")


@dataclass
class LineSeries:
    """A polyline, e.g. one empirical CDF."""

    label: str
    x: Sequence[float]
    y: Sequence[float]

    def __post_init__(self) -> None:
        if len(self.x) != len(self.y):
            raise ReproError(f"series {self.label!r}: x and y lengths differ")
        if len(self.x) < 2:
            raise ReproError(f"series {self.label!r}: need at least two points")


@dataclass
class BarSeries:
    """Labeled bars (categorical x axis)."""

    label: str
    categories: Sequence[str]
    values: Sequence[float]

    def __post_init__(self) -> None:
        if len(self.categories) != len(self.values):
            raise ReproError(f"bars {self.label!r}: categories and values differ")
        if not self.categories:
            raise ReproError(f"bars {self.label!r}: empty")


@dataclass
class BoxSeries:
    """Box plots: one (p25, median, p75) triple per category."""

    label: str
    categories: Sequence[str]
    boxes: Sequence[tuple[float, float, float]]

    def __post_init__(self) -> None:
        if len(self.categories) != len(self.boxes):
            raise ReproError(f"boxes {self.label!r}: categories and boxes differ")
        for low, mid, high in self.boxes:
            if not low <= mid <= high:
                raise ReproError(f"boxes {self.label!r}: p25 <= median <= p75 violated")


@dataclass
class Figure:
    """One chart; add series then :meth:`render` to SVG text."""

    title: str = ""
    x_label: str = ""
    y_label: str = ""
    x_log: bool = False
    width: int = 640
    height: int = 400
    series: list = field(default_factory=list)

    MARGIN_LEFT = 64
    MARGIN_RIGHT = 20
    MARGIN_TOP = 36
    MARGIN_BOTTOM = 52

    def add(self, series) -> "Figure":
        """Add a series (fluent)."""
        self.series.append(series)
        return self

    # ------------------------------------------------------------------
    # Layout helpers
    # ------------------------------------------------------------------
    @property
    def _plot_box(self) -> tuple[float, float, float, float]:
        return (
            self.MARGIN_LEFT,
            self.MARGIN_TOP,
            self.width - self.MARGIN_RIGHT,
            self.height - self.MARGIN_BOTTOM,
        )

    def _numeric_series(self) -> list[LineSeries]:
        return [s for s in self.series if isinstance(s, LineSeries)]

    def _category_series(self) -> list:
        return [s for s in self.series if isinstance(s, (BarSeries, BoxSeries))]

    def _x_range(self) -> tuple[float, float]:
        xs = [v for s in self._numeric_series() for v in s.x]
        if self.x_log:
            xs = [v for v in xs if v > 0]
            if not xs:
                raise ReproError("log x axis needs positive values")
        lo, hi = min(xs), max(xs)
        if lo == hi:
            pad = abs(lo) * 0.1 or 1.0
            return lo - pad, hi + pad
        return lo, hi

    def _y_range(self) -> tuple[float, float]:
        ys: list[float] = []
        for s in self.series:
            if isinstance(s, LineSeries):
                ys.extend(s.y)
            elif isinstance(s, BarSeries):
                ys.extend(s.values)
                ys.append(0.0)
            else:
                for low, _, high in s.boxes:
                    ys.extend((low, high))
        lo, hi = min(ys), max(ys)
        if lo == hi:
            pad = abs(lo) * 0.1 or 1.0
            return lo - pad, hi + pad
        pad = (hi - lo) * 0.05
        return lo - pad if lo != 0.0 else 0.0, hi + pad

    def _x_pos(self, value: float, lo: float, hi: float) -> float:
        left, _, right, _ = self._plot_box
        if self.x_log:
            value, lo, hi = math.log10(max(value, 1e-12)), math.log10(lo), math.log10(hi)
        if hi == lo:
            return (left + right) / 2.0
        return left + (value - lo) / (hi - lo) * (right - left)

    def _y_pos(self, value: float, lo: float, hi: float) -> float:
        _, top, _, bottom = self._plot_box
        if hi == lo:
            return (top + bottom) / 2.0
        return bottom - (value - lo) / (hi - lo) * (bottom - top)

    # ------------------------------------------------------------------
    # Ticks
    # ------------------------------------------------------------------
    @staticmethod
    def _nice_ticks(lo: float, hi: float, target: int = 5) -> list[float]:
        if hi <= lo:
            return [lo]
        raw_step = (hi - lo) / target
        magnitude = 10.0 ** math.floor(math.log10(raw_step))
        for multiple in (1.0, 2.0, 2.5, 5.0, 10.0):
            step = multiple * magnitude
            if raw_step <= step:
                break
        first = math.ceil(lo / step) * step
        ticks = []
        value = first
        while value <= hi + 1e-9 * step:
            ticks.append(round(value, 10))
            value += step
        return ticks

    @staticmethod
    def _log_ticks(lo: float, hi: float) -> list[float]:
        lo_exp = math.floor(math.log10(lo))
        hi_exp = math.ceil(math.log10(hi))
        return [10.0**e for e in range(lo_exp, hi_exp + 1) if lo <= 10.0**e <= hi]

    @staticmethod
    def _format_tick(value: float) -> str:
        if value == 0:
            return "0"
        if abs(value) >= 10000 or abs(value) < 0.01:
            return f"{value:.0e}"
        if value == int(value):
            return str(int(value))
        return f"{value:g}"

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def render(self) -> str:
        """Render the figure to an SVG string."""
        if not self.series:
            raise ReproError("figure has no series")
        has_lines = bool(self._numeric_series())
        has_categories = bool(self._category_series())
        if has_lines and has_categories:
            raise ReproError("cannot mix numeric and categorical series in one figure")

        parts = [
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{self.width}" '
            f'height="{self.height}" viewBox="0 0 {self.width} {self.height}" '
            'font-family="Helvetica, Arial, sans-serif">',
            f'<rect width="{self.width}" height="{self.height}" fill="white"/>',
        ]
        left, top, right, bottom = self._plot_box
        parts.append(
            f'<rect x="{left}" y="{top}" width="{right - left}" '
            f'height="{bottom - top}" fill="none" stroke="#444" stroke-width="1"/>'
        )
        if self.title:
            parts.append(
                f'<text x="{self.width / 2}" y="{self.MARGIN_TOP - 14}" '
                f'text-anchor="middle" font-size="14">{_escape(self.title)}</text>'
            )
        if self.x_label:
            parts.append(
                f'<text x="{(left + right) / 2}" y="{self.height - 10}" '
                f'text-anchor="middle" font-size="12">{_escape(self.x_label)}</text>'
            )
        if self.y_label:
            parts.append(
                f'<text x="14" y="{(top + bottom) / 2}" text-anchor="middle" '
                f'font-size="12" transform="rotate(-90 14 {(top + bottom) / 2})">'
                f"{_escape(self.y_label)}</text>"
            )

        y_lo, y_hi = self._y_range()
        parts.extend(self._render_y_axis(y_lo, y_hi))
        if has_lines:
            x_lo, x_hi = self._x_range()
            parts.extend(self._render_x_axis(x_lo, x_hi))
            parts.extend(self._render_lines(x_lo, x_hi, y_lo, y_hi))
        else:
            parts.extend(self._render_categorical(y_lo, y_hi))
        parts.extend(self._render_legend())
        parts.append("</svg>")
        return "\n".join(parts)

    def _render_y_axis(self, lo: float, hi: float) -> list[str]:
        left, _, right, _ = self._plot_box
        parts = []
        for tick in self._nice_ticks(lo, hi):
            y = self._y_pos(tick, lo, hi)
            parts.append(
                f'<line x1="{left}" y1="{y:.1f}" x2="{right}" y2="{y:.1f}" '
                'stroke="#ddd" stroke-width="0.5"/>'
            )
            parts.append(
                f'<text x="{left - 6}" y="{y + 4:.1f}" text-anchor="end" '
                f'font-size="10">{self._format_tick(tick)}</text>'
            )
        return parts

    def _render_x_axis(self, lo: float, hi: float) -> list[str]:
        _, top, _, bottom = self._plot_box
        ticks = self._log_ticks(lo, hi) if self.x_log else self._nice_ticks(lo, hi)
        parts = []
        for tick in ticks:
            x = self._x_pos(tick, lo, hi)
            parts.append(
                f'<line x1="{x:.1f}" y1="{top}" x2="{x:.1f}" y2="{bottom}" '
                'stroke="#ddd" stroke-width="0.5"/>'
            )
            parts.append(
                f'<text x="{x:.1f}" y="{bottom + 14}" text-anchor="middle" '
                f'font-size="10">{self._format_tick(tick)}</text>'
            )
        return parts

    def _render_lines(self, x_lo, x_hi, y_lo, y_hi) -> list[str]:
        parts = []
        for index, series in enumerate(self._numeric_series()):
            color = PALETTE[index % len(PALETTE)]
            points = " ".join(
                f"{self._x_pos(x, x_lo, x_hi):.1f},{self._y_pos(y, y_lo, y_hi):.1f}"
                for x, y in zip(series.x, series.y)
                if (not self.x_log) or x > 0
            )
            parts.append(
                f'<polyline points="{points}" fill="none" stroke="{color}" '
                'stroke-width="1.8"/>'
            )
        return parts

    def _render_categorical(self, y_lo, y_hi) -> list[str]:
        left, top, right, bottom = self._plot_box
        groups = self._category_series()
        categories = list(groups[0].categories)
        for series in groups[1:]:
            if list(series.categories) != categories:
                raise ReproError("all categorical series must share categories")
        slot = (right - left) / max(len(categories), 1)
        parts = []
        for c_index, category in enumerate(categories):
            center = left + (c_index + 0.5) * slot
            parts.append(
                f'<text x="{center:.1f}" y="{bottom + 14}" text-anchor="middle" '
                f'font-size="10">{_escape(str(category))}</text>'
            )
            band = slot * 0.7
            each = band / len(groups)
            for s_index, series in enumerate(groups):
                color = PALETTE[s_index % len(PALETTE)]
                x0 = center - band / 2 + s_index * each
                if isinstance(series, BarSeries):
                    value = series.values[c_index]
                    y = self._y_pos(value, y_lo, y_hi)
                    base = self._y_pos(max(y_lo, 0.0), y_lo, y_hi)
                    top_y = min(y, base)
                    parts.append(
                        f'<rect x="{x0:.1f}" y="{top_y:.1f}" width="{each * 0.9:.1f}" '
                        f'height="{abs(base - y):.1f}" fill="{color}"/>'
                    )
                else:
                    low, mid, high = series.boxes[c_index]
                    y_low = self._y_pos(low, y_lo, y_hi)
                    y_mid = self._y_pos(mid, y_lo, y_hi)
                    y_high = self._y_pos(high, y_lo, y_hi)
                    parts.append(
                        f'<rect x="{x0:.1f}" y="{y_high:.1f}" width="{each * 0.9:.1f}" '
                        f'height="{max(y_low - y_high, 1.0):.1f}" fill="{color}" '
                        'fill-opacity="0.35" stroke="{0}"/>'.format(color)
                    )
                    parts.append(
                        f'<line x1="{x0:.1f}" y1="{y_mid:.1f}" '
                        f'x2="{x0 + each * 0.9:.1f}" y2="{y_mid:.1f}" '
                        f'stroke="{color}" stroke-width="2"/>'
                    )
        return parts

    def _render_legend(self) -> list[str]:
        if len(self.series) < 2:
            return []
        left, top, right, _ = self._plot_box
        parts = []
        for index, series in enumerate(self.series):
            color = PALETTE[index % len(PALETTE)]
            y = top + 14 + index * 14
            parts.append(
                f'<rect x="{right - 120}" y="{y - 8}" width="10" height="10" fill="{color}"/>'
            )
            parts.append(
                f'<text x="{right - 106}" y="{y}" font-size="10">{_escape(series.label)}</text>'
            )
        return parts


def _escape(text: str) -> str:
    return text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
