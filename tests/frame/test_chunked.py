"""Unit tests for the chunked execution layer.

The exact streaming verbs (``filter``/``join``/``value_counts``/
``head``/``count``/``min``/``max``/``first``/``last``) must match the
materialized kernels bit-for-bit at any chunking; the rest of the
contract (accumulated float partials, sketch bounds) is pinned by the
property suite and docs/performance.md.
"""

import warnings

import numpy as np
import pytest

from repro.errors import FrameError
from repro.frame import (
    ChunkedTable,
    QuantileSketch,
    StreamingMoments,
    Table,
    concat_chunked,
    read_table_npz,
    scan_csv,
    scan_jsonl,
    write_csv,
    write_jsonl,
    write_table_npz,
)
from repro.obs import MetricsRegistry, Tracer
from repro.obs import runtime


@pytest.fixture
def table():
    rng = np.random.default_rng(42)
    n = 100
    return Table(
        {
            "user": [f"u{i % 7}" for i in range(n)],
            "runtime_s": rng.uniform(10, 1000, n),
            "num_gpus": rng.integers(0, 4, n),
        }
    )


class TestConstruction:
    def test_round_trip_materialize(self, table):
        for chunk_rows in (1, 7, 100, 1000):
            chunked = table.to_chunked(chunk_rows=chunk_rows)
            assert chunked.materialize().to_dict() == table.to_dict()

    def test_num_rows_and_columns(self, table):
        chunked = table.to_chunked(chunk_rows=13)
        assert chunked.num_rows == 100
        assert chunked.column_names == table.column_names
        assert "user" in chunked and "nope" not in chunked

    def test_re_iterable(self, table):
        chunked = table.to_chunked(chunk_rows=9)
        assert len(list(chunked.chunks())) == len(list(chunked.chunks()))

    def test_scan_dispatch(self, table, tmp_path):
        assert ChunkedTable.scan(table, 10).materialize().to_dict() == table.to_dict()
        chunked = table.to_chunked(chunk_rows=10)
        assert ChunkedTable.scan(chunked) is chunked
        assert Table.scan(table, chunk_rows=10).num_rows == 100
        with pytest.raises(FrameError, match="cannot scan"):
            ChunkedTable.scan(tmp_path / "data.parquet")
        with pytest.raises(FrameError, match="cannot scan"):
            ChunkedTable.scan(3.14)

    def test_column_access_raises(self, table):
        chunked = table.to_chunked(chunk_rows=10)
        with pytest.raises(FrameError, match="materialize"):
            chunked.column("user")
        with pytest.raises(FrameError, match="materialize"):
            chunked["user"]

    def test_mismatched_chunk_columns_raise(self):
        bad = ChunkedTable([Table({"a": [1]}), Table({"b": [2]})])
        with pytest.raises(FrameError, match="differ"):
            list(bad.chunks())

    def test_empty_chunks_skipped(self):
        chunked = ChunkedTable([Table({"a": []}), Table({"a": [1, 2]})])
        assert chunked.num_rows == 2
        assert len(list(chunked.chunks())) == 1

    def test_bad_chunk_rows(self, table):
        with pytest.raises(FrameError, match=">= 1"):
            table.to_chunked(chunk_rows=0)


class TestLazyVerbs:
    def test_select_drop_rename(self, table):
        chunked = table.to_chunked(chunk_rows=11)
        assert chunked.select(["user"]).materialize().to_dict() == table.select(
            ["user"]
        ).to_dict()
        assert chunked.drop(["num_gpus"]).column_names == ("user", "runtime_s")
        renamed = chunked.rename({"user": "who"})
        assert renamed.column_names == ("who", "runtime_s", "num_gpus")
        with pytest.raises(FrameError, match="missing"):
            chunked.drop(["nope"])

    def test_filter_matches_materialized(self, table):
        predicate = lambda t: np.asarray(t["num_gpus"]) > 0  # noqa: E731
        chunked = table.to_chunked(chunk_rows=9).filter(predicate)
        assert chunked.materialize().to_dict() == table.filter(predicate).to_dict()

    def test_filter_rejects_masks(self, table):
        with pytest.raises(FrameError, match="callable"):
            table.to_chunked(chunk_rows=9).filter(np.ones(100, dtype=bool))

    def test_with_column(self, table):
        chunked = table.to_chunked(chunk_rows=9).with_column(
            "runtime_min", lambda t: np.asarray(t["runtime_s"]) / 60.0
        )
        assert chunked.column_names[-1] == "runtime_min"
        expected = table.with_computed(
            "runtime_min", lambda t: np.asarray(t["runtime_s"]) / 60.0
        )
        assert chunked.materialize().to_dict() == expected.to_dict()
        with pytest.raises(FrameError, match="callable"):
            table.to_chunked(chunk_rows=9).with_column("c", 1.0)

    def test_broadcast_join_matches_materialized(self, table):
        right = Table({"user": [f"u{i}" for i in range(5)], "quota": list(range(5))})
        chunked = table.to_chunked(chunk_rows=7).join(right, on="user")
        assert chunked.materialize().to_dict() == table.join(right, on="user").to_dict()

    def test_join_rejects_chunked_right(self, table):
        right = Table({"user": ["u0"], "quota": [1]}).to_chunked()
        with pytest.raises(FrameError, match="materialize"):
            table.to_chunked().join(right, on="user")

    def test_head_stops_early(self, table):
        seen = []

        def produce():
            for start in range(0, 100, 10):
                seen.append(start)
                yield table.take(np.arange(start, start + 10))

        head = ChunkedTable(produce).head(15)
        assert head.num_rows == 15
        assert len(seen) < 10  # nowhere near a full scan
        assert head.to_dict() == table.head(15).to_dict()


class TestTerminalVerbs:
    def test_exact_reducers_bit_for_bit(self, table):
        spec = {"runtime_s": ("count", "min", "max", "first", "last")}
        expected = table.group_by("user").aggregate(spec)
        for chunk_rows in (1, 7, 100):
            got = table.to_chunked(chunk_rows=chunk_rows).group_by("user").aggregate(spec)
            assert got.to_dict() == expected.to_dict()

    def test_sizes_and_shortcuts(self, table):
        chunked = table.to_chunked(chunk_rows=13)
        assert (
            chunked.group_by("user").sizes().to_dict()
            == table.group_by("user").sizes().to_dict()
        )
        streamed_mean = chunked.group_by("user").mean("runtime_s")
        exact_mean = table.group_by("user").mean("runtime_s")
        assert list(streamed_mean["user"]) == list(exact_mean["user"])
        np.testing.assert_allclose(
            np.asarray(streamed_mean["runtime_s_mean"], dtype=float),
            np.asarray(exact_mean["runtime_s_mean"], dtype=float),
            rtol=1e-12,
        )

    def test_median_reducer_rejected(self, table):
        with pytest.raises(FrameError, match="mergeable partial state"):
            table.to_chunked().group_by("user").aggregate({"runtime_s": "median"})

    def test_median_rejection_names_column_and_remedies(self, table):
        """The error must be actionable: name the offending reducer and
        column and point at both escape hatches."""
        with pytest.raises(FrameError) as excinfo:
            table.to_chunked().group_by("user").aggregate({"runtime_s": "median"})
        message = str(excinfo.value)
        assert "'median'" in message
        assert "'runtime_s'" in message
        assert ".materialize()" in message
        assert "QuantileSketch" in message
        assert "sum" in message and "mean" in message  # streamable list

    def test_value_counts_matches_materialized(self, table):
        for chunk_rows in (1, 9, 100):
            got = table.to_chunked(chunk_rows=chunk_rows).value_counts("user")
            assert got.to_dict() == table.value_counts("user").to_dict()

    def test_sketch_and_moments(self, table):
        chunked = table.to_chunked(chunk_rows=8)
        sketch = chunked.sketch("runtime_s")
        assert isinstance(sketch, QuantileSketch)
        assert sketch.num_samples == 100
        # n < k: still in the exact regime.
        assert sketch.median() == float(np.quantile(np.asarray(table["runtime_s"]), 0.5))
        moments = chunked.moments("runtime_s")
        assert isinstance(moments, StreamingMoments)
        assert moments.count == 100
        assert moments.mean() == pytest.approx(
            float(np.asarray(table["runtime_s"]).mean()), rel=1e-12
        )


class TestSpill:
    def test_spill_round_trip(self, table, tmp_path):
        spilled = table.to_chunked(chunk_rows=16).spill(tmp_path / "spill")
        assert sorted(p.name for p in (tmp_path / "spill").glob("*.npz"))
        assert spilled.materialize().to_dict() == table.to_dict()
        # Re-iterable: a second pass re-reads the files.
        assert spilled.materialize().to_dict() == table.to_dict()

    def test_scan_spill_directory(self, table, tmp_path):
        table.to_chunked(chunk_rows=16).spill(tmp_path / "spill")
        rescanned = ChunkedTable.scan(tmp_path / "spill")
        assert rescanned.materialize().to_dict() == table.to_dict()
        with pytest.raises(FrameError, match="no .npz"):
            ChunkedTable.scan(tmp_path)

    def test_spill_metrics(self, table, tmp_path):
        metrics = MetricsRegistry()
        with runtime.use(Tracer(), metrics):
            table.to_chunked(chunk_rows=25).spill(tmp_path / "spill")
        assert metrics.counter_value("repro_frame_spill_chunks_total") == 4
        assert metrics.counter_value("repro_frame_spill_bytes_total") > 0
        assert metrics.counter_value("repro_frame_stream_chunks_total", op="spill") == 4
        assert metrics.counter_value("repro_frame_stream_rows_total", op="spill") == 100


class TestObsInstrumentation:
    def test_stream_counters_and_spans(self, table):
        metrics = MetricsRegistry()
        tracer = Tracer()
        with runtime.use(tracer, metrics):
            table.to_chunked(chunk_rows=10).group_by("user").aggregate(
                {"runtime_s": "count"}
            )
            table.to_chunked(chunk_rows=10).sketch("runtime_s")
        assert (
            metrics.counter_value("repro_frame_stream_chunks_total", op="aggregate")
            == 10
        )
        assert (
            metrics.counter_value("repro_frame_stream_rows_total", op="sketch") == 100
        )
        names = [span.name for span in tracer.finished()]
        assert "frame.stream.aggregate" in names
        assert "frame.stream.sketch" in names

    def test_peak_rss_gauge(self, table):
        metrics = MetricsRegistry()
        with runtime.use(Tracer(), metrics):
            table.to_chunked(chunk_rows=10).materialize()
        samples = metrics.samples("gauge")
        assert any(name == "repro_process_peak_rss_bytes" for name, _, _ in samples)


class TestConcatChunked:
    def test_concat_matches_concat_tables(self, table):
        first = table.head(40)
        second = table.take(np.arange(40, 100))
        combined = concat_chunked(
            [first.to_chunked(chunk_rows=7), second.to_chunked(chunk_rows=11)]
        )
        assert combined.num_rows == 100
        assert combined.materialize().to_dict() == table.to_dict()


class TestScanCodecs:
    def test_scan_csv_matches_read(self, table, tmp_path):
        path = tmp_path / "t.csv"
        write_csv(table, path)
        chunks = list(scan_csv(path, chunk_rows=7))
        assert all(c.num_rows <= 7 for c in chunks)
        rescanned = ChunkedTable.scan(path, 7).materialize()
        from repro.frame import read_csv

        assert rescanned.to_dict() == read_csv(path).to_dict()

    def test_scan_jsonl_matches_read(self, table, tmp_path):
        path = tmp_path / "t.jsonl"
        write_jsonl(table, path)
        rescanned = ChunkedTable.scan(path, 9).materialize()
        from repro.frame import read_jsonl

        assert rescanned.to_dict() == read_jsonl(path).to_dict()

    def test_npz_round_trip_preserves_dtypes(self, tmp_path):
        table = Table(
            {
                "s": ["a", "b", None],
                "i": np.array([1, 2, 3], dtype=np.int64),
                "f": np.array([1.5, np.nan, 3.0]),
            }
        )
        path = write_table_npz(table, tmp_path / "t.npz")
        back = read_table_npz(path)
        assert list(back["s"]) == ["a", "b", None]
        np.testing.assert_array_equal(np.asarray(back["i"]), [1, 2, 3])
        np.testing.assert_array_equal(
            np.asarray(back["f"], dtype=float), [1.5, np.nan, 3.0]
        )
        assert np.asarray(back["i"]).dtype == np.int64
        with pytest.raises(FrameError, match=".npz"):
            write_table_npz(table, tmp_path / "t.bin")


class TestDeprecatedSubmoduleImports:
    # Any direct `import repro.frame.<sub>` elsewhere re-binds the
    # submodule attribute on the package (standard import-system
    # behavior), so pop it first to exercise the __getattr__ shim
    # regardless of test order.

    def test_submodule_import_warns(self):
        import repro.frame as frame

        for name in ("table", "groupby", "chunked", "sketch", "io"):
            frame.__dict__.pop(name, None)
            with pytest.warns(DeprecationWarning, match="public surface"):
                getattr(frame, name)

    def test_reference_oracle_warns_but_works(self):
        import repro.frame as frame

        frame.__dict__.pop("reference", None)
        with pytest.warns(DeprecationWarning, match="test oracle"):
            reference = frame.reference
        assert hasattr(reference, "naive_aggregate")

    def test_public_surface_is_quiet(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            from repro.frame import ChunkedTable as _  # noqa: F401
            from repro.frame import Table as _t  # noqa: F401
