"""Tests for monitoring-overhead accounting."""

import pytest

from repro.errors import MonitoringError
from repro.frame import Table
from repro.monitor.overhead import interval_tradeoff, monitoring_volume


def jobs_table(rows):
    return Table.from_rows(
        [{"run_time_s": runtime, "num_gpus": gpus} for runtime, gpus in rows]
    )


class TestMonitoringVolume:
    def test_known_volume(self):
        # one 1000 s single-GPU job, dense series kept for all jobs:
        # 10k samples x 96 B = 0.96 MB
        jobs = jobs_table([(1000.0, 1)])
        volume = monitoring_volume(jobs, timeseries_fraction=1.0)
        assert volume.gpu_series_gb == pytest.approx(10000 * 96 / 1e9)

    def test_multi_gpu_multiplies_samples(self):
        single = monitoring_volume(jobs_table([(1000.0, 1)]), timeseries_fraction=1.0)
        dual = monitoring_volume(jobs_table([(1000.0, 2)]), timeseries_fraction=1.0)
        assert dual.gpu_series_gb == pytest.approx(2 * single.gpu_series_gb)

    def test_cpu_jobs_contribute_cpu_series_only(self):
        volume = monitoring_volume(jobs_table([(1000.0, 0)]), timeseries_fraction=1.0)
        assert volume.gpu_series_gb == 0.0
        assert volume.cpu_series_gb > 0.0

    def test_epilog_file_count(self):
        volume = monitoring_volume(jobs_table([(10.0, 1), (10.0, 0)]))
        assert volume.epilog_file_count == 3  # 2 CPU files + 1 GPU file

    def test_invalid_params_rejected(self):
        jobs = jobs_table([(10.0, 1)])
        with pytest.raises(MonitoringError):
            monitoring_volume(jobs, gpu_interval_s=0.0)
        with pytest.raises(MonitoringError):
            monitoring_volume(jobs, timeseries_fraction=2.0)
        with pytest.raises(MonitoringError):
            monitoring_volume(jobs_table([]))

    def test_paper_scale_volume_ballpark(self, medium_dataset):
        """Scaled to the paper's size, dense series land near 42 GB."""
        volume = monitoring_volume(medium_dataset.jobs)
        full_scale_estimate = volume.gpu_series_gb / medium_dataset.config.scale
        assert 10.0 <= full_scale_estimate <= 150.0  # paper: 42 GB


class TestIntervalTradeoff:
    def test_volume_inverse_in_interval(self, medium_dataset):
        table = interval_tradeoff(medium_dataset.jobs, intervals_s=(0.1, 1.0))
        rows = sorted(table.iter_rows(), key=lambda r: r["gpu_interval_s"])
        assert rows[0]["dense_series_gb"] == pytest.approx(
            10 * rows[1]["dense_series_gb"], rel=1e-6
        )

    def test_one_row_per_interval(self, medium_dataset):
        table = interval_tradeoff(medium_dataset.jobs, intervals_s=(0.1, 1.0, 10.0))
        assert table.num_rows == 3
