"""Hardware failure injection.

The paper reports that hardware reliability "has been fairly stable
over the recent few years and accounts for less than 0.5% job
failures" (Sec. II), and its Sec. VIII recommendations hinge on how
cheaply less-reliable GPUs could be tolerated.  This module lets the
simulator inject node failures so those trade-offs can be studied:

* each node fails as a Poisson process with the given MTBF;
* a failing node kills every job running on it (exit
  ``NODE_FAILURE``, classified as ``development`` — a non-zero exit);
* the node is unavailable for ``repair_time_s`` and then returns;
* with ``requeue=True`` killed jobs restart from scratch at high
  priority (Slurm's requeue-on-failure behavior).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SchedulerError

SECONDS_PER_YEAR = 365.25 * 86400.0


@dataclass(frozen=True)
class FailureModel:
    """Node failure process parameters.

    The default MTBF (40 node-years) reproduces the paper's "<0.5% of
    jobs fail due to hardware" on the full-scale workload.
    """

    node_mtbf_s: float = 40.0 * SECONDS_PER_YEAR
    repair_time_s: float = 4.0 * 3600.0
    requeue: bool = False
    seed: int = 20220613

    def __post_init__(self) -> None:
        if self.node_mtbf_s <= 0:
            raise SchedulerError("node MTBF must be positive")
        if self.repair_time_s < 0:
            raise SchedulerError("repair time must be non-negative")

    def draw_failure_times(
        self, num_nodes: int, horizon_s: float
    ) -> list[tuple[float, int]]:
        """Sample ``(time, node_index)`` failure events over a horizon.

        Repair windows are not excluded from the exposure time; with
        MTBF >> repair time the approximation error is negligible.
        """
        rng = np.random.default_rng(self.seed)
        events: list[tuple[float, int]] = []
        for node in range(num_nodes):
            t = float(rng.exponential(self.node_mtbf_s))
            while t < horizon_s:
                events.append((t, node))
                t += self.repair_time_s + float(rng.exponential(self.node_mtbf_s))
        events.sort()
        return events

    def expected_failures(self, num_nodes: int, horizon_s: float) -> float:
        """Expected number of node failures over the horizon."""
        return num_nodes * horizon_s / self.node_mtbf_s
