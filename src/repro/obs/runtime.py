"""Ambient observability state — how instrumented layers find the
active tracer and metrics registry.

The frame kernels, the scheduler event loop, and the monitoring
collector are library code with no session reference; they read the
process-wide *current* tracer/metrics from here.  The defaults are the
null implementations, so a bare ``Table.join`` or ``SlurmSimulator``
pays only an attribute load and a branch.

:class:`~repro.pipeline.session.Session` scopes its observability with
:func:`use` around dataset builds and figure runs; pool workers call
:func:`activate` once in their initializer (process-lifetime).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Iterator

from repro.obs.events import NULL_RECORDER, FlightRecorder, NullRecorder
from repro.obs.metrics import NULL_METRICS, MetricsRegistry, NullMetrics
from repro.obs.trace import NULL_TRACER, NullTracer, Tracer

_tracer: Tracer | NullTracer = NULL_TRACER
_metrics: MetricsRegistry | NullMetrics = NULL_METRICS
_recorder: FlightRecorder | NullRecorder = NULL_RECORDER


def get_tracer() -> Tracer | NullTracer:
    """The currently active tracer (the null tracer when disabled)."""
    return _tracer


def get_metrics() -> MetricsRegistry | NullMetrics:
    """The currently active registry (the null registry when disabled)."""
    return _metrics


def get_recorder() -> FlightRecorder | NullRecorder:
    """The currently active flight recorder (null when disabled)."""
    return _recorder


def activate(
    tracer: Tracer | None,
    metrics: MetricsRegistry | None,
    recorder: FlightRecorder | None = None,
) -> None:
    """Install observability for the rest of the process (workers)."""
    global _tracer, _metrics, _recorder
    _tracer = tracer if tracer is not None else NULL_TRACER
    _metrics = metrics if metrics is not None else NULL_METRICS
    _recorder = recorder if recorder is not None else NULL_RECORDER


def deactivate() -> None:
    """Back to the null implementations."""
    activate(None, None, None)


@contextmanager
def use(
    tracer: Tracer | None,
    metrics: MetricsRegistry | None,
    recorder: FlightRecorder | None = None,
) -> Iterator[None]:
    """Scoped activation: restores the previous state on exit."""
    global _tracer, _metrics, _recorder
    prev = (_tracer, _metrics, _recorder)
    _tracer = tracer if tracer is not None else NULL_TRACER
    _metrics = metrics if metrics is not None else NULL_METRICS
    _recorder = recorder if recorder is not None else NULL_RECORDER
    try:
        yield
    finally:
        _tracer, _metrics, _recorder = prev


def record_event(name: str, category: str = "repro", **attrs: Any) -> None:
    """Emit one event into the active flight recorder.

    This is the single call sites (stage transitions, cache probes,
    epoch boundaries, spill/merge ops) make; when recording is disabled
    it is one function call, one attribute load, and one branch.
    """
    r = _recorder
    if r.enabled:
        r.emit(name, category, **attrs)


def record_peak_rss() -> float:
    """Record the process's peak RSS (bytes) into the active registry.

    Gauges merge by max across snapshots, so pool workers and the
    parent session roll up to the single highest high-water mark.
    Returns the measured value (0.0 when the platform offers none).
    """
    value = peak_rss_bytes()
    m = _metrics
    if m.enabled and value:
        m.gauge(
            "repro_process_peak_rss_bytes",
            help="peak resident set size of the process (ru_maxrss)",
        ).set_max(value)
    return value


def peak_rss_bytes() -> float:
    """The process's lifetime peak RSS in bytes (``ru_maxrss``)."""
    try:
        import resource
        import sys

        peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        # ru_maxrss is KiB on Linux, bytes on macOS.
        return float(peak) * (1.0 if sys.platform == "darwin" else 1024.0)
    except Exception:
        return 0.0


def record_kernel(kernel: str, rows: int) -> None:
    """Count one frame-kernel invocation over ``rows`` input rows.

    This is the single call sites in :mod:`repro.frame` make; when
    observability is disabled it is one function call, one attribute
    load, and one branch.
    """
    m = _metrics
    if m.enabled:
        m.counter(
            "repro_frame_kernel_calls_total",
            help="frame kernel entry-point invocations",
            kernel=kernel,
        ).inc()
        m.counter(
            "repro_frame_kernel_rows_total",
            help="input rows processed by frame kernels",
            kernel=kernel,
        ).inc(rows)
