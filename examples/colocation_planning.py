"""Operator what-if: co-location and a two-tier GPU fleet.

The paper's Sec. III and VI takeaways propose (1) sharing GPUs between
jobs with complementary idle phases, and (2) routing exploratory /
development / IDE jobs to cheaper, slower GPUs.  This example
quantifies both on the reproduced dataset and prints a small planning
report an operator could act on.

Run with ``python examples/colocation_planning.py``.
"""

from repro import WorkloadConfig, generate_dataset
from repro.opportunities.colocation import ColocationSimulator, colocation_study
from repro.opportunities.tiering import TierSpec, tiering_study, tiering_sweep


def main() -> None:
    dataset = generate_dataset(WorkloadConfig(scale=0.05, seed=23))
    print(dataset.describe())
    print()

    print("== co-location study ==")
    for headroom in (40.0, 60.0, 80.0):
        report = colocation_study(dataset, max_jobs=300, headroom=headroom)
        print(
            f"  headroom {headroom:3.0f}%: {report.num_pairs:3d} pairs, "
            f"{report.gpu_savings_fraction:5.1%} GPUs saved, "
            f"mean slowdown {report.mean_slowdown:.3f}, "
            f"p95 slowdown {report.p95_slowdown:.3f}"
        )
    print()

    print("== pairing inspection: the two least-demanding jobs ==")
    simulator = ColocationSimulator()
    models = [
        (record.request.tags["activity"], record.run_time_s)
        for record in dataset.records
        if record.request.num_gpus == 1 and "activity" in record.request.tags
    ][:40]
    models.sort(key=lambda pair: simulator._demand(pair[0], pair[1]).mean())
    pair = simulator.evaluate_pair(models[0][0], models[1][0], min(models[0][1], models[1][1]))
    print(
        f"  combined mean demand {pair.combined_mean_demand:.1f}%, "
        f"contention {pair.contention_fraction:.1%} of the time, "
        f"worst slowdown {pair.worst_slowdown:.3f}"
    )
    print()

    print("== two-tier fleet study ==")
    outcome = tiering_study(dataset.gpu_jobs, TierSpec("slow", 0.5, 0.35))
    print(
        f"  routing exploratory+development+IDE ({outcome.routed_job_fraction:.0%} of jobs, "
        f"{outcome.routed_hour_fraction:.0%} of hours) to a half-speed tier at 35% price:"
    )
    print(
        f"  cost saving {outcome.cost_saving_fraction:.1%}, "
        f"mean slowdown of routed jobs {outcome.mean_slowdown_routed:.2f}x"
    )
    print()
    print("  design sweep (speed x price):")
    print(tiering_sweep(dataset.gpu_jobs).to_string())


if __name__ == "__main__":
    main()
