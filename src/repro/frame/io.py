"""CSV and JSONL persistence for :class:`repro.frame.Table`.

The epilog of the monitoring substrate writes per-node files back to a
central location (mirroring the paper's data collection); these helpers
are the serialization layer.  CSV readers infer numeric columns.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Any

from repro.errors import FrameError
from repro.frame.table import Table, _unwrap


def write_csv(table: Table, path: str | Path) -> Path:
    """Write the table to ``path`` as UTF-8 CSV and return the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="", encoding="utf-8") as fh:
        writer = csv.writer(fh)
        writer.writerow(table.column_names)
        for row in table.iter_rows():
            writer.writerow([_serialize(v) for v in row.values()])
    return path


def read_csv(path: str | Path) -> Table:
    """Read a CSV written by :func:`write_csv`, inferring numeric columns."""
    path = Path(path)
    with path.open(newline="", encoding="utf-8") as fh:
        reader = csv.reader(fh)
        try:
            header = next(reader)
        except StopIteration:
            raise FrameError(f"CSV file {path} is empty") from None
        raw_rows = list(reader)
    columns: dict[str, list[Any]] = {name: [] for name in header}
    for raw in raw_rows:
        if len(raw) != len(header):
            raise FrameError(f"CSV row has {len(raw)} cells, header has {len(header)}")
        for name, cell in zip(header, raw):
            columns[name].append(_parse(cell))
    return Table(columns)


def write_jsonl(table: Table, path: str | Path) -> Path:
    """Write one JSON object per row and return the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as fh:
        for row in table.iter_rows():
            fh.write(json.dumps({k: _unwrap(v) for k, v in row.items()}) + "\n")
    return path


def read_jsonl(path: str | Path) -> Table:
    """Read a JSONL file into a table (union of keys across rows)."""
    rows = []
    with Path(path).open(encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                rows.append(json.loads(line))
    return Table.from_rows(rows)


def _serialize(value: Any) -> Any:
    if value is None:
        return ""
    return value


def _parse(cell: str) -> Any:
    """Best-effort scalar parse: int, then float, then string."""
    if cell == "":
        return None
    try:
        return int(cell)
    except ValueError:
        pass
    try:
        return float(cell)
    except ValueError:
        pass
    if cell == "True":
        return True
    if cell == "False":
        return False
    return cell
