"""Fig 13: job-size mix and GPU-hour footprint of multi-GPU jobs."""

from __future__ import annotations

import numpy as np

from repro.analysis.multigpu import gpu_count_breakdown, user_gpu_breadth
from repro.dataset import SupercloudDataset
from repro.figures.base import Comparison, FigureResult


def run(dataset: SupercloudDataset) -> FigureResult:
    """Fig 13(a): fraction of jobs per GPU count; Fig 13(b): GPU-hour
    share; plus Sec. V per-user breadth."""
    gpu = dataset.gpu_jobs
    breakdown = gpu_count_breakdown(gpu)
    breadth = user_gpu_breadth(gpu)

    counts = np.asarray(gpu["num_gpus"], dtype=float)
    hours = np.asarray(gpu["gpu_hours"], dtype=float)
    multi_share = float(hours[counts > 1].sum() / hours.sum())

    comparisons = [
        Comparison("single-GPU job fraction", 0.84, float((counts == 1).mean())),
        Comparison("jobs with >2 GPUs", 0.024, float((counts > 2).mean())),
        Comparison("jobs with >=9 GPUs (<1%)", 0.01, float((counts >= 9).mean())),
        Comparison("multi-GPU share of GPU hours", 0.50, multi_share),
        Comparison("users with any multi-GPU job", 0.60, breadth["any_multi_gpu"]),
        Comparison("users with >=3-GPU jobs", 0.13, breadth["three_plus"]),
        Comparison("users with >=9-GPU jobs", 0.052, breadth["nine_plus"]),
    ]
    return FigureResult(
        figure_id="fig13",
        title="Multi-GPU job mix and GPU-hour footprint",
        series={"breakdown": breakdown, "breadth": breadth},
        comparisons=comparisons,
    )
