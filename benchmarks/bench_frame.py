"""Frame-engine perf gates: the columnar fast path vs the naive reference.

``repro.frame.reference`` keeps the retired row-at-a-time
implementations as executable documentation; these benchmarks hold the
vectorized engine to the speedups that justified the refactor, on the
acceptance-criteria workload (a 50k-row, 40-column accounting-shaped
table).  Every timed pair also asserts ``to_dict`` equality, so a perf
"fix" that diverges from the reference semantics fails here before it
fails a property test.

The hard gates are deliberately below the measured ratios (~13x
grouped aggregation on an integer key, ~55x on an all-match join) so
they catch wholesale regressions — a silent fall-back to the dict
loop — without flaking on machine noise.
"""

import time

import numpy as np

from repro.bench import record_bench_stat
from repro.frame import Table
from repro.frame.reference import naive_aggregate, naive_join

NUM_ROWS = 50_000
NUM_METRIC_COLUMNS = 37  # + job_id/user/num_gpus/gpu_hours = 41 columns

AGG_SPEC = {
    "m00": ["mean", "sum", "max"],
    "m01": ["mean", "std"],
    "m02": ["min", "median"],
    "m03": ["mean"],
    "job_id": ["count"],
}


def _bench_table() -> Table:
    rng = np.random.default_rng(20220214)
    data = {
        "job_id": np.arange(100_000, 100_000 + NUM_ROWS, dtype=np.int64),
        "user": np.asarray(
            [f"user{int(u):03d}" for u in rng.integers(0, 200, NUM_ROWS)], dtype=object
        ),
        "num_gpus": rng.choice(np.array([1, 2, 4, 8, 16]), NUM_ROWS),
        "gpu_hours": rng.random(NUM_ROWS) * 40.0,
    }
    for i in range(NUM_METRIC_COLUMNS):
        data[f"m{i:02d}"] = rng.random(NUM_ROWS) * 100.0
    return Table(data)


def _best_of(fn, repeats=3):
    best, result = float("inf"), None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def test_aggregate_int_key_5x():
    """Grouped aggregation on an int key: >=5x over the dict-loop path."""
    table = _bench_table()
    fast_s, fast = _best_of(lambda: table.group_by("num_gpus").aggregate(AGG_SPEC))
    naive_s, naive = _best_of(
        lambda: naive_aggregate(table, ("num_gpus",), AGG_SPEC), repeats=1
    )
    record_bench_stat(
        "aggregate_int_key",
        rows_per_s=NUM_ROWS / fast_s,
        speedup_x=naive_s / fast_s,
    )
    assert fast.to_dict() == naive.to_dict()
    assert naive_s >= 5 * fast_s, (
        f"aggregate[num_gpus]: fast {fast_s * 1e3:.2f}ms vs naive "
        f"{naive_s * 1e3:.2f}ms ({naive_s / fast_s:.1f}x < 5x)"
    )


def test_aggregate_string_key_2_5x():
    """Grouped aggregation on a 200-user string key.

    The object-dtype dict factorization is the slow stage here, so the
    headroom over the reference is structurally thinner (~5x measured);
    gate at 2.5x to stay noise-proof.
    """
    table = _bench_table()
    fast_s, fast = _best_of(lambda: table.group_by("user").aggregate(AGG_SPEC))
    naive_s, naive = _best_of(
        lambda: naive_aggregate(table, ("user",), AGG_SPEC), repeats=1
    )
    record_bench_stat(
        "aggregate_string_key",
        rows_per_s=NUM_ROWS / fast_s,
        speedup_x=naive_s / fast_s,
    )
    assert fast.to_dict() == naive.to_dict()
    assert naive_s >= 2.5 * fast_s, (
        f"aggregate[user]: fast {fast_s * 1e3:.2f}ms vs naive "
        f"{naive_s * 1e3:.2f}ms ({naive_s / fast_s:.1f}x < 2.5x)"
    )


def test_join_all_match_5x():
    """Inner join where every left row matches: >=5x over the hash loop.

    This is the dataset-assembly shape (every GPU job has a summary
    row), where the vectorized join also skips the row gather entirely
    and shares the left columns.
    """
    table = _bench_table()
    right = Table(
        {
            "job_id": np.asarray(table["job_id"]).copy(),
            "summary": np.random.default_rng(7).random(NUM_ROWS),
        }
    )
    fast_s, fast = _best_of(lambda: table.join(right, on="job_id"))
    naive_s, naive = _best_of(lambda: naive_join(table, right, on="job_id"), repeats=1)
    record_bench_stat(
        "join_all_match",
        rows_per_s=NUM_ROWS / fast_s,
        speedup_x=naive_s / fast_s,
    )
    assert fast.to_dict() == naive.to_dict()
    assert naive_s >= 5 * fast_s, (
        f"join[all-match]: fast {fast_s * 1e3:.2f}ms vs naive "
        f"{naive_s * 1e3:.2f}ms ({naive_s / fast_s:.1f}x < 5x)"
    )


def test_join_half_match_5x():
    """Inner join keeping half the rows: the gather path, still >=5x."""
    table = _bench_table()
    keys = np.asarray(table["job_id"])
    right = Table(
        {
            "job_id": keys[::2].copy(),
            "summary": np.random.default_rng(11).random(len(keys[::2])),
        }
    )
    fast_s, fast = _best_of(lambda: table.join(right, on="job_id"))
    naive_s, naive = _best_of(lambda: naive_join(table, right, on="job_id"), repeats=1)
    assert fast.num_rows == NUM_ROWS // 2
    assert fast.to_dict() == naive.to_dict()
    assert naive_s >= 5 * fast_s, (
        f"join[half-match]: fast {fast_s * 1e3:.2f}ms vs naive "
        f"{naive_s * 1e3:.2f}ms ({naive_s / fast_s:.1f}x < 5x)"
    )
