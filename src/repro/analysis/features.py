"""Time-series features and idle-phase prediction.

The paper's Sec. III takeaway asks for "online architectural tools
that can predict future idle GPU phases ... for more effective
co-location".  This module implements the building blocks and an
evaluation harness on the dense time-series subset:

* :func:`series_features` — per-job features of the sampled telemetry
  (burstiness, dominant period via FFT, lag-1 autocorrelation, idle
  ratio);
* :class:`IdlePhasePredictor` — an online predictor of "will the GPU
  be idle ``horizon`` seconds from now", using the recent activity
  duty cycle and the current phase's age vs the job's own interval
  history;
* :func:`evaluate_predictor` — replay a series and score the
  predictions against the ground truth that unfolds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.phases import activity_mask
from repro.errors import AnalysisError
from repro.monitor.timeseries import GpuTimeSeries


@dataclass(frozen=True)
class SeriesFeatures:
    """Summary features of one job's telemetry."""

    job_id: int
    idle_fraction: float
    lag1_autocorrelation: float
    dominant_period_s: float
    burstiness: float  # (sigma - mu) / (sigma + mu) of active-run lengths
    num_transitions: int


def _autocorrelation(values: np.ndarray, lag: int = 1) -> float:
    if len(values) <= lag + 1:
        return float("nan")
    a = values[:-lag] - values[:-lag].mean()
    b = values[lag:] - values[lag:].mean()
    denom = np.sqrt((a * a).sum() * (b * b).sum())
    if denom == 0:
        return 0.0
    return float((a * b).sum() / denom)


def _dominant_period(values: np.ndarray, step_s: float) -> float:
    """Period of the strongest non-DC spectral component."""
    if len(values) < 8:
        return float("nan")
    centered = values - values.mean()
    spectrum = np.abs(np.fft.rfft(centered))
    if len(spectrum) < 3:
        return float("nan")
    peak = 1 + int(np.argmax(spectrum[1:]))
    frequency = peak / (len(values) * step_s)
    return 1.0 / frequency if frequency > 0 else float("nan")


def _run_lengths(mask: np.ndarray) -> np.ndarray:
    if len(mask) == 0:
        return np.empty(0)
    change = np.nonzero(np.diff(mask.astype(np.int8)))[0]
    starts = np.concatenate(([0], change + 1))
    ends = np.concatenate((change, [len(mask) - 1]))
    lengths = ends - starts + 1
    return lengths[mask[starts]]


def series_features(series: GpuTimeSeries) -> SeriesFeatures:
    """Extract the feature vector of one series."""
    if series.num_samples < 2:
        raise AnalysisError(f"series for job {series.job_id} too short")
    mask = activity_mask(series)
    sm = series.metric("sm")
    step = float(np.median(np.diff(series.times_s)))
    active_runs = _run_lengths(mask).astype(float)
    if active_runs.size:
        mu, sigma = active_runs.mean(), active_runs.std()
        burstiness = float((sigma - mu) / (sigma + mu)) if (sigma + mu) > 0 else -1.0
    else:
        burstiness = float("nan")
    return SeriesFeatures(
        job_id=series.job_id,
        idle_fraction=float(1.0 - mask.mean()),
        lag1_autocorrelation=_autocorrelation(sm),
        dominant_period_s=_dominant_period(sm, step),
        burstiness=burstiness,
        num_transitions=int(np.abs(np.diff(mask.astype(np.int8))).sum()),
    )


class IdlePhasePredictor:
    """Online prediction of near-future GPU idleness.

    At each sample the predictor sees only the past and answers: will
    the GPU be idle ``horizon_s`` from now?  The estimate combines the
    recent duty cycle (activity fraction over a sliding window) with a
    persistence prior: phases outlast the horizon far more often than
    not, so the current state carries most of the signal — exactly why
    the paper judges co-location feasible despite irregular phases.
    """

    def __init__(self, window_s: float = 300.0, persistence_weight: float = 0.7) -> None:
        if window_s <= 0:
            raise AnalysisError("window must be positive")
        if not 0.0 <= persistence_weight <= 1.0:
            raise AnalysisError("persistence weight must be in [0, 1]")
        self.window_s = window_s
        self.persistence_weight = persistence_weight

    def idle_probability(
        self, times_s: np.ndarray, mask: np.ndarray, index: int
    ) -> float:
        """P(idle at times[index] + horizon) from samples [0..index]."""
        now = times_s[index]
        window = (times_s >= now - self.window_s) & (times_s <= now)
        duty_idle = 1.0 - float(mask[window].mean())
        current_idle = 1.0 if not mask[index] else 0.0
        return (
            self.persistence_weight * current_idle
            + (1.0 - self.persistence_weight) * duty_idle
        )


@dataclass(frozen=True)
class PredictorScore:
    """Accuracy of idle-phase prediction on one series."""

    job_id: int
    num_predictions: int
    accuracy: float
    idle_base_rate: float
    #: accuracy of always predicting the majority state
    baseline_accuracy: float

    @property
    def skill(self) -> float:
        """Improvement over the majority-state baseline (can be <= 0)."""
        if self.baseline_accuracy >= 1.0:
            return 0.0
        return (self.accuracy - self.baseline_accuracy) / (1.0 - self.baseline_accuracy)


def evaluate_predictor(
    series: GpuTimeSeries,
    predictor: IdlePhasePredictor | None = None,
    horizon_s: float = 60.0,
    stride: int = 5,
) -> PredictorScore:
    """Replay one series and score the predictor causally."""
    predictor = predictor or IdlePhasePredictor()
    if horizon_s <= 0:
        raise AnalysisError("horizon must be positive")
    mask = activity_mask(series)
    times = series.times_s
    step = float(np.median(np.diff(times))) if len(times) > 1 else 1.0
    offset = max(int(round(horizon_s / step)), 1)
    last = len(times) - offset
    if last < 2:
        raise AnalysisError(
            f"series for job {series.job_id} shorter than the prediction horizon"
        )
    correct = 0
    total = 0
    idle_truth = 0
    for index in range(0, last, stride):
        probability = predictor.idle_probability(times, mask, index)
        predicted_idle = probability >= 0.5
        actual_idle = not mask[index + offset]
        correct += int(predicted_idle == actual_idle)
        idle_truth += int(actual_idle)
        total += 1
    base_rate = idle_truth / total
    return PredictorScore(
        job_id=series.job_id,
        num_predictions=total,
        accuracy=correct / total,
        idle_base_rate=base_rate,
        baseline_accuracy=max(base_rate, 1.0 - base_rate),
    )


def predictor_study(store, horizon_s: float = 60.0, max_jobs: int = 200):
    """Score the predictor across a time-series store.

    Returns ``(scores, mean_accuracy, mean_skill)``; jobs shorter than
    the horizon are skipped.
    """
    scores = []
    for job_id in store.job_ids()[:max_jobs]:
        best = max(
            store.series_for_job(job_id), key=lambda s: float(s.metric("sm").mean())
        )
        try:
            scores.append(evaluate_predictor(best, horizon_s=horizon_s))
        except AnalysisError:
            continue
    if not scores:
        raise AnalysisError("no scorable series in the store")
    accuracy = float(np.mean([s.accuracy for s in scores]))
    skill = float(np.mean([s.skill for s in scores]))
    return scores, accuracy, skill
