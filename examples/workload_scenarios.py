"""Compare operator metrics across alternative workload futures.

The paper predicts that AI workloads will keep shifting toward
exploration and interactivity.  This example re-runs the headline
analyses under four scenarios (the calibrated paper workload, a
training farm, an exploration surge, and a notebook-heavy campus) and
prints a side-by-side operator view.

Run with ``python examples/workload_scenarios.py``.
"""

import numpy as np

from repro.analysis.lifecycle import lifecycle_breakdown
from repro.analysis.timeline import gpu_occupancy
from repro.dataset import generate_dataset
from repro.opportunities.checkpoint import checkpoint_study
from repro.opportunities.tiering import tiering_study
from repro.workload.scenarios import SCENARIOS, make_scenario


def main() -> None:
    print(f"{'scenario':>20} {'mature%':>8} {'non-mature GPU-h':>17} "
          f"{'mean util':>10} {'tier saving':>12} {'ckpt saves':>11}")
    for name in SCENARIOS:
        dataset = generate_dataset(make_scenario(name, scale=0.04, seed=11))
        gpu = dataset.gpu_jobs

        breakdown = {r["lifecycle_class"]: r for r in lifecycle_breakdown(gpu).iter_rows()}
        mature_jobs = breakdown["mature"]["job_fraction"]
        nonmature_hours = 1.0 - breakdown["mature"]["gpu_hour_fraction"]
        timeline = gpu_occupancy(dataset.records, capacity=dataset.spec.total_gpus)
        tier = tiering_study(gpu)
        ckpt = checkpoint_study(gpu)
        print(
            f"{name:>20} {mature_jobs:>7.0%} {nonmature_hours:>16.0%} "
            f"{timeline.mean_utilization:>9.0%} {tier.cost_saving_fraction:>11.0%} "
            f"{ckpt.net_saving_gpu_hours:>10.0f}h"
        )
    print()
    print(
        "The exploration surge and interactive campus push non-mature GPU hours\n"
        "past the paper's 61% — exactly the futures its recommendations (tiering,\n"
        "checkpointing, co-location) are designed for."
    )


if __name__ == "__main__":
    main()
