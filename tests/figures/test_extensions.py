"""Tests for the extension figures."""

import pytest

from repro.figures.registry import run_figure


@pytest.fixture(scope="module")
def ext_results(medium_dataset):
    return {
        fid: run_figure(fid, medium_dataset)
        for fid in ("ext_timeline", "ext_prediction", "ext_queueing")
    }


class TestExtTimeline:
    def test_utilization_bounded(self, ext_results):
        result = ext_results["ext_timeline"]
        assert 0.0 < result.get("mean GPU utilization (<0.7)").measured < 0.7
        assert result.get("peak GPU utilization (<=1)").measured <= 1.0

    def test_surges_visible(self, ext_results):
        ratio = ext_results["ext_timeline"].get("deadline-window load ratio").measured
        assert ratio > 1.1


class TestExtPrediction:
    def test_users_unpredictable(self, ext_results):
        gain = ext_results["ext_prediction"].get(
            "runtime predictability gain (<0.5)"
        ).measured
        assert gain < 0.5

    def test_idle_phases_predictable(self, ext_results):
        accuracy = ext_results["ext_prediction"].get(
            "60s idle-phase prediction accuracy"
        ).measured
        assert accuracy > 0.75


class TestExtQueueing:
    def test_offered_load_below_capacity(self, ext_results):
        assert ext_results["ext_queueing"].get(
            "offered load / capacity (<0.7)"
        ).measured < 0.7

    def test_heavy_tailed_services(self, ext_results):
        assert ext_results["ext_queueing"].get("service-time SCV (>>1)").measured > 1.5

    def test_capacity_exceeds_analytic_need(self, ext_results):
        assert ext_results["ext_queueing"].get(
            "capacity / analytic need (>1)"
        ).measured >= 1.0
