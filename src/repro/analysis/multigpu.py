"""Multi-GPU job analysis (Fig 13, Fig 14; Sec. V).

Covers the job-size mix, GPU-hour footprint by size, per-user job-size
breadth, and the cross-GPU utilization variability of multi-GPU jobs
— with and without each job's idle GPUs, which is how the paper shows
that *active* GPUs behave uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.stats import coefficient_of_variation
from repro.analysis.streaming import is_chunked, iter_sorted_groups
from repro.errors import AnalysisError
from repro.frame import QuantileSketch, Table

#: Size buckets used by Fig 13 and the Sec. V wait-time comparison.
SIZE_BUCKETS = ((1, 1), (2, 2), (3, 8), (9, 10_000))
SIZE_LABELS = ("1", "2", "3-8", ">=9")

#: A GPU with mean SM and memory utilization below this is idle.
IDLE_GPU_THRESHOLD = 0.5


def gpu_count_breakdown(gpu_jobs: Table) -> Table:
    """Job share and GPU-hour share per size bucket (Fig 13).

    A chunked stream folds integer job counts (shares bit-identical to
    the materialized ``mask.mean()``) and per-bucket hour sums in one
    bounded pass.
    """
    if is_chunked(gpu_jobs):
        total = 0
        total_hours = 0.0
        bucket_jobs = [0] * len(SIZE_BUCKETS)
        bucket_hours = [0.0] * len(SIZE_BUCKETS)
        for chunk in gpu_jobs.chunks():
            counts = np.asarray(chunk["num_gpus"], dtype=float)
            hours = np.asarray(chunk["gpu_hours"], dtype=float)
            total += counts.size
            total_hours += float(hours.sum())
            for i, (lo, hi) in enumerate(SIZE_BUCKETS):
                mask = (counts >= lo) & (counts <= hi)
                bucket_jobs[i] += int(mask.sum())
                bucket_hours[i] += float(hours[mask].sum())
        if total == 0:
            raise AnalysisError("no jobs")
        return Table.from_rows(
            [
                {
                    "gpus": label,
                    "job_fraction": bucket_jobs[i] / total,
                    "gpu_hour_fraction": bucket_hours[i] / total_hours if total_hours else 0.0,
                    "num_jobs": bucket_jobs[i],
                }
                for i, label in enumerate(SIZE_LABELS)
            ]
        )
    if gpu_jobs.num_rows == 0:
        raise AnalysisError("no jobs")
    counts = np.asarray(gpu_jobs["num_gpus"], dtype=float)
    hours = np.asarray(gpu_jobs["gpu_hours"], dtype=float)
    total_hours = hours.sum()
    rows = []
    for (lo, hi), label in zip(SIZE_BUCKETS, SIZE_LABELS):
        mask = (counts >= lo) & (counts <= hi)
        rows.append(
            {
                "gpus": label,
                "job_fraction": float(mask.mean()),
                "gpu_hour_fraction": float(hours[mask].sum() / total_hours) if total_hours else 0.0,
                "num_jobs": int(mask.sum()),
            }
        )
    return Table.from_rows(rows)


def user_gpu_breadth(gpu_jobs: Table) -> dict[str, float]:
    """Fraction of users who ever ran multi-GPU / 3+ / 9+ GPU jobs.

    ``group_by("user")`` dispatches to the streaming aggregate on a
    chunked table; ``max`` is an exact streaming reducer, so the
    fractions are bit-identical on both paths.
    """
    if not is_chunked(gpu_jobs) and gpu_jobs.num_rows == 0:
        raise AnalysisError("no jobs")
    breadth = gpu_jobs.group_by("user").aggregate({"num_gpus": "max"})
    if breadth.num_rows == 0:
        raise AnalysisError("no jobs")
    max_gpus = np.asarray(breadth["num_gpus_max"], dtype=float)
    return {
        "any_multi_gpu": float((max_gpus >= 2).mean()),
        "three_plus": float((max_gpus >= 3).mean()),
        "nine_plus": float((max_gpus >= 9).mean()),
    }


def wait_by_size(gpu_jobs: Table) -> Table:
    """Median queue wait per size bucket (Sec. V text).

    On a chunked stream each bucket's median comes from a one-pass
    :class:`~repro.frame.QuantileSketch` (exact until the sketch first
    compacts, rank-bounded after); job counts stay exact.
    """
    if is_chunked(gpu_jobs):
        sketches = [QuantileSketch() for _ in SIZE_BUCKETS]
        bucket_jobs = [0] * len(SIZE_BUCKETS)
        for chunk in gpu_jobs.chunks():
            counts = np.asarray(chunk["num_gpus"], dtype=float)
            waits = np.asarray(chunk["wait_time_s"], dtype=float)
            for i, (lo, hi) in enumerate(SIZE_BUCKETS):
                mask = (counts >= lo) & (counts <= hi)
                bucket_jobs[i] += int(mask.sum())
                sketches[i].update(waits[mask])
        return Table.from_rows(
            [
                {
                    "gpus": label,
                    "median_wait_s": sketches[i].quantile(0.5) if bucket_jobs[i] else float("nan"),
                    "num_jobs": bucket_jobs[i],
                }
                for i, label in enumerate(SIZE_LABELS)
            ]
        )
    counts = np.asarray(gpu_jobs["num_gpus"], dtype=float)
    waits = np.asarray(gpu_jobs["wait_time_s"], dtype=float)
    rows = []
    for (lo, hi), label in zip(SIZE_BUCKETS, SIZE_LABELS):
        mask = (counts >= lo) & (counts <= hi)
        rows.append(
            {
                "gpus": label,
                "median_wait_s": float(np.median(waits[mask])) if mask.any() else float("nan"),
                "num_jobs": int(mask.sum()),
            }
        )
    return Table.from_rows(rows)


@dataclass(frozen=True)
class MultiGpuCovResult:
    """Cross-GPU CoV per multi-GPU job, all GPUs vs active-only."""

    job_id: int
    num_gpus: int
    num_idle_gpus: int
    cov_all: dict[str, float]
    cov_active: dict[str, float]


def multi_gpu_cov(
    per_gpu: Table,
    metrics: tuple[str, ...] = ("sm_mean", "mem_bw_mean", "mem_size_mean"),
    idle_threshold: float = IDLE_GPU_THRESHOLD,
) -> list[MultiGpuCovResult]:
    """Cross-GPU CoV for every multi-GPU job (Fig 14).

    ``cov_all`` includes idle GPUs; ``cov_active`` drops GPUs whose
    mean SM *and* memory utilization sit below ``idle_threshold``.

    A chunked ``per_gpu`` stream (sorted by ``(job_id, gpu_index)``,
    as the pipeline emits it) folds one job's rows at a time via
    :func:`~repro.analysis.streaming.iter_sorted_groups`; each group's
    row order matches the materialized ``group_by``, so every CoV is
    bit-identical on both paths.
    """
    if is_chunked(per_gpu):
        groups = iter_sorted_groups(per_gpu, "job_id")
    else:
        if per_gpu.num_rows == 0:
            raise AnalysisError("no per-GPU rows")
        groups = ((key[0], group) for key, group in per_gpu.group_by("job_id"))
    empty = True
    results = []
    for job_key, group in groups:
        empty = False
        if group.num_rows < 2:
            continue
        sm = np.asarray(group["sm_mean"], dtype=float)
        mem = np.asarray(group["mem_bw_mean"], dtype=float)
        active = (sm > idle_threshold) | (mem > idle_threshold)
        cov_all = {
            m: coefficient_of_variation(np.asarray(group[m], dtype=float)) for m in metrics
        }
        if active.sum() >= 2:
            cov_active = {
                m: coefficient_of_variation(np.asarray(group[m], dtype=float)[active])
                for m in metrics
            }
        else:
            cov_active = {m: float("nan") for m in metrics}
        results.append(
            MultiGpuCovResult(
                job_id=int(job_key),
                num_gpus=group.num_rows,
                num_idle_gpus=int((~active).sum()),
                cov_all=cov_all,
                cov_active=cov_active,
            )
        )
    if empty:
        raise AnalysisError("no per-GPU rows")
    return results


def idle_gpu_fraction(results: list[MultiGpuCovResult]) -> float:
    """Fraction of multi-GPU jobs with at least half their GPUs idle."""
    if not results:
        raise AnalysisError("no multi-GPU jobs")
    flags = [r.num_idle_gpus * 2 >= r.num_gpus and r.num_idle_gpus > 0 for r in results]
    return float(np.mean(flags))
