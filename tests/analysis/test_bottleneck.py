"""Tests for bottleneck detection."""

import pytest

from repro.analysis.bottleneck import (
    analyse,
    pairwise_bottlenecks,
    single_bottlenecks,
)
from repro.errors import AnalysisError
from repro.frame import Table


def jobs_table(rows):
    defaults = {
        "sm_max": 10.0,
        "mem_bw_max": 10.0,
        "mem_size_max": 10.0,
        "pcie_tx_max": 10.0,
        "pcie_rx_max": 10.0,
    }
    return Table.from_rows([{**defaults, **row} for row in rows])


class TestSingle:
    def test_counts_saturated_jobs(self):
        jobs = jobs_table([{"sm_max": 100.0}, {"sm_max": 50.0}, {"sm_max": 99.5}])
        out = single_bottlenecks(jobs)
        assert out["sm"] == pytest.approx(2.0 / 3.0)
        assert out["mem_bw"] == 0.0

    def test_threshold_configurable(self):
        jobs = jobs_table([{"sm_max": 95.0}])
        assert single_bottlenecks(jobs)["sm"] == 0.0
        assert single_bottlenecks(jobs, threshold=90.0)["sm"] == 1.0

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            single_bottlenecks(jobs_table([]))


class TestPairwise:
    def test_joint_saturation_counted(self):
        jobs = jobs_table(
            [
                {"sm_max": 100.0, "pcie_rx_max": 100.0},
                {"sm_max": 100.0},
                {"pcie_rx_max": 100.0},
            ]
        )
        pairs = pairwise_bottlenecks(jobs)
        assert pairs[("pcie_rx", "sm")] == pytest.approx(1.0 / 3.0)
        assert pairs[("mem_bw", "sm")] == 0.0

    def test_all_pairs_present(self):
        pairs = pairwise_bottlenecks(jobs_table([{}]))
        assert len(pairs) == 10  # C(5, 2)


class TestAnalysis:
    def test_dataclass_accessors(self):
        jobs = jobs_table([{"sm_max": 100.0, "mem_size_max": 100.0}])
        result = analyse(jobs)
        assert result.fraction("sm") == 1.0
        assert result.pair_fraction("mem_size", "sm") == 1.0
        assert result.pair_fraction("sm", "mem_size") == 1.0  # order-free
        assert result.max_pair_fraction == 1.0
        assert result.num_jobs == 1

    def test_unknown_resource_rejected(self):
        result = analyse(jobs_table([{}]))
        with pytest.raises(AnalysisError):
            result.fraction("nvlink")
        with pytest.raises(AnalysisError):
            result.pair_fraction("sm", "nvlink")


class TestOnGeneratedData:
    def test_sm_is_dominant_bottleneck(self, gpu_jobs):
        out = single_bottlenecks(gpu_jobs)
        assert out["sm"] == max(out.values())

    def test_mem_bw_bottleneck_rare(self, gpu_jobs):
        out = single_bottlenecks(gpu_jobs)
        assert out["mem_bw"] < 0.02

    def test_pairs_below_singles(self, gpu_jobs):
        result = analyse(gpu_jobs)
        assert result.max_pair_fraction <= max(result.single.values())

    def test_any_pair_below_ten_percent(self, gpu_jobs):
        result = analyse(gpu_jobs)
        assert result.max_pair_fraction < 0.15  # paper: < 0.10
