"""Opportunity study: two-tier GPU fleet (Sec. VI/VIII)."""

from repro.opportunities.tiering import tiering_study, tiering_sweep


def test_tiering_default_policy(benchmark, dataset):
    outcome = benchmark(tiering_study, dataset.gpu_jobs)
    assert outcome.cost_saving_fraction > 0.0
    assert outcome.routed_job_fraction > 0.2


def test_tiering_design_sweep(benchmark, dataset):
    sweep = benchmark(tiering_sweep, dataset.gpu_jobs)
    assert sweep.num_rows == 9
    assert max(sweep["cost_saving_fraction"]) > 0.1
