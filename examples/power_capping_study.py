"""Operator what-if: power-cap the fleet and buy more GPUs.

Reproduces Fig 9 and then extends it with the Sec. III takeaway: at
iso-power, how many extra GPUs does each cap level buy, and does the
throttling cost outweigh the capacity gain?

Run with ``python examples/power_capping_study.py``.
"""

from repro import WorkloadConfig, generate_dataset
from repro.analysis.power import power_cap_impact, power_headroom
from repro.opportunities.powercap import best_design, powercap_study


def main() -> None:
    dataset = generate_dataset(WorkloadConfig(scale=0.05, seed=11))
    gpu_jobs = dataset.gpu_jobs
    print(dataset.describe())
    print()

    headroom = power_headroom(gpu_jobs)
    print(
        f"median job draws {headroom.median_avg_power_w:.0f} W on average "
        f"(peak {headroom.median_max_power_w:.0f} W) of the "
        f"{headroom.board_power_w:.0f} W board budget"
    )
    print()

    print("Fig 9(b): job impact per cap level")
    for impact in power_cap_impact(gpu_jobs):
        print(
            f"  cap {impact.cap_w:5.0f} W: {impact.unimpacted_fraction:6.1%} unimpacted, "
            f"{impact.max_impacted_fraction:6.1%} peak-impacted, "
            f"{impact.avg_impacted_fraction:6.1%} avg-impacted"
        )
    print()

    print("iso-power over-provisioning (448-GPU budget):")
    study = powercap_study(gpu_jobs)
    print(study.to_string())
    design = best_design(study)
    print()
    print(
        f"best design: cap at {design.cap_w:.0f} W -> {design.num_gpus} GPUs, "
        f"{design.relative_throughput:.2f}x fleet throughput "
        f"(mean per-job speed {design.mean_job_speed:.3f})"
    )


if __name__ == "__main__":
    main()
