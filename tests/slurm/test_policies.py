"""Tests for pluggable queue-priority policies."""

import numpy as np
import pytest

from repro.cluster.spec import supercloud_spec
from repro.slurm.policies import (
    POLICIES,
    FairSharePolicy,
    FcfsPolicy,
    ShortestTimeLimitPolicy,
    SmallestJobFirstPolicy,
    make_policy,
)
from repro.slurm.scheduler import SchedulerConfig, SlurmSimulator
from tests.slurm.test_job import make_request


class TestPolicyPriorities:
    def test_fcfs_flat(self):
        policy = FcfsPolicy()
        a = policy.priority(make_request(job_id=1))
        b = policy.priority(make_request(job_id=2, runtime_s=9999.0))
        assert a == b

    def test_fcfs_keeps_multi_gpu_boost(self):
        policy = FcfsPolicy()
        single = policy.priority(make_request(job_id=1, num_gpus=1))
        multi = policy.priority(make_request(job_id=2, num_gpus=4))
        assert multi > single

    def test_smallest_first_orders_by_gpus(self):
        policy = SmallestJobFirstPolicy()
        small = policy.priority(make_request(job_id=1, num_gpus=1))
        large = policy.priority(make_request(job_id=2, num_gpus=8))
        cpu = policy.priority(make_request(job_id=3, num_gpus=0))
        assert small > large > cpu

    def test_shortest_limit_prefers_tight_walltime(self):
        policy = ShortestTimeLimitPolicy()
        tight = policy.priority(make_request(job_id=1, time_limit_s=3600.0))
        loose = policy.priority(make_request(job_id=2, time_limit_s=90 * 3600.0))
        assert tight > loose

    def test_fair_share_penalises_consumption(self):
        policy = FairSharePolicy(half_decay_gpu_hours=10.0)
        fresh = policy.priority(make_request(job_id=1, user="light"))
        policy.observe_completion(make_request(job_id=2, user="heavy"), gpu_hours=30.0)
        heavy = policy.priority(make_request(job_id=3, user="heavy"))
        assert fresh > heavy

    def test_registry(self):
        for name in POLICIES:
            assert make_policy(name) is not None
        with pytest.raises(KeyError):
            make_policy("lottery")


class TestPoliciesInSimulation:
    def _congested_requests(self):
        """Six 2-GPU jobs on a 1-node cluster, then one small job."""
        requests = [
            make_request(job_id=i, submit_time_s=float(i), num_gpus=2, runtime_s=600.0)
            for i in range(6)
        ]
        requests.append(
            make_request(job_id=6, submit_time_s=6.0, num_gpus=1, runtime_s=60.0)
        )
        return requests

    def _run(self, policy_name):
        simulator = SlurmSimulator(
            supercloud_spec(1), SchedulerConfig(policy=policy_name, backfill_depth=1)
        )
        return simulator.run(self._congested_requests())

    def test_smallest_first_promotes_small_job(self):
        fcfs = self._run("fcfs")
        sjf = self._run("smallest_first")
        wait = lambda result: [
            r.wait_time_s for r in result.records if r.request.job_id == 6
        ][0]
        assert wait(sjf) < wait(fcfs)

    def test_fair_share_spreads_service(self):
        # user "hog" floods the queue; user "guest" submits one job later
        requests = [
            make_request(job_id=i, submit_time_s=float(i), num_gpus=2,
                         runtime_s=600.0, user="hog")
            for i in range(6)
        ]
        requests.append(
            make_request(job_id=6, submit_time_s=10.0, num_gpus=2,
                         runtime_s=600.0, user="guest")
        )
        fair = SlurmSimulator(
            supercloud_spec(1),
            SchedulerConfig(
                policy=FairSharePolicy(half_decay_gpu_hours=0.2), backfill_depth=1
            ),
        ).run(list(requests))
        fcfs = SlurmSimulator(
            supercloud_spec(1), SchedulerConfig(policy="fcfs", backfill_depth=1)
        ).run(list(requests))
        guest_wait = lambda result: [
            r.wait_time_s for r in result.records if r.request.user == "guest"
        ][0]
        assert guest_wait(fair) < guest_wait(fcfs)

    def test_all_policies_complete_every_job(self):
        for name in POLICIES:
            result = self._run(name)
            assert len(result.records) == 7, name
