"""Nested, attribute-carrying spans — the tracing half of `repro.obs`.

A :class:`Tracer` records a tree of timed spans.  Every span has a
stable integer id, a parent (the span that was open on the same thread
when it started), a wall-clock timestamp in microseconds, a duration,
and a free-form attribute dict.  The API is a context manager::

    tracer = Tracer()
    with tracer.span("assemble", category="pipeline") as span:
        ...
        span.set(rows=table.num_rows)

Three properties the rest of the system depends on:

* **thread safety** — each thread keeps its own open-span stack
  (``threading.local``), so concurrent spans nest per thread and land
  in one shared finished list under a lock;
* **a true no-op fast path** — :data:`NULL_TRACER` returns one shared
  inert span object and allocates nothing, so instrumented code can
  unconditionally write ``with tracer.span(...)`` (the enabled check
  is a single attribute load for callers that want to skip even the
  attribute plumbing);
* **cross-process merging** — a worker tracer serialises its finished
  spans to a list of plain dicts (:meth:`Tracer.drain_payload`) and
  the parent re-parents them into its own tree
  (:meth:`Tracer.adopt`), remapping ids so they can never collide.

Timestamps are wall-clock anchored (``time.time`` at import, advanced
by ``time.perf_counter``), so spans recorded in different processes of
one run share a timeline to within clock skew — good enough for a
Chrome trace where workers render as separate process lanes.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

#: perf_counter -> unix epoch seconds, fixed at import time.
_EPOCH_OFFSET_S = time.time() - time.perf_counter()


def _now_us() -> int:
    """Current wall-clock time in integer microseconds."""
    return int((time.perf_counter() + _EPOCH_OFFSET_S) * 1e6)


@dataclass(frozen=True)
class SpanRecord:
    """One finished span."""

    span_id: int
    parent_id: int | None
    name: str
    category: str
    start_us: int
    duration_us: int
    pid: int
    tid: int
    attrs: dict[str, Any] = field(default_factory=dict)
    #: Display track: non-empty for spans recorded by a named worker
    #: tracer (e.g. ``repro-island-2``); exporters use it to render
    #: islands as separate lanes even when one pid ran several.
    track: str = ""

    @property
    def end_us(self) -> int:
        return self.start_us + self.duration_us

    def to_payload(self) -> dict[str, Any]:
        """A plain-dict form that pickles/JSONs across processes."""
        payload = {
            "id": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "cat": self.category,
            "ts": self.start_us,
            "dur": self.duration_us,
            "pid": self.pid,
            "tid": self.tid,
            "attrs": dict(self.attrs),
        }
        if self.track:
            payload["track"] = self.track
        return payload

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "SpanRecord":
        return cls(
            span_id=int(payload["id"]),
            parent_id=None if payload.get("parent") is None else int(payload["parent"]),
            name=str(payload["name"]),
            category=str(payload.get("cat", "repro")),
            start_us=int(payload["ts"]),
            duration_us=int(payload["dur"]),
            pid=int(payload.get("pid", 0)),
            tid=int(payload.get("tid", 0)),
            attrs=dict(payload.get("attrs", {})),
            track=str(payload.get("track", "")),
        )


class _ActiveSpan:
    """The open span yielded by :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "span_id", "parent_id", "name", "category", "attrs", "_start_us")

    def __init__(
        self,
        tracer: "Tracer",
        span_id: int,
        parent_id: int | None,
        name: str,
        category: str,
        attrs: dict[str, Any],
    ) -> None:
        self._tracer = tracer
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.category = category
        self.attrs = attrs
        self._start_us = 0

    def set(self, **attrs: Any) -> "_ActiveSpan":
        """Attach attributes to the span (merged at any point)."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "_ActiveSpan":
        self._tracer._push(self)
        self._start_us = _now_us()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        duration = _now_us() - self._start_us
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self._tracer._pop(self, duration)
        return False


class _NullSpan:
    """Shared inert span: zero allocation, every operation a no-op."""

    __slots__ = ()
    span_id = 0
    parent_id = None

    def set(self, **attrs: Any) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The disabled tracer: every call is a cheap no-op."""

    __slots__ = ()
    enabled = False

    def span(self, name: str, category: str = "repro", **attrs: Any) -> _NullSpan:
        return _NULL_SPAN

    def current_span_id(self) -> None:
        return None

    def depth(self) -> int:
        return 0

    def finished(self) -> list[SpanRecord]:
        return []

    def export_payload(self) -> list[dict[str, Any]]:
        return []

    def drain_payload(self) -> list[dict[str, Any]]:
        return []

    def adopt(self, payload: Iterable[Mapping[str, Any]], parent: int | None = None) -> int:
        return 0


NULL_TRACER = NullTracer()


class Tracer:
    """Collects a thread-safe tree of finished spans.

    ``listener``, when set, is called with every :class:`SpanRecord`
    as its span closes (adopted spans do not re-fire it — they already
    closed in their home process).  The flight recorder hooks it
    (``tracer.listener = recorder.span_closed``) so span closes land
    in the event log too.
    """

    enabled = True

    def __init__(self, process_name: str = "repro") -> None:
        self.process_name = process_name
        #: Track stamped on every span this tracer records; named
        #: worker tracers get their process name so exporters can
        #: render them as distinct lanes.
        self.track = process_name if process_name != "repro" else ""
        self.listener = None
        self._ids = itertools.count(1)
        self._lock = threading.Lock()
        self._finished: list[SpanRecord] = []
        self._local = threading.local()

    # ------------------------------------------------------------------
    # Span lifecycle
    # ------------------------------------------------------------------
    def span(self, name: str, category: str = "repro", **attrs: Any) -> _ActiveSpan:
        """Open a span; use as a context manager."""
        stack = self._stack()
        parent_id = stack[-1].span_id if stack else None
        return _ActiveSpan(self, next(self._ids), parent_id, name, category, attrs)

    def _stack(self) -> list[_ActiveSpan]:
        try:
            return self._local.stack
        except AttributeError:
            stack: list[_ActiveSpan] = []
            self._local.stack = stack
            return stack

    def _push(self, span: _ActiveSpan) -> None:
        stack = self._stack()
        # re-resolve the parent at entry: span() and __enter__ may be
        # separated by other spans opening on this thread
        span.parent_id = stack[-1].span_id if stack else span.parent_id
        stack.append(span)

    def _pop(self, span: _ActiveSpan, duration_us: int) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        else:  # tolerate mismatched exits rather than corrupting the stack
            try:
                stack.remove(span)
            except ValueError:
                pass
        record = SpanRecord(
            span_id=span.span_id,
            parent_id=span.parent_id,
            name=span.name,
            category=span.category,
            start_us=span._start_us,
            duration_us=max(duration_us, 0),
            pid=os.getpid(),
            tid=threading.get_ident(),
            attrs=span.attrs,
            track=self.track,
        )
        with self._lock:
            self._finished.append(record)
        listener = self.listener
        if listener is not None:
            listener(record)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def current_span_id(self) -> int | None:
        stack = self._stack()
        return stack[-1].span_id if stack else None

    def depth(self) -> int:
        """How many spans are open on the calling thread."""
        return len(self._stack())

    def finished(self) -> list[SpanRecord]:
        """Finished spans, in completion order."""
        with self._lock:
            return list(self._finished)

    def roots(self) -> list[SpanRecord]:
        """Finished spans with no parent, in start order."""
        finished = self.finished()
        ids = {record.span_id for record in finished}
        return sorted(
            (r for r in finished if r.parent_id is None or r.parent_id not in ids),
            key=lambda r: r.start_us,
        )

    # ------------------------------------------------------------------
    # Cross-process propagation
    # ------------------------------------------------------------------
    def export_payload(self) -> list[dict[str, Any]]:
        """Finished spans as plain dicts (picklable, JSON-able)."""
        return [record.to_payload() for record in self.finished()]

    def drain_payload(self) -> list[dict[str, Any]]:
        """Export finished spans and clear them (worker hand-off)."""
        with self._lock:
            finished, self._finished = self._finished, []
        return [record.to_payload() for record in finished]

    def adopt(
        self, payload: Iterable[Mapping[str, Any]], parent: int | None = None
    ) -> int:
        """Merge spans exported by another tracer into this one.

        Span ids are remapped onto this tracer's id space (collisions
        are impossible) and the payload's root spans — those whose
        parent is ``None`` or absent from the payload — are re-parented
        under ``parent``.  Worker pid/tid are preserved so the merged
        trace still shows which process did the work.  Returns the
        number of spans adopted.
        """
        records = [SpanRecord.from_payload(p) for p in payload]
        known = {record.span_id for record in records}
        remap = {record.span_id: next(self._ids) for record in records}
        adopted = []
        for record in records:
            if record.parent_id is not None and record.parent_id in known:
                new_parent = remap[record.parent_id]
            else:
                new_parent = parent
            adopted.append(
                SpanRecord(
                    span_id=remap[record.span_id],
                    parent_id=new_parent,
                    name=record.name,
                    category=record.category,
                    start_us=record.start_us,
                    duration_us=record.duration_us,
                    pid=record.pid,
                    tid=record.tid,
                    attrs=record.attrs,
                    track=record.track,
                )
            )
        with self._lock:
            self._finished.extend(adopted)
        return len(adopted)
