"""Per-figure reproduction harness.

One module per paper figure/table.  Every module exposes
``run(dataset) -> FigureResult`` where the result carries the raw data
series (what a plot would draw) *and* structured paper-vs-measured
comparison rows.  :mod:`repro.figures.report` runs everything and
renders EXPERIMENTS.md.
"""

from repro.figures.base import Comparison, FigureResult
from repro.figures.registry import all_figures, get_figure, run_figure

__all__ = ["Comparison", "FigureResult", "all_figures", "get_figure", "run_figure"]
