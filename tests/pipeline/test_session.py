"""Tests for the pipeline Session API."""

import math

import pytest

from repro.figures import registry
from repro.figures.report import run_all
from repro.pipeline import BUILD_STAGES, Session
from repro.workload.generator import WorkloadConfig

CONFIG = WorkloadConfig(scale=0.01, seed=31)


@pytest.fixture(scope="module")
def session():
    s = Session(CONFIG)
    s.dataset()
    return s


class TestStagedExecution:
    def test_build_runs_stages_in_order(self, session):
        assert tuple(session.instrumentation.stage_names()) == BUILD_STAGES

    def test_stage_rows_populated(self, session):
        for record in session.stages:
            assert record.rows > 0, record.name
            assert record.seconds >= 0.0

    def test_build_counted_once(self, session):
        session.dataset()
        session.dataset()
        assert session.instrumentation.count("build") == 1
        assert session.instrumentation.count("memory_hit") == 2

    def test_dataset_memoized(self, session):
        assert session.dataset() is session.dataset()

    def test_summary_surfaces_stages_and_counters(self, session):
        text = session.summary()
        for stage in BUILD_STAGES:
            assert f"stage {stage}:" in text
        assert "builds: 1" in text
        assert session.key in text


class TestScenarios:
    def test_from_scenario_days_override(self):
        s = Session.from_scenario("paper", scale=0.01, seed=5, days=30.0)
        assert s.config.days == 30.0
        assert s.config.scale == 0.01

    def test_unknown_scenario_rejected(self):
        from repro.errors import WorkloadError

        with pytest.raises(WorkloadError):
            Session.from_scenario("moonbase", scale=0.01)

    def test_key_distinguishes_scenarios(self):
        paper = Session.from_scenario("paper", scale=0.01, seed=5)
        surge = Session.from_scenario("exploration_surge", scale=0.01, seed=5)
        assert paper.key != surge.key


class TestFigures:
    def test_run_figures_subset(self, session):
        results = session.run_figures(["fig15", "fig04"])
        assert [r.figure_id for r in results] == ["fig15", "fig04"]

    def test_unknown_figure_rejected(self, session):
        from repro.errors import AnalysisError

        with pytest.raises(AnalysisError):
            session.run_figures(["fig99"])

    def test_registry_run_all_accepts_dataset(self, session):
        results = registry.run_all(session.dataset(), ["fig15"])
        assert results[0].figure_id == "fig15"

    def test_report_run_all_matches_session(self, session):
        via_dataset = run_all(session.dataset())
        via_session = run_all(session)
        assert [r.figure_id for r in via_dataset] == [r.figure_id for r in via_session]
        for a, b in zip(via_dataset, via_session):
            for ca, cb in zip(a.comparisons, b.comparisons):
                assert ca.name == cb.name
                assert ca.measured == cb.measured or (
                    math.isnan(ca.measured) and math.isnan(cb.measured)
                )


class TestParallelFigures:
    def test_parallel_matches_serial(self, tmp_path):
        ids = ["table1", "fig03", "fig15", "queue_waits"]
        parallel = Session(CONFIG, cache_dir=tmp_path, workers=2)
        parallel_results = parallel.run_figures(ids)
        assert parallel.instrumentation.count("figure_pool_runs") == 1

        serial = Session(CONFIG)
        serial_results = serial.run_figures(ids)
        for a, b in zip(parallel_results, serial_results):
            assert a.figure_id == b.figure_id
            for ca, cb in zip(a.comparisons, b.comparisons):
                # workers compute from the cache-loaded dataset, whose
                # series went through the codec's 0.25% quantisation
                assert ca.measured == pytest.approx(cb.measured, rel=0.02, abs=0.5, nan_ok=True)

    def test_figure_cache_short_circuits_dataset(self, tmp_path):
        first = Session(CONFIG, cache_dir=tmp_path)
        first.run_figures(["fig15"])

        second = Session(CONFIG, cache_dir=tmp_path)
        results = second.run_figures(["fig15"])
        assert results[0].figure_id == "fig15"
        assert second.instrumentation.count("figure_cache_hit") == 1
        # no dataset was materialized at all: no build, no cache load
        assert second.instrumentation.stage_names() == []
