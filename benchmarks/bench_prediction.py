"""Sec. IV follow-on: how predictable is user behavior?"""

from repro.analysis.prediction import predictability_gain, strategy_comparison


def test_prediction_strategy_comparison(benchmark, dataset):
    comparison = benchmark(strategy_comparison, dataset.gpu_jobs)
    # the paper's negative result: user history barely helps runtime
    assert predictability_gain(comparison, "run_time_s") < 0.5
