"""Programmatic fidelity scorecard against the paper's numbers.

``python -m repro validate`` (and the test suite) uses this module to
grade a generated dataset against every statistic in
:class:`~repro.workload.calibration.PaperTargets`.  Each check is
declared once with its tolerance semantics:

* ``ratio`` — measured/paper must fall inside a band (default 0.5-2x);
* ``upper`` / ``lower`` — the paper states an inequality ("less than
  10%", "over 60%"); we grade against the bound, not the number;
* ``abs`` — absolute tolerance for shares near zero.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dataset import SupercloudDataset
from repro.errors import AnalysisError
from repro.figures.registry import run_figure
from repro.frame import Table


@dataclass(frozen=True)
class Check:
    """One graded statistic."""

    figure_id: str
    name: str
    kind: str = "ratio"       # ratio | upper | lower | abs
    low: float = 0.5          # ratio band
    high: float = 2.0
    tolerance: float = 0.05   # for kind="abs"


#: The scorecard: every comparison the figures emit, with grading
#: semantics.  Inequality-type paper claims are graded as bounds.
CHECKS: tuple[Check, ...] = (
    Check("fig03", "GPU runtime p25", low=0.4, high=2.5),
    Check("fig03", "GPU runtime median"),
    Check("fig03", "GPU runtime p75", low=0.3),
    Check("fig03", "CPU runtime median"),
    Check("fig03", "GPU jobs waiting <2% of service", kind="lower"),
    Check("fig03", "CPU jobs waiting <2% of service", kind="upper", tolerance=0.15),
    Check("fig03", "GPU jobs waiting <1 min", kind="lower"),
    Check("fig03", "CPU jobs waiting >1 min", kind="lower", tolerance=0.2),
    Check("fig04", "SM util median", low=0.35),
    Check("fig04", "memory util median", low=0.35),
    Check("fig04", "memory size median"),
    Check("fig04", "jobs with SM util >50%", low=0.4),
    Check("fig04", "jobs with memory util >50%", kind="abs", tolerance=0.05),
    Check("fig04", "jobs with memory size >50%", low=0.4),
    Check("fig06", "active-time share p25", low=0.1, high=3.0),
    Check("fig06", "active-time share median", low=0.6, high=1.4),
    Check("fig06", "active-time share p75", low=0.8, high=1.2),
    Check("fig06", "idle interval CoV median", low=0.4, high=2.5),
    Check("fig06", "active interval CoV median", low=0.4, high=2.5),
    Check("fig07", "sm CoV median", low=0.4, high=2.5),
    Check("fig07", "mem_bw CoV median", low=0.4, high=2.5),
    Check("fig07", "sm bottleneck fraction", low=0.4),
    Check("fig07", "mem_bw bottleneck fraction", kind="abs", tolerance=0.02),
    Check("fig08", "max of any pair (< 0.10)", kind="upper", tolerance=0.05),
    Check("fig09", "average power median", low=0.6, high=1.6),
    Check("fig09", "maximum power median", low=0.6, high=1.6),
    Check("fig09", "unimpacted at 150 W cap", kind="lower", tolerance=0.1),
    Check("fig09", "avg-impacted at 150 W cap", kind="upper"),
    Check("fig10", "user avg runtime median", low=0.4, high=2.5),
    Check("fig10", "user avg SM median", low=0.4, high=2.5),
    Check("fig10", "user avg memory median", low=0.3, high=3.0),
    Check("fig11", "user runtime CoV median", low=0.5, high=2.0),
    Check("fig11", "user SM CoV median", low=0.5, high=2.0),
    Check("fig12", "njobs vs avg SM (high +)", kind="lower", tolerance=0.35),
    Check("fig12", "njobs vs SM CoV (< 0.5)", kind="upper", tolerance=0.2),
    Check("fig13", "single-GPU job fraction", kind="abs", tolerance=0.08),
    Check("fig13", "jobs with >2 GPUs", kind="abs", tolerance=0.03),
    Check("fig13", "jobs with >=9 GPUs (<1%)", kind="upper", tolerance=0.01),
    Check("fig13", "multi-GPU share of GPU hours", low=0.6, high=1.4),
    Check("fig13", "users with any multi-GPU job", kind="abs", tolerance=0.12),
    Check("fig13", "users with >=3-GPU jobs", kind="abs", tolerance=0.08),
    Check("fig14", "multi-GPU jobs with idle GPUs (>=half)", kind="abs", tolerance=0.18),
    Check("fig15", "mature job share", kind="abs", tolerance=0.1),
    Check("fig15", "exploratory job share", kind="abs", tolerance=0.08),
    Check("fig15", "development job share", kind="abs", tolerance=0.08),
    Check("fig15", "ide job share", kind="abs", tolerance=0.025),
    Check("fig15", "mature GPU-hour share", kind="abs", tolerance=0.18),
    Check("fig15", "exploratory GPU-hour share", kind="abs", tolerance=0.15),
    Check("fig15", "ide GPU-hour share", kind="abs", tolerance=0.1),
    Check("fig16", "mature SM median", low=0.5, high=1.8),
    Check("fig16", "ide SM median", kind="abs", tolerance=1.0),
    Check("fig16", "mature/expl >> dev/IDE ordering holds", kind="abs", tolerance=0.0),
    Check("fig17", "users with mature job share <40%", kind="abs", tolerance=0.3),
    Check("queue_waits", "median wait, 1 GPU(s)", low=0.3, high=3.0),
    Check("queue_waits", "median wait, 2 GPU(s)", low=0.3, high=3.0),
    Check("pareto", "top 5% users' job share", kind="abs", tolerance=0.15),
    Check("pareto", "top 20% users' job share", kind="abs", tolerance=0.12),
)


@dataclass(frozen=True)
class CheckResult:
    check: Check
    paper: float
    measured: float
    passed: bool

    @property
    def ratio(self) -> float:
        return self.measured / self.paper if self.paper else float("nan")


def grade(check: Check, paper: float, measured: float) -> bool:
    """Apply one check's tolerance semantics."""
    if check.kind == "ratio":
        if paper == 0:
            return abs(measured) <= check.tolerance
        return check.low <= measured / paper <= check.high
    if check.kind == "upper":
        return measured <= paper + check.tolerance
    if check.kind == "lower":
        return measured >= paper - check.tolerance
    if check.kind == "abs":
        return abs(measured - paper) <= check.tolerance
    raise AnalysisError(f"unknown check kind {check.kind!r}")


def validate_dataset(dataset: SupercloudDataset) -> list[CheckResult]:
    """Run every check against a dataset; figures run once each."""
    results_by_figure = {}
    out: list[CheckResult] = []
    for check in CHECKS:
        if check.figure_id not in results_by_figure:
            results_by_figure[check.figure_id] = run_figure(check.figure_id, dataset)
        figure = results_by_figure[check.figure_id]
        try:
            comparison = figure.get(check.name)
        except KeyError:
            continue  # the statistic was not computable on this dataset
        out.append(
            CheckResult(
                check=check,
                paper=comparison.paper,
                measured=comparison.measured,
                passed=grade(check, comparison.paper, comparison.measured),
            )
        )
    return out


def scorecard(results: list[CheckResult]) -> Table:
    """Results as a table (one row per check)."""
    return Table.from_rows(
        [
            {
                "figure": r.check.figure_id,
                "statistic": r.check.name,
                "kind": r.check.kind,
                "paper": r.paper,
                "measured": round(r.measured, 4),
                "passed": r.passed,
            }
            for r in results
        ]
    )


def pass_fraction(results: list[CheckResult]) -> float:
    """Fraction of checks passing."""
    if not results:
        raise AnalysisError("no checks ran")
    return sum(r.passed for r in results) / len(results)
