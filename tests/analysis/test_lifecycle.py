"""Tests for life-cycle classification and breakdowns."""

import numpy as np
import pytest

from repro.analysis.lifecycle import (
    class_utilization_boxes,
    classify_exit,
    lifecycle_breakdown,
    user_lifecycle_composition,
)
from repro.errors import AnalysisError
from repro.frame import Table


class TestClassifyExit:
    def test_zero_exit_is_mature(self):
        assert classify_exit(0, cancelled_by_user=False, timed_out=False) == "mature"

    def test_cancel_is_exploratory(self):
        assert classify_exit(0, cancelled_by_user=True, timed_out=False) == "exploratory"

    def test_nonzero_exit_is_development(self):
        assert classify_exit(1, cancelled_by_user=False, timed_out=False) == "development"

    def test_timeout_is_ide(self):
        assert classify_exit(0, cancelled_by_user=False, timed_out=True) == "ide"

    def test_timeout_takes_precedence(self):
        assert classify_exit(1, cancelled_by_user=True, timed_out=True) == "ide"


def class_jobs(spec):
    """spec: [(class, runtime_s, gpu_hours, user, sm), ...]"""
    rows = []
    for cls, runtime, hours, user, sm in spec:
        rows.append(
            {
                "lifecycle_class": cls,
                "run_time_s": runtime,
                "gpu_hours": hours,
                "user": user,
                "sm_mean": sm,
                "mem_bw_mean": sm / 10.0,
                "mem_size_mean": sm / 2.0,
            }
        )
    return Table.from_rows(rows)


class TestBreakdown:
    def test_shares_and_medians(self):
        jobs = class_jobs(
            [
                ("mature", 600.0, 1.0, "a", 20.0),
                ("mature", 1200.0, 2.0, "a", 25.0),
                ("ide", 43200.0, 12.0, "b", 0.0),
                ("exploratory", 3600.0, 1.0, "a", 15.0),
            ]
        )
        table = lifecycle_breakdown(jobs)
        by_class = {r["lifecycle_class"]: r for r in table.iter_rows()}
        assert by_class["mature"]["job_fraction"] == 0.5
        assert by_class["ide"]["gpu_hour_fraction"] == pytest.approx(12.0 / 16.0)
        assert by_class["mature"]["median_runtime_min"] == pytest.approx(15.0)
        assert np.isnan(by_class["development"]["median_runtime_min"])

    def test_hour_fractions_sum_to_one(self, gpu_jobs):
        table = lifecycle_breakdown(gpu_jobs)
        assert sum(table["gpu_hour_fraction"]) == pytest.approx(1.0)
        assert sum(table["job_fraction"]) == pytest.approx(1.0)

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            lifecycle_breakdown(Table.empty(["lifecycle_class"]))


class TestUtilizationBoxes:
    def test_box_statistics(self):
        jobs = class_jobs(
            [("mature", 1.0, 1.0, "a", v) for v in (10.0, 20.0, 30.0, 40.0, 50.0)]
        )
        boxes = class_utilization_boxes(jobs)
        sm_row = [r for r in boxes.iter_rows() if r["metric"] == "sm_mean"][0]
        assert sm_row["median"] == 30.0
        assert sm_row["p25"] == 20.0
        assert sm_row["p75"] == 40.0

    def test_absent_class_skipped(self):
        jobs = class_jobs([("mature", 1.0, 1.0, "a", 5.0)])
        boxes = class_utilization_boxes(jobs)
        assert set(boxes["lifecycle_class"]) == {"mature"}


class TestUserComposition:
    def test_fractions_per_user_sum_to_one(self):
        jobs = class_jobs(
            [
                ("mature", 1.0, 1.0, "a", 1.0),
                ("ide", 1.0, 3.0, "a", 0.0),
                ("development", 1.0, 1.0, "b", 0.0),
            ]
        )
        table = user_lifecycle_composition(jobs, by="jobs")
        for row in table.iter_rows():
            total = sum(row[f"{c}_fraction"] for c in ("mature", "exploratory", "development", "ide"))
            assert total == pytest.approx(1.0)

    def test_by_hours_weights_differently(self):
        jobs = class_jobs(
            [("mature", 1.0, 1.0, "a", 1.0), ("ide", 1.0, 3.0, "a", 0.0)]
        )
        by_jobs = user_lifecycle_composition(jobs, by="jobs")
        by_hours = user_lifecycle_composition(jobs, by="gpu_hours")
        assert by_jobs.row(0)["mature_fraction"] == 0.5
        assert by_hours.row(0)["mature_fraction"] == 0.25

    def test_sorted_by_mature_fraction(self, gpu_jobs):
        table = user_lifecycle_composition(gpu_jobs)
        fractions = np.asarray(table["mature_fraction"], dtype=float)
        assert (np.diff(fractions) <= 1e-9).all()

    def test_percentile_column_spans_0_100(self, gpu_jobs):
        table = user_lifecycle_composition(gpu_jobs)
        pct = np.asarray(table["user_percentile"], dtype=float)
        assert 0.0 < pct[0] < pct[-1] < 100.0

    def test_invalid_by_rejected(self, gpu_jobs):
        with pytest.raises(AnalysisError):
            user_lifecycle_composition(gpu_jobs, by="minutes")
