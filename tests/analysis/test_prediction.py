"""Tests for the user-behavior prediction study."""

import numpy as np
import pytest

from repro.analysis.prediction import (
    STRATEGIES,
    predict_user_behavior,
    predictability_gain,
    strategy_comparison,
)
from repro.errors import AnalysisError
from repro.frame import Table


def job_stream(spec):
    """spec: [(user, submit, runtime, sm), ...]"""
    return Table.from_rows(
        [
            {"user": user, "submit_time_s": submit, "run_time_s": runtime, "sm_mean": sm}
            for user, submit, runtime, sm in spec
        ]
    )


def constant_user(n=20, value=100.0, user="a"):
    return [(user, float(i), value, 50.0) for i in range(n)]


class TestPredictUserBehavior:
    def test_perfectly_regular_user_zero_error(self):
        jobs = job_stream(constant_user())
        report = predict_user_behavior(jobs, strategy="user_mean")
        assert report.median_relative_error == pytest.approx(0.0)
        assert report.within_2x_fraction == 1.0

    def test_warmup_respected(self):
        jobs = job_stream(constant_user(n=10))
        report = predict_user_behavior(jobs, warmup=5)
        # first prediction after 5 prior jobs AND a global history
        assert report.num_predictions == 5

    def test_erratic_user_high_error(self):
        rng = np.random.default_rng(0)
        spec = [("a", float(i), float(rng.lognormal(5, 2)), 10.0) for i in range(60)]
        report = predict_user_behavior(job_stream(spec), strategy="user_last")
        assert report.median_relative_error > 0.5

    def test_last_value_tracks_trend_better_than_mean(self):
        # runtime doubles every job: last-value is off 2x, mean much more
        spec = [("a", float(i), 2.0**i, 10.0) for i in range(12)]
        last = predict_user_behavior(job_stream(spec), strategy="user_last")
        mean = predict_user_behavior(job_stream(spec), strategy="user_mean")
        assert last.mean_log_error < mean.mean_log_error

    def test_all_strategies_run(self):
        jobs = job_stream(constant_user(n=15))
        for strategy in STRATEGIES:
            report = predict_user_behavior(jobs, strategy=strategy)
            assert report.num_predictions > 0

    def test_unknown_strategy_rejected(self):
        with pytest.raises(AnalysisError):
            predict_user_behavior(job_stream(constant_user()), strategy="oracle")

    def test_invalid_warmup_rejected(self):
        with pytest.raises(AnalysisError):
            predict_user_behavior(job_stream(constant_user()), warmup=0)

    def test_too_few_jobs_rejected(self):
        with pytest.raises(AnalysisError, match="no predictions"):
            predict_user_behavior(job_stream(constant_user(n=2)))

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            predict_user_behavior(job_stream([]))

    def test_zero_valued_actuals_skipped(self):
        spec = constant_user(n=10) + [("a", 100.0, 200.0, 0.0)]
        report = predict_user_behavior(job_stream(spec), metric="sm_mean")
        assert report.num_predictions == 7  # the zero-SM job is not scored


class TestComparison:
    def test_rows_cover_grid(self):
        jobs = job_stream(constant_user(n=15))
        table = strategy_comparison(jobs, metrics=("run_time_s",))
        assert table.num_rows == len(STRATEGIES)

    def test_gain_for_predictable_population(self):
        # two users with very different but internally constant runtimes:
        # per-user strategies crush the global baseline
        spec = constant_user(n=15, value=10.0, user="a") + constant_user(
            n=15, value=1000.0, user="b"
        )
        table = strategy_comparison(job_stream(spec), metrics=("run_time_s",))
        assert predictability_gain(table, "run_time_s") > 0.8

    def test_gain_missing_metric_rejected(self):
        jobs = job_stream(constant_user(n=15))
        table = strategy_comparison(jobs, metrics=("run_time_s",))
        with pytest.raises(AnalysisError):
            predictability_gain(table, "sm_mean")


class TestOnGeneratedData:
    @pytest.fixture(scope="class")
    def comparison(self, gpu_jobs):
        return strategy_comparison(gpu_jobs, metrics=("run_time_s", "sm_mean"))

    def test_runtime_hard_to_predict(self, comparison):
        """The paper's conclusion: user history barely helps runtime."""
        gain = predictability_gain(comparison, "run_time_s")
        assert gain < 0.5

    def test_runtime_errors_large(self, comparison):
        rows = [
            r
            for r in comparison.iter_rows()
            if r["metric"] == "run_time_s" and r["strategy"] == "user_mean"
        ]
        assert rows[0]["median_relative_error"] > 0.4

    def test_many_predictions_made(self, comparison):
        assert all(r["num_predictions"] > 500 for r in comparison.iter_rows())
