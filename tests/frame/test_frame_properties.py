"""Property-based tests for the frame substrate (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frame import Table, concat_tables

names = st.text(alphabet="abcdefgh", min_size=1, max_size=4)
floats = st.floats(allow_nan=False, allow_infinity=False, width=32)


@st.composite
def tables(draw, min_rows=0, max_rows=30):
    n = draw(st.integers(min_rows, max_rows))
    num_cols = draw(st.integers(1, 4))
    data = {}
    for i in range(num_cols):
        kind = draw(st.sampled_from(["num", "str"]))
        if kind == "num":
            data[f"c{i}"] = draw(
                st.lists(floats, min_size=n, max_size=n)
            )
        else:
            data[f"c{i}"] = draw(st.lists(names, min_size=n, max_size=n))
    return Table(data)


@given(tables())
@settings(max_examples=60, deadline=None)
def test_filter_then_count_matches_mask(t):
    if t.num_rows == 0:
        return
    mask = np.zeros(t.num_rows, dtype=bool)
    mask[:: max(1, t.num_rows // 3)] = True
    assert t.filter(mask).num_rows == int(mask.sum())


@given(tables(min_rows=1))
@settings(max_examples=60, deadline=None)
def test_sort_is_permutation(t):
    name = t.column_names[0]
    ordered = t.sort_by(name)
    assert ordered.num_rows == t.num_rows
    original = sorted(map(str, t[name]))
    after = sorted(map(str, ordered[name]))
    assert original == after


@given(tables(min_rows=1))
@settings(max_examples=60, deadline=None)
def test_sort_is_monotone(t):
    name = t.column_names[0]
    values = [str(v) if t.dtypes()[name] != "numeric" else float(v) for v in t.sort_by(name)[name]]
    assert all(a <= b for a, b in zip(values, values[1:]))


@given(tables())
@settings(max_examples=60, deadline=None)
def test_concat_with_self_doubles_rows(t):
    doubled = concat_tables([t, t])
    assert doubled.num_rows == 2 * t.num_rows
    assert doubled.column_names == t.column_names


@given(tables(min_rows=1))
@settings(max_examples=60, deadline=None)
def test_group_sizes_partition_rows(t):
    name = t.column_names[0]
    gb = t.group_by(name)
    assert sum(len(sub) for _, sub in gb) == t.num_rows


@given(tables(min_rows=1))
@settings(max_examples=60, deadline=None)
def test_take_roundtrip_identity(t):
    idx = np.arange(t.num_rows)
    again = t.take(idx)
    for name in t.column_names:
        assert list(map(str, again[name])) == list(map(str, t[name]))


@given(tables(min_rows=1), st.integers(0, 100))
@settings(max_examples=60, deadline=None)
def test_head_never_exceeds_length(t, n):
    assert t.head(n).num_rows == min(n, t.num_rows)


@given(tables(min_rows=1))
@settings(max_examples=40, deadline=None)
def test_csv_roundtrip_preserves_shape(t):
    import tempfile
    from pathlib import Path

    from repro.frame import read_csv, write_csv

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "t.csv"
        again = read_csv(write_csv(t, path))
    assert again.num_rows == t.num_rows
    assert again.column_names == t.column_names
