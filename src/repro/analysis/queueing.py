"""Analytic queueing cross-checks.

The scheduler and sharing simulators are discrete-event programs; this
module provides closed-form counterparts (Erlang C for M/M/c, the
Allen-Cunneen approximation for M/G/c) so simulation results can be
sanity-checked against queueing theory — and so capacity questions
("how many GPUs for a 1-minute wait?") can be answered without a
simulation when the workload is roughly stationary.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import AnalysisError


def erlang_c(servers: int, offered_load: float) -> float:
    """P(arriving job waits) in an M/M/c queue.

    ``offered_load`` is a = lambda/mu in Erlangs; requires a < c for
    stability.  Computed with the numerically-stable recurrence on the
    Erlang-B blocking probability.
    """
    if servers < 1:
        raise AnalysisError("need at least one server")
    if offered_load < 0:
        raise AnalysisError("offered load must be non-negative")
    if offered_load >= servers:
        return 1.0
    # Erlang B recurrence: B(0) = 1; B(k) = a B(k-1) / (k + a B(k-1))
    blocking = 1.0
    for k in range(1, servers + 1):
        blocking = offered_load * blocking / (k + offered_load * blocking)
    rho = offered_load / servers
    return blocking / (1.0 - rho + rho * blocking)


def mmc_mean_wait(arrival_rate: float, mean_service_s: float, servers: int) -> float:
    """Mean queueing delay (excluding service) of an M/M/c queue."""
    if arrival_rate < 0 or mean_service_s <= 0:
        raise AnalysisError("rates must be positive")
    offered = arrival_rate * mean_service_s
    if offered >= servers:
        return float("inf")
    wait_probability = erlang_c(servers, offered)
    return wait_probability * mean_service_s / (servers - offered)


def mgc_mean_wait(
    arrival_rate: float,
    mean_service_s: float,
    service_scv: float,
    servers: int,
) -> float:
    """Allen-Cunneen approximation for M/G/c mean waiting time.

    ``service_scv`` is the squared coefficient of variation of service
    times (1.0 recovers M/M/c).  Heavy-tailed GPU-job runtimes have
    SCV >> 1, which is why bursty clusters queue worse than their
    utilization suggests.
    """
    if service_scv < 0:
        raise AnalysisError("SCV must be non-negative")
    base = mmc_mean_wait(arrival_rate, mean_service_s, servers)
    if math.isinf(base):
        return base
    return base * (1.0 + service_scv) / 2.0


@dataclass(frozen=True)
class QueueingCrossCheck:
    """Simulated vs analytic waits for one configuration."""

    servers: int
    offered_load: float
    simulated_mean_wait_s: float
    analytic_mean_wait_s: float

    @property
    def utilization(self) -> float:
        return self.offered_load / self.servers

    @property
    def ratio(self) -> float:
        if self.analytic_mean_wait_s == 0:
            return float("nan")
        return self.simulated_mean_wait_s / self.analytic_mean_wait_s


def workload_parameters(gpu_jobs) -> dict[str, float]:
    """Stationary-workload parameters from a job table.

    Returns arrival rate (jobs/s over the observed span), mean service
    time, its SCV, and the offered load in GPU-Erlangs (weighting each
    job by its GPU count).  A chunked table folds the same four
    numbers through :class:`~repro.frame.StreamingMoments` plus a
    weighted-sum accumulator, one bounded pass.
    """
    from repro.analysis.streaming import is_chunked
    from repro.frame import StreamingMoments

    if is_chunked(gpu_jobs):
        submit_moments = StreamingMoments()
        runtime_moments = StreamingMoments()
        weighted = 0.0
        for chunk in gpu_jobs.chunks():
            runtimes = np.asarray(chunk["run_time_s"], dtype=float)
            submit_moments.update(np.asarray(chunk["submit_time_s"], dtype=float))
            runtime_moments.update(runtimes)
            weighted += float((runtimes * np.asarray(chunk["num_gpus"], dtype=float)).sum())
        if submit_moments.count < 2:
            raise AnalysisError("need at least two jobs")
        span = submit_moments.maximum - submit_moments.minimum
        if span <= 0:
            raise AnalysisError("all jobs submitted at the same instant")
        mean_service = runtime_moments.mean()
        std = runtime_moments.std()
        return {
            "arrival_rate_per_s": submit_moments.count / span,
            "mean_service_s": mean_service,
            "service_scv": std * std / mean_service**2 if mean_service > 0 else 0.0,
            "offered_gpu_load": weighted / span,
        }

    submits = np.asarray(gpu_jobs["submit_time_s"], dtype=float)
    runtimes = np.asarray(gpu_jobs["run_time_s"], dtype=float)
    gpus = np.asarray(gpu_jobs["num_gpus"], dtype=float)
    if submits.size < 2:
        raise AnalysisError("need at least two jobs")
    span = float(submits.max() - submits.min())
    if span <= 0:
        raise AnalysisError("all jobs submitted at the same instant")
    arrival_rate = submits.size / span
    mean_service = float(runtimes.mean())
    scv = float(runtimes.var() / mean_service**2) if mean_service > 0 else 0.0
    offered_gpu_load = float((runtimes * gpus).sum() / span)
    return {
        "arrival_rate_per_s": arrival_rate,
        "mean_service_s": mean_service,
        "service_scv": scv,
        "offered_gpu_load": offered_gpu_load,
    }


def required_gpus_for_wait(
    arrival_rate: float,
    mean_service_s: float,
    service_scv: float,
    target_wait_s: float,
    max_servers: int = 4096,
) -> int:
    """Smallest server count with an M/G/c mean wait under target."""
    if target_wait_s < 0:
        raise AnalysisError("target wait must be non-negative")
    floor = int(math.ceil(arrival_rate * mean_service_s))
    for servers in range(max(floor, 1), max_servers + 1):
        if mgc_mean_wait(arrival_rate, mean_service_s, service_scv, servers) <= target_wait_s:
            return servers
    raise AnalysisError(f"even {max_servers} servers miss the {target_wait_s}s target")
