"""Tests for the user population model."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workload.calibration import GeneratorKnobs
from repro.workload.users import UserPopulation


@pytest.fixture(scope="module")
def population():
    return UserPopulation(191, GeneratorKnobs(), np.random.default_rng(1))


class TestConstruction:
    def test_user_count(self, population):
        assert len(population) == 191

    def test_unique_names(self, population):
        names = [p.name for p in population.profiles]
        assert len(set(names)) == 191

    def test_too_few_users_rejected(self):
        with pytest.raises(WorkloadError):
            UserPopulation(1, GeneratorKnobs(), np.random.default_rng(0))

    def test_weights_positive(self, population):
        assert all(p.weight > 0 for p in population.profiles)

    def test_util_multiplier_clipped(self, population):
        mults = [p.util_multiplier for p in population.profiles]
        assert min(mults) >= 0.2
        assert max(mults) <= 2.2


class TestGpuCategories:
    def test_category_fractions(self, population):
        counts = {}
        for p in population.profiles:
            counts[p.gpu_category] = counts.get(p.gpu_category, 0) + 1
        assert counts["large"] == pytest.approx(0.052 * 191, abs=1.5)
        assert counts["medium"] == pytest.approx(0.078 * 191, abs=1.5)
        assert counts["single"] + counts["dual"] > 150

    def test_heaviest_users_are_large(self, population):
        heaviest = max(population.profiles, key=lambda p: p.weight)
        assert heaviest.gpu_category == "large"

    def test_lightest_users_are_single(self, population):
        lightest = min(population.profiles, key=lambda p: p.weight)
        assert lightest.gpu_category == "single"

    def test_gpu_count_respects_category(self, population):
        rng = np.random.default_rng(0)
        for profile in population.profiles:
            draws = {profile.sample_gpu_count(rng) for _ in range(50)}
            if profile.gpu_category == "single":
                assert draws == {1}
            if profile.gpu_category == "dual":
                assert draws <= {1, 2}


class TestBehaviorCorrelations:
    def test_heavy_users_run_shorter_jobs(self, population):
        ordered = sorted(population.profiles, key=lambda p: p.weight)
        light_scale = np.median([p.runtime_scale_s for p in ordered[:50]])
        heavy_scale = np.median([p.runtime_scale_s for p in ordered[-20:]])
        assert heavy_scale < light_scale

    def test_heavy_users_use_gpus_better(self, population):
        ordered = sorted(population.profiles, key=lambda p: p.weight)
        light_mult = np.median([p.util_multiplier for p in ordered[:50]])
        heavy_mult = np.median([p.util_multiplier for p in ordered[-20:]])
        assert heavy_mult > light_mult

    def test_class_tilts_sum_to_one(self, population):
        for profile in population.profiles:
            assert sum(profile.class_probs.values()) == pytest.approx(1.0)

    def test_interface_sampling_valid(self, population):
        rng = np.random.default_rng(2)
        profile = population.profiles[0]
        for _ in range(20):
            assert profile.sample_interface(rng) in (
                "map-reduce", "batch", "interactive", "other",
            )

    def test_class_sampling_respects_map_reduce(self, population):
        rng = np.random.default_rng(3)
        knobs = GeneratorKnobs()
        classes = {
            population.profiles[0].sample_class(rng, "map-reduce", knobs)
            for _ in range(100)
        }
        # map-reduce almost never yields exploratory/ide
        assert "mature" in classes or "development" in classes


class TestJobAllocation:
    def test_allocation_totals(self, population):
        counts = population.job_allocation(47120, np.random.default_rng(4))
        assert counts.sum() == 47120
        assert counts.min() >= 1

    def test_allocation_follows_weights(self, population):
        counts = population.job_allocation(47120, np.random.default_rng(4))
        weights = np.asarray([p.weight for p in population.profiles])
        heaviest = int(np.argmax(weights))
        assert counts[heaviest] > np.median(counts) * 5

    def test_pareto_concentration(self, population):
        counts = np.sort(population.job_allocation(47120, np.random.default_rng(5)))[::-1]
        top5 = counts[: int(round(0.05 * len(counts)))].sum() / counts.sum()
        assert 0.25 < top5 < 0.65  # paper: 0.44
