"""The collector tying the monitors into the scheduler's prolog/epilog.

At job start the prolog notes the placement; at job end the epilog
samples the job's ground-truth activity model and appends min/mean/max
summary rows (one per GPU).  A configurable fraction of GPU jobs also
gets a dense time series, reproducing the paper's 2,149-job detailed
dataset.

The activity model travels on the job request under
``request.tags["activity"]`` so the monitoring substrate stays
decoupled from the workload generator.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import MonitoringError
from repro.frame import Table, TableBuilder
from repro.monitor.cpu_sampler import CpuSampler
from repro.monitor.nvidia_smi import NvidiaSmiSampler
from repro.monitor.timeseries import METRIC_NAMES, TimeSeriesStore
from repro.slurm.job import JobRecord, JobRequest


@dataclass
class MonitoringConfig:
    """Knobs of the telemetry pipeline (paper Sec. II defaults)."""

    gpu_interval_s: float = 0.1
    cpu_interval_s: float = 10.0
    #: Stratified samples used for production summaries.
    summary_samples: int = 256
    #: Fraction of GPU jobs that keep a dense series (2149 / 47120).
    timeseries_fraction: float = 2149.0 / 47120.0
    #: Dense series are decimated beyond this many samples per GPU.
    timeseries_max_samples: int = 20000
    seed: int = 20220402


class MonitoringCollector:
    """Collects summaries and dense series as jobs finish."""

    def __init__(self, config: MonitoringConfig | None = None) -> None:
        self.config = config or MonitoringConfig()
        if not 0.0 <= self.config.timeseries_fraction <= 1.0:
            raise MonitoringError("timeseries_fraction must be in [0, 1]")
        self._rng = np.random.default_rng(self.config.seed)
        self._gpu_sampler = NvidiaSmiSampler(
            self.config.gpu_interval_s, self.config.summary_samples
        )
        self._cpu_sampler = CpuSampler(self.config.cpu_interval_s)
        self.store = TimeSeriesStore()
        self._gpu_builder = TableBuilder(columns=["job_id", "gpu_index"])
        self._cpu_builder = TableBuilder(columns=["job_id"])
        self._started: dict[int, tuple[float, tuple[int, ...]]] = {}

    # ------------------------------------------------------------------
    # Scheduler hooks
    # ------------------------------------------------------------------
    def prolog(self, request: JobRequest, start_time_s: float, nodes: tuple[int, ...]) -> None:
        """Called when a job starts: begin "sampling"."""
        self._started[request.job_id] = (start_time_s, nodes)

    def epilog(self, record: JobRecord) -> None:
        """Called when a job ends: emit summaries (and maybe a series)."""
        from repro.obs import runtime

        request = record.request
        self._started.pop(request.job_id, None)
        self._cpu_builder.append_row(
            {
                "job_id": request.job_id,
                **self._cpu_sampler.summarize(
                    record.run_time_s, request.cores, request.memory_gb, self._rng
                ),
            }
        )
        metrics = runtime.get_metrics()
        if not request.is_gpu_job:
            if metrics.enabled:
                metrics.counter(
                    "repro_monitor_jobs_total",
                    help="jobs summarized by the monitoring epilog",
                    kind="cpu",
                ).inc()
            return
        model = request.tags.get("activity")
        if model is None:
            raise MonitoringError(f"GPU job {request.job_id} has no activity model")
        keep_series = self._rng.random() < self.config.timeseries_fraction
        if metrics.enabled:
            metrics.counter(
                "repro_monitor_jobs_total",
                help="jobs summarized by the monitoring epilog",
                kind="gpu",
            ).inc()
            metrics.counter(
                "repro_monitor_summary_rows_total",
                help="per-GPU summary rows emitted",
            ).inc(model.num_gpus)
            if keep_series:
                metrics.counter(
                    "repro_monitor_series_kept_total",
                    help="dense time series retained (one per GPU)",
                ).inc(model.num_gpus)
        # All of the job's GPUs are summarized in one batched call and
        # land in the builder as column fragments — no per-GPU row dict.
        summary = self._gpu_sampler.summarize_job(model, record.run_time_s, self._rng)
        self._gpu_builder.extend_columns(
            {
                "job_id": np.full(model.num_gpus, request.job_id, dtype=np.int64),
                "gpu_index": np.arange(model.num_gpus, dtype=np.int64),
                **summary,
            }
        )
        if keep_series:
            for gpu_index in range(model.num_gpus):
                self.store.add(
                    self._gpu_sampler.sample_series(
                        request.job_id,
                        model,
                        record.run_time_s,
                        gpu_index,
                        max_samples=self.config.timeseries_max_samples,
                    )
                )

    def attach(self, simulator) -> "MonitoringCollector":
        """Register this collector on a :class:`SlurmSimulator`."""
        simulator.add_prolog(self.prolog)
        simulator.add_epilog(self.epilog)
        return self

    # ------------------------------------------------------------------
    # Dataset assembly
    # ------------------------------------------------------------------
    def per_gpu_table(self) -> Table:
        """One row per (job, GPU) with min/mean/max of every metric."""
        return self._gpu_builder.finish()

    def cpu_table(self) -> Table:
        """One row per job with CPU-side summary metrics."""
        return self._cpu_builder.finish()

    def job_gpu_table(self) -> Table:
        """Per-job GPU summary averaged over the job's GPUs.

        Matches the paper's methodology: "the average over multiple
        GPUs was computed to get a single number for multi-GPU jobs".
        Minima take the min over GPUs and maxima the max, so bottleneck
        detection still sees the most-loaded device.
        """
        if not len(self._gpu_builder):
            return Table.empty(["job_id"])
        per_gpu = self.per_gpu_table()
        spec = {}
        for name in METRIC_NAMES:
            spec[f"{name}_min"] = "min"
            spec[f"{name}_mean"] = "mean"
            spec[f"{name}_max"] = "max"
        aggregated = per_gpu.group_by("job_id").aggregate(spec)
        renames = {}
        for name in METRIC_NAMES:
            renames[f"{name}_min_min"] = f"{name}_min"
            renames[f"{name}_mean_mean"] = f"{name}_mean"
            renames[f"{name}_max_max"] = f"{name}_max"
        return aggregated.rename(renames)
