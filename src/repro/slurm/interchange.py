"""Cross-partition interchange: bounded-lag coupling of cluster islands.

A partitioned run (see :mod:`repro.cluster.partition` and
``docs/scaling.md``) gives each island its own
:class:`~repro.slurm.scheduler.SlurmSimulator` event loop.  Islands
are stepped in lockstep **epochs**: every island advances to the same
time boundary, then an interchange step exchanges cross-partition
state before the next epoch starts.  Two couplings are supported:

* **global fair-share** — each island's
  :class:`~repro.slurm.policies.FairSharePolicy` drains the GPU hours
  its users consumed during the epoch; the deltas are merged into one
  global ledger that is pushed back to every island, so priority
  decisions lag global reality by at most one epoch;
* **migration / spillover** — jobs queued longer than
  ``migrate_after_s`` are moved (once) to the least-loaded island that
  can ever place them, resubmitted at the epoch boundary.

With both couplings off (the default) islands are fully independent
and the pipeline fans them out embarrassingly across processes
(:mod:`repro.pipeline.shard`).  Coupled islands can *also* run
process-parallel: :mod:`repro.slurm.parallel` steps one persistent
worker per island through this same epoch protocol, exchanging only
the bounded interchange payload — bit-for-bit identical to the serial
lockstep here (``tests/slurm/test_interchange.py`` and
``tests/slurm/test_parallel_interchange.py`` pin both).

This module is about *simulation structure*; the similarly named
:mod:`repro.interchange` maps datasets onto the public MIT Supercloud
CSV layout and is unrelated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.cluster.partition import PartitionLayout
from repro.cluster.spec import ClusterSpec, supercloud_spec
from repro.errors import PlacementError, SchedulerError
from repro.slurm.job import JobRecord, JobRequest
from repro.slurm.policies import FairSharePolicy
from repro.slurm.scheduler import SchedulerConfig, SimulationResult, SlurmSimulator


@dataclass(frozen=True)
class InterchangeConfig:
    """How (and how often) islands exchange state."""

    #: Lockstep epoch length; cross-partition state lags by at most this.
    epoch_s: float = 6 * 3600.0
    #: Migrate queued jobs waiting longer than this to a less-loaded
    #: island (None disables migration).
    migrate_after_s: float | None = None
    #: Synchronise fair-share ledgers globally at epoch boundaries
    #: (requires ``SchedulerConfig(policy="fair_share")``).
    fair_share_sync: bool = False

    def __post_init__(self) -> None:
        if self.epoch_s <= 0:
            raise SchedulerError(f"epoch_s must be positive, got {self.epoch_s}")
        if self.migrate_after_s is not None and self.migrate_after_s < 0:
            raise SchedulerError(
                f"migrate_after_s must be >= 0, got {self.migrate_after_s}"
            )

    @property
    def coupled(self) -> bool:
        """True when islands exchange state and must run in lockstep."""
        return self.fair_share_sync or self.migrate_after_s is not None


def route_requests(
    requests: list[JobRequest], num_partitions: int
) -> list[list[JobRequest]]:
    """Split requests into per-island buckets by cohort.

    Jobs carry their cohort in ``tags["cohort"]`` (set by the workload
    generator); a job without one falls back to ``job_id`` so
    hand-built request lists still route deterministically.
    """
    buckets: list[list[JobRequest]] = [[] for _ in range(num_partitions)]
    for request in requests:
        cohort = request.tags.get("cohort", request.job_id)
        buckets[int(cohort) % num_partitions].append(request)
    return buckets


def migration_candidates(
    queued: "Iterable[JobRequest]", boundary: float, threshold: float
) -> list[JobRequest]:
    """Jobs overdue for migration at this boundary, in job-id order.

    A job is overdue once it has queued longer than ``threshold`` and
    has not migrated before (no ping-pong).
    """
    return sorted(
        (
            request
            for request in queued
            if boundary - request.submit_time_s > threshold
            and not request.tags.get("migrated")
        ),
        key=lambda request: request.job_id,
    )


def plan_migrations(
    candidates: Sequence[Sequence[JobRequest]],
    queue_lengths: Sequence[int],
    island_specs: Sequence[ClusterSpec],
) -> list[tuple[int, JobRequest, int]]:
    """Deterministic migration plan over per-island candidate lists.

    Pure function of the epoch snapshot — per-island overdue candidates
    (already job-id sorted, see :func:`migration_candidates`), queue
    lengths, and static island specs — so the serial lockstep runner
    and the process-parallel runner compute the *same* plan from the
    same snapshot.  Returns ``(source, request, target)`` moves in
    application order.

    Replays the serial scan exactly: islands in index order, candidates
    in job-id order, target = least-loaded feasible island strictly
    less loaded than the source (ties to the lower index).  Moving a
    job decrements only the source's load — the target receives it as
    a scheduled resubmission, not a queue entry, so target loads stay
    at their snapshot values until that target is itself the source.
    """
    from repro.slurm.placement import check_spec_feasible

    loads = list(queue_lengths)
    moves: list[tuple[int, JobRequest, int]] = []
    for source_index, overdue in enumerate(candidates):
        for request in overdue:
            source_load = loads[source_index]
            best: tuple[int, int] | None = None
            for index, spec in enumerate(island_specs):
                if index == source_index:
                    continue
                try:
                    check_spec_feasible(spec, request)
                except PlacementError:
                    continue
                load = loads[index]
                if load >= source_load:
                    continue
                if best is None or (load, index) < best:
                    best = (load, index)
            if best is None:
                continue
            moves.append((source_index, request, best[1]))
            loads[source_index] -= 1
    return moves


@dataclass
class PartitionedResult:
    """Per-island results plus the deterministic global merge."""

    layout: PartitionLayout
    results: list[SimulationResult]
    interchange: InterchangeConfig
    migrations: int = 0

    def merged_records(self) -> list[JobRecord]:
        """All job records in global job-id order (node indices global)."""
        records = [record for result in self.results for record in result.records]
        records.sort(key=lambda record: record.request.job_id)
        return records

    def merged(self) -> SimulationResult:
        """One whole-machine-shaped result for downstream consumers."""
        return SimulationResult(
            records=self.merged_records(),
            makespan_s=max(result.makespan_s for result in self.results),
            events_processed=sum(r.events_processed for r in self.results),
            peak_queue_length=max(r.peak_queue_length for r in self.results),
            config=self.results[0].config,
            node_failures=sum(r.node_failures for r in self.results),
            jobs_killed_by_failures=sum(
                r.jobs_killed_by_failures for r in self.results
            ),
        )


class PartitionedRunner:
    """Run one simulator per island with lockstep interchange epochs.

    Construct the runner, attach per-island hooks (monitoring prologs /
    epilogs) via :attr:`simulators`, then call :meth:`run`.  Job
    records come back with **global** node indices.
    """

    def __init__(
        self,
        layout: PartitionLayout,
        *,
        spec: ClusterSpec | None = None,
        config: SchedulerConfig | None = None,
        interchange: InterchangeConfig | None = None,
    ) -> None:
        self.layout = layout
        self.spec = spec if spec is not None else supercloud_spec(layout.total_nodes)
        self.config = config if config is not None else SchedulerConfig()
        self.interchange = interchange if interchange is not None else InterchangeConfig()
        if len(layout) > 1:
            if self.config.failure_model is not None:
                raise SchedulerError(
                    "failure injection is not supported in partitioned runs "
                    "(per-island failure streams would be correlated)"
                )
            if self.config.policy is not None and not isinstance(
                self.config.policy, str
            ):
                raise SchedulerError(
                    "partitioned runs need a policy registry name (each island "
                    "builds its own instance); got a policy object"
                )
        self.simulators = [
            SlurmSimulator(part.spec(self.spec), self.config) for part in layout
        ]
        if self.interchange.fair_share_sync:
            for simulator in self.simulators:
                if not isinstance(simulator._policy, FairSharePolicy):
                    raise SchedulerError(
                        "fair_share_sync requires SchedulerConfig("
                        'policy="fair_share")'
                    )
        self._global_usage: dict[str, float] = {}
        self.migrations = 0

    # ------------------------------------------------------------------
    def run(self, requests: list[JobRequest]) -> PartitionedResult:
        """Simulate all requests across the islands to completion."""
        buckets = route_requests(requests, len(self.layout))
        for simulator, bucket in zip(self.simulators, buckets):
            simulator.begin(bucket)

        # Resolved once: with nobody watching, the epoch loop carries
        # zero telemetry work (observation-only, off the lockstep path).
        from repro.obs import progress as obs_progress
        from repro.obs.runtime import get_recorder

        sink = obs_progress.get_sink()
        watched = sink is not None or get_recorder().enabled
        if not self.interchange.coupled:
            # Independent islands: each loop runs to completion on its
            # own.  This is the order-insensitive case the pipeline
            # fans out across processes.
            for simulator in self.simulators:
                simulator.advance()
        else:
            boundary = self.interchange.epoch_s
            epoch = 0
            while any(bool(s.loop) for s in self.simulators):
                for simulator in self.simulators:
                    simulator.advance(until=boundary)
                self._exchange(boundary)
                epoch += 1
                if watched:
                    self._emit_heartbeats(sink, epoch)
                boundary += self.interchange.epoch_s

        results = [simulator.finalize() for simulator in self.simulators]
        for part, result in zip(self.layout, results):
            _remap_nodes(result.records, part.node_start)
        return PartitionedResult(
            layout=self.layout,
            results=results,
            interchange=self.interchange,
            migrations=self.migrations,
        )

    def _emit_heartbeats(self, sink, epoch: int) -> None:
        """Heartbeat every island to the progress sink (serial path).

        Mirrors the side-channel heartbeats the process-parallel
        runner's workers send, so ``--progress`` renders identically
        whichever lockstep actually ran.
        """
        from repro.obs.progress import Heartbeat
        from repro.obs.runtime import get_metrics, peak_rss_bytes, record_event

        rss = peak_rss_bytes()
        metrics = get_metrics()
        spill = 0.0
        if metrics.enabled:
            for name, _labels, counter in metrics.samples("counter"):
                if name == "repro_frame_spill_bytes_total":
                    spill += counter.value
        for index, simulator in enumerate(self.simulators):
            record_event(
                "island.epoch",
                category="interchange",
                island=index,
                epoch=epoch,
                sim_time_s=float(simulator.loop.now),
                queue_depth=len(simulator.queue),
            )
            if sink is not None:
                sink.update(
                    Heartbeat(
                        island=index,
                        epoch=epoch,
                        sim_time_s=float(simulator.loop.now),
                        queue_depth=len(simulator.queue),
                        running=len(simulator._running),
                        events=simulator.loop.processed,
                        dispatched=len(simulator.records),
                        peak_rss_bytes=rss,
                        spill_bytes=spill,
                    )
                )

    # ------------------------------------------------------------------
    # The interchange step
    # ------------------------------------------------------------------
    def _exchange(self, boundary: float) -> None:
        if self.interchange.fair_share_sync:
            self._sync_fair_share()
        if self.interchange.migrate_after_s is not None:
            self._migrate(boundary)

    def _sync_fair_share(self) -> None:
        """Merge per-island usage deltas into one global ledger."""
        for simulator in self.simulators:
            for user, hours in simulator._policy.drain_usage().items():
                self._global_usage[user] = self._global_usage.get(user, 0.0) + hours
        for simulator in self.simulators:
            simulator._policy.set_usage(self._global_usage)

    def _migrate(self, boundary: float) -> None:
        """Move long-queued jobs to the least-loaded feasible island.

        Deterministic by construction: :func:`plan_migrations` scans
        islands in index order, candidates in job-id order, and breaks
        target ties toward the lower index.  A job migrates at most
        once (no ping-pong) and is resubmitted at the epoch boundary.
        """
        threshold = self.interchange.migrate_after_s
        candidates = [
            migration_candidates(simulator.queue.scan(), boundary, threshold)
            for simulator in self.simulators
        ]
        moves = plan_migrations(
            candidates,
            [len(simulator.queue) for simulator in self.simulators],
            [simulator.cluster.spec for simulator in self.simulators],
        )
        for source_index, request, target_index in moves:
            self.simulators[source_index].queue.remove(request.job_id)
            request.tags["migrated"] = True
            request.tags["migrated_to"] = target_index
            self.simulators[target_index].loop.schedule(boundary, "submit", request)
            self.migrations += 1


def _remap_nodes(records: list[JobRecord], node_start: int) -> None:
    """Rewrite island-local node indices as global machine indices."""
    if node_start == 0:
        return
    for record in records:
        record.nodes = tuple(node_start + node for node in record.nodes)


def run_partitioned(
    requests: list[JobRequest],
    num_partitions: int,
    *,
    total_nodes: int | None = None,
    spec: ClusterSpec | None = None,
    config: SchedulerConfig | None = None,
    interchange: InterchangeConfig | None = None,
) -> PartitionedResult:
    """Convenience wrapper: layout + runner + run in one call."""
    if spec is not None and total_nodes is None:
        total_nodes = spec.num_nodes
    if total_nodes is None:
        raise SchedulerError("run_partitioned needs total_nodes or a spec")
    layout = PartitionLayout.even(total_nodes, num_partitions)
    runner = PartitionedRunner(
        layout, spec=spec, config=config, interchange=interchange
    )
    return runner.run(requests)
