"""Tests for active/idle phase segmentation."""

import numpy as np
import pytest

from repro.analysis.phases import (
    activity_mask,
    job_phase_table,
    phase_stats,
    within_active_cov,
)
from repro.errors import AnalysisError
from repro.monitor.timeseries import METRIC_NAMES, GpuTimeSeries, TimeSeriesStore


def series_from_sm(sm_values, job_id=1, gpu_index=0, step=1.0):
    sm = np.asarray(sm_values, dtype=float)
    times = np.arange(len(sm)) * step
    metrics = {name: np.zeros(len(sm)) for name in METRIC_NAMES}
    metrics["sm"] = sm
    metrics["power_w"] = 25.0 + 1.25 * sm
    return GpuTimeSeries(job_id, gpu_index, times, metrics)


class TestActivityMask:
    def test_sm_drives_activity(self):
        series = series_from_sm([0.0, 10.0, 0.0])
        assert activity_mask(series).tolist() == [False, True, False]

    def test_memory_alone_counts_as_active(self):
        series = series_from_sm([0.0, 0.0])
        series.metrics["mem_bw"][1] = 30.0
        assert activity_mask(series).tolist() == [False, True]

    def test_threshold_respected(self):
        series = series_from_sm([0.4, 0.6])
        assert activity_mask(series).tolist() == [False, True]


class TestPhaseStats:
    def test_all_active(self):
        stats = phase_stats(series_from_sm([10.0] * 20))
        assert stats.active_fraction == 1.0
        assert stats.num_active_intervals == 1
        assert stats.num_idle_intervals == 0

    def test_all_idle(self):
        stats = phase_stats(series_from_sm([0.0] * 20))
        assert stats.active_fraction == 0.0

    def test_alternation_counts_intervals(self):
        sm = [10.0] * 5 + [0.0] * 5 + [10.0] * 5 + [0.0] * 5
        stats = phase_stats(series_from_sm(sm))
        assert stats.num_active_intervals == 2
        assert stats.num_idle_intervals == 2
        assert stats.active_fraction == pytest.approx(0.5, abs=0.1)

    def test_regular_intervals_low_cov(self):
        sm = ([10.0] * 10 + [0.0] * 10) * 5
        stats = phase_stats(series_from_sm(sm))
        assert stats.active_interval_cov == pytest.approx(0.0, abs=0.05)

    def test_irregular_intervals_high_cov(self):
        sm = [10.0] * 2 + [0.0] * 3 + [10.0] * 50 + [0.0] * 3 + [10.0] * 2
        stats = phase_stats(series_from_sm(sm))
        assert stats.active_interval_cov > 0.5

    def test_empty_series_rejected(self):
        empty = GpuTimeSeries(
            1, 0, np.empty(0), {name: np.empty(0) for name in METRIC_NAMES}
        )
        with pytest.raises(AnalysisError):
            phase_stats(empty)

    def test_mean_interval_lengths(self):
        sm = [10.0] * 10 + [0.0] * 30
        stats = phase_stats(series_from_sm(sm))
        assert stats.mean_active_interval_s == pytest.approx(10.0, rel=0.2)
        assert stats.mean_idle_interval_s == pytest.approx(29.0, rel=0.2)


class TestWithinActiveCov:
    def test_constant_active_values_zero_cov(self):
        covs = within_active_cov(series_from_sm([20.0] * 10))
        assert covs["sm"] == pytest.approx(0.0)

    def test_idle_samples_excluded(self):
        # alternating 0/20: CoV over all samples would be 1.0, but the
        # active-only CoV is 0 because every active sample is 20.
        covs = within_active_cov(series_from_sm([0.0, 20.0] * 10))
        assert covs["sm"] == pytest.approx(0.0)

    def test_varying_active_values(self):
        covs = within_active_cov(series_from_sm([10.0, 30.0] * 10))
        assert covs["sm"] == pytest.approx(0.5)

    def test_all_idle_gives_nan(self):
        covs = within_active_cov(series_from_sm([0.0] * 5))
        assert np.isnan(covs["sm"])


class TestJobPhaseTable:
    def test_one_row_per_job_most_active_gpu(self):
        store = TimeSeriesStore()
        store.add(series_from_sm([0.0] * 10, job_id=1, gpu_index=0))
        store.add(series_from_sm([50.0] * 10, job_id=1, gpu_index=1))
        table = job_phase_table(store)
        assert table.num_rows == 1
        assert table.row(0)["active_fraction"] == 1.0  # uses the busy GPU

    def test_context_columns_joined(self):
        store = TimeSeriesStore()
        store.add(series_from_sm([10.0] * 10, job_id=7))
        table = job_phase_table(store, {7: {"lifecycle_class": "mature"}})
        assert table.row(0)["lifecycle_class"] == "mature"
