"""Time-series containers for sampled GPU telemetry."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

import numpy as np

from repro.errors import MonitoringError

#: Metrics reported per GPU sample, in nvidia-smi naming order:
#: SM utilization (%), memory-bandwidth utilization (%), memory-size
#: utilization (%), PCIe Tx/Rx bandwidth utilization (%), power (W).
METRIC_NAMES = ("sm", "mem_bw", "mem_size", "pcie_tx", "pcie_rx", "power_w")


@dataclass
class GpuTimeSeries:
    """Sampled telemetry for one GPU of one job.

    ``times_s`` are offsets from job start; ``metrics`` maps metric
    name to an equal-length float array.
    """

    job_id: int
    gpu_index: int
    times_s: np.ndarray
    metrics: dict[str, np.ndarray]

    def __post_init__(self) -> None:
        n = len(self.times_s)
        for name in METRIC_NAMES:
            if name not in self.metrics:
                raise MonitoringError(f"series for job {self.job_id} missing metric {name!r}")
            if len(self.metrics[name]) != n:
                raise MonitoringError(
                    f"metric {name!r} has {len(self.metrics[name])} samples, expected {n}"
                )

    @property
    def num_samples(self) -> int:
        return len(self.times_s)

    @property
    def duration_s(self) -> float:
        if self.num_samples == 0:
            return 0.0
        return float(self.times_s[-1] - self.times_s[0])

    def metric(self, name: str) -> np.ndarray:
        if name not in self.metrics:
            raise MonitoringError(f"unknown metric {name!r}")
        return self.metrics[name]

    def summary(self) -> dict[str, float]:
        """min/mean/max per metric — the paper's production summary."""
        out: dict[str, float] = {}
        for name in METRIC_NAMES:
            values = self.metrics[name]
            if values.size == 0:
                out[f"{name}_min"] = out[f"{name}_mean"] = out[f"{name}_max"] = float("nan")
            else:
                out[f"{name}_min"] = float(values.min())
                out[f"{name}_mean"] = float(values.mean())
                out[f"{name}_max"] = float(values.max())
        return out


class TimeSeriesStore:
    """Central store of full-resolution series, keyed by (job, gpu)."""

    def __init__(self) -> None:
        self._series: dict[tuple[int, int], GpuTimeSeries] = {}

    def add(self, series: GpuTimeSeries) -> None:
        key = (series.job_id, series.gpu_index)
        if key in self._series:
            raise MonitoringError(f"duplicate series for job {key[0]} GPU {key[1]}")
        self._series[key] = series

    def __len__(self) -> int:
        return len(self._series)

    def merge_from(self, other: "TimeSeriesStore") -> None:
        """Absorb another store's series (duplicate keys are an error).

        The partitioned build keeps one store per cluster island; job
        ids are globally unique, so island stores are disjoint and the
        merge is a plain union.
        """
        for series in other:
            self.add(series)

    @classmethod
    def merged(cls, stores: "Iterable[TimeSeriesStore]") -> "TimeSeriesStore":
        """Union of several disjoint stores (island merge)."""
        out = cls()
        for store in stores:
            out.merge_from(store)
        return out

    def job_ids(self) -> list[int]:
        """Distinct job ids with at least one stored series."""
        return sorted({job_id for job_id, _ in self._series})

    def series_for_job(self, job_id: int) -> list[GpuTimeSeries]:
        return [s for (jid, _), s in sorted(self._series.items()) if jid == job_id]

    def get(self, job_id: int, gpu_index: int) -> GpuTimeSeries:
        key = (job_id, gpu_index)
        if key not in self._series:
            raise MonitoringError(f"no series for job {job_id} GPU {gpu_index}")
        return self._series[key]

    def __iter__(self) -> Iterator[GpuTimeSeries]:
        return iter(self._series.values())

    def total_samples(self) -> int:
        return sum(s.num_samples for s in self._series.values())

    def scan_table(self, chunk_rows: int = 65536) -> "ChunkedTable":
        """Stream every stored sample as one long chunked table.

        Columns: ``job_id``, ``gpu_index``, ``time_s`` plus every
        metric in :data:`METRIC_NAMES`, one row per sample, series in
        ``(job_id, gpu_index)`` order.  Series are batched until a
        chunk reaches ``chunk_rows`` rows, so the percentile/CDF
        figures can digest arbitrarily long telemetry with one chunk
        resident at a time.
        """
        from repro.frame import ChunkedTable, Table

        keys = sorted(self._series)

        def produce() -> Iterator[Table]:
            batch: list[GpuTimeSeries] = []
            staged = 0
            for key in keys:
                series = self._series[key]
                if series.num_samples == 0:
                    continue
                batch.append(series)
                staged += series.num_samples
                if staged >= chunk_rows:
                    yield _series_table(batch)
                    batch, staged = [], 0
            if batch:
                yield _series_table(batch)

        return ChunkedTable(produce, num_rows=self.total_samples())


def _series_table(batch: "list[GpuTimeSeries]") -> "Table":
    """Concatenate a batch of series into one sample-per-row table."""
    from repro.frame import Table

    data: dict[str, np.ndarray] = {
        "job_id": np.concatenate(
            [np.full(s.num_samples, s.job_id, dtype=np.int64) for s in batch]
        ),
        "gpu_index": np.concatenate(
            [np.full(s.num_samples, s.gpu_index, dtype=np.int64) for s in batch]
        ),
        "time_s": np.concatenate([np.asarray(s.times_s, dtype=float) for s in batch]),
    }
    for name in METRIC_NAMES:
        data[name] = np.concatenate(
            [np.asarray(s.metrics[name], dtype=float) for s in batch]
        )
    return Table(data)
