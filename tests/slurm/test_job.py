"""Tests for job requests, records, and exit classification."""

import pytest

from repro.errors import SchedulerError
from repro.slurm.job import (
    EXIT_FOR_CLASS,
    ExitCondition,
    JobRecord,
    JobRequest,
)


def make_request(**overrides):
    defaults = dict(
        job_id=1,
        user="u",
        submit_time_s=0.0,
        runtime_s=600.0,
        num_gpus=1,
        cores=4,
        memory_gb=16.0,
    )
    defaults.update(overrides)
    return JobRequest(**defaults)


class TestJobRequest:
    def test_valid_request(self):
        request = make_request()
        assert request.is_gpu_job

    def test_cpu_job(self):
        assert not make_request(num_gpus=0).is_gpu_job

    def test_negative_runtime_rejected(self):
        with pytest.raises(SchedulerError, match="negative runtime"):
            make_request(runtime_s=-1.0)

    def test_zero_cores_rejected(self):
        with pytest.raises(SchedulerError):
            make_request(cores=0)

    def test_unknown_interface_rejected(self):
        with pytest.raises(SchedulerError, match="interface"):
            make_request(interface="ssh")

    def test_unknown_class_rejected(self):
        with pytest.raises(SchedulerError, match="life-cycle"):
            make_request(intended_class="misc")

    def test_nonpositive_limit_rejected(self):
        with pytest.raises(SchedulerError, match="time limit"):
            make_request(time_limit_s=0.0)


class TestExitClassification:
    def test_lifecycle_mapping_is_paper_rule(self):
        assert ExitCondition.COMPLETED.lifecycle_class == "mature"
        assert ExitCondition.CANCELLED_BY_USER.lifecycle_class == "exploratory"
        assert ExitCondition.FAILED.lifecycle_class == "development"
        assert ExitCondition.TIMEOUT.lifecycle_class == "ide"

    def test_node_failure_folds_into_development(self):
        assert ExitCondition.NODE_FAILURE.lifecycle_class == "development"

    def test_exit_for_class_is_inverse(self):
        for cls, exit_condition in EXIT_FOR_CLASS.items():
            assert exit_condition.lifecycle_class == cls


class TestJobRecord:
    def make_record(self, **overrides):
        request = make_request()
        defaults = dict(
            request=request,
            start_time_s=10.0,
            end_time_s=610.0,
            nodes=(0,),
            exit_condition=ExitCondition.COMPLETED,
        )
        defaults.update(overrides)
        return JobRecord(**defaults)

    def test_derived_times(self):
        record = self.make_record()
        assert record.wait_time_s == 10.0
        assert record.run_time_s == 600.0
        assert record.service_time_s == 610.0
        assert record.wait_fraction == pytest.approx(10.0 / 610.0)

    def test_gpu_hours(self):
        record = self.make_record()
        assert record.gpu_hours == pytest.approx(600.0 / 3600.0)

    def test_lifecycle_class(self):
        record = self.make_record(exit_condition=ExitCondition.TIMEOUT)
        assert record.lifecycle_class == "ide"

    def test_validate_rejects_time_travel(self):
        record = self.make_record(start_time_s=-5.0)
        with pytest.raises(SchedulerError, match="before submission"):
            record.validate()

    def test_validate_rejects_negative_duration(self):
        record = self.make_record(end_time_s=5.0)
        with pytest.raises(SchedulerError, match="ended before"):
            record.validate()

    def test_validate_rejects_gpu_job_without_nodes(self):
        record = self.make_record(nodes=())
        with pytest.raises(SchedulerError, match="no nodes"):
            record.validate()

    def test_wait_fraction_zero_service(self):
        request = make_request(runtime_s=0.0)
        record = JobRecord(request, 0.0, 0.0, (0,), ExitCondition.COMPLETED)
        assert record.wait_fraction == 0.0
