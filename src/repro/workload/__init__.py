"""Calibrated synthetic workload generator.

The production Supercloud traces are not redistributable, so this
package regenerates a workload whose *distributions* are anchored on
every statistic the paper reports (see
:mod:`repro.workload.calibration` for the full list with paper
references).  The pieces:

* :mod:`repro.workload.calibration` — paper targets + generator knobs.
* :mod:`repro.workload.users` — the user population (Pareto activity,
  per-user behavioral profiles).
* :mod:`repro.workload.activity` — ground-truth GPU activity models
  (active/idle phase schedules, utilization processes, bursts).
* :mod:`repro.workload.generator` — assembles user profiles, arrival
  processes, and activity models into scheduler-ready job requests.
"""

from repro.workload.activity import JobActivityModel, PhaseSchedule
from repro.workload.calibration import GeneratorKnobs, PaperTargets, PAPER_TARGETS
from repro.workload.campaigns import CampaignGenerator, CampaignSpec
from repro.workload.cohorts import (
    GenerationTask,
    cohort_members,
    cohort_stream,
    generate_sharded,
    generation_tasks,
)
from repro.workload.generator import WorkloadConfig, WorkloadGenerator
from repro.workload.scenarios import SCENARIOS, make_scenario
from repro.workload.users import UserPopulation, UserProfile

__all__ = [
    "CampaignGenerator",
    "CampaignSpec",
    "GenerationTask",
    "GeneratorKnobs",
    "JobActivityModel",
    "PAPER_TARGETS",
    "PaperTargets",
    "PhaseSchedule",
    "SCENARIOS",
    "UserPopulation",
    "UserProfile",
    "WorkloadConfig",
    "WorkloadGenerator",
    "cohort_members",
    "cohort_stream",
    "generate_sharded",
    "generation_tasks",
    "make_scenario",
]
