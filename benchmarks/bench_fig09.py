"""Fig 9: power CDFs and power-cap impact."""

from repro.figures.registry import run_figure


def test_fig09_power_capping(benchmark, dataset):
    result = benchmark(run_figure, "fig09", dataset)
    # shape: most jobs survive a 150 W cap untouched
    assert result.get("unimpacted at 150 W cap").measured > 0.5
    assert result.get("avg-impacted at 150 W cap").measured < 0.10
