"""Extension figure: cluster load timeline (not in the paper).

Quantifies the Sec. III provisioning takeaway: mean/peak GPU occupancy
against capacity, and the visibility of conference-deadline surges the
operators describe in Sec. II.

Streams: occupancy and daily hours derive from the ``jobs`` table's
start/end/GPU-count columns rather than the record list (a streaming
build carries no records), via the jobs-table kernels in
:mod:`repro.analysis.timeline`, so this producer accepts a
materialized dataset or ``dataset.streaming_view()`` unchanged —
occupancy is bit-identical on both paths (integer GPU weights).
"""

from __future__ import annotations

from repro.analysis.timeline import (
    daily_gpu_hours_from_jobs,
    gpu_occupancy_from_jobs,
    surge_visibility,
)
from repro.dataset import SupercloudDataset
from repro.figures.base import Comparison, FigureResult


def run(dataset: SupercloudDataset) -> FigureResult:
    timeline = gpu_occupancy_from_jobs(dataset.jobs, capacity=dataset.spec.total_gpus)
    daily = daily_gpu_hours_from_jobs(dataset.jobs)
    surges = surge_visibility(daily, dataset.config.knobs.deadline_windows)
    mean_ratio = sum(r["observed_ratio"] for r in surges.iter_rows()) / max(
        surges.num_rows, 1
    )
    comparisons = [
        # "provisioning enough resources to meet the GPU demand":
        # demand sits comfortably under capacity
        Comparison("mean GPU utilization (<0.7)", 0.5, timeline.mean_utilization),
        Comparison("peak GPU utilization (<=1)", 1.0, timeline.peak_utilization),
        # Sec. II: "usage often increases closer to the deadlines of
        # popular deep learning conferences" — generator injects 2x
        Comparison("deadline-window load ratio", 2.0, mean_ratio),
    ]
    return FigureResult(
        figure_id="ext_timeline",
        title="Cluster load timeline (extension)",
        series={"occupancy": timeline, "daily_gpu_hours": daily, "surges": surges},
        comparisons=comparisons,
        notes="extension analysis; targets are the generator's design values",
    )
