"""Tests for the fidelity scorecard."""

import pytest

from repro.errors import AnalysisError
from repro.validation import (
    CHECKS,
    Check,
    grade,
    pass_fraction,
    scorecard,
    validate_dataset,
)


class TestGrade:
    def test_ratio_band(self):
        check = Check("f", "x", kind="ratio", low=0.5, high=2.0)
        assert grade(check, 10.0, 10.0)
        assert grade(check, 10.0, 5.0)
        assert grade(check, 10.0, 20.0)
        assert not grade(check, 10.0, 4.9)
        assert not grade(check, 10.0, 21.0)

    def test_ratio_zero_paper_falls_back_to_abs(self):
        check = Check("f", "x", kind="ratio", tolerance=0.1)
        assert grade(check, 0.0, 0.05)
        assert not grade(check, 0.0, 0.2)

    def test_upper_bound(self):
        check = Check("f", "x", kind="upper", tolerance=0.0)
        assert grade(check, 0.1, 0.05)
        assert not grade(check, 0.1, 0.15)

    def test_lower_bound(self):
        check = Check("f", "x", kind="lower", tolerance=0.0)
        assert grade(check, 0.6, 0.7)
        assert not grade(check, 0.6, 0.5)

    def test_abs_tolerance(self):
        check = Check("f", "x", kind="abs", tolerance=0.05)
        assert grade(check, 0.6, 0.64)
        assert not grade(check, 0.6, 0.7)

    def test_unknown_kind_rejected(self):
        with pytest.raises(AnalysisError):
            grade(Check("f", "x", kind="fuzzy"), 1.0, 1.0)


class TestScorecard:
    def test_checks_reference_real_figures(self):
        from repro.figures.registry import all_figures

        figure_ids = set(all_figures())
        assert {c.figure_id for c in CHECKS} <= figure_ids

    def test_validate_runs_most_checks(self, medium_dataset):
        results = validate_dataset(medium_dataset)
        assert len(results) >= 0.9 * len(CHECKS)

    def test_medium_dataset_mostly_passes(self, medium_dataset):
        results = validate_dataset(medium_dataset)
        assert pass_fraction(results) >= 0.8

    def test_scorecard_table_columns(self, medium_dataset):
        table = scorecard(validate_dataset(medium_dataset))
        assert set(table.column_names) == {
            "figure", "statistic", "kind", "paper", "measured", "passed",
        }

    def test_pass_fraction_empty_rejected(self):
        with pytest.raises(AnalysisError):
            pass_fraction([])
