"""Tests for the co-location simulator."""

import numpy as np
import pytest

from repro.errors import AnalysisError
from repro.monitor.timeseries import METRIC_NAMES
from repro.opportunities.colocation import ColocationSimulator, colocation_study


class ConstantDemand:
    """A pseudo activity model with fixed SM demand."""

    num_gpus = 1

    def __init__(self, demand):
        self.demand = demand

    def metrics_at(self, times_s, gpu_index):
        out = {name: np.zeros(len(times_s)) for name in METRIC_NAMES}
        out["sm"] = np.full(len(times_s), self.demand)
        return out

    def analytic_max(self, gpu_index):
        return {name: 0.0 for name in METRIC_NAMES} | {"sm": self.demand}


class AlternatingDemand(ConstantDemand):
    """Active (at `demand`) during even 100-second windows only."""

    def __init__(self, demand, phase=0):
        super().__init__(demand)
        self.phase = phase

    def metrics_at(self, times_s, gpu_index):
        out = {name: np.zeros(len(times_s)) for name in METRIC_NAMES}
        window = (times_s // 100.0 + self.phase) % 2 == 0
        out["sm"] = np.where(window, self.demand, 0.0)
        return out


class TestEvaluatePair:
    def test_disjoint_phases_no_slowdown(self):
        sim = ColocationSimulator(resolution_s=1.0)
        result = sim.evaluate_pair(
            AlternatingDemand(80.0, phase=0), AlternatingDemand(80.0, phase=1), 1000.0
        )
        assert result.worst_slowdown == pytest.approx(1.0, abs=0.05)

    def test_overlapping_heavy_jobs_slow_down(self):
        sim = ColocationSimulator(resolution_s=1.0)
        result = sim.evaluate_pair(ConstantDemand(80.0), ConstantDemand(80.0), 100.0)
        assert result.slowdown_a == pytest.approx(1.6)
        assert result.contention_fraction == 1.0

    def test_light_jobs_fit_together(self):
        sim = ColocationSimulator(resolution_s=1.0)
        result = sim.evaluate_pair(ConstantDemand(30.0), ConstantDemand(30.0), 100.0)
        assert result.worst_slowdown == 1.0
        assert result.combined_mean_demand == pytest.approx(60.0)

    def test_idle_job_never_slows(self):
        sim = ColocationSimulator(resolution_s=1.0)
        result = sim.evaluate_pair(ConstantDemand(0.0), ConstantDemand(100.0), 100.0)
        assert result.slowdown_a == 1.0


class TestPack:
    def test_pairs_low_with_low(self):
        sim = ColocationSimulator(resolution_s=1.0)
        jobs = [(ConstantDemand(d), 100.0) for d in (10.0, 20.0, 90.0, 95.0)]
        report = sim.pack(jobs, headroom=60.0)
        assert report.num_pairs == 1  # only 10+20 fit under 60
        assert report.gpus_after == 3
        assert report.gpu_savings_fraction == pytest.approx(0.25)

    def test_everything_hot_packs_nothing(self):
        sim = ColocationSimulator(resolution_s=1.0)
        jobs = [(ConstantDemand(90.0), 100.0)] * 4
        report = sim.pack(jobs, headroom=60.0)
        assert report.num_pairs == 0
        assert report.mean_slowdown == 1.0

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            ColocationSimulator().pack([])

    def test_invalid_resolution_rejected(self):
        with pytest.raises(AnalysisError):
            ColocationSimulator(resolution_s=0.0)


class TestStudyOnDataset:
    def test_saves_gpus_with_mild_slowdown(self, medium_dataset):
        report = colocation_study(medium_dataset, max_jobs=200)
        # the paper's qualitative claim: plenty of sharing headroom
        assert report.gpu_savings_fraction > 0.15
        assert report.mean_slowdown < 1.2
        assert report.p95_slowdown < 2.0
