"""Machine-readable results for the performance-smoke suite.

``python -m repro bench`` has always printed a human pass/fail table;
this module adds the durable artifact: every run also writes a
``BENCH_<n>.json`` at the repo root recording, per benchmark suite,
the wall time, pass/fail, and whatever throughput/memory statistics
the suite chose to report.  The JSON is append-only history — each run
picks the next free ``<n>`` — so regressions can be diffed across
commits without re-running old code.

Suites report statistics through :func:`record_bench_stat`: while a
suite runs, the runner exports ``REPRO_BENCH_STATS_DIR`` and each call
drops a small JSON sidecar there (one file per stat name, last write
wins); the runner sweeps the directory afterwards and merges the
sidecars into that suite's entry.  Outside the runner the helper is a
no-op, so benchmark files behave identically under plain pytest.
"""

from __future__ import annotations

import json
import os
import re
import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path

#: Environment variable the runner sets while a suite's subprocess runs.
STATS_DIR_ENV = "REPRO_BENCH_STATS_DIR"

#: Written BENCH files match this (``BENCH_6.json``, ``BENCH_12.json``, …).
_BENCH_FILE_RE = re.compile(r"^BENCH_(\d+)\.json$")

#: The first id ever used, so history starts where the repo's numbered
#: growth issues left off.
FIRST_BENCH_ID = 6


def record_bench_stat(name: str, **stats) -> None:
    """Report a named statistic block from inside a benchmark suite.

    ``stats`` values must be JSON-serializable (numbers, strings,
    flat dicts).  Typical use from a benchmark body::

        record_bench_stat("stream_sketch", rows_per_s=2.1e7,
                          peak_tracemalloc_bytes=3_400_000)

    No-op unless ``REPRO_BENCH_STATS_DIR`` is set (i.e. unless running
    under ``python -m repro bench``), so suites stay plain pytest
    files.
    """
    stats_dir = os.environ.get(STATS_DIR_ENV)
    if not stats_dir:
        return
    path = Path(stats_dir) / f"{name}.json"
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(stats, sort_keys=True))
    except OSError:
        # A broken stats dir must never fail the benchmark itself.
        return


@dataclass
class SuiteResult:
    """Outcome of one benchmark file run in its own pytest subprocess."""

    name: str
    path: str
    passed: bool
    seconds: float
    stats: dict = field(default_factory=dict)
    stdout_tail: str = ""
    stderr_tail: str = ""

    def to_json(self) -> dict:
        return {
            "name": self.name,
            "path": self.path,
            "passed": self.passed,
            "seconds": round(self.seconds, 3),
            "stats": self.stats,
        }


def run_suite(name: str, rel_path: str, root: Path, env: dict) -> SuiteResult:
    """Run one benchmark file in a pytest subprocess, collecting stats.

    The subprocess gets a fresh ``REPRO_BENCH_STATS_DIR``; sidecar JSON
    files written there by :func:`record_bench_stat` are merged into
    the result keyed by stat name.
    """
    import tempfile

    with tempfile.TemporaryDirectory(prefix="repro-bench-stats-") as stats_dir:
        sub_env = dict(env)
        sub_env[STATS_DIR_ENV] = stats_dir
        start = time.perf_counter()
        proc = subprocess.run(
            [sys.executable, "-m", "pytest", "-q", rel_path],
            cwd=root,
            env=sub_env,
            capture_output=True,
            text=True,
        )
        elapsed = time.perf_counter() - start
        stats = _sweep_stats(Path(stats_dir))
    return SuiteResult(
        name=name,
        path=rel_path,
        passed=proc.returncode == 0,
        seconds=elapsed,
        stats=stats,
        stdout_tail=proc.stdout[-4000:],
        stderr_tail=proc.stderr[-2000:],
    )


def _sweep_stats(stats_dir: Path) -> dict:
    stats: dict = {}
    try:
        sidecars = sorted(stats_dir.glob("*.json"))
    except OSError:
        return stats
    for sidecar in sidecars:
        try:
            stats[sidecar.stem] = json.loads(sidecar.read_text())
        except (OSError, ValueError):
            stats[sidecar.stem] = {"error": "unreadable stats sidecar"}
    return stats


def next_bench_path(root: Path) -> Path:
    """The next free ``BENCH_<n>.json`` at the repo root.

    Existing history is never overwritten: the id is one past the
    largest already present (starting at :data:`FIRST_BENCH_ID`).
    """
    highest = FIRST_BENCH_ID - 1
    try:
        entries = list(root.iterdir())
    except OSError:
        entries = []
    for entry in entries:
        match = _BENCH_FILE_RE.match(entry.name)
        if match:
            highest = max(highest, int(match.group(1)))
    return root / f"BENCH_{highest + 1}.json"


def write_bench_json(results: list[SuiteResult], path: Path) -> dict:
    """Serialize a bench run to ``path`` and return the payload."""
    from repro import __version__
    from repro.obs.runtime import peak_rss_bytes

    payload = {
        "schema": 1,
        "version": __version__,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "python": sys.version.split()[0],
        "bench_scale": os.environ.get("REPRO_BENCH_SCALE", "0.05"),
        "bench_seed": os.environ.get("REPRO_BENCH_SEED", "20220214"),
        "runner_peak_rss_bytes": peak_rss_bytes(),
        "passed": all(r.passed for r in results),
        "total_seconds": round(sum(r.seconds for r in results), 3),
        "suites": [r.to_json() for r in results],
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=False) + "\n")
    return payload
