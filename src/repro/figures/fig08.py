"""Fig 8: single and pairwise resource bottlenecks."""

from __future__ import annotations

from repro.analysis.bottleneck import analyse
from repro.dataset import SupercloudDataset
from repro.figures.base import Comparison, FigureResult


def run(dataset: SupercloudDataset) -> FigureResult:
    """Fig 8(a): single-resource saturation; Fig 8(b): two resources
    saturated in the same run."""
    result = analyse(dataset.gpu_jobs)
    comparisons = [
        Comparison("SM bottleneck", 0.22, result.single["sm"]),
        Comparison("memory-BW bottleneck", 0.002, result.single["mem_bw"]),
        Comparison("PCIe Rx + SM in same run", 0.09, result.pair_fraction("pcie_rx", "sm")),
        Comparison("max of any pair (< 0.10)", 0.10, result.max_pair_fraction),
    ]
    return FigureResult(
        figure_id="fig08",
        title="Single and pairwise resource bottlenecks",
        series={"single": result.single, "pairs": result.pairs},
        comparisons=comparisons,
        notes="pairwise saturation need not be simultaneous (paper Sec. III)",
    )
