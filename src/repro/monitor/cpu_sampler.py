"""CPU-side telemetry at 10-second intervals.

The paper collects CPU usage, memory usage, and file I/O through Slurm
plugins at a 10 s cadence.  CPU metrics feed only the high-level
comparisons (Fig. 3), so the model here is intentionally simple: load
follows the job's requested cores with small noise, memory ramps to the
working set, and I/O is bursty at the start (input read) and end
(result write) of the run.
"""

from __future__ import annotations

import numpy as np

from repro.errors import MonitoringError


class CpuSampler:
    """Generates the 10 s CPU series for one job on one node."""

    def __init__(self, interval_s: float = 10.0) -> None:
        if interval_s <= 0:
            raise MonitoringError(f"sampling interval must be positive, got {interval_s}")
        self.interval_s = interval_s

    def sample(
        self,
        duration_s: float,
        cores: int,
        memory_gb: float,
        rng: np.random.Generator,
        max_samples: int = 1024,
    ) -> dict[str, np.ndarray]:
        """Return ``{"times_s", "cpu_load", "memory_gb", "io_mbps"}``."""
        if duration_s < 0:
            raise MonitoringError(f"negative duration {duration_s}")
        count = min(int(duration_s / self.interval_s) + 1, max_samples)
        times = np.linspace(0.0, max(duration_s, 1e-9), count)
        progress = times / max(duration_s, 1e-9)

        load = cores * np.clip(rng.normal(0.85, 0.1, count), 0.0, 1.0)
        ramp = np.clip(progress / 0.05, 0.0, 1.0)  # working set loads in first 5%
        memory = memory_gb * ramp * np.clip(rng.normal(0.9, 0.05, count), 0.0, 1.0)
        io_burst = (progress < 0.05) | (progress > 0.95)
        io = np.where(io_burst, rng.gamma(2.0, 120.0, count), rng.gamma(1.2, 8.0, count))
        return {
            "times_s": times,
            "cpu_load": load,
            "memory_gb": memory,
            "io_mbps": io,
        }

    def summarize(
        self,
        duration_s: float,
        cores: int,
        memory_gb: float,
        rng: np.random.Generator,
    ) -> dict[str, float]:
        """min/mean/max of the CPU series (as stored per job)."""
        series = self.sample(duration_s, cores, memory_gb, rng)
        out: dict[str, float] = {}
        for name in ("cpu_load", "memory_gb", "io_mbps"):
            values = series[name]
            out[f"{name}_min"] = float(values.min())
            out[f"{name}_mean"] = float(values.mean())
            out[f"{name}_max"] = float(values.max())
        return out
