"""Tests for the structured campaign generator."""

import numpy as np
import pytest

from repro.analysis.transitions import campaign_stats, segment_campaigns
from repro.cluster.spec import supercloud_spec
from repro.errors import WorkloadError
from repro.monitor.collector import MonitoringCollector, MonitoringConfig
from repro.slurm.accounting import accounting_table
from repro.slurm.scheduler import SlurmSimulator
from repro.workload.campaigns import CampaignGenerator, CampaignSpec


@pytest.fixture
def generator():
    return CampaignGenerator(seed=3)


class TestSpec:
    def test_invalid_winners_rejected(self):
        with pytest.raises(WorkloadError):
            CampaignSpec(sweep_trials=2, sweep_winners=3)

    def test_negative_think_time_rejected(self):
        with pytest.raises(WorkloadError):
            CampaignSpec(think_time_s=-1.0)


class TestBuild:
    def test_stage_sequence(self, generator):
        requests = generator.build("alice", 0.0)
        stages = [r.tags["campaign_stage"] for r in requests]
        assert stages[0] == "ide"
        assert stages[1:4] == ["development"] * 3
        assert stages[-1] == "mature"
        assert stages.count("exploratory") == 11  # 12 trials, 1 winner

    def test_submission_times_increase(self, generator):
        requests = generator.build("alice", 100.0)
        times = [r.submit_time_s for r in requests]
        assert times == sorted(times)
        assert times[0] == 100.0

    def test_ide_sessions_time_out(self, generator):
        requests = generator.build("alice", 0.0)
        ide = [r for r in requests if r.intended_class == "ide"]
        assert all(r.runtime_s > r.time_limit_s for r in ide)
        assert all(r.interface == "interactive" for r in ide)

    def test_every_job_has_activity(self, generator):
        for request in generator.build("alice", 0.0):
            assert request.tags["activity"].num_gpus == request.num_gpus

    def test_final_job_multi_gpu(self, generator):
        requests = generator.build("alice", 0.0, CampaignSpec(final_gpus=4))
        assert requests[-1].num_gpus == 4


class TestPopulation:
    def test_unique_sequential_ids(self, generator):
        requests = generator.build_population(5, horizon_s=1e6)
        assert [r.job_id for r in requests] == list(range(len(requests)))

    def test_one_campaign_per_user(self, generator):
        requests = generator.build_population(5, horizon_s=1e6)
        assert len({r.user for r in requests}) == 5

    def test_zero_users_rejected(self, generator):
        with pytest.raises(WorkloadError):
            generator.build_population(0, horizon_s=1.0)


class TestEndToEnd:
    def test_campaigns_run_and_classify(self, generator):
        requests = generator.build_population(4, horizon_s=5e5)
        simulator = SlurmSimulator(supercloud_spec(6))
        collector = MonitoringCollector(
            MonitoringConfig(timeseries_fraction=0.0)
        ).attach(simulator)
        result = simulator.run(requests)
        jobs = accounting_table(result.records)
        classes = set(jobs["lifecycle_class"])
        assert classes == {"mature", "exploratory", "development", "ide"}

    def test_transition_mining_recovers_workflow(self, generator):
        """The transition analysis sees Fig 2's structure in the
        campaign stream: development leads onward, sweeps end mature."""
        requests = generator.build_population(6, horizon_s=4e6)
        simulator = SlurmSimulator(supercloud_spec(6))
        MonitoringCollector(MonitoringConfig(timeseries_fraction=0.0)).attach(simulator)
        jobs = accounting_table(simulator.run(requests).records)
        campaigns = segment_campaigns(jobs, gap_s=4.0 * 3600.0)
        stats = campaign_stats(campaigns)
        assert stats.fraction_with_exploration > 0.8
        assert stats.fraction_ending_mature > 0.5
