"""Tests for the 10-second CPU sampler."""

import numpy as np
import pytest

from repro.errors import MonitoringError
from repro.monitor.cpu_sampler import CpuSampler


@pytest.fixture
def rng():
    return np.random.default_rng(5)


class TestSample:
    def test_series_keys_and_lengths(self, rng):
        series = CpuSampler().sample(300.0, cores=8, memory_gb=64.0, rng=rng)
        assert set(series) == {"times_s", "cpu_load", "memory_gb", "io_mbps"}
        n = len(series["times_s"])
        assert all(len(series[k]) == n for k in series)
        assert n == 31

    def test_load_bounded_by_cores(self, rng):
        series = CpuSampler().sample(600.0, cores=8, memory_gb=64.0, rng=rng)
        assert series["cpu_load"].max() <= 8.0
        assert series["cpu_load"].min() >= 0.0

    def test_memory_ramps_to_working_set(self, rng):
        series = CpuSampler().sample(1000.0, cores=4, memory_gb=100.0, rng=rng)
        assert series["memory_gb"][0] <= series["memory_gb"][-1]
        assert series["memory_gb"].max() <= 100.0

    def test_io_bursts_at_edges(self, rng):
        series = CpuSampler().sample(10000.0, cores=4, memory_gb=10.0, rng=rng)
        progress = series["times_s"] / series["times_s"][-1]
        edges = series["io_mbps"][(progress < 0.05) | (progress > 0.95)]
        middle = series["io_mbps"][(progress >= 0.2) & (progress <= 0.8)]
        assert edges.mean() > 3 * middle.mean()

    def test_max_samples_cap(self, rng):
        series = CpuSampler().sample(1e6, cores=1, memory_gb=1.0, rng=rng, max_samples=100)
        assert len(series["times_s"]) == 100

    def test_negative_duration_rejected(self, rng):
        with pytest.raises(MonitoringError):
            CpuSampler().sample(-1.0, 1, 1.0, rng)

    def test_invalid_interval_rejected(self):
        with pytest.raises(MonitoringError):
            CpuSampler(interval_s=0.0)


class TestSummarize:
    def test_summary_keys(self, rng):
        summary = CpuSampler().summarize(120.0, 4, 32.0, rng)
        assert set(summary) == {
            "cpu_load_min", "cpu_load_mean", "cpu_load_max",
            "memory_gb_min", "memory_gb_mean", "memory_gb_max",
            "io_mbps_min", "io_mbps_mean", "io_mbps_max",
        }

    def test_summary_ordering(self, rng):
        summary = CpuSampler().summarize(600.0, 4, 32.0, rng)
        for metric in ("cpu_load", "memory_gb", "io_mbps"):
            assert summary[f"{metric}_min"] <= summary[f"{metric}_mean"] <= summary[f"{metric}_max"]
