"""Per-user-cohort workload sharding with spawn-keyed RNG streams.

The legacy :meth:`WorkloadGenerator.generate` draws every job from one
seed-rooted stream, which forces serial generation.  This module splits
the draw into independent streams derived from the same seed via
``numpy``'s :class:`~numpy.random.SeedSequence` spawn keys, so any
process can reconstruct any shard's stream without coordination:

========================  =====================================================
spawn key                 stream
========================  =====================================================
``(0,)``                  user population + per-user job allocation
``(1,)``                  the CPU-job shard (campaign bursts + singles)
``(2 + c,)``              GPU jobs of cohort ``c`` (users with
                          ``user_index % cohorts == c``)
========================  =====================================================

Because each shard's draws depend only on its own stream, the serial
path (run the shards one after another in one process) and the sharded
path (run them across a :func:`~repro.pipeline.parallel.parallel_map`
pool) produce **bit-for-bit identical jobs** — the contract pinned by
``tests/workload/test_cohorts.py``.  Merging is deterministic: shards
are concatenated in task order, stably sorted by submit time, and job
ids assigned in that final order.

``cohorts == 1`` is intentionally *not* routed through this module's
streams: it keeps the legacy single-stream draw so existing datasets,
caches, and tests stay bit-identical (see ``docs/scaling.md``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import WorkloadError
from repro.slurm.job import JobRequest
from repro.workload.generator import WorkloadConfig, WorkloadGenerator
from repro.workload.users import UserPopulation

#: Spawn-key indices reserved by the stream table above.
POPULATION_STREAM = 0
CPU_STREAM = 1
FIRST_COHORT_STREAM = 2


def cohort_stream(seed: int, index: int) -> np.random.Generator:
    """The ``index``-th spawn-keyed stream rooted at ``seed``."""
    return np.random.default_rng(np.random.SeedSequence(entropy=seed, spawn_key=(index,)))


def build_population(config: WorkloadConfig) -> tuple[UserPopulation, np.ndarray]:
    """The shared population + job allocation from stream ``(0,)``.

    Every shard worker rebuilds this identically (it is cheap relative
    to job generation), so no pickled population needs to travel.
    """
    rng = cohort_stream(config.seed, POPULATION_STREAM)
    population = UserPopulation(config.scaled_users, config.knobs, rng)
    counts = population.job_allocation(config.scaled_gpu_jobs, rng)
    return population, counts


def cohort_members(config: WorkloadConfig, cohort: int) -> list[int]:
    """User indices belonging to ``cohort`` (strided assignment)."""
    cohorts = config.resolved_cohorts
    if not 0 <= cohort < cohorts:
        raise WorkloadError(f"cohort {cohort} out of range [0, {cohorts})")
    return list(range(cohort, config.scaled_users, cohorts))


@dataclass(frozen=True)
class GenerationTask:
    """One independent shard of the workload draw (picklable)."""

    kind: str  # "cohort" | "cpu"
    cohort: int = -1


def generation_tasks(config: WorkloadConfig) -> list[GenerationTask]:
    """The full task list: one per cohort, plus the CPU shard."""
    tasks = [GenerationTask("cohort", c) for c in range(config.resolved_cohorts)]
    if config.include_cpu_jobs:
        tasks.append(GenerationTask("cpu"))
    return tasks


def run_generation_task(config: WorkloadConfig, task: GenerationTask) -> list[JobRequest]:
    """Draw one shard's jobs from its own stream (ids still unassigned)."""
    population, counts = build_population(config)
    if task.kind == "cpu":
        generator = WorkloadGenerator(
            config, rng=cohort_stream(config.seed, CPU_STREAM), population=population
        )
        return generator._generate_cpu_jobs()
    if task.kind != "cohort":
        raise WorkloadError(f"unknown generation task kind {task.kind!r}")
    generator = WorkloadGenerator(
        config,
        rng=cohort_stream(config.seed, FIRST_COHORT_STREAM + task.cohort),
        population=population,
    )
    members = cohort_members(config, task.cohort)
    return generator.jobs_for_users(
        (index, population.profiles[index], int(counts[index])) for index in members
    )


class _TaskRunner:
    """Picklable ``parallel_map`` callable binding the config."""

    def __init__(self, config: WorkloadConfig) -> None:
        self.config = config

    def __call__(self, task: GenerationTask) -> list[JobRequest]:
        return run_generation_task(self.config, task)


def generate_sharded(config: WorkloadConfig, workers: int | None = 1) -> list[JobRequest]:
    """The full workload via cohort shards, serial or process-parallel.

    Returns the same jobs for any ``workers`` value.  With
    ``resolved_cohorts <= 1`` this delegates to the legacy
    single-stream generator so the pre-sharding output is preserved
    bit-for-bit.
    """
    if config.resolved_cohorts <= 1:
        return WorkloadGenerator(config).generate()
    from repro.pipeline.parallel import parallel_map

    chunks = parallel_map(_TaskRunner(config), generation_tasks(config), workers=workers)
    requests = [request for chunk in chunks for request in chunk]
    requests.sort(key=lambda r: r.submit_time_s)
    for job_id, request in enumerate(requests):
        request.job_id = job_id
    return requests
