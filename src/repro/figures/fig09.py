"""Fig 9: GPU power consumption and power-cap impact.

Streams: the CDFs go through
:func:`~repro.analysis.stats.column_ecdf` (exact on a Table, sketched
on a chunk stream) and the cap-impact fractions are exact integer
counts on both paths, so this producer accepts a materialized dataset
or ``dataset.streaming_view()`` unchanged.
"""

from __future__ import annotations

from repro.analysis.power import power_cap_impact, power_headroom
from repro.analysis.stats import column_ecdf
from repro.dataset import SupercloudDataset
from repro.figures.base import Comparison, FigureResult


def run(dataset: SupercloudDataset) -> FigureResult:
    """Fig 9(a): avg/max power CDFs; Fig 9(b): impact of 150/200/250 W caps."""
    gpu = dataset.gpu_jobs
    avg = column_ecdf(gpu, "power_w_mean")
    peak = column_ecdf(gpu, "power_w_max")
    impacts = power_cap_impact(gpu)
    headroom = power_headroom(gpu)

    comparisons = [
        Comparison("average power median", 45.0, avg.median(), " W"),
        Comparison("maximum power median", 87.0, peak.median(), " W"),
    ]
    for impact in impacts:
        if impact.cap_w == 150.0:
            comparisons.append(
                Comparison("unimpacted at 150 W cap", 0.60, impact.unimpacted_fraction)
            )
            comparisons.append(
                Comparison("avg-impacted at 150 W cap", 0.10, impact.avg_impacted_fraction)
            )
    return FigureResult(
        figure_id="fig09",
        title="GPU power consumption and power capping",
        series={"avg_cdf": avg, "max_cdf": peak, "cap_impacts": impacts, "headroom": headroom},
        comparisons=comparisons,
        notes=(
            "paper: >60% of jobs unimpacted and <10% avg-impacted even at a "
            "150 W cap (half of V100 board power)"
        ),
    )
