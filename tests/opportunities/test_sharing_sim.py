"""Tests for the cluster-level GPU-sharing simulation."""

import pytest

from repro.errors import AnalysisError
from repro.opportunities.sharing_sim import (
    GpuSharingSimulator,
    SharingConfig,
    SharingJob,
    jobs_from_dataset,
    sharing_study,
)


def burst(n, duration=100.0, demand=20.0, start=0.0, spacing=0.0):
    return [
        SharingJob(arrival_s=start + i * spacing, duration_s=duration, demand=demand)
        for i in range(n)
    ]


@pytest.fixture
def sim():
    return GpuSharingSimulator(SharingConfig(headroom=60.0, max_jobs_per_gpu=2))


class TestConfig:
    def test_invalid_headroom(self):
        with pytest.raises(AnalysisError):
            SharingConfig(headroom=0.0)
        with pytest.raises(AnalysisError):
            SharingConfig(headroom=120.0)

    def test_invalid_slots(self):
        with pytest.raises(AnalysisError):
            SharingConfig(max_jobs_per_gpu=0)

    def test_invalid_job(self):
        with pytest.raises(AnalysisError):
            SharingJob(0.0, 0.0, 10.0)
        with pytest.raises(AnalysisError):
            SharingJob(0.0, 1.0, 120.0)


class TestExclusiveBaseline:
    def test_serial_queue_on_one_gpu(self, sim):
        jobs = burst(3, duration=100.0)
        outcome = sim.run(jobs, num_gpus=1, sharing=False)
        # second job waits 100 s, third 200 s
        assert outcome.mean_wait_s == pytest.approx(100.0)
        assert outcome.max_queue_length == 2

    def test_enough_gpus_no_wait(self, sim):
        outcome = sim.run(burst(4), num_gpus=4, sharing=False)
        assert outcome.mean_wait_s == 0.0


class TestSharing:
    def test_two_light_jobs_share_one_gpu(self, sim):
        outcome = sim.run(burst(2, demand=25.0), num_gpus=1, sharing=True)
        assert outcome.mean_wait_s == 0.0

    def test_headroom_blocks_third_resident(self, sim):
        outcome = sim.run(burst(3, demand=25.0), num_gpus=1, sharing=True)
        # two fit (50 <= 60), the third exceeds slots/headroom and queues
        assert outcome.max_queue_length == 1

    def test_hot_jobs_fall_back_to_exclusive(self, sim):
        jobs = burst(2, demand=90.0)
        outcome = sim.run(jobs, num_gpus=2, sharing=True)
        assert outcome.mean_wait_s == 0.0  # one hot job per empty device

    def test_hot_job_waits_for_empty_device(self, sim):
        jobs = burst(1, demand=20.0) + burst(1, demand=90.0, start=1.0)
        outcome = sim.run(jobs, num_gpus=1, sharing=True)
        # the hot job cannot join the light resident; waits ~99 s
        assert outcome.p95_wait_s > 50.0

    def test_sharing_never_hurts_waits(self, sim):
        jobs = burst(12, demand=25.0, spacing=10.0)
        exclusive = sim.run(jobs, num_gpus=3, sharing=False)
        shared = sim.run(jobs, num_gpus=3, sharing=True)
        assert shared.mean_wait_s <= exclusive.mean_wait_s

    def test_packs_fullest_device_first(self, sim):
        # three arrivals: 1st on gpu0, 2nd shares gpu0 (fullest), 3rd on gpu1
        jobs = burst(3, demand=20.0)
        outcome = sim.run(jobs, num_gpus=2, sharing=True)
        assert outcome.mean_wait_s == 0.0

    def test_demand_accounting_with_mixed_durations(self, sim):
        # a long light job + short heavier job share; when the short one
        # ends its demand (not the long one's) must be released
        jobs = [
            SharingJob(0.0, 1000.0, 20.0),
            SharingJob(1.0, 50.0, 40.0),
            SharingJob(100.0, 50.0, 40.0),  # fits only if the 40 was freed
        ]
        outcome = sim.run(jobs, num_gpus=1, sharing=True)
        assert outcome.mean_wait_s == pytest.approx(0.0, abs=1e-6)


class TestRightSizeAndStudy:
    def test_right_size_shared_smaller(self, sim):
        jobs = burst(40, duration=200.0, demand=20.0, spacing=5.0)
        sizes = sim.right_size(jobs, target_median_wait_s=1.0, max_gpus=40)
        assert sizes["shared"] <= sizes["exclusive"]

    def test_right_size_unreachable_target(self, sim):
        jobs = burst(10, duration=1000.0, demand=90.0)
        with pytest.raises(AnalysisError, match="miss the wait target"):
            sim.right_size(jobs, target_median_wait_s=0.0, max_gpus=2)

    def test_study_on_dataset(self, medium_dataset):
        exclusive, shared = sharing_study(medium_dataset, max_jobs=600)
        # the paper's co-location claim at fleet level: sharing strictly
        # improves queueing on a tight fleet
        assert shared.mean_wait_s <= exclusive.mean_wait_s
        assert shared.num_gpus == exclusive.num_gpus

    def test_jobs_from_dataset_single_gpu_only(self, medium_dataset):
        jobs = jobs_from_dataset(medium_dataset, max_jobs=100)
        assert len(jobs) == 100
        assert all(0 <= j.demand <= 100 for j in jobs)

    def test_empty_inputs_rejected(self, sim):
        with pytest.raises(AnalysisError):
            sim.run([], 1, False)
        with pytest.raises(AnalysisError):
            sim.run(burst(1), 0, False)
