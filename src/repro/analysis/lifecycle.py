"""Development life-cycle classification (Fig 15-17; Sec. VI).

The paper's novel contribution: classify every job by where it sits in
the algorithm-development cycle, *derived purely from how it ended*:

* ``mature`` — completed with exit code 0;
* ``exploratory`` — cancelled by the user (suboptimal hyper-parameters);
* ``development`` — crashed with a non-zero exit (debugging);
* ``ide`` — interactive session that hit its timeout limit.
"""

from __future__ import annotations

import numpy as np

from repro.errors import AnalysisError
from repro.frame import Table
from repro.slurm.job import LIFECYCLE_CLASSES


def classify_exit(exit_code: int, cancelled_by_user: bool, timed_out: bool) -> str:
    """Classify one job from its raw scheduler exit facts.

    Mirrors the paper's rules; precedence follows how Slurm reports
    states (TIMEOUT and CANCELLED are states, not exit codes).
    """
    if timed_out:
        return "ide"
    if cancelled_by_user:
        return "exploratory"
    if exit_code == 0:
        return "mature"
    return "development"


def lifecycle_breakdown(gpu_jobs: Table) -> Table:
    """Job share, GPU-hour share, and median runtime per class (Fig 15)."""
    if gpu_jobs.num_rows == 0:
        raise AnalysisError("no jobs")
    classes = np.asarray(list(gpu_jobs["lifecycle_class"]))
    hours = np.asarray(gpu_jobs["gpu_hours"], dtype=float)
    runtimes = np.asarray(gpu_jobs["run_time_s"], dtype=float)
    total_hours = hours.sum()
    rows = []
    for cls in LIFECYCLE_CLASSES:
        mask = classes == cls
        rows.append(
            {
                "lifecycle_class": cls,
                "job_fraction": float(mask.mean()),
                "gpu_hour_fraction": float(hours[mask].sum() / total_hours) if total_hours else 0.0,
                "median_runtime_min": float(np.median(runtimes[mask]) / 60.0) if mask.any() else float("nan"),
                "num_jobs": int(mask.sum()),
            }
        )
    return Table.from_rows(rows)


def class_utilization_boxes(
    gpu_jobs: Table,
    metrics: tuple[str, ...] = ("sm_mean", "mem_bw_mean", "mem_size_mean"),
) -> Table:
    """Box-plot statistics of utilization per class (Fig 16)."""
    if gpu_jobs.num_rows == 0:
        raise AnalysisError("no jobs")
    classes = np.asarray(list(gpu_jobs["lifecycle_class"]))
    rows = []
    for cls in LIFECYCLE_CLASSES:
        mask = classes == cls
        if not mask.any():
            continue
        for metric in metrics:
            values = np.asarray(gpu_jobs[metric], dtype=float)[mask]
            rows.append(
                {
                    "lifecycle_class": cls,
                    "metric": metric,
                    "p25": float(np.percentile(values, 25)),
                    "median": float(np.median(values)),
                    "p75": float(np.percentile(values, 75)),
                }
            )
    return Table.from_rows(rows)


def user_lifecycle_composition(gpu_jobs: Table, by: str = "jobs") -> Table:
    """Per-user composition of the four classes (Fig 17).

    ``by`` selects the quantity being decomposed: ``"jobs"`` (Fig 17a)
    or ``"gpu_hours"`` (Fig 17b).  The result is sorted by the user's
    mature fraction descending, with a ``user_percentile`` column for
    the x-axis of the paper's stacked plot.
    """
    if by not in ("jobs", "gpu_hours"):
        raise AnalysisError(f"by must be 'jobs' or 'gpu_hours', got {by!r}")
    if gpu_jobs.num_rows == 0:
        raise AnalysisError("no jobs")

    # One cross-tabulation computes every (user, class) cell at once:
    # job counts for Fig 17a, summed GPU hours for Fig 17b.  Absent
    # combinations fill with 0, absent classes get a zero column.
    reducer = "count" if by == "jobs" else "sum"
    pivoted = gpu_jobs.pivot("user", "lifecycle_class", "gpu_hours", reducer)
    per_class = {
        cls: (
            np.asarray(pivoted[cls], dtype=float)
            if cls in pivoted
            else np.zeros(pivoted.num_rows)
        )
        for cls in LIFECYCLE_CLASSES
    }
    total = np.sum(list(per_class.values()), axis=0)
    data: dict[str, np.ndarray] = {"user": pivoted["user"]}
    with np.errstate(divide="ignore", invalid="ignore"):
        for cls, weights in per_class.items():
            data[f"{cls}_fraction"] = np.where(total > 0, weights / total, 0.0)
    table = Table(data)
    table = table.sort_by("mature_fraction", descending=True)
    n = table.num_rows
    percentiles = (np.arange(n) + 0.5) / n * 100.0
    return table.with_column("user_percentile", percentiles)
