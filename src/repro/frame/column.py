"""Column coercion helpers for :mod:`repro.frame`.

A column is always stored as a one-dimensional numpy array.  Numeric
data keeps its numpy dtype; strings are stored as object arrays so that
missing values (``None``) survive round trips.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

import numpy as np

from repro.errors import FrameError


def as_column(values: Any) -> np.ndarray:
    """Coerce ``values`` into a 1-D numpy array suitable for a table column.

    Accepts numpy arrays, sequences, and scalars are rejected.  Boolean,
    integer, and float inputs keep a numeric dtype; anything containing
    strings or ``None`` becomes an object array.
    """
    if isinstance(values, np.ndarray):
        if values.ndim != 1:
            raise FrameError(f"columns must be 1-D, got shape {values.shape}")
        return values
    if isinstance(values, (str, bytes)):
        raise FrameError("a single string is not a valid column; wrap it in a list")
    if not isinstance(values, Iterable):
        raise FrameError(f"cannot build a column from {type(values).__name__}")
    material = list(values)
    if _all_numeric(material):
        return np.asarray(material)
    out = np.empty(len(material), dtype=object)
    out[:] = material
    return out


def _all_numeric(values: Sequence[Any]) -> bool:
    """Return True when every element is a bool/int/float (no str/None)."""
    for value in values:
        if isinstance(value, bool):
            continue
        if isinstance(value, (int, float, np.integer, np.floating)):
            continue
        return False
    return True


def column_dtype(column: np.ndarray) -> str:
    """Classify a column as ``"numeric"``, ``"string"``, or ``"object"``."""
    if np.issubdtype(column.dtype, np.number) or column.dtype == bool:
        return "numeric"
    if column.dtype.kind in ("U", "S"):
        return "string"
    if column.dtype == object:
        if all(isinstance(v, str) for v in column):
            return "string"
        return "object"
    return "object"


def is_string_column(column: np.ndarray) -> bool:
    """Return True when every value in the column is a string."""
    return column_dtype(column) == "string"
