"""Unit tests for the machine-readable bench runner plumbing."""

import json

import pytest

from repro.bench import (
    FIRST_BENCH_ID,
    SuiteResult,
    next_bench_path,
    record_bench_stat,
    write_bench_json,
)


class TestNextBenchPath:
    def test_starts_at_first_id(self, tmp_path):
        assert next_bench_path(tmp_path).name == f"BENCH_{FIRST_BENCH_ID}.json"

    def test_never_overwrites_history(self, tmp_path):
        (tmp_path / "BENCH_6.json").write_text("{}")
        (tmp_path / "BENCH_11.json").write_text("{}")
        (tmp_path / "BENCH_notes.json").write_text("{}")  # ignored: not BENCH_<n>
        assert next_bench_path(tmp_path).name == "BENCH_12.json"


class TestRecordBenchStat:
    def test_noop_without_env(self, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_BENCH_STATS_DIR", raising=False)
        record_bench_stat("x", rows=1)  # must not raise or write anywhere
        assert list(tmp_path.iterdir()) == []

    def test_writes_sidecar_under_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_BENCH_STATS_DIR", str(tmp_path))
        record_bench_stat("stream_sketch", rows=100, rows_per_s=5.5)
        payload = json.loads((tmp_path / "stream_sketch.json").read_text())
        assert payload == {"rows": 100, "rows_per_s": 5.5}

    def test_last_write_wins(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_BENCH_STATS_DIR", str(tmp_path))
        record_bench_stat("s", attempt=1)
        record_bench_stat("s", attempt=2)
        assert json.loads((tmp_path / "s.json").read_text()) == {"attempt": 2}


class TestWriteBenchJson:
    def test_payload_schema(self, tmp_path):
        results = [
            SuiteResult("frame", "benchmarks/bench_frame.py", True, 1.25),
            SuiteResult(
                "stream",
                "benchmarks/bench_stream.py",
                False,
                2.5,
                stats={"stream_sketch": {"rows_per_s": 1e6}},
            ),
        ]
        path = tmp_path / "BENCH_6.json"
        payload = write_bench_json(results, path)
        on_disk = json.loads(path.read_text())
        assert on_disk == payload
        assert payload["schema"] == 1
        assert payload["passed"] is False
        assert payload["total_seconds"] == pytest.approx(3.75)
        assert payload["runner_peak_rss_bytes"] > 0
        suites = {s["name"]: s for s in payload["suites"]}
        assert suites["frame"]["passed"] is True
        assert suites["stream"]["stats"]["stream_sketch"]["rows_per_s"] == 1e6
