"""Shared benchmark fixtures.

The dataset comes from one pipeline :class:`~repro.pipeline.Session`
per pytest session, backed by an on-disk artifact cache, so every
benchmark module shares a single generation.  ``REPRO_BENCH_SCALE``
selects the dataset size (default 0.05 keeps the whole suite under a
minute; 1.0 reproduces the paper-sized dataset, ~4 minutes of
generation).  Point ``REPRO_BENCH_CACHE_DIR`` at a persistent
directory to also share the artifacts *across* benchmark runs.
"""

from __future__ import annotations

import os

import pytest

from repro.pipeline import Session
from repro.workload.generator import WorkloadConfig

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.05"))
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "20220214"))


@pytest.fixture(scope="session")
def bench_session(tmp_path_factory) -> Session:
    cache_dir = os.environ.get("REPRO_BENCH_CACHE_DIR") or tmp_path_factory.mktemp(
        "pipeline-cache"
    )
    return Session(
        WorkloadConfig(scale=BENCH_SCALE, seed=BENCH_SEED), cache_dir=cache_dir
    )


@pytest.fixture(scope="session")
def dataset(bench_session):
    return bench_session.dataset()
