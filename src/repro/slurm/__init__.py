"""Event-driven Slurm-like scheduler simulator.

The paper's queue-wait results (Fig. 3b, Sec. V) emerge from running
the calibrated workload through this simulator on the modeled cluster:

* :mod:`repro.slurm.job` — job requests, states, exit conditions.
* :mod:`repro.slurm.events` — the discrete-event loop.
* :mod:`repro.slurm.queue` — FCFS queue with bounded backfill.
* :mod:`repro.slurm.placement` — topology-aware placement (dense
  multi-GPU placement, CPU-node co-location of GPU jobs).
* :mod:`repro.slurm.scheduler` — the simulator tying it together.
* :mod:`repro.slurm.accounting` — sacct-style log as a frame Table.
* :mod:`repro.slurm.interchange` — partitioned cluster islands with
  bounded-lag cross-partition state exchange (``docs/scaling.md``).
* :mod:`repro.slurm.parallel` — the same lockstep interchange across
  persistent worker processes, bit-identical to the serial runner.
"""

from repro.slurm.accounting import accounting_table
from repro.slurm.events import Event, EventLoop
from repro.slurm.interchange import (
    InterchangeConfig,
    PartitionedResult,
    PartitionedRunner,
    migration_candidates,
    plan_migrations,
    route_requests,
    run_partitioned,
)
from repro.slurm.job import ExitCondition, JobRecord, JobRequest, JobState
from repro.slurm.parallel import ParallelPartitionedResult, ParallelPartitionedRunner
from repro.slurm.placement import PlacementPolicy, check_spec_feasible
from repro.slurm.queue import JobQueue
from repro.slurm.scheduler import SchedulerConfig, SlurmSimulator

__all__ = [
    "Event",
    "EventLoop",
    "ExitCondition",
    "InterchangeConfig",
    "JobQueue",
    "JobRecord",
    "JobRequest",
    "JobState",
    "ParallelPartitionedResult",
    "ParallelPartitionedRunner",
    "PartitionedResult",
    "PartitionedRunner",
    "PlacementPolicy",
    "SchedulerConfig",
    "SlurmSimulator",
    "accounting_table",
    "check_spec_feasible",
    "migration_candidates",
    "plan_migrations",
    "route_requests",
    "run_partitioned",
]
