"""Tests for topology-aware placement."""

import pytest

from repro.cluster.node import Cluster
from repro.cluster.spec import supercloud_spec
from repro.errors import PlacementError
from repro.slurm.placement import PlacementPolicy
from tests.slurm.test_job import make_request


@pytest.fixture
def policy():
    return PlacementPolicy(Cluster(supercloud_spec(8)))


def apply(policy, request):
    plan = policy.find_placement(request)
    assert plan is not None
    for node_index, cores, mem, gpus in plan:
        policy.cluster.nodes[node_index].allocate(request.job_id, cores, mem, gpus)
    policy.invalidate()
    return plan


class TestFeasibility:
    def test_oversized_gpu_job_rejected(self, policy):
        with pytest.raises(PlacementError, match="GPUs"):
            policy.check_feasible(make_request(num_gpus=17))

    def test_oversized_cpu_job_rejected(self, policy):
        with pytest.raises(PlacementError):
            policy.check_feasible(make_request(num_gpus=0, cores=80))

    def test_feasible_passes(self, policy):
        policy.check_feasible(make_request(num_gpus=16, cores=16))


class TestSingleNodePlacement:
    def test_single_gpu_lands_on_one_node(self, policy):
        plan = apply(policy, make_request(job_id=1, num_gpus=1))
        assert len(plan) == 1

    def test_best_fit_packs_partial_nodes(self, policy):
        apply(policy, make_request(job_id=1, num_gpus=1))
        plan = apply(policy, make_request(job_id=2, num_gpus=1))
        # second job lands on the node that already has one GPU taken
        assert plan[0][0] == 0

    def test_two_gpu_job_avoids_partial_node(self, policy):
        apply(policy, make_request(job_id=1, num_gpus=1))
        plan = apply(policy, make_request(job_id=2, num_gpus=2))
        assert plan[0][0] != 0

    def test_cpu_job_takes_free_node(self, policy):
        plan = apply(policy, make_request(job_id=1, num_gpus=0, cores=40, memory_gb=360.0))
        assert plan[0][3] == 0  # no GPUs

    def test_whole_node_cpu_job_blocked_by_colocated_gpu_job(self, policy):
        # a 2-GPU job on every node leaves 36 free cores per node: the
        # whole-node CPU request cannot start anywhere
        for node in range(8):
            apply(policy, make_request(job_id=node, num_gpus=2, cores=4))
        request = make_request(job_id=100, num_gpus=0, cores=40, memory_gb=300.0)
        assert policy.find_placement(request) is None


class TestMultiNodePlacement:
    def test_four_gpu_job_spans_two_nodes(self, policy):
        plan = apply(policy, make_request(job_id=1, num_gpus=4, cores=8))
        assert len(plan) == 2
        assert sum(p[3] for p in plan) == 4

    def test_odd_gpu_count_distributes(self, policy):
        plan = apply(policy, make_request(job_id=1, num_gpus=3, cores=6))
        assert sorted(p[3] for p in plan) == [1, 2]

    def test_dense_groups_prefer_same_leaf(self):
        policy = PlacementPolicy(Cluster(supercloud_spec(64)))
        plan = apply(policy, make_request(job_id=1, num_gpus=8, cores=8))
        nodes = [p[0] for p in plan]
        assert policy.topology.group_span(nodes) <= 2

    def test_no_room_returns_none(self, policy):
        for i in range(8):
            apply(policy, make_request(job_id=i, num_gpus=2, cores=4))
        assert policy.find_placement(make_request(job_id=99, num_gpus=2)) is None


class TestFailureCache:
    def test_failed_shape_cached_until_invalidate(self, policy):
        for i in range(8):
            apply(policy, make_request(job_id=i, num_gpus=2, cores=4))
        request = make_request(job_id=50, num_gpus=2)
        assert policy.find_placement(request) is None
        # cluster unchanged: the cached failure answers immediately
        assert policy.find_placement(request) is None
        policy.cluster.nodes[0].release(0)
        policy.invalidate()
        assert policy.find_placement(request) is not None
