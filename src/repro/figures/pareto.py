"""Sec. IV text: the Pareto principle of user activity."""

from __future__ import annotations

from repro.analysis.users import pareto_stats, user_table
from repro.dataset import SupercloudDataset
from repro.figures.base import Comparison, FigureResult


def run(dataset: SupercloudDataset) -> FigureResult:
    """Top-user job concentration (Sec. IV)."""
    users = user_table(dataset.gpu_jobs)
    stats = pareto_stats(users)
    scale = dataset.config.scale
    comparisons = [
        Comparison("top 5% users' job share", 0.44, stats.top5pct_job_share),
        Comparison("top 20% users' job share", 0.832, stats.top20pct_job_share),
        Comparison(
            "median user job count (scaled)",
            # the paper's 36 jobs/user scales with jobs-per-user density
            36.0 * (dataset.config.scaled_gpu_jobs / 47120.0) / (len(users) / 191.0),
            stats.median_jobs_per_user,
        ),
    ]
    return FigureResult(
        figure_id="pareto",
        title="User activity concentration (Sec. IV)",
        series={"stats": stats, "users": users},
        comparisons=comparisons,
        notes=f"{stats.num_users} users, Gini {stats.gini_coefficient:.2f}",
    )
