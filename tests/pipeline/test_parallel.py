"""Tests for the process-parallel fan-out helpers."""

from repro.pipeline import parallel_map, resolve_workers


def _square(x: int) -> int:
    return x * x


class TestResolveWorkers:
    def test_none_and_nonpositive_are_serial(self):
        assert resolve_workers(None) == 1
        assert resolve_workers(0) == 1
        assert resolve_workers(-3) == 1

    def test_explicit_request_honoured(self):
        assert resolve_workers(4) == 4

    def test_capped(self):
        assert resolve_workers(10_000) == 64


class TestParallelMap:
    def test_serial_path(self):
        assert parallel_map(_square, [1, 2, 3], workers=1) == [1, 4, 9]

    def test_single_item_stays_serial(self):
        assert parallel_map(_square, [7], workers=8) == [49]

    def test_parallel_matches_serial_and_keeps_order(self):
        items = list(range(20))
        assert parallel_map(_square, items, workers=3) == [x * x for x in items]

    def test_empty(self):
        assert parallel_map(_square, [], workers=4) == []
