"""Fig 10: per-user average job characteristics."""

from __future__ import annotations

from repro.analysis.stats import ecdf
from repro.analysis.users import user_table
from repro.dataset import SupercloudDataset
from repro.figures.base import Comparison, FigureResult


def run(dataset: SupercloudDataset) -> FigureResult:
    """CDFs across users of the mean runtime/SM/memory/size of their jobs."""
    users = user_table(dataset.gpu_jobs)
    runtime = ecdf([v / 60.0 for v in users["avg_runtime"]])
    sm = ecdf(users["avg_sm"])
    mem = ecdf(users["avg_mem_bw"])
    size = ecdf(users["avg_mem_size"])

    comparisons = [
        Comparison("user avg runtime p25", 135.0, runtime.quantile(0.25), " min"),
        Comparison("user avg runtime median", 392.0, runtime.median(), " min"),
        Comparison("user avg runtime p75", 823.0, runtime.quantile(0.75), " min"),
        Comparison("user avg SM median", 10.75, sm.median(), "%"),
        Comparison("user avg memory median", 1.8, mem.median(), "%"),
        Comparison("user avg memory-size median", 11.2, size.median(), "%"),
        Comparison("users with avg SM >20%", 0.32, sm.fraction_above(20.0)),
        Comparison("users with avg memory >20%", 0.05, mem.fraction_above(20.0)),
    ]
    return FigureResult(
        figure_id="fig10",
        title="Per-user average job characteristics",
        series={"runtime": runtime, "sm": sm, "mem_bw": mem, "mem_size": size, "users": users},
        comparisons=comparisons,
    )
