"""Fig 13: multi-GPU job mix and GPU-hour footprint."""

from repro.figures.registry import run_figure


def test_fig13_job_size_mix(benchmark, dataset):
    result = benchmark(run_figure, "fig13", dataset)
    # shape: single-GPU jobs dominate by count, multi-GPU by hours
    single = result.get("single-GPU job fraction").measured
    hours = result.get("multi-GPU share of GPU hours").measured
    assert single > 0.7
    assert hours > (1.0 - single)
