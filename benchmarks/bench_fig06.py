"""Fig 6: active/idle phase segmentation of the time-series subset."""

from repro.figures.registry import run_figure


def test_fig06_phase_segmentation(benchmark, dataset):
    result = benchmark(run_figure, "fig06", dataset)
    # shape: bimodal active fraction, irregular interval lengths
    assert result.get("active-time share p75").measured > result.get("active-time share p25").measured
    assert result.get("active interval CoV median").measured > 0.3
