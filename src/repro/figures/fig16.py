"""Fig 16: utilization box plots per life-cycle class."""

from __future__ import annotations

from repro.analysis.lifecycle import class_utilization_boxes
from repro.dataset import SupercloudDataset
from repro.figures.base import Comparison, FigureResult

PAPER_SM_MEDIANS = {"mature": 21.0, "exploratory": 15.0, "development": 0.0, "ide": 0.0}


def run(dataset: SupercloudDataset) -> FigureResult:
    """Box plots (p25/median/p75) of SM/memory/size per class."""
    boxes = class_utilization_boxes(dataset.gpu_jobs)
    sm_rows = {
        str(row["lifecycle_class"]): row
        for row in boxes.iter_rows()
        if row["metric"] == "sm_mean"
    }
    comparisons = []
    for cls, paper in PAPER_SM_MEDIANS.items():
        if cls in sm_rows:
            comparisons.append(
                Comparison(f"{cls} SM median", paper, sm_rows[cls]["median"], "%")
            )
    if "ide" in sm_rows:
        comparisons.append(
            Comparison("IDE SM p75 (paper: 0)", 0.0, sm_rows["ide"]["p75"], "%")
        )
    # Ordering claim: development and IDE jobs use far less than
    # mature/exploratory jobs.
    ordered = (
        sm_rows["mature"]["median"] > sm_rows["development"]["median"]
        and sm_rows["exploratory"]["median"] > sm_rows["ide"]["median"]
    )
    comparisons.append(Comparison("mature/expl >> dev/IDE ordering holds", 1.0, float(ordered)))
    return FigureResult(
        figure_id="fig16",
        title="Utilization by life-cycle class",
        series={"boxes": boxes},
        comparisons=comparisons,
    )
