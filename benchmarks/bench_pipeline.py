"""End-to-end pipeline benchmarks: generation, scheduling, monitoring,
and the session artifact cache."""

import time

from repro.bench import record_bench_stat
from repro.dataset import generate_dataset
from repro.figures.registry import run_all
from repro.pipeline import Session
from repro.slurm.scheduler import SlurmSimulator
from repro.cluster.spec import supercloud_spec
from repro.workload.generator import WorkloadConfig, WorkloadGenerator


def _best_seconds(benchmark) -> float | None:
    """Fastest measured round of a pytest-benchmark run, if available."""
    try:
        return float(benchmark.stats.stats.min)
    except AttributeError:
        return None


def test_workload_generation(benchmark):
    def generate():
        return WorkloadGenerator(WorkloadConfig(scale=0.02, seed=1)).generate()

    requests = benchmark(generate)
    assert len(requests) > 500
    best_s = _best_seconds(benchmark)
    if best_s:
        record_bench_stat(
            "workload_generation", rows_per_s=len(requests) / best_s
        )


def test_scheduler_simulation(benchmark):
    config = WorkloadConfig(scale=0.02, seed=1)
    requests = WorkloadGenerator(config).generate()

    def simulate():
        # jobs carry no monitoring here: pure scheduler throughput
        return SlurmSimulator(supercloud_spec(config.scaled_nodes)).run(list(requests))

    result = benchmark(simulate)
    assert len(result.records) == len(requests)
    best_s = _best_seconds(benchmark)
    if best_s:
        record_bench_stat(
            "scheduler_simulation", rows_per_s=len(result.records) / best_s
        )


def test_full_dataset_pipeline(benchmark):
    def build():
        return generate_dataset(WorkloadConfig(scale=0.01, seed=2))

    dataset = benchmark(build)
    assert dataset.gpu_jobs.num_rows > 100
    best_s = _best_seconds(benchmark)
    if best_s:
        from repro.obs.runtime import peak_rss_bytes

        record_bench_stat(
            "full_dataset_pipeline",
            rows_per_s=dataset.jobs.num_rows / best_s,
            runner_peak_rss_bytes=peak_rss_bytes(),
        )


def test_cached_report(tmp_path):
    """Perf gate on the cache path: warm ``run_all`` must be >=5x cold.

    A regression that silently stops hitting the dataset or figure
    caches (key instability, broken load, eager rebuild) collapses the
    warm/cold ratio far below 5 and fails here visibly.
    """
    config = WorkloadConfig(scale=0.01, seed=3)
    cache_dir = tmp_path / "cache"

    start = time.perf_counter()
    cold_session = Session(config, cache_dir=cache_dir)
    cold_results = run_all(cold_session)
    cold_s = time.perf_counter() - start

    start = time.perf_counter()
    warm_session = Session(config, cache_dir=cache_dir)
    warm_results = run_all(warm_session)
    warm_s = time.perf_counter() - start

    assert [r.figure_id for r in warm_results] == [r.figure_id for r in cold_results]
    assert cold_session.instrumentation.count("build") == 1
    assert warm_session.instrumentation.count("build") == 0
    assert not warm_session.executed("workload")
    assert warm_s * 5 <= cold_s, (
        f"warm run_all took {warm_s:.2f}s vs cold {cold_s:.2f}s (< 5x speedup)"
    )
