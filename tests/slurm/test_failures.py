"""Tests for hardware failure injection."""

import numpy as np
import pytest

from repro.cluster.spec import supercloud_spec
from repro.errors import SchedulerError
from repro.slurm.failures import SECONDS_PER_YEAR, FailureModel
from repro.slurm.job import ExitCondition
from repro.slurm.scheduler import SchedulerConfig, SlurmSimulator
from tests.slurm.test_job import make_request


class TestFailureModel:
    def test_invalid_params_rejected(self):
        with pytest.raises(SchedulerError):
            FailureModel(node_mtbf_s=0.0)
        with pytest.raises(SchedulerError):
            FailureModel(repair_time_s=-1.0)

    def test_draw_count_near_expectation(self):
        model = FailureModel(node_mtbf_s=1000.0, repair_time_s=0.0, seed=1)
        events = model.draw_failure_times(num_nodes=50, horizon_s=10000.0)
        expected = model.expected_failures(50, 10000.0)
        assert len(events) == pytest.approx(expected, rel=0.3)

    def test_events_sorted_and_bounded(self):
        model = FailureModel(node_mtbf_s=500.0, seed=2)
        events = model.draw_failure_times(10, 5000.0)
        times = [t for t, _ in events]
        assert times == sorted(times)
        assert all(0 <= t < 5000.0 for t in times)
        assert all(0 <= node < 10 for _, node in events)

    def test_reliable_nodes_rarely_fail(self):
        model = FailureModel()  # 40 node-years MTBF
        events = model.draw_failure_times(224, 125 * 86400.0)
        # 224 nodes x 125 days / 40 years ~ 1.9 failures expected
        assert len(events) < 12

    def test_deterministic_given_seed(self):
        a = FailureModel(node_mtbf_s=1000.0, seed=3).draw_failure_times(5, 5000.0)
        b = FailureModel(node_mtbf_s=1000.0, seed=3).draw_failure_times(5, 5000.0)
        assert a == b


def run_with_failures(requests, mtbf_s, requeue=False, repair_s=100.0, nodes=2, seed=0):
    config = SchedulerConfig(
        failure_model=FailureModel(
            node_mtbf_s=mtbf_s, repair_time_s=repair_s, requeue=requeue, seed=seed
        )
    )
    simulator = SlurmSimulator(supercloud_spec(nodes), config)
    result = simulator.run(requests)
    simulator.cluster.check_invariants()
    return simulator, result


class TestFailureInjection:
    def test_long_job_killed_by_failure(self):
        # MTBF of minutes guarantees a failure during a day-long job
        requests = [make_request(job_id=1, runtime_s=86400.0)]
        _, result = run_with_failures(requests, mtbf_s=600.0)
        record = result.records[0]
        assert record.exit_condition is ExitCondition.NODE_FAILURE
        assert record.lifecycle_class == "development"
        assert record.run_time_s < 86400.0
        assert result.jobs_killed_by_failures == 1
        assert result.node_failures > 0

    def test_no_failures_with_huge_mtbf(self):
        requests = [make_request(job_id=i, runtime_s=300.0) for i in range(5)]
        _, result = run_with_failures(requests, mtbf_s=1e12)
        assert result.node_failures == 0
        assert all(r.exit_condition is ExitCondition.COMPLETED for r in result.records)

    def test_requeue_reruns_to_completion(self):
        requests = [make_request(job_id=1, runtime_s=2000.0)]
        _, result = run_with_failures(
            requests, mtbf_s=1500.0, requeue=True, repair_s=50.0, seed=4
        )
        assert len(result.records) == 1
        record = result.records[0]
        assert record.exit_condition is ExitCondition.COMPLETED
        if record.request.tags.get("requeues"):
            # the rerun pushed the completion past one clean runtime
            assert record.service_time_s > 2000.0

    def test_nodes_recover_after_repair(self):
        # a failure then a later job: the cluster must still serve it
        requests = [
            make_request(job_id=1, submit_time_s=0.0, runtime_s=5000.0),
            make_request(job_id=2, submit_time_s=20000.0, runtime_s=100.0),
        ]
        simulator, result = run_with_failures(
            requests, mtbf_s=3000.0, repair_s=500.0, nodes=1, seed=0
        )
        by_id = {r.request.job_id: r for r in result.records}
        assert by_id[1].exit_condition is ExitCondition.NODE_FAILURE
        assert by_id[2].exit_condition is ExitCondition.COMPLETED
        assert all(node.available for node in simulator.cluster.nodes)

    def test_cluster_invariants_after_churn(self):
        requests = [
            make_request(job_id=i, submit_time_s=i * 50.0, runtime_s=400.0, num_gpus=1 + i % 2)
            for i in range(30)
        ]
        simulator, result = run_with_failures(requests, mtbf_s=2000.0, repair_s=100.0, seed=6)
        assert len(result.records) == 30
        assert simulator.cluster.used_gpus == 0

    def test_failure_rate_matches_paper_scale(self):
        """With the default MTBF, < 0.5% of jobs die to hardware."""
        requests = [
            make_request(job_id=i, submit_time_s=i * 600.0, runtime_s=3000.0)
            for i in range(100)
        ]
        _, result = run_with_failures(
            requests, mtbf_s=FailureModel().node_mtbf_s, repair_s=3600.0, seed=7
        )
        failed = sum(
            1 for r in result.records if r.exit_condition is ExitCondition.NODE_FAILURE
        )
        assert failed / len(result.records) < 0.05
