"""Fig 8: single and pairwise bottleneck fractions."""

from repro.figures.registry import run_figure


def test_fig08_pairwise_bottlenecks(benchmark, dataset):
    result = benchmark(run_figure, "fig08", dataset)
    # shape: no resource pair saturates in the same run for >~10% of jobs
    assert result.get("max of any pair (< 0.10)").measured < 0.15
