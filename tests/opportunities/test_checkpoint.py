"""Tests for the checkpoint/restart cost model."""

import math

import pytest

from repro.errors import AnalysisError
from repro.frame import Table
from repro.opportunities.checkpoint import (
    CheckpointModel,
    checkpoint_study,
    interval_sweep,
)


def exit_jobs(spec):
    """spec: [(exit_condition, runtime_s, num_gpus), ...]"""
    return Table.from_rows(
        [
            {"exit_condition": exit_condition, "run_time_s": runtime, "num_gpus": gpus}
            for exit_condition, runtime, gpus in spec
        ]
    )


class TestModel:
    def test_checkpoint_cost(self):
        model = CheckpointModel(model_size_gb=10.0, write_bandwidth_gbps=2.0)
        assert model.checkpoint_cost_s == 5.0

    def test_young_daly(self):
        model = CheckpointModel(model_size_gb=2.0, write_bandwidth_gbps=2.0)
        assert model.young_daly_interval(3600.0) == pytest.approx(math.sqrt(2 * 1.0 * 3600.0))

    def test_young_daly_invalid_mtti(self):
        with pytest.raises(AnalysisError):
            CheckpointModel().young_daly_interval(0.0)

    def test_overhead_fraction(self):
        model = CheckpointModel(model_size_gb=2.0, write_bandwidth_gbps=2.0, interval_s=100.0)
        # 10 checkpoints of 1 s in a 1000 s run
        assert model.overhead_fraction(1000.0) == pytest.approx(0.01)

    def test_expected_loss_half_interval(self):
        assert CheckpointModel(interval_s=600.0).expected_loss_s() == 300.0

    def test_invalid_params_rejected(self):
        with pytest.raises(AnalysisError):
            CheckpointModel(model_size_gb=0.0)


class TestStudy:
    def test_lossy_accounting(self):
        jobs = exit_jobs(
            [
                ("completed", 3600.0, 1),
                ("timeout", 7200.0, 2),
                ("failed", 3600.0, 1),
            ]
        )
        study = checkpoint_study(jobs, CheckpointModel(interval_s=600.0))
        assert study.lossy_job_fraction == pytest.approx(2.0 / 3.0)
        assert study.lost_gpu_hours_without == pytest.approx((7200 * 2 + 3600) / 3600.0)
        # with checkpoints each lossy job loses <= 300 s
        assert study.lost_gpu_hours_with == pytest.approx((300 * 2 + 300) / 3600.0)

    def test_net_saving_positive_for_heavy_losses(self):
        jobs = exit_jobs([("timeout", 43200.0, 1)] * 3 + [("completed", 600.0, 1)])
        study = checkpoint_study(jobs)
        assert study.net_saving_gpu_hours > 0

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            checkpoint_study(exit_jobs([]))

    def test_on_generated_data(self, gpu_jobs):
        study = checkpoint_study(gpu_jobs)
        # IDE (timeout) + development (failed) jobs lose state
        assert 0.1 <= study.lossy_job_fraction <= 0.45
        assert study.net_saving_gpu_hours > 0


class TestSweep:
    def test_one_row_per_interval(self, gpu_jobs):
        sweep = interval_sweep(gpu_jobs, intervals_s=(300.0, 600.0))
        assert sweep.num_rows == 2

    def test_overhead_decreases_with_interval(self, gpu_jobs):
        sweep = interval_sweep(gpu_jobs, intervals_s=(120.0, 3600.0))
        rows = sorted(sweep.iter_rows(), key=lambda r: r["interval_s"])
        assert rows[0]["overhead_gpu_hours"] > rows[1]["overhead_gpu_hours"]

    def test_loss_increases_with_interval(self, gpu_jobs):
        sweep = interval_sweep(gpu_jobs, intervals_s=(120.0, 3600.0))
        rows = sorted(sweep.iter_rows(), key=lambda r: r["interval_s"])
        assert rows[0]["lost_with_gpu_hours"] < rows[1]["lost_with_gpu_hours"]
