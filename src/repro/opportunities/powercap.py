"""Power-cap over-provisioning what-if (paper Sec. III, Fig 9b).

"An effective way to use this power is to over-provision the system
with more GPUs ... but this would require capping the power
consumption of the GPUs."  The model:

* the facility budget equals ``num_gpus x board_power``;
* capping every GPU at ``L`` watts supports ``budget / L`` devices;
* a job slows only while it would have drawn more than the cap;
  slowdown is approximated by the clipped-power ratio during peaks
  (DVFS throttling is roughly power-proportional near the top of the
  V100 curve);
* fleet throughput = devices x mean per-job speed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import AnalysisError
from repro.frame import Table


@dataclass(frozen=True)
class PowerCapDesign:
    """Outcome of one cap level."""

    cap_w: float
    num_gpus: int
    impacted_job_fraction: float
    mean_job_speed: float
    relative_throughput: float


def _job_speed(avg_w: np.ndarray, peak_w: np.ndarray, cap_w: float) -> np.ndarray:
    """Per-job speed under a cap (1.0 = unthrottled).

    Jobs whose peak stays under the cap are untouched.  For the rest,
    throttling bites only during high-power phases; we approximate the
    time spent there by how far the *average* sits toward the peak,
    and the depth of throttling by ``cap / peak``.
    """
    speed = np.ones_like(avg_w)
    over = peak_w > cap_w
    if over.any():
        # Fraction of time near the peak: 0 when avg << peak, 1 when
        # avg == peak.
        denom = np.maximum(peak_w[over], 1e-9)
        near_peak = np.clip(avg_w[over] / denom, 0.0, 1.0)
        throttle = cap_w / denom
        speed[over] = (1.0 - near_peak) + near_peak * throttle
    return speed


def powercap_study(
    gpu_jobs: Table,
    base_gpus: int = 448,
    board_power_w: float = 300.0,
    caps_w=(300.0, 250.0, 200.0, 150.0),
) -> Table:
    """Sweep cap levels; one row per design point.

    ``relative_throughput`` is normalised to the uncapped fleet: values
    above 1.0 mean the extra devices more than pay for the throttling.
    """
    if gpu_jobs.num_rows == 0:
        raise AnalysisError("no jobs")
    avg = np.asarray(gpu_jobs["power_w_mean"], dtype=float)
    peak = np.asarray(gpu_jobs["power_w_max"], dtype=float)
    budget = base_gpus * board_power_w

    rows = []
    for cap in caps_w:
        if cap <= 0:
            raise AnalysisError(f"cap must be positive, got {cap}")
        num_gpus = int(budget // cap)
        speed = _job_speed(avg, peak, cap)
        throughput = num_gpus * float(speed.mean())
        rows.append(
            {
                "cap_w": float(cap),
                "num_gpus": num_gpus,
                "impacted_job_fraction": float((peak > cap).mean()),
                "mean_job_speed": float(speed.mean()),
                "relative_throughput": throughput / base_gpus,
            }
        )
    return Table.from_rows(rows)


def best_design(study: Table) -> PowerCapDesign:
    """The cap level with the highest relative throughput."""
    best = max(study.iter_rows(), key=lambda row: row["relative_throughput"])
    return PowerCapDesign(
        cap_w=best["cap_w"],
        num_gpus=best["num_gpus"],
        impacted_job_fraction=best["impacted_job_fraction"],
        mean_job_speed=best["mean_job_speed"],
        relative_throughput=best["relative_throughput"],
    )
