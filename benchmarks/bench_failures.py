"""Failure-injection ablation: hardware reliability vs job outcomes.

The paper reports hardware causes <0.5% of job failures at current
reliability, and Sec. VIII asks whether *less reliable* (cheaper)
GPUs would be tolerable.  This bench sweeps node MTBF and measures
the hardware-failure share of jobs.
"""

import numpy as np

from repro.cluster.spec import supercloud_spec
from repro.slurm.failures import SECONDS_PER_YEAR, FailureModel
from repro.slurm.job import ExitCondition
from repro.slurm.scheduler import SchedulerConfig, SlurmSimulator
from repro.workload.generator import WorkloadConfig, WorkloadGenerator


def _failure_share(requests, nodes, mtbf_years):
    config = SchedulerConfig(
        failure_model=FailureModel(node_mtbf_s=mtbf_years * SECONDS_PER_YEAR, seed=9)
    )
    result = SlurmSimulator(supercloud_spec(nodes), config).run(list(requests))
    failed = sum(
        1 for r in result.records if r.exit_condition is ExitCondition.NODE_FAILURE
    )
    return failed / max(len(result.records), 1)


def test_failure_reliability_sweep(benchmark):
    config = WorkloadConfig(scale=0.02, seed=4)
    requests = WorkloadGenerator(config).generate()

    def sweep():
        return {
            years: _failure_share(requests, config.scaled_nodes, years)
            for years in (40.0, 2.0, 0.25)
        }

    shares = benchmark.pedantic(sweep, rounds=1, iterations=1)
    # current-generation reliability: hardware failures are negligible
    assert shares[40.0] < 0.005
    # failure share grows monotonically as MTBF shrinks
    assert shares[40.0] <= shares[2.0] <= shares[0.25]
