"""Tests for repro.frame.Table."""

import numpy as np
import pytest

from repro.errors import ColumnMissingError, FrameError, LengthMismatchError
from repro.frame import Table, concat_tables


@pytest.fixture
def table():
    return Table(
        {
            "user": ["a", "b", "a", "c"],
            "runtime": [10.0, 20.0, 30.0, 40.0],
            "gpus": [1, 2, 1, 4],
        }
    )


class TestConstruction:
    def test_basic_shape(self, table):
        assert table.num_rows == 4
        assert table.num_columns == 3
        assert table.column_names == ("user", "runtime", "gpus")

    def test_empty_table(self):
        t = Table()
        assert t.num_rows == 0
        assert t.num_columns == 0

    def test_length_mismatch_rejected(self):
        with pytest.raises(LengthMismatchError):
            Table({"a": [1, 2], "b": [1]})

    def test_from_rows_union_of_keys(self):
        t = Table.from_rows([{"a": 1}, {"b": 2}])
        assert t.column_names == ("a", "b")
        assert t.row(0) == {"a": 1, "b": None}

    def test_from_rows_explicit_columns(self):
        t = Table.from_rows([{"a": 1, "b": 2}], columns=["b"])
        assert t.column_names == ("b",)

    def test_empty_factory(self):
        t = Table.empty(["x", "y"])
        assert t.num_rows == 0
        assert t.column_names == ("x", "y")


class TestAccess:
    def test_column_returns_array(self, table):
        assert list(table.column("gpus")) == [1, 2, 1, 4]

    def test_getitem(self, table):
        assert table["runtime"][1] == 20.0

    def test_missing_column_error_lists_available(self, table):
        with pytest.raises(ColumnMissingError, match="user"):
            table.column("nope")

    def test_row_unwraps_numpy_scalars(self, table):
        row = table.row(0)
        assert isinstance(row["gpus"], int)
        assert row == {"user": "a", "runtime": 10.0, "gpus": 1}

    def test_row_negative_index(self, table):
        assert table.row(-1)["user"] == "c"

    def test_row_out_of_range(self, table):
        with pytest.raises(IndexError):
            table.row(4)

    def test_iter_rows(self, table):
        rows = list(table.iter_rows())
        assert len(rows) == 4
        assert rows[3]["gpus"] == 4

    def test_contains(self, table):
        assert "user" in table
        assert "nope" not in table

    def test_to_dict_roundtrip(self, table):
        d = table.to_dict()
        again = Table(d)
        assert again.row(2) == table.row(2)

    def test_dtypes(self, table):
        assert table.dtypes() == {"user": "string", "runtime": "numeric", "gpus": "numeric"}


class TestTransforms:
    def test_select_preserves_order(self, table):
        t = table.select(["gpus", "user"])
        assert t.column_names == ("gpus", "user")

    def test_drop(self, table):
        t = table.drop(["user"])
        assert "user" not in t

    def test_drop_missing_raises(self, table):
        with pytest.raises(ColumnMissingError):
            table.drop(["nope"])

    def test_rename(self, table):
        t = table.rename({"runtime": "run_time_s"})
        assert "run_time_s" in t
        assert "runtime" not in t

    def test_rename_missing_raises(self, table):
        with pytest.raises(ColumnMissingError):
            table.rename({"nope": "x"})

    def test_with_column_adds(self, table):
        t = table.with_column("hours", [1.0, 2.0, 3.0, 4.0])
        assert t.num_columns == 4
        assert table.num_columns == 3  # original untouched

    def test_with_column_replaces(self, table):
        t = table.with_column("gpus", [9, 9, 9, 9])
        assert list(t["gpus"]) == [9, 9, 9, 9]

    def test_with_column_length_mismatch(self, table):
        with pytest.raises(LengthMismatchError):
            table.with_column("x", [1])

    def test_with_computed(self, table):
        t = table.with_computed("gpu_hours", lambda t: t["runtime"] * t["gpus"])
        assert list(t["gpu_hours"]) == [10.0, 40.0, 30.0, 160.0]

    def test_filter_mask(self, table):
        t = table.filter(np.asarray([True, False, True, False]))
        assert t.num_rows == 2
        assert list(t["user"]) == ["a", "a"]

    def test_filter_callable(self, table):
        t = table.filter(lambda t: np.asarray(t["gpus"]) > 1)
        assert t.num_rows == 2

    def test_filter_non_boolean_rejected(self, table):
        with pytest.raises(FrameError, match="boolean"):
            table.filter(np.asarray([1, 0, 1, 0]))

    def test_filter_wrong_length_rejected(self, table):
        with pytest.raises(LengthMismatchError):
            table.filter(np.asarray([True]))

    def test_take(self, table):
        t = table.take([3, 0])
        assert list(t["user"]) == ["c", "a"]

    def test_head(self, table):
        assert table.head(2).num_rows == 2
        assert table.head(100).num_rows == 4

    def test_sort_by_numeric(self, table):
        t = table.sort_by("runtime", descending=True)
        assert list(t["runtime"]) == [40.0, 30.0, 20.0, 10.0]

    def test_sort_by_string(self, table):
        t = table.sort_by("user")
        assert list(t["user"]) == ["a", "a", "b", "c"]

    def test_sort_by_multiple_keys(self, table):
        t = table.sort_by("user", "runtime")
        assert list(t["runtime"])[:2] == [10.0, 30.0]

    def test_sort_requires_column(self, table):
        with pytest.raises(FrameError):
            table.sort_by()

    def test_unique(self, table):
        assert list(table.unique("user")) == ["a", "b", "c"]


class TestJoin:
    def test_inner_join(self, table):
        right = Table({"user": ["a", "b"], "group": ["g1", "g2"]})
        joined = table.join(right, on="user")
        assert joined.num_rows == 3  # c dropped
        assert set(joined["group"]) == {"g1", "g2"}

    def test_left_join_fills_none(self, table):
        right = Table({"user": ["a"], "group": ["g1"]})
        joined = table.join(right, on="user", how="left")
        assert joined.num_rows == 4
        missing = [r["group"] for r in joined.iter_rows() if r["user"] != "a"]
        assert missing == [None, None]

    def test_join_overlapping_column_suffixed(self, table):
        right = Table({"user": ["a", "b", "c"], "runtime": [0.0, 0.0, 0.0]})
        joined = table.join(right, on="user")
        assert "runtime_right" in joined

    def test_join_duplicate_right_key_rejected(self, table):
        right = Table({"user": ["a", "a"], "x": [1, 2]})
        with pytest.raises(FrameError, match="not unique"):
            table.join(right, on="user")

    def test_join_unsupported_how(self, table):
        with pytest.raises(FrameError, match="join type"):
            table.join(table, on="user", how="outer")


class TestPresentation:
    def test_describe_covers_numeric_columns(self, table):
        desc = table.describe()
        assert set(desc["column"]) == {"runtime", "gpus"}
        runtime_row = [r for r in desc.iter_rows() if r["column"] == "runtime"][0]
        assert runtime_row["mean"] == 25.0
        assert runtime_row["p50"] == 25.0

    def test_to_string_contains_header_and_rows(self, table):
        text = table.to_string()
        assert "user" in text and "runtime" in text
        assert "40" in text

    def test_to_string_truncates(self, table):
        text = table.to_string(max_rows=2)
        assert "2 more rows" in text

    def test_repr(self, table):
        assert "4 rows x 3 cols" in repr(table)


class TestConcat:
    def test_concat_stacks(self, table):
        doubled = concat_tables([table, table])
        assert doubled.num_rows == 8

    def test_concat_empty_list(self):
        assert concat_tables([]).num_rows == 0

    def test_concat_mismatched_columns_rejected(self, table):
        other = Table({"x": [1]})
        with pytest.raises(FrameError, match="differing columns"):
            concat_tables([table, other])

    def test_concat_preserves_string_columns(self, table):
        doubled = concat_tables([table, table])
        assert list(doubled["user"])[:4] == ["a", "b", "a", "c"]
