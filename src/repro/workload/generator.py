"""Assembles user profiles, arrivals, and activity models into jobs.

The output of :meth:`WorkloadGenerator.generate` is a list of
:class:`~repro.slurm.job.JobRequest` objects (GPU jobs carry their
ground-truth :class:`~repro.workload.activity.JobActivityModel` in
``tags["activity"]``), ready to be fed to the scheduler simulator.

The generation pipeline per GPU job:

1. pick the submitting user (Pareto activity weights);
2. draw a submit time from the user's session process, modulated by a
   diurnal/weekday/conference-deadline intensity;
3. draw the interface and life-cycle class;
4. draw runtime, GPU count, CPU cores, and memory;
5. draw the utilization profile and build the activity model.

CPU jobs are generated separately as whole-node requests, most of them
arriving in large campaign bursts (parameter sweeps / map-reduce
arrays) — this is what produces their long queue waits in Fig 3(b).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.distributions import QuantileDistribution
from repro.errors import WorkloadError
from repro.slurm.job import JobRequest
from repro.workload.activity import (
    JobActivityModel,
    PhaseSchedule,
    PowerModel,
    build_metric_process,
)
from repro.workload.calibration import GeneratorKnobs
from repro.workload.users import UserPopulation, UserProfile

SECONDS_PER_DAY = 86400.0


@dataclass
class WorkloadConfig:
    """Size and seed of the generated workload.

    ``scale`` resizes the whole experiment (jobs, users, nodes,
    campaign sizes) proportionally so tests and quick runs keep the
    same contention behavior.  ``scale=1.0`` reproduces the paper's
    dataset size: 125 days, 191 users, ~51.5k GPU jobs (47.1k after
    the 30 s filter) plus ~23k CPU jobs.  Scales above 1 grow the
    trace toward whole-site magnitudes (Helios, IN2P3 in PAPERS.md):
    jobs and nodes scale linearly, users sub-linearly (``sqrt``), the
    same law that governs shrinking.  Large traces should build
    through ``Session.streaming_dataset`` (see ``docs/scaling.md``).
    """

    scale: float = 1.0
    days: float = 125.0
    num_users: int = 191
    gpu_jobs: int = 51500
    num_nodes: int = 224
    seed: int = 20220214
    include_cpu_jobs: bool = True
    knobs: GeneratorKnobs = field(default_factory=GeneratorKnobs)
    #: Number of cluster islands the simulation is sharded over (see
    #: ``docs/scaling.md``).  ``1`` is the whole-machine serial model;
    #: values > 1 are a *different simulated system* (independent node
    #: pools), not a parallelization of the same one.
    partitions: int = 1
    #: User-cohort count for sharded workload generation.  ``None``
    #: follows ``partitions``; ``1`` pins the legacy single-stream RNG
    #: path.  Cohort ``c`` routes to island ``c % partitions``.
    cohorts: int | None = None

    def __post_init__(self) -> None:
        if not 0.0 < self.scale <= 100.0:
            raise WorkloadError(f"scale must be in (0, 100], got {self.scale}")
        if self.days <= 0 or self.gpu_jobs <= 0:
            raise WorkloadError("days and gpu_jobs must be positive")
        if self.partitions < 1:
            raise WorkloadError(f"partitions must be >= 1, got {self.partitions}")
        if self.cohorts is not None and self.cohorts < 1:
            raise WorkloadError(f"cohorts must be >= 1, got {self.cohorts}")
        if self.resolved_cohorts < self.partitions:
            raise WorkloadError(
                f"cohorts ({self.resolved_cohorts}) must be >= partitions "
                f"({self.partitions}) so every island receives jobs"
            )

    @property
    def scaled_gpu_jobs(self) -> int:
        return max(100, int(round(self.gpu_jobs * self.scale)))

    @property
    def scaled_users(self) -> int:
        # Users scale sub-linearly: small scales keep per-user depth,
        # large scales add users slower than jobs (heavier per-user
        # load, matching multi-site traces).  Identical to the old
        # min(num_users, ...) form for scale <= 1, where sqrt(scale)
        # never exceeds 1.
        return max(12, int(round(self.num_users * self.scale**0.5)))

    @property
    def scaled_nodes(self) -> int:
        return max(8, int(round(self.num_nodes * self.scale)))

    @property
    def scaled_cpu_jobs(self) -> int:
        if not self.include_cpu_jobs:
            return 0
        return int(round(self.scaled_gpu_jobs * self.knobs.cpu_job_count_ratio))

    @property
    def duration_s(self) -> float:
        return self.days * SECONDS_PER_DAY

    @property
    def resolved_cohorts(self) -> int:
        """Effective cohort count (``cohorts`` or, when None, ``partitions``)."""
        return self.partitions if self.cohorts is None else self.cohorts


class WorkloadGenerator:
    """Generates the full calibrated workload."""

    def __init__(
        self,
        config: WorkloadConfig | None = None,
        *,
        rng: np.random.Generator | None = None,
        population: UserPopulation | None = None,
    ) -> None:
        """``rng``/``population`` injection supports cohort sharding.

        The default path (both None) draws the population from the
        seed-rooted stream exactly as before.  The sharded path
        (:mod:`repro.workload.cohorts`) builds the population once from
        a dedicated spawn stream and hands each cohort generator its
        own ``rng`` so cohorts draw identical jobs no matter which
        process runs them.
        """
        self.config = config or WorkloadConfig()
        knobs = self.config.knobs
        self._rng = rng if rng is not None else np.random.default_rng(self.config.seed)
        self.population = (
            population
            if population is not None
            else UserPopulation(self.config.scaled_users, knobs, self._rng)
        )
        self._sm_dists = {k: QuantileDistribution(v) for k, v in knobs.sm_anchors.items()}
        self._size_dists = {k: QuantileDistribution(v) for k, v in knobs.size_anchors.items()}
        self._frac_dists = {
            k: QuantileDistribution(v) for k, v in knobs.active_fraction_anchors.items()
        }
        self._mem_ratio = QuantileDistribution(knobs.mem_ratio_anchors)
        self._cpu_runtime = QuantileDistribution(knobs.cpu_runtime_anchors, log_space=True)
        self._intensity_bins, self._intensity_probs = self._build_intensity()
        self._power_model = PowerModel(
            idle_w=knobs.power_idle_w,
            per_sm=knobs.power_per_sm_pct,
            per_mem=knobs.power_per_mem_pct,
            per_pcie=knobs.power_per_pcie_pct,
            per_size=knobs.power_per_size_pct,
        )

    # ------------------------------------------------------------------
    # Arrival intensity
    # ------------------------------------------------------------------
    def _build_intensity(self) -> tuple[np.ndarray, np.ndarray]:
        """Hourly arrival-intensity grid: diurnal cycle, weekday dip,
        and conference-deadline surges (Sec. II operational notes)."""
        hours = np.arange(int(self.config.days * 24))
        hour_of_day = hours % 24
        day = hours / 24.0
        diurnal = 1.0 + 0.5 * np.cos(2.0 * np.pi * (hour_of_day - 14.0) / 24.0)
        weekday = np.where((hours // 24) % 7 >= 5, 0.6, 1.0)
        surge = np.ones_like(diurnal)
        for start_day, end_day, mult in self.config.knobs.deadline_windows:
            surge = np.where((day >= start_day) & (day < end_day), mult, surge)
        intensity = diurnal * weekday * surge
        return hours.astype(float) * 3600.0, intensity / intensity.sum()

    def _sample_times(self, n: int) -> np.ndarray:
        """Draw submit times from the intensity grid (uniform in-bin)."""
        bins = self._rng.choice(len(self._intensity_bins), size=n, p=self._intensity_probs)
        return self._intensity_bins[bins] + self._rng.random(n) * 3600.0

    def _session_times(self, num_jobs: int) -> np.ndarray:
        """Submit times for one user: jobs arrive in sessions."""
        knobs = self.config.knobs
        times: list[float] = []
        while len(times) < num_jobs:
            session_start = float(self._sample_times(1)[0])
            in_session = 1 + self._rng.geometric(1.0 / knobs.session_jobs_mean)
            gaps = self._rng.exponential(knobs.session_spacing_s, in_session)
            times.extend(session_start + np.cumsum(gaps))
        times = np.asarray(times[:num_jobs])
        return np.clip(times, 0.0, self.config.duration_s)

    # ------------------------------------------------------------------
    # Top-level generation
    # ------------------------------------------------------------------
    def generate(self) -> list[JobRequest]:
        """Produce the full workload sorted by submit time.

        With ``config.resolved_cohorts > 1`` the draw is delegated to
        the cohort-sharded path (:mod:`repro.workload.cohorts`), which
        produces the same jobs whether run serially or across a process
        pool.  ``cohorts == 1`` keeps the legacy single-stream draws
        bit-for-bit.
        """
        if self.config.resolved_cohorts > 1:
            from repro.workload.cohorts import generate_sharded

            return generate_sharded(self.config)
        requests = self._generate_gpu_jobs()
        if self.config.include_cpu_jobs:
            requests.extend(self._generate_cpu_jobs())
        requests.sort(key=lambda r: r.submit_time_s)
        for job_id, request in enumerate(requests):
            request.job_id = job_id
        return requests

    # ------------------------------------------------------------------
    # GPU jobs
    # ------------------------------------------------------------------
    def _generate_gpu_jobs(self) -> list[JobRequest]:
        counts = self.population.job_allocation(self.config.scaled_gpu_jobs, self._rng)
        return self.jobs_for_users(
            (index, profile, int(count))
            for index, (profile, count) in enumerate(
                zip(self.population.profiles, counts)
            )
        )

    def jobs_for_users(self, allocations) -> list[JobRequest]:
        """GPU jobs for ``(user_index, profile, job_count)`` triples.

        Draws are made strictly in iteration order from this
        generator's RNG stream — the unit of sharding: a cohort
        generator calls this with its own members only, on its own
        stream.  Each request is tagged with its user's cohort.
        """
        cohorts = max(self.config.resolved_cohorts, 1)
        requests: list[JobRequest] = []
        for user_index, profile, count in allocations:
            submit_times = self._session_times(int(count))
            for submit_time in submit_times:
                request = self._one_gpu_job(profile, float(submit_time))
                request.tags["cohort"] = user_index % cohorts
                requests.append(request)
        return requests

    def _one_gpu_job(self, profile: UserProfile, submit_time: float) -> JobRequest:
        knobs = self.config.knobs
        rng = self._rng
        interface = profile.sample_interface(rng)
        job_class = profile.sample_class(rng, interface, knobs)
        num_gpus = profile.sample_gpu_count(rng)
        short = bool(rng.random() < knobs.short_gpu_job_fraction)

        time_limit = self._time_limit(interface, job_class)
        if short:
            runtime = float(rng.uniform(2.0, 29.0))
            job_class = "development"  # instant crashes
        elif job_class == "ide":
            runtime = time_limit * 1.01  # runs until the session times out
        elif rng.random() < knobs.quick_job_fraction:
            # Quick validation runs (smoke tests, single-batch checks).
            lo, hi = knobs.quick_job_range_s
            runtime = float(np.exp(rng.uniform(np.log(lo), np.log(hi))))
        else:
            sigma = np.sqrt(np.log(1.0 + profile.runtime_cov**2))
            if job_class == "exploratory":
                sigma *= knobs.exploratory_runtime_sigma_factor
            draw = rng.lognormal(0.0, sigma)
            runtime = (
                profile.runtime_scale_s
                * knobs.class_runtime_multiplier[job_class]
                * (knobs.multi_gpu_runtime_multiplier if num_gpus > 1 else 1.0)
                * draw
            )
            runtime = float(np.clip(runtime, 31.0, time_limit * 0.98))

        cores = int(rng.choice(knobs.gpu_job_cores_choices, p=knobs.gpu_job_cores_probs))
        cores = max(cores, num_gpus)  # at least one core per GPU
        memory = float(rng.uniform(*knobs.gpu_job_memory_range_gb))

        request = JobRequest(
            job_id=-1,
            user=profile.name,
            submit_time_s=submit_time,
            runtime_s=runtime,
            num_gpus=num_gpus,
            cores=cores,
            memory_gb=memory,
            interface=interface,
            intended_class=job_class,
            time_limit_s=time_limit,
        )
        effective_runtime = min(runtime, time_limit)
        request.tags["short"] = short
        request.tags["activity"] = self._build_activity(
            profile, interface, job_class, num_gpus, effective_runtime, request.tags
        )
        return request

    def _time_limit(self, interface: str, job_class: str) -> float:
        knobs = self.config.knobs
        if job_class == "ide" or interface == "interactive":
            idx = self._rng.choice(len(knobs.ide_time_limits_s), p=knobs.ide_limit_probs)
            return float(knobs.ide_time_limits_s[idx])
        return 96.0 * 3600.0

    # ------------------------------------------------------------------
    # Utilization profile / activity model
    # ------------------------------------------------------------------
    def _build_activity(
        self,
        profile: UserProfile,
        interface: str,
        job_class: str,
        num_gpus: int,
        duration_s: float,
        tags: dict,
    ) -> JobActivityModel:
        knobs = self.config.knobs
        rng = self._rng
        util_mult = profile.util_multiplier * knobs.interface_util_multiplier[interface]

        mem_intensive_prob = (
            knobs.memory_intensive_job_prob
            if profile.memory_intensive_user
            else knobs.memory_intensive_base_prob
        )
        memory_intensive = bool(
            job_class in ("mature", "exploratory") and rng.random() < mem_intensive_prob
        )
        if memory_intensive:
            sm_mean = float(rng.uniform(0.0, 5.0))
            mem_mean = float(rng.uniform(*knobs.memory_intensive_mem_range))
        else:
            sm_mean = float(self._sm_dists[job_class].sample(rng)) * util_mult
            mem_mean = sm_mean * float(self._mem_ratio.sample(rng))
        size_mean = float(self._size_dists[job_class].sample(rng)) * np.sqrt(util_mult)
        pcie_mult = min(util_mult, 1.0) * knobs.pcie_class_multiplier[job_class]
        tx_mean = float(rng.uniform(*knobs.pcie_tx_range)) * pcie_mult
        rx_mean = float(rng.uniform(*knobs.pcie_rx_range)) * pcie_mult
        sm_mean, mem_mean, size_mean = (
            float(np.clip(v, 0.0, 97.0)) for v in (sm_mean, mem_mean, size_mean)
        )

        active_fraction = float(self._frac_dists[job_class].sample(rng))
        schedule = PhaseSchedule.generate(
            rng,
            duration_s,
            active_fraction,
            mean_active_s=float(
                rng.lognormal(np.log(knobs.active_interval_median_s), 0.6)
            ),
            active_cov=float(
                rng.lognormal(np.log(knobs.active_interval_cov_median), knobs.interval_cov_spread)
            ),
            idle_cov=float(
                rng.lognormal(np.log(knobs.idle_interval_cov_median), knobs.interval_cov_spread)
            ),
        )
        realized_fraction = max(schedule.active_fraction(), knobs.level_inversion_floor)

        bottlenecks = self._draw_bottlenecks(job_class, sm_mean, size_mean)
        tags["bottlenecks"] = bottlenecks
        tags["memory_intensive"] = memory_intensive

        peak_mult = float(
            rng.lognormal(np.log(knobs.peak_multiplier_median), knobs.peak_multiplier_spread)
        )
        noise_covs = {
            "sm": knobs.sm_noise_cov_median,
            "mem_bw": knobs.mem_noise_cov_median,
            "mem_size": knobs.size_noise_cov_median,
            "pcie_tx": knobs.mem_noise_cov_median,
            "pcie_rx": knobs.mem_noise_cov_median,
        }
        means = {
            "sm": sm_mean,
            "mem_bw": mem_mean,
            "mem_size": size_mean,
            "pcie_tx": tx_mean,
            "pcie_rx": rx_mean,
        }
        num_bursts = 1 + int(rng.poisson(min(duration_s / 3600.0, 7.0)))
        processes = {}
        for name, mean in means.items():
            # Gated metrics report mean-over-run = level * active_frac;
            # invert so the pooled means match the Fig 4 anchors.
            level = mean if name == "mem_size" else min(mean / realized_fraction, 97.0)
            cov = float(
                rng.lognormal(np.log(noise_covs[name]), knobs.noise_cov_spread)
            )
            burst_level = 100.0 if name in bottlenecks else min(level * peak_mult, 97.0)
            processes[name] = build_metric_process(
                rng,
                level=level,
                noise_cov=cov,
                burst_level=burst_level,
                schedule=schedule,
                num_bursts=num_bursts,
            )

        gpu_scale = self._gpu_scales(num_gpus)
        return JobActivityModel(
            job_id=-1,  # assigned later; models are matched by reference
            num_gpus=num_gpus,
            duration_s=duration_s,
            schedule=schedule,
            processes=processes,
            gpu_scale=gpu_scale,
            power_model=self._power_model,
        )

    def _draw_bottlenecks(self, job_class: str, sm_mean: float, size_mean: float) -> set[str]:
        """Correlated bottleneck flags (Fig 8b pairwise structure)."""
        knobs = self.config.knobs
        rng = self._rng
        if job_class not in ("mature", "exploratory"):
            return set()
        out: set[str] = set()
        cond = knobs.bottleneck_conditional
        if sm_mean > 2.0 and rng.random() < cond["sm"]:
            out.add("sm")
        p_rx = knobs.p_rx_given_sm if "sm" in out else (
            (cond["pcie_rx"] - cond["sm"] * knobs.p_rx_given_sm) / max(1.0 - cond["sm"], 1e-9)
        )
        if rng.random() < max(p_rx, 0.0):
            out.add("pcie_rx")
        p_tx = knobs.p_tx_given_rx if "pcie_rx" in out else (
            (cond["pcie_tx"] - cond["pcie_rx"] * knobs.p_tx_given_rx)
            / max(1.0 - cond["pcie_rx"], 1e-9)
        )
        if rng.random() < max(p_tx, 0.0):
            out.add("pcie_tx")
        if size_mean > 5.0 and rng.random() < cond["mem_size"]:
            out.add("mem_size")
        if rng.random() < cond["mem_bw"]:
            out.add("mem_bw")
        return out

    def _gpu_scales(self, num_gpus: int) -> np.ndarray:
        """Per-GPU activity scale; multi-GPU jobs may strand GPUs idle."""
        knobs = self.config.knobs
        rng = self._rng
        scales = np.abs(rng.normal(1.0, knobs.per_gpu_jitter_cov, num_gpus))
        if num_gpus > 1 and rng.random() < knobs.multi_gpu_idle_prob:
            # Half or more of the GPUs sit idle (mis-configured data
            # parallelism, single-process jobs on multi-GPU requests).
            num_idle = int(rng.integers(num_gpus // 2 + num_gpus % 2, num_gpus))
            num_idle = max(1, min(num_idle, num_gpus - 1))
            idle = rng.choice(num_gpus, size=num_idle, replace=False)
            scales[idle] = 0.0
        return scales

    # ------------------------------------------------------------------
    # CPU jobs
    # ------------------------------------------------------------------
    def _generate_cpu_jobs(self) -> list[JobRequest]:
        knobs = self.config.knobs
        rng = self._rng
        cohorts = max(self.config.resolved_cohorts, 1)
        total = self.config.scaled_cpu_jobs
        campaign_total = int(total * knobs.cpu_campaign_share)
        requests: list[JobRequest] = []

        median_size = max(knobs.cpu_campaign_size_median * self.config.scale, 20.0)
        produced = 0
        while produced < campaign_total:
            size = int(
                np.clip(
                    rng.lognormal(np.log(median_size), knobs.cpu_campaign_size_sigma),
                    5,
                    campaign_total - produced if campaign_total - produced > 5 else 5,
                )
            )
            start = float(self._sample_times(1)[0])
            user_index = int(rng.integers(len(self.population)))
            user = self.population.profiles[user_index]
            # Jobs of one campaign share a mild common factor, but each
            # job's runtime is its own draw from the calibrated anchors
            # so the pooled CPU runtime CDF matches Fig 3(a).
            campaign_factor = float(rng.lognormal(0.0, 0.3))
            for i in range(size):
                runtime = float(
                    np.clip(self._cpu_runtime.sample(rng) * campaign_factor, 3.0, 9e4)
                )
                request = self._cpu_request(
                    user, start + i * knobs.cpu_campaign_spacing_s, runtime
                )
                request.tags["cohort"] = user_index % cohorts
                requests.append(request)
            produced += size

        singles = max(total - produced, 0)
        times = self._sample_times(singles)
        for submit_time in times:
            user_index = int(rng.integers(len(self.population)))
            user = self.population.profiles[user_index]
            runtime = float(self._cpu_runtime.sample(rng))
            request = self._cpu_request(user, float(submit_time), runtime)
            request.tags["cohort"] = user_index % cohorts
            requests.append(request)
        return requests

    def _cpu_request(self, profile: UserProfile, submit_time: float, runtime: float) -> JobRequest:
        knobs = self.config.knobs
        interface = "map-reduce" if self._rng.random() < 0.05 else "batch"
        return JobRequest(
            job_id=-1,
            user=profile.name,
            submit_time_s=float(np.clip(submit_time, 0.0, self.config.duration_s)),
            runtime_s=runtime,
            num_gpus=0,
            cores=knobs.cpu_job_cores,
            memory_gb=knobs.cpu_job_memory_gb,
            interface=interface,
            intended_class="mature",
            time_limit_s=96.0 * 3600.0,
        )
