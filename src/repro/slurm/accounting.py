"""Convert simulation records into an sacct-style accounting table.

This is the Slurm half of the paper's combined dataset: one row per
job with scheduler-visible fields (times, sizes, exit state).  The GPU
half comes from :mod:`repro.monitor` and the two are joined on
``job_id`` exactly as described in Sec. II ("both datasets are combined
using job Ids to create a single dataset").
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.frame import ChunkedTable, Table, TableBuilder
from repro.slurm.job import JobRecord

ACCOUNTING_COLUMNS = (
    "job_id", "user", "interface", "num_gpus", "cores", "memory_gb",
    "submit_time_s", "start_time_s", "end_time_s", "wait_time_s",
    "run_time_s", "wait_fraction", "num_nodes", "gpu_hours",
    "exit_condition", "lifecycle_class", "time_limit_s",
)


def accounting_table(records: Iterable[JobRecord]) -> Table:
    """Build the sacct-like table (one row per finished job).

    Values append straight into per-column accumulators — no
    intermediate row dicts, no per-column re-scan of the record list.
    """
    builder = TableBuilder(columns=ACCOUNTING_COLUMNS)
    data = {name: builder.accumulator(name) for name in ACCOUNTING_COLUMNS}
    for record in records:
        request = record.request
        data["job_id"].append(request.job_id)
        data["user"].append(request.user)
        data["interface"].append(request.interface)
        data["num_gpus"].append(request.num_gpus)
        data["cores"].append(request.cores)
        data["memory_gb"].append(request.memory_gb)
        data["submit_time_s"].append(request.submit_time_s)
        data["start_time_s"].append(record.start_time_s)
        data["end_time_s"].append(record.end_time_s)
        data["wait_time_s"].append(record.wait_time_s)
        data["run_time_s"].append(record.run_time_s)
        data["wait_fraction"].append(record.wait_fraction)
        data["num_nodes"].append(len(record.nodes))
        data["gpu_hours"].append(record.gpu_hours)
        data["exit_condition"].append(record.exit_condition.value)
        data["lifecycle_class"].append(record.lifecycle_class)
        data["time_limit_s"].append(request.time_limit_s)
    return builder.finish()


def accounting_chunked(
    records: Sequence[JobRecord], chunk_rows: int = 65536
) -> ChunkedTable:
    """The accounting table as a lazy chunked stream.

    Each pass re-walks ``records`` in ``chunk_rows`` batches through
    :func:`accounting_table`, so only one batch of rows is columnar at
    a time — the Slurm half of an out-of-core dataset assembly.
    """
    records = list(records)

    def produce():
        for start in range(0, len(records), chunk_rows):
            yield accounting_table(records[start : start + chunk_rows])

    return ChunkedTable(
        produce,
        column_names=ACCOUNTING_COLUMNS,
        num_rows=len(records),
    )
