"""Fig 15: life-cycle class mix and GPU-hour footprint."""

from repro.figures.registry import run_figure


def test_fig15_lifecycle_mix(benchmark, dataset):
    result = benchmark(run_figure, "fig15", dataset)
    # shape: mature jobs are the majority of jobs but a minority of hours
    assert result.get("mature job share").measured > 0.45
    assert (
        result.get("mature GPU-hour share").measured
        < result.get("mature job share").measured
    )
