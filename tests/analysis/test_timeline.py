"""Tests for cluster-occupancy timeline analysis."""

import numpy as np
import pytest

from repro.analysis.timeline import (
    OccupancyTimeline,
    capacity_sweep,
    daily_gpu_hours,
    gpu_occupancy,
    surge_visibility,
)
from repro.errors import AnalysisError
from repro.slurm.job import ExitCondition, JobRecord
from tests.slurm.test_job import make_request


def record(job_id, start, end, gpus=1, submit=None):
    request = make_request(
        job_id=job_id,
        submit_time_s=start if submit is None else submit,
        runtime_s=end - start,
        num_gpus=gpus,
    )
    return JobRecord(request, start, end, (0,) if gpus else (), ExitCondition.COMPLETED)


class TestGpuOccupancy:
    def test_single_job_plateau(self):
        timeline = gpu_occupancy([record(1, 0.0, 100.0, gpus=2)], capacity=4, num_samples=50)
        assert timeline.peak == 2.0
        assert timeline.peak_utilization == 0.5

    def test_overlapping_jobs_stack(self):
        records = [record(1, 0.0, 100.0), record(2, 50.0, 150.0, gpus=3)]
        timeline = gpu_occupancy(records, capacity=8, num_samples=400)
        assert timeline.peak == 4.0

    def test_disjoint_jobs_never_stack(self):
        records = [record(1, 0.0, 10.0), record(2, 100.0, 110.0)]
        timeline = gpu_occupancy(records, capacity=2, num_samples=500)
        assert timeline.peak == 1.0

    def test_occupancy_never_negative(self):
        records = [record(i, float(i), float(i) + 5.0) for i in range(20)]
        timeline = gpu_occupancy(records, capacity=4)
        assert (timeline.occupancy >= 0).all()

    def test_cpu_only_records_rejected(self):
        with pytest.raises(AnalysisError):
            gpu_occupancy([record(1, 0.0, 10.0, gpus=0)], capacity=2)

    def test_mean_utilization_requires_capacity(self):
        timeline = OccupancyTimeline(np.zeros(1), np.zeros(1), capacity=0.0)
        with pytest.raises(AnalysisError):
            timeline.mean_utilization


class TestDailyGpuHours:
    def test_attribution_by_start_day(self):
        records = [
            record(1, 0.0, 3600.0),                      # day 0, 1 GPU-hour
            record(2, 86400.0 + 10.0, 86400.0 + 7210.0, gpus=2),  # day 1, 4 GPU-hours
        ]
        table = daily_gpu_hours(records)
        by_day = {r["day"]: r["gpu_hours"] for r in table.iter_rows()}
        assert by_day[0] == pytest.approx(1.0)
        assert by_day[1] == pytest.approx(4.0)

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            daily_gpu_hours([])


class TestSurgeVisibility:
    def test_surge_detected_in_generated_data(self, medium_dataset):
        daily = daily_gpu_hours(medium_dataset.records)
        windows = medium_dataset.config.knobs.deadline_windows
        table = surge_visibility(daily, windows)
        assert table.num_rows >= 1
        # deadline weeks carry more load than the baseline
        assert all(r["observed_ratio"] > 1.0 for r in table.iter_rows())

    def test_no_overlap_rejected(self):
        daily = daily_gpu_hours([record(1, 0.0, 3600.0)])
        with pytest.raises(AnalysisError):
            surge_visibility(daily, [(500.0, 510.0, 2.0)])


class TestCapacitySweep:
    def test_waits_shrink_with_capacity(self):
        requests = [
            make_request(job_id=i, submit_time_s=float(i), num_gpus=2, runtime_s=120.0)
            for i in range(12)
        ]
        sweep = capacity_sweep(requests, node_counts=(1, 6))
        rows = sorted(sweep.iter_rows(), key=lambda r: r["nodes"])
        assert rows[0]["gpu_median_wait_s"] >= rows[1]["gpu_median_wait_s"]
        assert rows[1]["gpu_wait_under_1min"] >= rows[0]["gpu_wait_under_1min"]

    def test_provisioned_cluster_keeps_waits_low(self, medium_dataset):
        timeline = gpu_occupancy(
            medium_dataset.records, capacity=medium_dataset.spec.total_gpus
        )
        # the paper's claim: capacity comfortably exceeds demand
        assert timeline.peak_utilization <= 1.0
        assert timeline.mean_utilization < 0.6
