"""Process-parallel coupled islands: the lockstep interchange across
worker processes.

:class:`~repro.slurm.interchange.PartitionedRunner` steps coupled
islands serially in one address space.  This module runs the *same*
lockstep protocol with one persistent worker process per island:

* each worker owns its island's :class:`SlurmSimulator` for the whole
  run (``begin`` → epoch ``advance(until)`` steps → ``finalize``);
* only the bounded-lag interchange payload crosses the process
  boundary each epoch — per-user fair-share usage *deltas*, migration
  *candidates* (overdue queued requests), queue lengths, and the
  planned moves coming back — never cluster or event-loop state;
* the parent computes the fair-share ledger merge and the migration
  plan with the exact pure functions the serial runner uses
  (:func:`~repro.slurm.interchange.plan_migrations` over static island
  specs), so the parallel run is **bit-identical** to the serial
  lockstep (``tests/slurm/test_parallel_interchange.py`` pins this,
  event for event).

Parallelism stays an optimisation, never a correctness requirement:
``workers <= 1``, a single island, or a pool that cannot start all
fall back to driving a serial :class:`PartitionedRunner` in-process —
with the same per-island setup/finish hooks, so callers (the sharded
dataset build) observe identical outputs either way.
"""

from __future__ import annotations

import dataclasses
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.cluster.partition import Partition, PartitionLayout
from repro.cluster.spec import ClusterSpec, supercloud_spec
from repro.errors import SchedulerError
from repro.slurm.interchange import (
    InterchangeConfig,
    PartitionedResult,
    PartitionedRunner,
    migration_candidates,
    plan_migrations,
    route_requests,
    _remap_nodes,
)
from repro.slurm.job import JobRequest
from repro.slurm.policies import FairSharePolicy
from repro.slurm.scheduler import SchedulerConfig, SlurmSimulator

#: Attach per-island state (e.g. a monitoring collector) before ``begin``.
IslandSetup = Callable[[SlurmSimulator, Partition, dict], Any]
#: Produce the island's payload after ``finalize`` (tables, spill handles).
IslandFinish = Callable[[SlurmSimulator, Any, "SimulationResult"], Any]


@dataclass
class ParallelPartitionedResult(PartitionedResult):
    """A :class:`PartitionedResult` plus per-island hook payloads."""

    #: ``island_finish`` return values, one per island (None without a hook).
    extras: list = field(default_factory=list)
    #: Which path actually ran: ``"parallel"`` or ``"serial"`` (fallback).
    mode: str = "parallel"
    #: Largest per-island worker peak RSS (0 on the serial path).
    island_peak_rss_bytes: float = 0.0


@dataclass
class _IslandWorkerTask:
    """Everything one persistent island worker needs (fork-inherited)."""

    partition: Partition
    spec: ClusterSpec
    config: SchedulerConfig
    requests: list
    setup: IslandSetup | None
    finish: IslandFinish | None
    context: dict
    return_records: bool
    #: Write end of the heartbeat side channel (``None`` = no telemetry).
    #: Deliberately a separate pipe from the interchange protocol so
    #: observation can never reorder or alter the lockstep payload.
    heartbeat_conn: Any = None


def _island_spill_bytes(metrics) -> float:
    """Sum of the island's spill counters (0.0 when not recording)."""
    if not metrics.enabled:
        return 0.0
    total = 0.0
    for name, _labels, counter in metrics.samples("counter"):
        if name == "repro_frame_spill_bytes_total":
            total += counter.value
    return total


def _island_heartbeat(simulator, island: int, epoch: int, metrics) -> dict:
    """One heartbeat payload snapshotting a worker's live state."""
    from repro.obs.progress import Heartbeat
    from repro.obs.runtime import peak_rss_bytes

    return Heartbeat(
        island=island,
        epoch=epoch,
        sim_time_s=float(simulator.loop.now),
        queue_depth=len(simulator.queue),
        running=len(simulator._running),
        events=simulator.loop.processed,
        dispatched=len(simulator.records),
        peak_rss_bytes=peak_rss_bytes(),
        spill_bytes=_island_spill_bytes(metrics),
    ).to_payload()


def _island_worker(conn, task: _IslandWorkerTask) -> None:
    """Worker loop: one simulator, stepped by parent commands.

    Protocol (parent → worker / worker → parent):

    * startup → ``("ready", pending)`` after ``begin``;
    * ``("advance", boundary, want_usage, threshold)`` →
      ``("epoch", usage_delta, candidates, queue_len)``;
    * ``("exchange", ledger, remove_ids, incoming, boundary)`` →
      ``("ack", pending)`` — pending is re-read *after* applying the
      exchange, because an incoming migration revives a drained island;
    * ``("finalize",)`` → ``("done", payload)`` and the worker exits.

    Any exception is shipped home as ``("error", traceback)``.
    """
    from repro.obs import runtime
    from repro.obs.events import FlightRecorder
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.runtime import peak_rss_bytes
    from repro.obs.trace import Tracer

    island = task.partition.index
    try:
        tracer = Tracer(process_name=f"repro-island-{island}")
        metrics = MetricsRegistry()
        recorder = FlightRecorder(island=island)
        tracer.listener = recorder.span_closed
        epoch = 0
        with runtime.use(tracer, metrics, recorder):
            simulator = SlurmSimulator(task.partition.spec(task.spec), task.config)
            state = (
                task.setup(simulator, task.partition, task.context)
                if task.setup is not None
                else None
            )
            simulator.begin(task.requests)
            conn.send(("ready", bool(simulator.loop)))
            while True:
                message = conn.recv()
                command = message[0]
                if command == "advance":
                    _, boundary, want_usage, threshold = message
                    simulator.advance(until=boundary)
                    usage = (
                        simulator._policy.drain_usage() if want_usage else None
                    )
                    candidates = (
                        migration_candidates(
                            simulator.queue.scan(), boundary, threshold
                        )
                        if threshold is not None and boundary is not None
                        else None
                    )
                    conn.send(("epoch", usage, candidates, len(simulator.queue)))
                    # Telemetry rides its own pipe, after the protocol
                    # reply: the interchange payload is untouched.
                    epoch += 1
                    recorder.emit(
                        "island.epoch",
                        category="interchange",
                        epoch=epoch,
                        sim_time_s=float(simulator.loop.now),
                        queue_depth=len(simulator.queue),
                    )
                    if task.heartbeat_conn is not None:
                        try:
                            task.heartbeat_conn.send(
                                _island_heartbeat(simulator, island, epoch, metrics)
                            )
                        except OSError:  # pragma: no cover - parent gone
                            task.heartbeat_conn = None
                elif command == "exchange":
                    _, ledger, remove_ids, incoming, boundary = message
                    if ledger is not None:
                        simulator._policy.set_usage(ledger)
                    for job_id in remove_ids:
                        simulator.queue.remove(job_id)
                    for request in incoming:
                        simulator.loop.schedule(boundary, "submit", request)
                    conn.send(("ack", bool(simulator.loop)))
                elif command == "finalize":
                    result = simulator.finalize()
                    _remap_nodes(result.records, task.partition.node_start)
                    extra = (
                        task.finish(simulator, state, result)
                        if task.finish is not None
                        else None
                    )
                    if not task.return_records:
                        result = dataclasses.replace(result, records=[])
                    if task.heartbeat_conn is not None:
                        try:
                            task.heartbeat_conn.send(
                                _island_heartbeat(simulator, island, epoch, metrics)
                            )
                        except OSError:  # pragma: no cover - parent gone
                            task.heartbeat_conn = None
                    payload = {
                        "result": result,
                        "extra": extra,
                        "peak_rss_bytes": peak_rss_bytes(),
                        "span_payload": tracer.drain_payload(),
                        "metrics_snapshot": metrics.drain(),
                        "events_payload": recorder.drain_payload(),
                    }
                    conn.send(("done", payload))
                    return
                else:  # pragma: no cover - protocol misuse
                    raise SchedulerError(f"unknown worker command {command!r}")
    except Exception:
        try:
            conn.send(("error", traceback.format_exc()))
        except Exception:  # pragma: no cover - parent already gone
            pass
    finally:
        if task.heartbeat_conn is not None:
            try:
                task.heartbeat_conn.close()
            except OSError:  # pragma: no cover
                pass
        conn.close()


class ParallelPartitionedRunner:
    """Drive coupled islands in lockstep across persistent processes.

    The constructor arguments mirror :class:`PartitionedRunner`; the
    extra hooks let the sharded build attach a partition-local
    monitoring collector inside each worker (``island_setup``, runs
    before ``begin``) and collect its outputs after ``finalize``
    (``island_finish``, returns a picklable payload — spill-directory
    handles in the streaming build, materialized tables otherwise).
    Both hooks must be module-level functions; ``island_context`` is a
    picklable dict handed to every setup call.

    ``return_records=False`` keeps job records out of the parent
    entirely (the streaming build spills island-local accounting
    instead), so parent memory stays bounded by the interchange
    payload, not the trace.
    """

    def __init__(
        self,
        layout: PartitionLayout,
        *,
        spec: ClusterSpec | None = None,
        config: SchedulerConfig | None = None,
        interchange: InterchangeConfig | None = None,
        workers: int | None = None,
        island_setup: IslandSetup | None = None,
        island_finish: IslandFinish | None = None,
        island_context: dict | None = None,
        return_records: bool = True,
    ) -> None:
        self.layout = layout
        self.spec = spec if spec is not None else supercloud_spec(layout.total_nodes)
        self.config = config if config is not None else SchedulerConfig()
        self.interchange = (
            interchange if interchange is not None else InterchangeConfig()
        )
        # Imported lazily: repro.pipeline pulls the monitoring stack in,
        # which imports repro.slurm — a cycle at module-import time.
        from repro.pipeline.parallel import resolve_workers

        self.workers = resolve_workers(workers)
        self.island_setup = island_setup
        self.island_finish = island_finish
        self.island_context = island_context if island_context is not None else {}
        self.return_records = return_records
        if len(layout) > 1:
            if self.config.failure_model is not None:
                raise SchedulerError(
                    "failure injection is not supported in partitioned runs "
                    "(per-island failure streams would be correlated)"
                )
            if self.config.policy is not None and not isinstance(
                self.config.policy, str
            ):
                raise SchedulerError(
                    "partitioned runs need a policy registry name (each island "
                    "builds its own instance); got a policy object"
                )
        if self.interchange.fair_share_sync:
            from repro.slurm.policies import make_policy

            if not isinstance(
                make_policy(self.config.policy) if self.config.policy else None,
                FairSharePolicy,
            ):
                raise SchedulerError(
                    'fair_share_sync requires SchedulerConfig(policy="fair_share")'
                )
        self._global_usage: dict[str, float] = {}
        self.migrations = 0

    # ------------------------------------------------------------------
    def run(self, requests: list[JobRequest]) -> ParallelPartitionedResult:
        """Simulate all requests across island processes to completion."""
        if self.workers <= 1 or len(self.layout) <= 1:
            return self._run_serial(requests)
        try:
            return self._run_parallel(requests)
        except (ImportError, OSError, PermissionError):
            # A pool that cannot start degrades to the serial lockstep
            # (identical outputs; parallelism is only an optimisation).
            return self._run_serial(requests)

    # ------------------------------------------------------------------
    def _run_serial(self, requests: list[JobRequest]) -> ParallelPartitionedResult:
        runner = PartitionedRunner(
            self.layout,
            spec=self.spec,
            config=self.config,
            interchange=self.interchange,
        )
        states = [
            self.island_setup(simulator, part, self.island_context)
            if self.island_setup is not None
            else None
            for simulator, part in zip(runner.simulators, self.layout)
        ]
        outcome = runner.run(requests)
        extras = [
            self.island_finish(simulator, state, result)
            if self.island_finish is not None
            else None
            for simulator, state, result in zip(
                runner.simulators, states, outcome.results
            )
        ]
        self.migrations = runner.migrations
        results = outcome.results
        if not self.return_records:
            results = [
                dataclasses.replace(result, records=[]) for result in results
            ]
        return ParallelPartitionedResult(
            layout=self.layout,
            results=results,
            interchange=self.interchange,
            migrations=self.migrations,
            extras=extras,
            mode="serial",
        )

    # ------------------------------------------------------------------
    def _run_parallel(self, requests: list[JobRequest]) -> ParallelPartitionedResult:
        import multiprocessing

        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-fork platforms
            ctx = multiprocessing.get_context()

        from repro.obs import progress as obs_progress

        # Resolve the heartbeat sink once: with nobody watching, no
        # side-channel pipes exist at all and workers skip telemetry.
        sink = obs_progress.get_sink()
        buckets = route_requests(requests, len(self.layout))
        conns = []
        heartbeat_conns = []
        processes = []
        try:
            for part, bucket in zip(self.layout, buckets):
                parent_conn, child_conn = ctx.Pipe()
                hb_parent = hb_child = None
                if sink is not None:
                    # duplex=False: heartbeats flow worker -> parent only.
                    hb_parent, hb_child = ctx.Pipe(duplex=False)
                task = _IslandWorkerTask(
                    partition=part,
                    spec=self.spec,
                    config=self.config,
                    requests=bucket,
                    setup=self.island_setup,
                    finish=self.island_finish,
                    context=self.island_context,
                    return_records=self.return_records,
                    heartbeat_conn=hb_child,
                )
                process = ctx.Process(
                    target=_island_worker, args=(child_conn, task), daemon=True
                )
                process.start()
                child_conn.close()
                if hb_child is not None:
                    hb_child.close()
                    heartbeat_conns.append(hb_parent)
                conns.append(parent_conn)
                processes.append(process)

            pending = [self._recv(conns[i], i, "ready")[1] for i in range(len(conns))]
            sync = self.interchange.fair_share_sync
            threshold = (
                self.interchange.migrate_after_s if self.interchange.coupled else None
            )
            if not self.interchange.coupled:
                # Independent islands: one advance-to-completion round.
                for conn in conns:
                    conn.send(("advance", None, False, None))
                for index, conn in enumerate(conns):
                    self._recv(conn, index, "epoch")
                self._drain_heartbeats(heartbeat_conns, sink)
            else:
                boundary = self.interchange.epoch_s
                specs = [part.spec(self.spec) for part in self.layout]
                while any(pending):
                    for conn in conns:
                        conn.send(("advance", boundary, sync, threshold))
                    reports = [
                        self._recv(conn, index, "epoch")
                        for index, conn in enumerate(conns)
                    ]
                    ledger = None
                    if sync:
                        # Merge island deltas in index order — the same
                        # float-summation order as the serial runner.
                        for _, usage, _, _ in reports:
                            for user, hours in usage.items():
                                self._global_usage[user] = (
                                    self._global_usage.get(user, 0.0) + hours
                                )
                        ledger = self._global_usage
                    removals: list[list[int]] = [[] for _ in conns]
                    incoming: list[list[JobRequest]] = [[] for _ in conns]
                    if threshold is not None:
                        moves = plan_migrations(
                            [report[2] for report in reports],
                            [report[3] for report in reports],
                            specs,
                        )
                        for source, request, target in moves:
                            removals[source].append(request.job_id)
                            request.tags["migrated"] = True
                            request.tags["migrated_to"] = target
                            incoming[target].append(request)
                        self.migrations += len(moves)
                    for index, conn in enumerate(conns):
                        conn.send(
                            ("exchange", ledger, removals[index], incoming[index], boundary)
                        )
                    pending = [
                        self._recv(conn, index, "ack")[1]
                        for index, conn in enumerate(conns)
                    ]
                    self._drain_heartbeats(heartbeat_conns, sink)
                    boundary += self.interchange.epoch_s

            payloads = []
            for index, conn in enumerate(conns):
                conn.send(("finalize",))
                payloads.append(self._recv(conn, index, "done")[1])
            self._drain_heartbeats(heartbeat_conns, sink)
            for process in processes:
                process.join(timeout=30)
        finally:
            for conn in conns + heartbeat_conns:
                try:
                    conn.close()
                except OSError:  # pragma: no cover
                    pass
            for process in processes:
                if process.is_alive():  # pragma: no cover - hung worker
                    process.terminate()

        self._adopt_observability(payloads)
        return ParallelPartitionedResult(
            layout=self.layout,
            results=[payload["result"] for payload in payloads],
            interchange=self.interchange,
            migrations=self.migrations,
            extras=[payload["extra"] for payload in payloads],
            mode="parallel",
            island_peak_rss_bytes=max(
                payload["peak_rss_bytes"] for payload in payloads
            ),
        )

    @staticmethod
    def _recv(conn, index: int, expected: str):
        """Receive one protocol message, surfacing worker failures."""
        from repro.pipeline.parallel import ParallelTaskError

        try:
            message = conn.recv()
        except EOFError:
            raise ParallelTaskError(
                index, "island worker exited without a reply"
            ) from None
        if message[0] == "error":
            raise ParallelTaskError(index, message[1])
        if message[0] != expected:  # pragma: no cover - protocol misuse
            raise ParallelTaskError(
                index, f"expected {expected!r} reply, got {message[0]!r}"
            )
        return message

    @staticmethod
    def _drain_heartbeats(heartbeat_conns: list, sink) -> None:
        """Forward queued worker heartbeats to the progress sink.

        Non-blocking (``poll(0)``): the lockstep never waits on
        telemetry, and a slow renderer only delays its own redraw.
        """
        if sink is None:
            return
        for conn in heartbeat_conns:
            try:
                while conn.poll(0):
                    sink.update(conn.recv())
            except (OSError, EOFError):  # pragma: no cover - worker gone
                continue

    @staticmethod
    def _adopt_observability(payloads: list[dict]) -> None:
        """Re-parent worker spans / merge worker metrics and events
        into the ambient observability triple (the session trace, when
        one is active)."""
        from repro.obs import runtime

        tracer = runtime.get_tracer()
        metrics = runtime.get_metrics()
        recorder = runtime.get_recorder()
        parent = tracer.current_span_id()
        for payload in payloads:
            if payload["span_payload"]:
                tracer.adopt(payload["span_payload"], parent=parent)
            if payload["metrics_snapshot"] and metrics.enabled:
                metrics.merge(payload["metrics_snapshot"])
            events = payload.get("events_payload")
            if events and recorder.enabled:
                recorder.adopt(events)
