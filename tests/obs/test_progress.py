"""Live telemetry: heartbeats, the ambient sink, rendering, sampler."""

from __future__ import annotations

import io
import time

from repro.obs.metrics import MetricsRegistry
from repro.obs.progress import (
    Heartbeat,
    ProgressAggregator,
    ProgressPrinter,
    ResourceSampler,
    directory_bytes,
    emit,
    get_sink,
    use_sink,
)


def _beat(island: int = 0, epoch: int = 1, **overrides) -> Heartbeat:
    fields = dict(
        island=island,
        epoch=epoch,
        sim_time_s=3600.0 * epoch,
        queue_depth=5,
        running=2,
        events=100,
        dispatched=40,
        peak_rss_bytes=256 * 1024 * 1024,
        spill_bytes=0.0,
    )
    fields.update(overrides)
    return Heartbeat(**fields)


def test_heartbeat_payload_round_trip():
    beat = _beat(island=3, epoch=7)
    twin = Heartbeat.from_payload(beat.to_payload())
    assert twin == beat


def test_ambient_sink_scoping():
    assert get_sink() is None
    emit(_beat())  # no sink: a no-op, not an error
    agg = ProgressAggregator()
    with use_sink(agg):
        assert get_sink() is agg
        emit(_beat(island=1))
        emit(_beat(island=2).to_payload())  # plain dicts work too
    assert get_sink() is None
    assert agg.heartbeats == 2
    assert {hb.island for hb in agg.islands()} == {1, 2}


def test_use_sink_restores_previous_sink():
    outer = ProgressAggregator()
    inner = ProgressAggregator()
    with use_sink(outer):
        with use_sink(inner):
            emit(_beat())
        assert get_sink() is outer
    assert inner.heartbeats == 1
    assert outer.heartbeats == 0


def test_aggregator_keeps_latest_per_island():
    agg = ProgressAggregator()
    agg.update(_beat(island=0, epoch=1))
    agg.update(_beat(island=0, epoch=5))
    agg.update(_beat(island=1, epoch=2))
    assert agg.heartbeats == 3
    latest = {hb.island: hb.epoch for hb in agg.islands()}
    assert latest == {0: 5, 1: 2}


def test_aggregator_on_update_callback():
    seen = []
    agg = ProgressAggregator(on_update=lambda a: seen.append(a.heartbeats))
    agg.update(_beat())
    agg.update(_beat(epoch=2))
    assert seen == [1, 2]


def test_render_contains_island_rows():
    agg = ProgressAggregator()
    agg.update(_beat(island=0, epoch=12, queue_depth=99))
    text = agg.render()
    assert "1 island(s)" in text
    assert "sim-clock" in text
    assert "99" in text
    assert "256.0MiB" in text


def test_render_without_heartbeats():
    assert "no heartbeats yet" in ProgressAggregator().render()


def test_printer_plain_mode_emits_lines():
    stream = io.StringIO()
    printer = ProgressPrinter(stream, interval_s=0.0, live=False)
    printer.update(_beat(island=0, epoch=3, queue_depth=7))
    printer.finish()
    out = stream.getvalue()
    assert "progress: i0:e3/q7" in out
    assert "sharded build: 1 island(s)" in out  # the final table


def test_printer_live_mode_redraws_in_place():
    stream = io.StringIO()
    printer = ProgressPrinter(stream, interval_s=0.0, live=True)
    printer.update(_beat(island=0, epoch=1))
    printer.update(_beat(island=0, epoch=2))
    out = stream.getvalue()
    assert "\x1b[" in out  # cursor-up + clear between frames
    printer.finish()  # live mode leaves the last frame on screen
    assert stream.getvalue() == out


def test_printer_throttles_redraws():
    stream = io.StringIO()
    printer = ProgressPrinter(stream, interval_s=60.0, live=False)
    printer.update(_beat(epoch=1))
    printer.update(_beat(epoch=2))  # within the interval: suppressed
    assert stream.getvalue().count("progress:") == 1


def test_directory_bytes(tmp_path):
    assert directory_bytes(tmp_path / "missing") == 0
    (tmp_path / "a.bin").write_bytes(b"x" * 100)
    sub = tmp_path / "sub"
    sub.mkdir()
    (sub / "b.bin").write_bytes(b"y" * 50)
    assert directory_bytes(tmp_path) == 150


def test_resource_sampler_records_gauges(tmp_path):
    (tmp_path / "chunk.bin").write_bytes(b"z" * 2048)
    metrics = MetricsRegistry()
    metrics.counter("repro_frame_stream_rows_total", op="spill").inc(1000)
    sampler = ResourceSampler(metrics, spill_dirs=[tmp_path], interval_s=0.01)
    with sampler:
        metrics.counter("repro_frame_stream_rows_total", op="spill").inc(500)
        time.sleep(0.05)
    assert sampler.samples >= 1
    assert metrics.gauge("repro_process_peak_rss_bytes").value > 0
    assert (
        metrics.gauge("repro_spill_dir_bytes", directory=str(tmp_path)).value == 2048
    )
    # 500 rows arrived during the sampling window: throughput is positive.
    assert metrics.gauge("repro_stream_rows_per_s").value >= 0


def test_resource_sampler_uses_ambient_registry_when_unbound():
    from repro.obs import runtime

    metrics = MetricsRegistry()
    sampler = ResourceSampler()  # no registry bound at construction
    with runtime.use(None, metrics, None):
        sampler.sample()
    assert metrics.gauge("repro_process_peak_rss_bytes").value > 0


def test_resource_sampler_disabled_registry_is_inert():
    from repro.obs.metrics import NULL_METRICS

    sampler = ResourceSampler(NULL_METRICS)
    sampler.sample()
    assert sampler.samples == 0  # nothing to record against
