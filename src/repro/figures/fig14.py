"""Fig 14: cross-GPU utilization variability of multi-GPU jobs."""

from __future__ import annotations

import numpy as np

from repro.analysis.multigpu import idle_gpu_fraction, multi_gpu_cov
from repro.analysis.stats import ecdf
from repro.dataset import SupercloudDataset
from repro.errors import AnalysisError
from repro.figures.base import Comparison, FigureResult


def run(dataset: SupercloudDataset) -> FigureResult:
    """Fig 14(a): CoV across all GPUs of a job; Fig 14(b): idle GPUs
    removed.  Claim: high CoV is driven by idle GPUs; active GPUs
    behave uniformly."""
    results = multi_gpu_cov(dataset.per_gpu)
    if not results:
        raise AnalysisError("dataset has no multi-GPU jobs")

    all_sm = np.asarray([r.cov_all["sm_mean"] for r in results], dtype=float)
    active_sm = np.asarray([r.cov_active["sm_mean"] for r in results], dtype=float)
    all_sm = all_sm[np.isfinite(all_sm)]
    active_sm = active_sm[np.isfinite(active_sm)]

    high_cov_all = float((all_sm > 0.5).mean()) if all_sm.size else 0.0
    median_all = float(np.median(all_sm)) if all_sm.size else float("nan")
    median_active = float(np.median(active_sm)) if active_sm.size else float("nan")

    comparisons = [
        Comparison("multi-GPU jobs with idle GPUs (>=half)", 0.40, idle_gpu_fraction(results)),
        Comparison("jobs with high cross-GPU SM CoV (>50%)", 0.40, high_cov_all),
        # Fig 14(b): once idle GPUs are removed the CoV collapses;
        # the paper shows near-zero medians for active-only.
        Comparison("active-only SM CoV median (low)", 0.1, median_active),
    ]
    return FigureResult(
        figure_id="fig14",
        title="Cross-GPU variability of multi-GPU jobs",
        series={
            "cov_all_cdf": ecdf(all_sm) if all_sm.size else None,
            "cov_active_cdf": ecdf(active_sm) if active_sm.size else None,
            "results": results,
        },
        comparisons=comparisons,
        notes=f"median cross-GPU SM CoV: all GPUs {median_all:.2f}, active only {median_active:.2f}",
    )
