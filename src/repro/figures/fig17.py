"""Fig 17: per-user composition of life-cycle classes."""

from __future__ import annotations

import numpy as np

from repro.analysis.lifecycle import user_lifecycle_composition
from repro.dataset import SupercloudDataset
from repro.figures.base import Comparison, FigureResult


def run(dataset: SupercloudDataset) -> FigureResult:
    """Fig 17(a): class mix of each user's jobs; Fig 17(b): of each
    user's GPU hours."""
    by_jobs = user_lifecycle_composition(dataset.gpu_jobs, by="jobs")
    by_hours = user_lifecycle_composition(dataset.gpu_jobs, by="gpu_hours")

    mature_jobs = np.asarray(by_jobs["mature_fraction"], dtype=float)
    mature_hours = np.asarray(by_hours["mature_fraction"], dtype=float)
    nonmature_hours = 1.0 - mature_hours

    comparisons = [
        Comparison(
            "users with mature job share <40%", 0.50, float((mature_jobs < 0.40).mean())
        ),
        Comparison(
            "users with non-mature GPU-hours >60%",
            0.25,
            float((nonmature_hours > 0.60).mean()),
        ),
        # Sec. VIII: "almost 60% of GPU hours spent on non-mature jobs"
        # — re-checked here from the per-user view's underlying data.
        Comparison(
            "mean user mature-hours share (low)", 0.45, float(mature_hours.mean())
        ),
    ]
    return FigureResult(
        figure_id="fig17",
        title="Per-user life-cycle composition",
        series={"by_jobs": by_jobs, "by_gpu_hours": by_hours},
        comparisons=comparisons,
    )
