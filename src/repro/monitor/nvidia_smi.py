"""The simulated ``nvidia-smi`` sampler.

Real nvidia-smi polls device counters; ours polls an
:class:`ActivityModel` — the ground-truth process describing what the
job does on each of its GPUs.  Two sampling modes mirror the paper:

* :meth:`NvidiaSmiSampler.sample_series` — dense sampling at a fixed
  interval (100 ms in production), used for the time-series subset;
* :meth:`NvidiaSmiSampler.summarize` — min/mean/max summaries computed
  from stratified samples plus the model's analytic extremes, used for
  the full 47k-job summary dataset where dense sampling would be too
  expensive (the paper reports exactly min/mean/max for this reason).
"""

from __future__ import annotations

from typing import Protocol

import numpy as np

from repro.errors import MonitoringError
from repro.monitor.timeseries import METRIC_NAMES, GpuTimeSeries


class ActivityModel(Protocol):
    """Ground truth for one job's GPU activity.

    Implementations live in :mod:`repro.workload.activity`.  A model
    may additionally offer ``metrics_at_all(times_s)`` — the batched
    form evaluating every GPU from one ``(num_gpus, n)`` time matrix —
    which the sampler uses when present and falls back to per-GPU
    :meth:`metrics_at` calls otherwise.
    """

    @property
    def num_gpus(self) -> int:
        """Number of GPUs the job holds."""

    def metrics_at(self, times_s: np.ndarray, gpu_index: int) -> dict[str, np.ndarray]:
        """Instantaneous metric values at the given offsets from start."""

    def analytic_max(self, gpu_index: int) -> dict[str, float]:
        """Per-metric supremum over the whole run (captures bursts that
        stratified sampling could miss)."""


class NvidiaSmiSampler:
    """Samples an activity model the way nvidia-smi samples a GPU."""

    def __init__(self, interval_s: float = 0.1, summary_samples: int = 512) -> None:
        if interval_s <= 0:
            raise MonitoringError(f"sampling interval must be positive, got {interval_s}")
        if summary_samples < 2:
            raise MonitoringError("need at least 2 summary samples")
        self.interval_s = interval_s
        self.summary_samples = summary_samples

    # ------------------------------------------------------------------
    def sample_series(
        self,
        job_id: int,
        model: ActivityModel,
        duration_s: float,
        gpu_index: int,
        max_samples: int | None = None,
    ) -> GpuTimeSeries:
        """Densely sample one GPU for the whole run.

        ``max_samples`` bounds memory for very long jobs by widening
        the effective interval (the paper instead bounded data volume
        by collecting the dense series for only 2,149 jobs).
        """
        if duration_s < 0:
            raise MonitoringError(f"negative duration {duration_s}")
        count = int(duration_s / self.interval_s) + 1
        if max_samples is not None and count > max_samples:
            times = np.linspace(0.0, duration_s, max_samples)
        else:
            times = np.arange(count) * self.interval_s
        metrics = model.metrics_at(times, gpu_index)
        self._check_metrics(job_id, metrics)
        return GpuTimeSeries(job_id=job_id, gpu_index=gpu_index, times_s=times, metrics=metrics)

    def sample_series_job(
        self,
        job_id: int,
        model: ActivityModel,
        duration_s: float,
        max_samples: int | None = None,
    ) -> list["GpuTimeSeries"]:
        """Densely sample every GPU of a job — batched when the model
        offers ``metrics_at_all``, matching per-GPU
        :meth:`sample_series` results bit for bit either way.
        """
        if duration_s < 0:
            raise MonitoringError(f"negative duration {duration_s}")
        count = int(duration_s / self.interval_s) + 1
        if max_samples is not None and count > max_samples:
            times = np.linspace(0.0, duration_s, max_samples)
        else:
            times = np.arange(count) * self.interval_s
        num_gpus = model.num_gpus
        metrics = self._metrics_rows(
            model, np.broadcast_to(times, (num_gpus, len(times))), job_id=job_id
        )
        return [
            GpuTimeSeries(
                job_id=job_id,
                gpu_index=gpu_index,
                times_s=times,
                metrics={name: values[gpu_index] for name, values in metrics.items()},
            )
            for gpu_index in range(num_gpus)
        ]

    def summary_sample_count(self, duration_s: float) -> int:
        """Stratified samples used to summarize one ``duration_s`` run."""
        if duration_s < 0:
            raise MonitoringError(f"negative duration {duration_s}")
        return min(self.summary_samples, max(int(duration_s / self.interval_s) + 1, 2))

    def draw_offsets(
        self, duration_s: float, num_gpus: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Stratified sample offsets (in ``[0, 1)``) for a whole job.

        One C-ordered ``rng.random((num_gpus, n))`` draw — exactly the
        stream ``num_gpus`` consecutive single-GPU draws consume, so
        batched and per-GPU summarization stay interchangeable.
        """
        return rng.random((num_gpus, self.summary_sample_count(duration_s)))

    def summarize(
        self,
        model: ActivityModel,
        duration_s: float,
        gpu_index: int,
        rng: np.random.Generator,
    ) -> dict[str, float]:
        """min/mean/max per metric from stratified sampling.

        Strata are equal-width time bins with one uniform sample each,
        giving an unbiased mean estimate; maxima are taken from the
        model's analytic extremes so short 100 %-utilization bursts are
        never missed (they define the bottleneck analysis of Fig. 7/8).
        """
        n = self.summary_sample_count(duration_s)
        offsets = rng.random(n).reshape(1, n)
        summary = self.summarize_with_offsets(
            model, duration_s, offsets, gpu_indices=(gpu_index,)
        )
        return {name: float(values[0]) for name, values in summary.items()}

    def summarize_job(
        self,
        model: ActivityModel,
        duration_s: float,
        rng: np.random.Generator,
    ) -> dict[str, np.ndarray]:
        """Summarize every GPU of a job at once.

        Returns ``{"<metric>_<stat>": array}`` with one element per GPU
        — column fragments ready for a
        :class:`~repro.frame.TableBuilder`.  The stratified offsets for
        all GPUs come from a single C-ordered ``rng.random((g, n))``
        draw (:meth:`draw_offsets`), which consumes the generator
        stream exactly like ``g`` consecutive :meth:`summarize` calls,
        so batched and per-GPU summarization produce identical
        datasets.
        """
        offsets = self.draw_offsets(duration_s, model.num_gpus, rng)
        return self.summarize_with_offsets(model, duration_s, offsets)

    def summarize_with_offsets(
        self,
        model: ActivityModel,
        duration_s: float,
        offsets: np.ndarray,
        gpu_indices: tuple[int, ...] | None = None,
    ) -> dict[str, np.ndarray]:
        """The single stratified min/mean/max implementation.

        Deterministic given ``offsets`` (row ``i`` drives GPU
        ``gpu_indices[i]``, default GPU ``i``), which is what lets the
        monitoring epilog defer this evaluation — and shard it across
        a process pool — without touching the RNG stream.  When the
        model implements ``metrics_at_all`` the whole job is evaluated
        in one vectorized call; the per-GPU ``metrics_at`` loop remains
        as the fallback and produces bit-identical output.
        """
        if duration_s < 0:
            raise MonitoringError(f"negative duration {duration_s}")
        num_rows, n = offsets.shape
        edges = np.linspace(0.0, duration_s, n + 1)
        times = edges[:-1] + offsets * np.diff(edges)
        if gpu_indices is None:
            gpu_indices = tuple(range(num_rows))
        metrics = self._metrics_rows(model, times, gpu_indices=gpu_indices)
        analytic = [model.analytic_max(g) for g in gpu_indices]
        out: dict[str, np.ndarray] = {}
        for name in METRIC_NAMES:
            values = metrics[name]
            analytic_max = np.asarray([a.get(name, -np.inf) for a in analytic])
            out[f"{name}_min"] = values.min(axis=1)
            out[f"{name}_mean"] = values.mean(axis=1)
            out[f"{name}_max"] = np.maximum(values.max(axis=1), analytic_max)
        return out

    def _metrics_rows(
        self,
        model: ActivityModel,
        times: np.ndarray,
        gpu_indices: tuple[int, ...] | None = None,
        job_id: int | None = None,
    ) -> dict[str, np.ndarray]:
        """Evaluate ``times`` row ``i`` on GPU ``gpu_indices[i]``.

        Takes the model's batched ``metrics_at_all`` when it exists and
        the evaluation covers every GPU in order; otherwise loops
        :meth:`ActivityModel.metrics_at` per GPU and stacks the rows.
        """
        full_job = gpu_indices is None or gpu_indices == tuple(range(model.num_gpus))
        batched = getattr(model, "metrics_at_all", None) if full_job else None
        if batched is not None:
            metrics = batched(times)
            self._check_metrics(job_id, metrics)
            return metrics
        if gpu_indices is None:
            gpu_indices = tuple(range(model.num_gpus))
        rows = [model.metrics_at(times[i], g) for i, g in enumerate(gpu_indices)]
        for row in rows:
            self._check_metrics(job_id, row)
        return {
            name: np.stack([row[name] for row in rows]) for name in METRIC_NAMES
        }

    @staticmethod
    def _check_metrics(job_id: int | None, metrics: dict[str, np.ndarray]) -> None:
        missing = [m for m in METRIC_NAMES if m not in metrics]
        if missing:
            label = f"job {job_id}" if job_id is not None else "model"
            raise MonitoringError(f"{label} produced no values for {missing}")
