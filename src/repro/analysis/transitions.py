"""Life-cycle transition structure of user job streams (paper Fig 2).

Fig 2 sketches the typical workflow — design in an IDE, debug
development runs, sweep hyper-parameters, finish with a mature run.
If that structure is real it should be visible as *transition
statistics* in the per-user job sequence: which class tends to follow
which, and how jobs cluster into bursts ("campaigns") separated by
think time.  This module mines both.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import AnalysisError
from repro.frame import Table
from repro.slurm.job import LIFECYCLE_CLASSES


def transition_matrix(gpu_jobs: Table) -> Table:
    """Per-user class-to-class transition probabilities, pooled.

    One row per source class, one column per destination class, cells
    = P(next job's class | this job's class), computed over
    consecutive submissions of the same user.

    A chunked table folds the same per-user last-class state across
    chunks: the pipeline's job stream is already in submission order
    (job ids are assigned by ascending submit time), which the fold
    verifies, so the integer transition counts — and therefore every
    probability — are bit-identical to the materialized sort.
    """
    from repro.analysis.streaming import is_chunked

    counts = {a: {b: 0 for b in LIFECYCLE_CLASSES} for a in LIFECYCLE_CLASSES}
    last_class: dict[str, str] = {}
    if is_chunked(gpu_jobs):
        empty = True
        last_submit = -math.inf
        for chunk in gpu_jobs.chunks():
            if chunk.num_rows == 0:
                continue
            empty = False
            submits = np.asarray(chunk["submit_time_s"], dtype=float)
            if submits[0] < last_submit or np.any(np.diff(submits) < 0):
                raise AnalysisError(
                    "streaming transition fold needs a submit-time-sorted job stream"
                )
            last_submit = float(submits[-1])
            for user, cls in zip(list(chunk["user"]), list(chunk["lifecycle_class"])):
                previous = last_class.get(user)
                if previous is not None:
                    counts[previous][cls] += 1
                last_class[user] = cls
        if empty:
            raise AnalysisError("no jobs")
    else:
        if gpu_jobs.num_rows == 0:
            raise AnalysisError("no jobs")
        ordered = gpu_jobs.sort_by("submit_time_s")
        users = list(ordered["user"])
        classes = list(ordered["lifecycle_class"])
        for user, cls in zip(users, classes):
            previous = last_class.get(user)
            if previous is not None:
                counts[previous][cls] += 1
            last_class[user] = cls
    rows = []
    for source in LIFECYCLE_CLASSES:
        total = sum(counts[source].values())
        row: dict[str, object] = {"from_class": source, "num_transitions": total}
        for destination in LIFECYCLE_CLASSES:
            row[destination] = counts[source][destination] / total if total else 0.0
        rows.append(row)
    return Table.from_rows(rows)


def self_transition_rates(matrix: Table) -> dict[str, float]:
    """P(same class again) per class — workflow 'stickiness'."""
    return {
        str(row["from_class"]): float(row[str(row["from_class"])])
        for row in matrix.iter_rows()
    }


@dataclass(frozen=True)
class CampaignStats:
    """Burst structure of user submissions."""

    num_campaigns: int
    median_campaign_jobs: float
    median_campaign_span_s: float
    #: fraction of campaigns whose final job is mature ("the workflow
    #: converges", Fig 2's arrow into production)
    fraction_ending_mature: float
    #: fraction of multi-job campaigns containing any exploratory job
    fraction_with_exploration: float


def segment_campaigns(gpu_jobs: Table, gap_s: float = 2.0 * 3600.0) -> list[dict]:
    """Split each user's submissions into campaigns by idle gaps.

    A campaign is a maximal run of submissions with inter-arrival gaps
    below ``gap_s`` (think time).  Returns one dict per campaign with
    ``user``, ``classes`` (in order), ``span_s``.

    A chunked table streams the submit-ordered jobs holding only each
    user's *open* campaign plus the finished campaign records (O(users
    + campaigns) state, never the job rows themselves); the result
    list matches the materialized path exactly, including its
    per-first-seen-user ordering.
    """
    from repro.analysis.streaming import is_chunked

    if gap_s <= 0:
        raise AnalysisError("gap must be positive")
    if is_chunked(gpu_jobs):
        open_runs: dict[str, list[tuple[float, str]]] = {}
        finished: dict[str, list[dict]] = {}
        last_submit = -math.inf
        for chunk in gpu_jobs.chunks():
            if chunk.num_rows == 0:
                continue
            submits = np.asarray(chunk["submit_time_s"], dtype=float)
            if submits[0] < last_submit or np.any(np.diff(submits) < 0):
                raise AnalysisError(
                    "streaming campaign fold needs a submit-time-sorted job stream"
                )
            last_submit = float(submits[-1])
            for user, submit, cls in zip(
                list(chunk["user"]), submits, list(chunk["lifecycle_class"])
            ):
                user, cls = str(user), str(cls)
                current = open_runs.setdefault(user, [])
                if current and float(submit) - current[-1][0] > gap_s:
                    finished.setdefault(user, []).append(_campaign_record(user, current))
                    current = open_runs[user] = []
                current.append((float(submit), cls))
        if not open_runs:
            raise AnalysisError("no jobs")
        campaigns = []
        for user, current in open_runs.items():
            campaigns.extend(finished.get(user, ()))
            if current:
                campaigns.append(_campaign_record(user, current))
        return campaigns
    if gpu_jobs.num_rows == 0:
        raise AnalysisError("no jobs")
    ordered = gpu_jobs.sort_by("submit_time_s")
    per_user: dict[str, list[tuple[float, str]]] = {}
    for row in ordered.iter_rows():
        per_user.setdefault(row["user"], []).append(
            (float(row["submit_time_s"]), str(row["lifecycle_class"]))
        )
    campaigns = []
    for user, jobs in per_user.items():
        current: list[tuple[float, str]] = []
        for submit, cls in jobs:
            if current and submit - current[-1][0] > gap_s:
                campaigns.append(_campaign_record(user, current))
                current = []
            current.append((submit, cls))
        if current:
            campaigns.append(_campaign_record(user, current))
    return campaigns


def _campaign_record(user: str, jobs: list[tuple[float, str]]) -> dict:
    return {
        "user": user,
        "classes": [cls for _, cls in jobs],
        "span_s": jobs[-1][0] - jobs[0][0],
    }


def campaign_stats(campaigns: list[dict]) -> CampaignStats:
    """Aggregate campaign structure."""
    if not campaigns:
        raise AnalysisError("no campaigns")
    sizes = np.asarray([len(c["classes"]) for c in campaigns], dtype=float)
    spans = np.asarray([c["span_s"] for c in campaigns], dtype=float)
    ending_mature = np.asarray([c["classes"][-1] == "mature" for c in campaigns])
    multi = [c for c in campaigns if len(c["classes"]) > 1]
    with_exploration = (
        float(np.mean([("exploratory" in c["classes"]) for c in multi])) if multi else 0.0
    )
    return CampaignStats(
        num_campaigns=len(campaigns),
        median_campaign_jobs=float(np.median(sizes)),
        median_campaign_span_s=float(np.median(spans)),
        fraction_ending_mature=float(ending_mature.mean()),
        fraction_with_exploration=with_exploration,
    )
