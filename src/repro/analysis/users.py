"""Per-user aggregation (Fig 10, Fig 11) and the Pareto statistics (Sec. IV).

The paper aggregates every job statistic twice: pooled over jobs, and
per user (mean and CoV across a user's jobs).  :func:`user_table`
builds the per-user view once; figure modules read columns off it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.stats import coefficient_of_variation, gini
from repro.errors import AnalysisError
from repro.frame import Table

#: Job columns averaged per user, with short output names.
USER_METRICS = {
    "run_time_s": "runtime",
    "sm_mean": "sm",
    "mem_bw_mean": "mem_bw",
    "mem_size_mean": "mem_size",
}


def user_table(gpu_jobs: Table) -> Table:
    """One row per user: job count, GPU hours, mean and CoV of each metric."""
    if gpu_jobs.num_rows == 0:
        raise AnalysisError("no jobs to aggregate")

    def summarise(group: Table) -> dict:
        out: dict[str, float] = {
            "num_jobs": group.num_rows,
            "gpu_hours": float(np.asarray(group["gpu_hours"], dtype=float).sum()),
        }
        for column, name in USER_METRICS.items():
            values = np.asarray(group[column], dtype=float)
            out[f"avg_{name}"] = float(values.mean())
            out[f"cov_{name}"] = coefficient_of_variation(values)
        return out

    return gpu_jobs.group_by("user").apply(summarise)


@dataclass(frozen=True)
class ParetoStats:
    """Concentration of job submissions across users (Sec. IV)."""

    num_users: int
    median_jobs_per_user: float
    top5pct_job_share: float
    top20pct_job_share: float
    gini_coefficient: float


def pareto_stats(users: Table) -> ParetoStats:
    """The "top few users submit most jobs" statistics."""
    counts = np.sort(np.asarray(users["num_jobs"], dtype=float))[::-1]
    if counts.size == 0:
        raise AnalysisError("no users")
    total = counts.sum()
    k5 = max(1, int(round(0.05 * counts.size)))
    k20 = max(1, int(round(0.20 * counts.size)))
    return ParetoStats(
        num_users=int(counts.size),
        median_jobs_per_user=float(np.median(counts)),
        top5pct_job_share=float(counts[:k5].sum() / total),
        top20pct_job_share=float(counts[:k20].sum() / total),
        gini_coefficient=gini(counts),
    )
