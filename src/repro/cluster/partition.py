"""Partitioned cluster layouts: node-range islands for sharded simulation.

A :class:`Partition` is a contiguous range of node indices inside a
:class:`~repro.cluster.spec.ClusterSpec`; a :class:`PartitionLayout`
slices the whole machine into ``k`` such islands.  Each island runs its
own :class:`~repro.slurm.scheduler.SlurmSimulator` event loop over a
sub-spec (same per-node configuration, fewer nodes), and islands are
coupled only at interchange epoch boundaries (see
:mod:`repro.slurm.interchange` and ``docs/scaling.md``).

Jobs are routed to islands by their workload *cohort* (see
:mod:`repro.workload.cohorts`): cohort ``c`` lands on island
``c % k``.  Node indices inside an island are local (0-based); the
layout converts them back to global indices so merged job records and
monitoring tables look exactly like a whole-machine run.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.spec import ClusterSpec, supercloud_spec
from repro.errors import ReproError


class PartitionError(ReproError):
    """Invalid partition layout or routing request."""


@dataclass(frozen=True)
class Partition:
    """One cluster island: a contiguous slice of the machine's nodes."""

    index: int
    node_start: int
    num_nodes: int

    def __post_init__(self) -> None:
        if self.index < 0:
            raise PartitionError(f"partition index must be >= 0, got {self.index}")
        if self.node_start < 0 or self.num_nodes < 1:
            raise PartitionError(
                f"partition {self.index}: needs node_start >= 0 and at least "
                f"one node, got start={self.node_start} num_nodes={self.num_nodes}"
            )

    @property
    def node_stop(self) -> int:
        """One past the last global node index (half-open range)."""
        return self.node_start + self.num_nodes

    def to_global_node(self, local_index: int) -> int:
        """Map an island-local node index back onto the full machine."""
        if not 0 <= local_index < self.num_nodes:
            raise PartitionError(
                f"partition {self.index}: local node {local_index} out of "
                f"range [0, {self.num_nodes})"
            )
        return self.node_start + local_index

    def spec(self, base: ClusterSpec) -> ClusterSpec:
        """The island's own :class:`ClusterSpec` (same per-node config)."""
        return ClusterSpec(
            name=f"{base.name} [partition {self.index}]",
            num_nodes=self.num_nodes,
            node=base.node,
            storage=base.storage,
            interconnect=base.interconnect,
        )


@dataclass(frozen=True)
class PartitionLayout:
    """A full slicing of ``total_nodes`` into disjoint islands."""

    total_nodes: int
    partitions: tuple[Partition, ...]

    def __post_init__(self) -> None:
        if not self.partitions:
            raise PartitionError("layout needs at least one partition")
        expect = 0
        for part in self.partitions:
            if part.node_start != expect:
                raise PartitionError(
                    f"partition {part.index} starts at node {part.node_start}, "
                    f"expected {expect} (islands must tile the machine)"
                )
            expect = part.node_stop
        if expect != self.total_nodes:
            raise PartitionError(
                f"partitions cover {expect} nodes but the machine has "
                f"{self.total_nodes}"
            )

    @classmethod
    def even(cls, total_nodes: int, num_partitions: int) -> "PartitionLayout":
        """Slice ``total_nodes`` into ``num_partitions`` near-equal islands.

        The first ``total_nodes % num_partitions`` islands get one extra
        node, so sizes differ by at most one.
        """
        if num_partitions < 1:
            raise PartitionError(
                f"need at least one partition, got {num_partitions}"
            )
        if num_partitions > total_nodes:
            raise PartitionError(
                f"cannot slice {total_nodes} nodes into {num_partitions} "
                "partitions (every island needs at least one node)"
            )
        base, extra = divmod(total_nodes, num_partitions)
        parts = []
        start = 0
        for index in range(num_partitions):
            size = base + (1 if index < extra else 0)
            parts.append(Partition(index=index, node_start=start, num_nodes=size))
            start += size
        return cls(total_nodes=total_nodes, partitions=tuple(parts))

    def __len__(self) -> int:
        return len(self.partitions)

    def __iter__(self):
        return iter(self.partitions)

    def __getitem__(self, index: int) -> Partition:
        return self.partitions[index]

    def island_for_cohort(self, cohort: int) -> Partition:
        """Route a workload cohort to its island (``cohort % k``)."""
        if cohort < 0:
            raise PartitionError(f"cohort must be >= 0, got {cohort}")
        return self.partitions[cohort % len(self.partitions)]

    def island_for_node(self, global_node: int) -> Partition:
        """The island owning a global node index."""
        if not 0 <= global_node < self.total_nodes:
            raise PartitionError(
                f"node {global_node} out of range [0, {self.total_nodes})"
            )
        for part in self.partitions:
            if part.node_start <= global_node < part.node_stop:
                return part
        raise PartitionError(f"node {global_node} not covered by any island")

    def specs(self, base: ClusterSpec | None = None) -> list[ClusterSpec]:
        """Per-island cluster specs for ``base`` (default: supercloud)."""
        base = base if base is not None else supercloud_spec(self.total_nodes)
        if base.num_nodes != self.total_nodes:
            raise PartitionError(
                f"spec has {base.num_nodes} nodes but layout covers "
                f"{self.total_nodes}"
            )
        return [part.spec(base) for part in self.partitions]

    def describe(self) -> list[str]:
        """Human-readable layout lines (used by ``repro summary``)."""
        lines = []
        for part in self.partitions:
            lines.append(
                f"island {part.index}: nodes {part.node_start}.."
                f"{part.node_stop - 1} ({part.num_nodes} nodes)"
            )
        return lines
