"""Cluster occupancy over time.

The paper's queue-wait findings rest on a provisioning claim:
"Supercloud achieves low wait times by investing in provisioning
enough resources to meet the GPU demand" (Sec. III takeaway).  This
module reconstructs the load timeline from simulation records so that
claim can be inspected: concurrent GPU/node occupancy, daily GPU
hours, peak concurrency, and the visibility of conference-deadline
surges.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import AnalysisError
from repro.frame import Table

SECONDS_PER_DAY = 86400.0


@dataclass(frozen=True)
class OccupancyTimeline:
    """Sampled concurrent occupancy of one resource."""

    times_s: np.ndarray
    occupancy: np.ndarray
    capacity: float

    @property
    def peak(self) -> float:
        return float(self.occupancy.max()) if self.occupancy.size else 0.0

    @property
    def mean(self) -> float:
        return float(self.occupancy.mean()) if self.occupancy.size else 0.0

    @property
    def mean_utilization(self) -> float:
        if self.capacity <= 0:
            raise AnalysisError("capacity must be positive")
        return self.mean / self.capacity

    @property
    def peak_utilization(self) -> float:
        return self.peak / self.capacity if self.capacity > 0 else 0.0


def _interval_counts(starts, ends, weights, grid) -> np.ndarray:
    """Weighted count of intervals covering each grid point.

    Uses the +w at start / -w at end sweep, evaluated on the grid:
    O((n + g) log n) instead of O(n*g).
    """
    events = np.concatenate([starts, ends])
    deltas = np.concatenate([weights, -weights])
    order = np.argsort(events, kind="stable")
    events = events[order]
    cumulative = np.cumsum(deltas[order])
    idx = np.searchsorted(events, grid, side="right") - 1
    out = np.where(idx >= 0, cumulative[np.clip(idx, 0, None)], 0.0)
    return np.maximum(out, 0.0)


def gpu_occupancy(records, capacity: int, num_samples: int = 2000) -> OccupancyTimeline:
    """Concurrent GPUs in use, sampled on an even grid."""
    gpu_records = [r for r in records if r.request.num_gpus > 0]
    if not gpu_records:
        raise AnalysisError("no GPU jobs in records")
    starts = np.asarray([r.start_time_s for r in gpu_records])
    ends = np.asarray([r.end_time_s for r in gpu_records])
    weights = np.asarray([float(r.request.num_gpus) for r in gpu_records])
    grid = np.linspace(starts.min(), ends.max(), num_samples)
    occupancy = _interval_counts(starts, ends, weights, grid)
    return OccupancyTimeline(times_s=grid, occupancy=occupancy, capacity=float(capacity))


def gpu_occupancy_from_jobs(jobs, capacity: int, num_samples: int = 2000) -> OccupancyTimeline:
    """Concurrent GPUs in use, read from a jobs table instead of records.

    Accepts the materialized ``dataset.jobs`` Table or a chunked
    stream of it (a streaming build carries no record list), using the
    ``start_time_s``/``end_time_s``/``num_gpus`` columns.  The sweep
    in :func:`_interval_counts` is separable per job — occupancy(g) =
    sum of weights started at or before g minus weights ended at or
    before g — so a chunk stream folds two sorted-prefix sums per
    chunk onto the grid (one extra pass first for the grid extent).
    GPU counts are integer-valued floats, so the streamed occupancy is
    bit-identical to the materialized sweep.
    """
    from repro.analysis.streaming import is_chunked

    if is_chunked(jobs):
        gpu_jobs = jobs.filter(lambda t: np.asarray(t["num_gpus"]) > 0)
        lo, hi, any_rows = math.inf, -math.inf, False
        for chunk in gpu_jobs.chunks():
            if chunk.num_rows == 0:
                continue
            any_rows = True
            lo = min(lo, float(np.min(np.asarray(chunk["start_time_s"], dtype=float))))
            hi = max(hi, float(np.max(np.asarray(chunk["end_time_s"], dtype=float))))
        if not any_rows:
            raise AnalysisError("no GPU jobs in records")
        grid = np.linspace(lo, hi, num_samples)
        occupancy = np.zeros(num_samples)
        for chunk in gpu_jobs.chunks():
            weights = np.asarray(chunk["num_gpus"], dtype=float)
            for column, sign in (("start_time_s", 1.0), ("end_time_s", -1.0)):
                events = np.asarray(chunk[column], dtype=float)
                order = np.argsort(events, kind="stable")
                cumulative = np.cumsum(weights[order] * sign)
                idx = np.searchsorted(events[order], grid, side="right")
                occupancy += np.where(idx > 0, cumulative[np.clip(idx - 1, 0, None)], 0.0)
        occupancy = np.maximum(occupancy, 0.0)
        return OccupancyTimeline(times_s=grid, occupancy=occupancy, capacity=float(capacity))

    mask = np.asarray(jobs["num_gpus"]) > 0
    if not mask.any():
        raise AnalysisError("no GPU jobs in records")
    starts = np.asarray(jobs["start_time_s"], dtype=float)[mask]
    ends = np.asarray(jobs["end_time_s"], dtype=float)[mask]
    weights = np.asarray(jobs["num_gpus"], dtype=float)[mask]
    grid = np.linspace(starts.min(), ends.max(), num_samples)
    occupancy = _interval_counts(starts, ends, weights, grid)
    return OccupancyTimeline(times_s=grid, occupancy=occupancy, capacity=float(capacity))


def daily_gpu_hours(records) -> Table:
    """GPU hours consumed per study day (start-day attribution).

    A grouped segment-sum over the start days; ``reduceat`` adds each
    day's hours in record order, exactly like the dict accumulator it
    replaced.
    """
    gpu_records = [r for r in records if r.request.num_gpus > 0]
    if not gpu_records:
        raise AnalysisError("no GPU jobs in records")
    per_job = Table(
        {
            "day": np.asarray(
                [int(r.start_time_s // SECONDS_PER_DAY) for r in gpu_records],
                dtype=np.int64,
            ),
            "gpu_hours": np.asarray([r.gpu_hours for r in gpu_records], dtype=float),
        }
    )
    daily = per_job.group_by("day").aggregate({"gpu_hours": "sum"})
    return daily.rename({"gpu_hours_sum": "gpu_hours"}).sort_by("day")


def daily_gpu_hours_from_jobs(jobs) -> Table:
    """GPU hours per study day, read from a jobs table (or chunk stream).

    The jobs-table counterpart of :func:`daily_gpu_hours` for builds
    that never materialize their records: the day column is computed
    per chunk and the grouped sum streams with O(days) state.
    """
    from repro.analysis.streaming import is_chunked

    def day_table(table: Table) -> Table:
        return Table(
            {
                "day": (
                    np.asarray(table["start_time_s"], dtype=float) // SECONDS_PER_DAY
                ).astype(np.int64),
                "gpu_hours": np.asarray(table["gpu_hours"], dtype=float),
            }
        )

    gpu_jobs = jobs.filter(lambda t: np.asarray(t["num_gpus"]) > 0)
    if is_chunked(jobs):
        per_job = gpu_jobs.map_chunks(day_table, preserves_rows=True)
    else:
        if gpu_jobs.num_rows == 0:
            raise AnalysisError("no GPU jobs in records")
        per_job = day_table(gpu_jobs)
    daily = per_job.group_by("day").aggregate({"gpu_hours": "sum"})
    if daily.num_rows == 0:
        raise AnalysisError("no GPU jobs in records")
    return daily.rename({"gpu_hours_sum": "gpu_hours"}).sort_by("day")


def surge_visibility(daily: Table, windows) -> Table:
    """Compare daily GPU hours inside vs outside surge windows.

    ``windows`` are ``(start_day, end_day, multiplier)`` tuples (the
    generator's conference-deadline windows).
    """
    days = np.asarray(daily["day"], dtype=float)
    hours = np.asarray(daily["gpu_hours"], dtype=float)
    rows = []
    for start_day, end_day, multiplier in windows:
        inside = (days >= start_day) & (days < end_day)
        if not inside.any() or inside.all():
            continue
        rows.append(
            {
                "window_start_day": start_day,
                "window_end_day": end_day,
                "intended_multiplier": multiplier,
                "inside_mean_gpu_hours": float(hours[inside].mean()),
                "outside_mean_gpu_hours": float(hours[~inside].mean()),
                "observed_ratio": float(hours[inside].mean() / max(hours[~inside].mean(), 1e-9)),
            }
        )
    if not rows:
        raise AnalysisError("no surge window overlaps the study period")
    return Table.from_rows(rows)


def capacity_sweep(requests, node_counts, spec_factory=None) -> Table:
    """Re-run the same workload at several cluster sizes.

    Quantifies the paper's provisioning claim: as capacity shrinks,
    GPU queue waits depart from the seconds regime.  ``spec_factory``
    maps a node count to a ClusterSpec (defaults to
    :func:`repro.cluster.spec.supercloud_spec`).
    """
    from repro.cluster.spec import supercloud_spec
    from repro.slurm.scheduler import SlurmSimulator

    spec_factory = spec_factory or supercloud_spec
    rows = []
    for nodes in node_counts:
        result = SlurmSimulator(spec_factory(nodes)).run(list(requests))
        waits = np.asarray(
            [r.wait_time_s for r in result.records if r.request.num_gpus > 0]
        )
        rows.append(
            {
                "nodes": nodes,
                "gpu_median_wait_s": float(np.median(waits)),
                "gpu_p95_wait_s": float(np.percentile(waits, 95)),
                "gpu_wait_under_1min": float((waits < 60.0).mean()),
                "peak_queue": result.peak_queue_length,
            }
        )
    return Table.from_rows(rows)
