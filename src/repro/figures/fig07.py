"""Fig 7: within-run utilization variability and the bottleneck radar."""

from __future__ import annotations

import numpy as np

from repro.analysis.bottleneck import single_bottlenecks
from repro.analysis.phases import job_phase_table
from repro.analysis.stats import ecdf
from repro.dataset import SupercloudDataset
from repro.errors import AnalysisError
from repro.figures.base import Comparison, FigureResult


def run(dataset: SupercloudDataset) -> FigureResult:
    """Fig 7(a): CoV of SM/memory/size during active phases;
    Fig 7(b): fraction of jobs bottlenecked per resource."""
    if len(dataset.timeseries) == 0:
        raise AnalysisError("dataset has no time-series subset")
    phases = job_phase_table(dataset.timeseries)

    covs = {}
    for metric, paper in (("sm", 0.14), ("mem_bw", 0.146), ("mem_size", 0.082)):
        values = np.asarray(phases[f"{metric}_active_cov"], dtype=float)
        values = values[np.isfinite(values)]
        covs[metric] = ecdf(values) if values.size else None

    comparisons = []
    for metric, paper in (("sm", 0.14), ("mem_bw", 0.146), ("mem_size", 0.082)):
        if covs[metric] is not None:
            comparisons.append(
                Comparison(f"{metric} CoV median", paper, covs[metric].median())
            )
    if covs["sm"] is not None:
        comparisons.append(
            Comparison("jobs with SM CoV >= 23%", 0.25, covs["sm"].fraction_above(0.23))
        )

    bottlenecks = single_bottlenecks(dataset.gpu_jobs)
    paper_bottlenecks = {
        "sm": 0.22,
        "mem_bw": 0.002,
        "mem_size": 0.08,
        "pcie_rx": 0.14,
        "pcie_tx": 0.10,
    }
    for name, paper in paper_bottlenecks.items():
        comparisons.append(
            Comparison(f"{name} bottleneck fraction", paper, bottlenecks[name])
        )
    return FigureResult(
        figure_id="fig07",
        title="Within-run variability and resource bottlenecks",
        series={"covs": covs, "bottlenecks": bottlenecks},
        comparisons=comparisons,
    )
