"""Exporters: Chrome trace-event JSON, Prometheus text exposition, and
the human-readable run report.

* :func:`chrome_trace_events` / :func:`write_chrome_trace` — the
  Trace Event Format consumed by ``chrome://tracing`` and Perfetto:
  one ``"X"`` (complete) event per span with ``pid/tid/ts/dur``, plus
  ``"M"`` metadata events naming each process lane.  Span ids travel
  in ``args`` so the tree survives a round trip exactly.
* :func:`prometheus_text` / :func:`parse_prometheus_text` — the text
  exposition format (``# HELP`` / ``# TYPE`` / samples, histograms as
  cumulative ``_bucket{le=...}`` + ``_sum`` + ``_count``).
* :func:`run_report` — an indented span tree and a metric digest for
  terminals; :func:`summarize_chrome_trace` re-reads an exported
  trace file and condenses it (the ``repro obs --trace`` path).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable, Mapping, Sequence

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import SpanRecord, Tracer

# ----------------------------------------------------------------------
# Chrome trace events
# ----------------------------------------------------------------------


def _as_records(source: "Tracer | Iterable[SpanRecord]") -> list[SpanRecord]:
    if isinstance(source, Tracer):
        return source.finished()
    return list(source)


def _track_tids(
    records: Sequence[SpanRecord],
) -> dict[tuple[int, str], int]:
    """Synthetic tid per (pid, track) for spans recorded on a track.

    Worker-adopted island spans carry a ``track`` name (e.g.
    ``repro-island-2``); giving each (pid, track) pair its own tid
    renders islands as separate lanes instead of interleaving on one
    row when a single pool process ran several islands.  Untracked
    spans keep their real OS thread id.  Synthetic tids start above
    every real tid in the trace so they can never collide.
    """
    tracked = sorted(
        {(r.pid, r.track) for r in records if r.track},
        key=lambda key: (key[1], key[0]),
    )
    if not tracked:
        return {}
    base = max((r.tid for r in records), default=0) + 1
    return {key: base + index for index, key in enumerate(tracked)}


def chrome_trace_events(source: "Tracer | Iterable[SpanRecord]") -> list[dict[str, Any]]:
    """Spans as Trace Event Format event dicts, sorted by timestamp."""
    records = _as_records(source)
    events: list[dict[str, Any]] = []
    pids = sorted({record.pid for record in records})
    for pid in pids:
        events.append(
            {
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "name": "process_name",
                "args": {"name": f"repro pid {pid}"},
            }
        )
    track_tids = _track_tids(records)
    for (pid, track), tid in sorted(track_tids.items(), key=lambda kv: kv[1]):
        events.append(
            {
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "name": "thread_name",
                "args": {"name": track},
            }
        )
    spans = [
        {
            "ph": "X",
            "pid": record.pid,
            "tid": track_tids.get((record.pid, record.track), record.tid),
            "ts": record.start_us,
            "dur": record.duration_us,
            "name": record.name,
            "cat": record.category,
            "args": {
                "span_id": record.span_id,
                "parent_id": record.parent_id,
                **record.attrs,
            },
        }
        for record in records
    ]
    spans.sort(key=lambda e: (e["ts"], -e["dur"]))
    return events + spans


def write_chrome_trace(
    path: str | Path,
    source: "Tracer | Iterable[SpanRecord]",
    metadata: Mapping[str, Any] | None = None,
) -> Path:
    """Write a ``chrome://tracing``-loadable JSON file."""
    document = {
        "traceEvents": chrome_trace_events(source),
        "displayTimeUnit": "ms",
    }
    if metadata:
        document["otherData"] = dict(metadata)
    path = Path(path)
    path.write_text(json.dumps(document, default=str), encoding="utf-8")
    return path


def summarize_chrome_trace(path: str | Path) -> str:
    """Condense an exported trace file back into terminal text."""
    document = json.loads(Path(path).read_text(encoding="utf-8"))
    events = [e for e in document.get("traceEvents", []) if e.get("ph") == "X"]
    if not events:
        return "empty trace (no complete events)"
    by_name: dict[tuple[str, str], tuple[int, float]] = {}
    for event in events:
        key = (event.get("cat", ""), event["name"])
        count, total = by_name.get(key, (0, 0.0))
        by_name[key] = (count + 1, total + event.get("dur", 0) / 1e6)
    first = min(e["ts"] for e in events)
    last = max(e["ts"] + e.get("dur", 0) for e in events)
    pids = {e["pid"] for e in events}
    lines = [
        f"{len(events)} spans across {len(pids)} process(es), "
        f"{(last - first) / 1e6:.3f} s of timeline",
    ]
    ranked = sorted(by_name.items(), key=lambda kv: kv[1][1], reverse=True)
    for (category, name), (count, total) in ranked[:20]:
        lines.append(f"  {category:>10s}  {name:<28s} x{count:<4d} {total:8.3f} s")
    if len(ranked) > 20:
        lines.append(f"  ... {len(ranked) - 20} more span names")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------


def _escape_label_value(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _format_labels(labels: Sequence[tuple[str, str]]) -> str:
    if not labels:
        return ""
    body = ",".join(f'{k}="{_escape_label_value(v)}"' for k, v in labels)
    return "{" + body + "}"


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def prometheus_text(metrics: MetricsRegistry) -> str:
    """The registry in Prometheus text exposition format."""
    lines: list[str] = []
    for kind in ("counter", "gauge", "histogram"):
        seen: set[str] = set()
        for name, labels, instrument in metrics.samples(kind):
            if name not in seen:
                seen.add(name)
                help_text = metrics.help_text(name)
                if help_text:
                    lines.append(f"# HELP {name} {help_text}")
                lines.append(f"# TYPE {name} {kind}")
            if kind == "histogram":
                for bound, cumulative in instrument.cumulative():
                    le = _format_labels(tuple(labels) + (("le", _format_value(bound)),))
                    lines.append(f"{name}_bucket{le} {cumulative}")
                lines.append(f"{name}_sum{_format_labels(labels)} {_format_value(instrument.sum)}")
                lines.append(f"{name}_count{_format_labels(labels)} {instrument.count}")
            else:
                lines.append(f"{name}{_format_labels(labels)} {_format_value(instrument.value)}")
    return "\n".join(lines) + "\n"


def parse_prometheus_text(text: str) -> dict[tuple[str, tuple[tuple[str, str], ...]], float]:
    """Parse exposition text back into ``{(name, labels): value}``.

    Supports exactly the subset :func:`prometheus_text` emits — enough
    for round-trip tests and for ``repro obs`` to re-read a metrics
    file.
    """
    samples: dict[tuple[str, tuple[tuple[str, str], ...]], float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        name_part, _, value_part = line.rpartition(" ")
        value = float(value_part.replace("+Inf", "inf"))
        if "{" in name_part:
            name, _, label_body = name_part.partition("{")
            label_body = label_body.rstrip("}")
            labels = []
            for chunk in _split_labels(label_body):
                key, _, raw = chunk.partition("=")
                raw = raw.strip().strip('"')
                labels.append(
                    (key.strip(), raw.replace(r"\n", "\n").replace(r"\"", '"').replace(r"\\", "\\"))
                )
            samples[(name, tuple(labels))] = value
        else:
            samples[(name_part, ())] = value
    return samples


def _split_labels(body: str) -> list[str]:
    """Split ``k1="v1",k2="v2"`` on commas outside quoted values."""
    chunks, current, in_quotes, escaped = [], [], False, False
    for char in body:
        if escaped:
            current.append(char)
            escaped = False
        elif char == "\\":
            current.append(char)
            escaped = True
        elif char == '"':
            current.append(char)
            in_quotes = not in_quotes
        elif char == "," and not in_quotes:
            chunks.append("".join(current))
            current = []
        else:
            current.append(char)
    if current:
        chunks.append("".join(current))
    return chunks


# ----------------------------------------------------------------------
# Human-readable run report
# ----------------------------------------------------------------------


def _render_span(
    record: SpanRecord,
    children: Mapping[int | None, list[SpanRecord]],
    depth: int,
    lines: list[str],
) -> None:
    attrs = " ".join(f"{k}={v}" for k, v in record.attrs.items())
    suffix = f"  [{attrs}]" if attrs else ""
    lines.append(
        f"  {'  ' * depth}{record.name:<{max(30 - 2 * depth, 8)}s} "
        f"{record.duration_us / 1e6:9.3f} s{suffix}"
    )
    for child in children.get(record.span_id, []):
        _render_span(child, children, depth + 1, lines)


def run_report(tracer: Tracer, metrics: MetricsRegistry) -> str:
    """An operator-facing digest: span tree plus metric summary."""
    lines: list[str] = []
    records = tracer.finished() if isinstance(tracer, Tracer) else []
    if records:
        ids = {record.span_id for record in records}
        children: dict[int | None, list[SpanRecord]] = {}
        roots: list[SpanRecord] = []
        for record in records:
            if record.parent_id is None or record.parent_id not in ids:
                roots.append(record)
            else:
                children.setdefault(record.parent_id, []).append(record)
        for bucket in children.values():
            bucket.sort(key=lambda r: r.start_us)
        roots.sort(key=lambda r: r.start_us)
        lines.append(f"== trace ({len(records)} spans) ==")
        for root in roots:
            _render_span(root, children, 0, lines)
    else:
        lines.append("== trace (empty) ==")
    lines.append("")
    lines.append("== metrics ==")
    counters = metrics.samples("counter") if metrics.enabled else []
    gauges = metrics.samples("gauge") if metrics.enabled else []
    histograms = metrics.samples("histogram") if metrics.enabled else []
    if not (counters or gauges or histograms):
        lines.append("  (none recorded)")
    for name, labels, counter in counters:
        lines.append(f"  {name}{_format_labels(labels)} = {_format_value(counter.value)}")
    for name, labels, gauge in gauges:
        lines.append(f"  {name}{_format_labels(labels)} = {_format_value(gauge.value)}")
    for name, labels, hist in histograms:
        mean = hist.sum / hist.count if hist.count else 0.0
        lines.append(
            f"  {name}{_format_labels(labels)}: n={hist.count} "
            f"sum={hist.sum:.3f} mean={mean:.4f}"
        )
    return "\n".join(lines)
