"""Extension figures: timeline, predictability, queueing theory."""

from repro.figures.registry import run_figure


def test_ext_timeline(benchmark, dataset):
    result = benchmark(run_figure, "ext_timeline", dataset)
    assert result.get("mean GPU utilization (<0.7)").measured < 0.7


def test_ext_prediction(benchmark, dataset):
    result = benchmark(run_figure, "ext_prediction", dataset)
    assert result.get("runtime predictability gain (<0.5)").measured < 0.5


def test_ext_queueing(benchmark, dataset):
    result = benchmark(run_figure, "ext_queueing", dataset)
    assert result.get("service-time SCV (>>1)").measured > 1.0
