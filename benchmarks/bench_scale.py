"""Perf-smoke gates for the partitioned (sharded) full-scale build.

This is the suite that makes ``scale=1.0`` the *benchmarked default*:
it builds the paper-sized dataset as four cluster islands, twice —
once fanned across a 4-process pool, once serially in-process — and
gates on the refactor's two load-bearing promises:

* **bit identity** — the parallel and serial sharded builds produce
  the same dataset, table for table and series for series (this is
  the contract that makes ``--workers`` safe at any scale);
* **scaling** — on a machine with >= 4 cores the 4-worker build must
  be at least 2x faster than the serial one, and routing must keep
  the per-island job buckets balanced so no island serialises the
  pool.

``REPRO_BENCH_SCALE_FULL`` shrinks the build for constrained CI boxes
(default ``1.0``; the equality and balance gates hold at any scale).
Wall times, speedup, and the largest per-island peak RSS are reported
via :func:`repro.bench.record_bench_stat` so ``python -m repro bench``
records the trajectory and ``--check`` can flag regressions.

Monitoring is configured light (sparse time series): the gate targets
the workload + simulation spine, not sampling volume, and a full-scale
dense-series build would push the suite past ten minutes per run.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.bench import record_bench_stat
from repro.monitor.collector import MonitoringConfig
from repro.pipeline import Session
from repro.slurm.interchange import route_requests
from repro.workload.generator import WorkloadConfig

FULL_SCALE = float(os.environ.get("REPRO_BENCH_SCALE_FULL", "1.0"))
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "20220214"))
PARTITIONS = 4

LIGHT_MONITORING = MonitoringConfig(
    summary_samples=64, timeseries_fraction=0.004, timeseries_max_samples=500
)


def _num_nodes() -> int:
    # At scale 1.0 this is exactly the paper's 224-node machine.  At the
    # reduced REPRO_BENCH_SCALE_FULL values CI boxes use, grow the
    # configured machine so every island still has the 8 nodes the
    # largest (16-GPU) jobs need to place at all.
    import math

    return max(224, math.ceil(8 * PARTITIONS / FULL_SCALE))


def _build(workers: int) -> tuple[Session, float]:
    config = WorkloadConfig(
        scale=FULL_SCALE,
        seed=BENCH_SEED,
        num_nodes=_num_nodes(),
        partitions=PARTITIONS,
    )
    session = Session(config, LIGHT_MONITORING, workers=workers)
    start = time.perf_counter()
    session.dataset()
    return session, time.perf_counter() - start


@pytest.fixture(scope="module")
def builds():
    # Parallel first: the pool forks from a parent that has not yet
    # built anything, so each island's peak-RSS reading reflects the
    # island's own footprint instead of inherited parent pages.
    parallel_session, parallel_s = _build(workers=PARTITIONS)
    serial_session, serial_s = _build(workers=1)
    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
    island_rss = parallel_session.metrics.gauge(
        "repro_shard_island_peak_rss_bytes"
    ).value
    record_bench_stat(
        "scale_equivalence",
        scale=FULL_SCALE,
        partitions=PARTITIONS,
        workers=PARTITIONS,
        serial_s=round(serial_s, 3),
        parallel_s=round(parallel_s, 3),
        speedup=round(speedup, 3),
        island_peak_rss_bytes=island_rss,
        cpu_count=os.cpu_count(),
        jobs=serial_session.dataset().jobs.num_rows,
    )
    return parallel_session, serial_session, parallel_s, serial_s


def test_parallel_build_is_bit_identical(builds):
    """Gate: unconditional, at any scale and on any core count."""
    parallel_session, serial_session, _, _ = builds
    serial = serial_session.dataset()
    parallel = parallel_session.dataset()
    assert serial.jobs.to_dict() == parallel.jobs.to_dict()
    assert serial.gpu_jobs.to_dict() == parallel.gpu_jobs.to_dict()
    assert serial.per_gpu.to_dict() == parallel.per_gpu.to_dict()
    assert len(serial.timeseries) == len(parallel.timeseries)
    for series in serial.timeseries:
        twin = parallel.timeseries.get(series.job_id, series.gpu_index)
        assert np.array_equal(series.times_s, twin.times_s)
        for name, values in series.metrics.items():
            assert np.array_equal(values, twin.metrics[name]), name


def test_island_rss_stays_bounded(builds):
    """Gate: a worker holds its own island, not the merged dataset."""
    from repro.obs.runtime import peak_rss_bytes

    parallel_session, _, _, _ = builds
    island_rss = parallel_session.metrics.gauge(
        "repro_shard_island_peak_rss_bytes"
    ).value
    assert island_rss > 0
    runner_rss = peak_rss_bytes()
    assert island_rss <= max(runner_rss, 1.0), (
        f"island RSS {island_rss:.0f} exceeds the merged-build runner "
        f"peak {runner_rss:.0f}"
    )


def test_four_workers_scale(builds):
    """Gate: >= 2x at 4 workers — needs real parallel hardware."""
    _, _, parallel_s, serial_s = builds
    cores = os.cpu_count() or 1
    if cores < 4:
        pytest.skip(f"speedup gate needs >= 4 cores, machine has {cores}")
    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
    assert speedup >= 2.0, (
        f"4-worker sharded build only {speedup:.2f}x faster than serial "
        f"({parallel_s:.1f}s vs {serial_s:.1f}s) on {cores} cores"
    )


def test_island_buckets_stay_balanced(builds):
    """Cohort routing must not let one island serialise the pool."""
    _, serial_session, _, _ = builds
    requests = [record.request for record in serial_session.dataset().records]
    buckets = route_requests(requests, PARTITIONS)
    sizes = [len(bucket) for bucket in buckets]
    mean = sum(sizes) / len(sizes)
    record_bench_stat(
        "island_balance",
        bucket_sizes=sizes,
        max_over_mean=round(max(sizes) / mean, 3),
    )
    assert min(sizes) > 0, f"empty island bucket: {sizes}"
    # GPU-hour-heavy users skew buckets; 2.5x mean still keeps the
    # pool's critical path well under serial.
    assert max(sizes) <= 2.5 * mean, f"island buckets unbalanced: {sizes}"
