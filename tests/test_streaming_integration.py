"""End-to-end streaming integration: producers and consumers agree
with the materialized pipeline.

Each producer that grew a chunked emission path (monitor collector,
time-series store, accounting) must stay bit-identical to its
materialized output, and *every* figure producer in the registry must
accept ``dataset.streaming_view()`` and reproduce the materialized
comparisons — bit-for-bit for integer-count fractions, within the
sketch's documented rank error for quantiles.  fig06 additionally gets
an oracle-parity gate: its NaN filtering must retain identical sample
sets on both representations.
"""

import numpy as np
import pytest

from repro.frame import ChunkedTable
from repro.monitor.collector import MonitoringCollector, MonitoringConfig
from repro.slurm.accounting import accounting_chunked, accounting_table


class TestCollectorChunking:
    def _run_pipeline(self, summary_chunk_rows):
        from repro.pipeline import Session
        from repro.workload.generator import WorkloadConfig

        monitoring = MonitoringConfig(summary_chunk_rows=summary_chunk_rows)
        return Session(
            WorkloadConfig(scale=0.01, seed=303), monitoring=monitoring
        ).dataset()

    def test_chunked_collector_is_bit_identical(self):
        baseline = self._run_pipeline(None)
        chunked = self._run_pipeline(64)
        assert chunked.per_gpu.to_dict() == baseline.per_gpu.to_dict()
        assert chunked.gpu_jobs.to_dict() == baseline.gpu_jobs.to_dict()
        assert chunked.jobs.to_dict() == baseline.jobs.to_dict()

    def test_per_gpu_chunked_view(self):
        config = MonitoringConfig(summary_chunk_rows=2)
        collector = MonitoringCollector(config)
        chunked = collector.per_gpu_chunked()
        assert isinstance(chunked, ChunkedTable)


class TestTimeSeriesScan:
    def test_scan_table_matches_series(self, small_dataset):
        store = small_dataset.timeseries
        chunked = store.scan_table(chunk_rows=512)
        assert chunked.num_rows == store.total_samples()
        table = chunked.materialize()
        assert table.num_rows == store.total_samples()
        # Spot-check one series round-trips exactly.
        series = next(iter(store))
        rows = table.filter(
            lambda t: (np.asarray(t["job_id"]) == series.job_id)
            & (np.asarray(t["gpu_index"]) == series.gpu_index)
        )
        np.testing.assert_array_equal(np.asarray(rows["time_s"]), series.times_s)
        np.testing.assert_array_equal(np.asarray(rows["sm"]), series.metric("sm"))

    def test_streaming_moments_over_samples(self, small_dataset):
        store = small_dataset.timeseries
        if store.total_samples() == 0:
            pytest.skip("no dense series at this scale")
        moments = store.scan_table(chunk_rows=256).moments("sm")
        materialized = np.concatenate([s.metric("sm") for s in store])
        assert moments.count == materialized.size
        assert moments.mean() == pytest.approx(materialized.mean(), rel=1e-9)


class TestAccountingChunked:
    def test_matches_accounting_table(self, small_dataset):
        records = small_dataset.records
        chunked = accounting_chunked(records, chunk_rows=37)
        assert chunked.num_rows == len(records)
        assert chunked.materialize().to_dict() == accounting_table(records).to_dict()


class TestStreamingFigures:
    def test_fig03_streaming_view(self, small_dataset):
        from repro.figures import fig03

        exact = fig03.run(small_dataset)
        streamed = fig03.run(small_dataset.streaming_view(chunk_rows=256))
        for ours, theirs in zip(exact.comparisons, streamed.comparisons):
            assert ours.name == theirs.name
            if "<1 min" in ours.name or ">1 min" in ours.name:
                assert ours.measured == theirs.measured, ours.name
            else:
                assert theirs.measured == pytest.approx(
                    ours.measured, rel=0.05, abs=0.75
                ), ours.name

    def test_fig04_streaming_view(self, small_dataset):
        from repro.figures import fig04

        exact = fig04.run(small_dataset)
        streamed = fig04.run(small_dataset.streaming_view(chunk_rows=256))
        for ours, theirs in zip(exact.comparisons, streamed.comparisons):
            assert theirs.measured == pytest.approx(
                ours.measured, rel=0.05, abs=0.75
            ), ours.name

    def test_streaming_view_shares_backing_data(self, small_dataset):
        view = small_dataset.streaming_view(chunk_rows=128)
        assert isinstance(view.jobs, ChunkedTable)
        assert isinstance(view.gpu_jobs, ChunkedTable)
        assert view.timeseries is small_dataset.timeseries
        # The view presents the same rows in ascending job_id (the
        # sharded builds' merge order), not the completion order the
        # materialized table happens to carry.
        assert (
            view.gpu_jobs.materialize().to_dict()
            == small_dataset.gpu_jobs.sort_by("job_id").to_dict()
        )

    def test_figure_plots_accept_sketches(self, small_dataset):
        """The SVG renderer only needs values/probabilities, which the
        sketch duck-types."""
        from repro.figures import fig04
        from repro.figures.plots import figure_charts

        result = fig04.run(small_dataset.streaming_view(chunk_rows=256))
        charts = figure_charts(result)
        assert charts


class TestColumnHelpersDispatch:
    def test_column_ecdf_exact_vs_sketch(self, small_dataset):
        from repro.analysis.stats import column_ecdf

        exact = column_ecdf(small_dataset.gpu_jobs, "sm_mean")
        sketched = column_ecdf(
            small_dataset.gpu_jobs.to_chunked(chunk_rows=64), "sm_mean"
        )
        assert sketched.num_samples == exact.num_samples
        assert sketched.median() == pytest.approx(exact.median(), rel=0.05, abs=0.75)

    def test_column_fraction_bit_exact(self, small_dataset):
        from repro.analysis.stats import column_fraction

        exact = column_fraction(
            small_dataset.gpu_jobs, "run_time_s", lambda v: v > 300.0
        )
        streamed = column_fraction(
            small_dataset.gpu_jobs.to_chunked(chunk_rows=31),
            "run_time_s",
            lambda v: v > 300.0,
        )
        assert exact == streamed


class TestFig06OracleParity:
    """fig06 on ``streaming_view()`` vs the materialized oracle.

    fig06's interval-CoV sample sets are filtered with the same
    finite-mask :func:`repro.analysis.stats.ecdf` applies internally,
    so both representations must *retain identical sample sets* — not
    just agree to tolerance.  The phase table itself is folded from the
    shared series store, so it must be bit identical too.
    """

    def test_retained_samples_identical(self, medium_dataset):
        from repro.figures import fig06

        exact = fig06.run(medium_dataset)
        streamed = fig06.run(medium_dataset.streaming_view(chunk_rows=512))

        exact_phases = exact.series["phase_table"]
        stream_phases = streamed.series["phase_table"]
        assert stream_phases.num_rows == exact_phases.num_rows
        for name in exact_phases.column_names:
            np.testing.assert_array_equal(
                np.asarray(stream_phases[name]),
                np.asarray(exact_phases[name]),
                err_msg=name,
            )

        assert [c.name for c in exact.comparisons] == [
            c.name for c in streamed.comparisons
        ]
        for ours, theirs in zip(exact.comparisons, streamed.comparisons):
            if np.isnan(ours.measured):
                assert np.isnan(theirs.measured), ours.name
            else:
                assert ours.measured == theirs.measured, ours.name

    def test_cov_gates_match_ecdf_drop(self, medium_dataset):
        """Among multi-interval jobs, fig06's explicit finite mask
        retains exactly the samples ``ecdf`` would keep internally."""
        from repro.analysis.phases import job_phase_table
        from repro.analysis.stats import ecdf

        phases = job_phase_table(medium_dataset.timeseries)
        cov = np.asarray(phases["active_interval_cov"], dtype=float)
        multi = cov[np.asarray(phases["num_active_intervals"]) >= 2]
        explicit = np.sort(multi[np.isfinite(multi)])
        assert explicit.size, "medium dataset lost its multi-interval jobs"
        np.testing.assert_array_equal(np.asarray(ecdf(multi).values), explicit)


class TestFullRegistryStreaming:
    """Every registered figure must accept ``dataset.streaming_view()``
    and agree with the materialized run: bit identical for
    integer-count ratios, figure-grade tolerance elsewhere."""

    #: Comparison-name substrings whose values are ratios of integer
    #: counts (exact on the chunk stream by construction).
    EXACT_MARKERS = (
        "waiting <1 min",
        "waiting >1 min",
        "job share",
        "job fraction",
        "jobs with >",
        "users with",
        "unimpacted",
        "avg-impacted",
    )

    def test_registry_parity(self, medium_dataset):
        from repro.figures.registry import all_figures, get_figure

        view = medium_dataset.streaming_view(chunk_rows=1024)
        for fid in all_figures():
            exact = get_figure(fid)(medium_dataset)
            streamed = get_figure(fid)(view)
            assert [c.name for c in exact.comparisons] == [
                c.name for c in streamed.comparisons
            ], fid
            for ours, theirs in zip(exact.comparisons, streamed.comparisons):
                label = f"{fid}: {ours.name}"
                if any(marker in ours.name for marker in self.EXACT_MARKERS):
                    assert ours.measured == theirs.measured, label
                elif np.isnan(ours.measured):
                    assert np.isnan(theirs.measured), label
                else:
                    assert theirs.measured == pytest.approx(
                        ours.measured, rel=0.15, abs=0.05
                    ), label
        assert view.is_streaming, "a figure producer materialized the view"
