"""The :class:`Table` columnar container.

A table is an ordered mapping of column names to equal-length numpy
arrays.  All operations return new tables; columns are shared (not
copied) wherever the operation permits, so tables are cheap to slice.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro.errors import ColumnMissingError, FrameError, LengthMismatchError
from repro.frame.column import _all_numeric, as_column, column_dtype
from repro.obs.runtime import record_kernel


class Table:
    """An immutable-by-convention columnar table.

    Parameters
    ----------
    columns:
        Mapping of column name to column values.  Values are coerced via
        :func:`repro.frame.column.as_column` and must share one length.
    """

    def __init__(self, columns: Mapping[str, Any] | None = None) -> None:
        self._columns: dict[str, np.ndarray] = {}
        length: int | None = None
        for name, values in (columns or {}).items():
            array = as_column(values)
            if length is None:
                length = len(array)
            elif len(array) != length:
                raise LengthMismatchError(
                    f"column {name!r} has length {len(array)}, expected {length}"
                )
            self._columns[str(name)] = array
        self._length = length or 0

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_rows(cls, rows: Sequence[Mapping[str, Any]], columns: Sequence[str] | None = None) -> "Table":
        """Build a table from an iterable of row dictionaries.

        When ``columns`` is omitted the union of keys (in first-seen
        order) is used; missing values become ``None``.
        """
        rows = list(rows)
        if columns is None:
            seen: dict[str, None] = {}
            for row in rows:
                for key in row:
                    seen.setdefault(key, None)
            columns = list(seen)
        data = {name: [row.get(name) for row in rows] for name in columns}
        return cls(data)

    @classmethod
    def empty(cls, columns: Sequence[str]) -> "Table":
        """Return a zero-row table with the given column names."""
        return cls({name: np.empty(0, dtype=object) for name in columns})

    @classmethod
    def scan(cls, source: Any, chunk_rows: int | None = None) -> "ChunkedTable":
        """Open ``source`` as an out-of-core :class:`ChunkedTable`.

        Accepts a :class:`Table`, a ``.csv``/``.jsonl`` path, a
        directory of spill ``.npz`` chunks, or an iterable of tables —
        see :meth:`repro.frame.chunked.ChunkedTable.scan`.
        """
        from repro.frame.chunked import DEFAULT_CHUNK_ROWS, ChunkedTable

        return ChunkedTable.scan(
            source, DEFAULT_CHUNK_ROWS if chunk_rows is None else chunk_rows
        )

    def to_chunked(self, chunk_rows: int | None = None) -> "ChunkedTable":
        """Split this table into a :class:`ChunkedTable` view.

        With ``chunk_rows=None`` the row count is sized adaptively from
        the table's row width so one chunk occupies roughly
        :data:`~repro.frame.chunked.DEFAULT_CHUNK_BYTES` regardless of
        how wide the table is (see :func:`adaptive_chunk_rows`).
        """
        from repro.frame.chunked import ChunkedTable, adaptive_chunk_rows

        return ChunkedTable.from_table(
            self,
            adaptive_chunk_rows(self.row_nbytes) if chunk_rows is None else chunk_rows,
        )

    @property
    def row_nbytes(self) -> float:
        """Estimated bytes one row occupies across all columns.

        Numeric columns count their itemsize; object columns are
        estimated at a flat per-cell cost (the exact payload depends on
        the pickled strings).  Drives adaptive chunk sizing.
        """
        width = 0.0
        for name in self._columns:
            column = self._columns[name]
            if column.dtype == object:
                width += 24.0
            else:
                width += column.dtype.itemsize
        return width

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def column_names(self) -> tuple[str, ...]:
        return tuple(self._columns)

    @property
    def num_rows(self) -> int:
        return self._length

    @property
    def num_columns(self) -> int:
        return len(self._columns)

    def __len__(self) -> int:
        return self._length

    def __contains__(self, name: object) -> bool:
        return name in self._columns

    def __repr__(self) -> str:
        cols = ", ".join(self.column_names[:8])
        suffix = ", ..." if self.num_columns > 8 else ""
        return f"Table({self.num_rows} rows x {self.num_columns} cols: {cols}{suffix})"

    def column(self, name: str) -> np.ndarray:
        """Return the column array (a view, never a copy)."""
        try:
            return self._columns[name]
        except KeyError:
            raise ColumnMissingError(name, self.column_names) from None

    def __getitem__(self, name: str) -> np.ndarray:
        return self.column(name)

    def row(self, index: int) -> dict[str, Any]:
        """Return one row as a plain dictionary (numpy scalars unwrapped)."""
        if not -self._length <= index < self._length:
            raise IndexError(f"row {index} out of range for {self._length} rows")
        return {name: _unwrap(col[index]) for name, col in self._columns.items()}

    def iter_rows(self) -> Iterator[dict[str, Any]]:
        """Iterate over rows as dictionaries (slow path, for IO/tests)."""
        for i in range(self._length):
            yield self.row(i)

    def to_dict(self) -> dict[str, list[Any]]:
        """Return a plain ``dict`` of lists (deep copy)."""
        return {name: [_unwrap(v) for v in col] for name, col in self._columns.items()}

    def dtypes(self) -> dict[str, str]:
        """Map each column to ``"numeric"``/``"string"``/``"object"``."""
        return {name: column_dtype(col) for name, col in self._columns.items()}

    # ------------------------------------------------------------------
    # Column-level transformation
    # ------------------------------------------------------------------
    def select(self, names: Sequence[str]) -> "Table":
        """Return a table containing only ``names`` (order preserved)."""
        return Table({name: self.column(name) for name in names})

    def drop(self, names: Sequence[str]) -> "Table":
        """Return a table without the given columns."""
        missing = [n for n in names if n not in self._columns]
        if missing:
            raise ColumnMissingError(missing[0], self.column_names)
        keep = [n for n in self.column_names if n not in set(names)]
        return self.select(keep)

    def rename(self, mapping: Mapping[str, str]) -> "Table":
        """Return a table with columns renamed per ``mapping``."""
        for old in mapping:
            if old not in self._columns:
                raise ColumnMissingError(old, self.column_names)
        return Table({mapping.get(name, name): col for name, col in self._columns.items()})

    def with_column(self, name: str, values: Any) -> "Table":
        """Return a table with ``name`` added or replaced."""
        array = as_column(values)
        if self._columns and len(array) != self._length:
            raise LengthMismatchError(
                f"new column {name!r} has length {len(array)}, table has {self._length} rows"
            )
        merged = dict(self._columns)
        merged[name] = array
        return Table(merged)

    def with_computed(self, name: str, fn: Callable[["Table"], Any]) -> "Table":
        """Return a table with ``name`` set to ``fn(self)`` (vectorised)."""
        return self.with_column(name, fn(self))

    # ------------------------------------------------------------------
    # Row-level transformation
    # ------------------------------------------------------------------
    def take(self, indices: Any) -> "Table":
        """Return the rows at ``indices`` (fancy indexing)."""
        idx = np.asarray(indices)
        return Table({name: col[idx] for name, col in self._columns.items()})

    def filter(self, mask: Any) -> "Table":
        """Return rows where the boolean ``mask`` is True.

        ``mask`` may be a boolean array or a callable applied to the
        table that returns one.
        """
        if callable(mask):
            mask = mask(self)
        mask = np.asarray(mask)
        if mask.dtype != bool:
            raise FrameError(f"filter mask must be boolean, got dtype {mask.dtype}")
        if len(mask) != self._length:
            raise LengthMismatchError(
                f"mask length {len(mask)} != table length {self._length}"
            )
        return self.take(np.nonzero(mask)[0])

    def head(self, n: int = 5) -> "Table":
        """Return the first ``n`` rows."""
        return self.take(np.arange(min(n, self._length)))

    def sort_by(self, *names: str, descending: bool = False) -> "Table":
        """Return the table sorted by the given columns (stable).

        ``descending=True`` inverts the key order (dense ranks are
        negated) rather than reversing the sorted rows, so rows that
        tie on every key keep their first-seen order.
        """
        if not names:
            raise FrameError("sort_by requires at least one column name")
        keys = [self.column(name) for name in reversed(names)]
        order = np.lexsort([_sort_key(k, descending) for k in keys])
        return self.take(order)

    def unique(self, name: str) -> np.ndarray:
        """Return the sorted unique values of a column."""
        return np.unique(_sortable(self.column(name)))

    def value_counts(self, name: str) -> "Table":
        """Count occurrences of each value, most frequent first (ties
        broken by the value's string form)."""
        from repro.frame.factorize import factorize_codes

        record_kernel("value_counts", self._length)
        column = self.column(name)
        if len(column) == 0:
            return Table.from_rows([])
        # The output is sorted by (-count, label), so group order is
        # irrelevant: cheap codes plus a bincount suffice, and any
        # occurrence of a value can represent its group.
        codes, num_groups = factorize_codes(column)
        counts = np.bincount(codes, minlength=num_groups).astype(np.int64, copy=False)
        representatives = np.empty(num_groups, dtype=np.intp)
        representatives[codes] = np.arange(len(codes), dtype=np.intp)
        values = column[representatives]
        labels = np.asarray([str(_unwrap(v)) for v in values])
        order = np.lexsort((labels, -counts))
        return Table({name: values[order], "count": counts[order]})

    def pivot(
        self,
        index: str,
        columns: str,
        values: str,
        reducer: str = "sum",
    ) -> "Table":
        """Cross-tabulate: one row per ``index`` value, one column per
        ``columns`` value, cells reduced from ``values``.

        Missing combinations yield 0 for ``sum``/``count`` and None
        otherwise.  Column order follows first appearance.
        """
        from repro.frame.factorize import factorize_columns
        from repro.frame.groupby import _BUILTIN_REDUCERS, _reduce_segments

        if reducer not in _BUILTIN_REDUCERS:
            raise FrameError(f"unknown reducer {reducer!r}")
        record_kernel("pivot", self._length)
        idx_col = self.column(index)
        col_col = self.column(columns)
        val_col = self.column(values)
        if self._length == 0:
            return Table.from_rows([])

        row_fact = factorize_columns([idx_col])
        col_fact = factorize_columns([col_col])
        n_rows, n_cols = row_fact.num_groups, col_fact.num_groups
        # One factorized code per (index, columns) cell, then one pass
        # of segment reduction over the cell-sorted value column.
        cell_codes = row_fact.codes * np.intp(n_cols) + col_fact.codes
        cell_fact = factorize_columns([cell_codes])
        reduced = _reduce_segments(val_col[cell_fact.order], cell_fact, reducer)
        # Map each present cell back to its (row group, column group).
        cell_rows, cell_cols = np.divmod(cell_codes[cell_fact.first_rows], n_cols)

        numeric_fill = reducer in ("sum", "count")
        data: dict[str, Any] = {index: idx_col[row_fact.first_rows]}
        col_labels = [str(_unwrap(v)) for v in col_col[col_fact.first_rows]]
        for c, label in enumerate(col_labels):
            mask = cell_cols == c
            if numeric_fill:
                cells = np.zeros(n_rows, dtype=reduced.dtype)
                cells[cell_rows[mask]] = reduced[mask]
            else:
                cells = np.empty(n_rows, dtype=object)
                cells[:] = None
                cells[cell_rows[mask]] = reduced[mask].tolist()
            data[label] = cells
        return Table(data)

    # ------------------------------------------------------------------
    # Group-by and join
    # ------------------------------------------------------------------
    def group_by(self, *names: str) -> "GroupBy":
        """Group rows by the given key columns; see :class:`GroupBy`."""
        from repro.frame.groupby import GroupBy

        return GroupBy(self, names)

    def join(self, other: "Table", on: str, how: str = "inner", suffix: str = "_right") -> "Table":
        """Join two tables on an equality key.

        Supports ``how="inner"`` and ``how="left"``.  The right table's
        key must be unique (this mirrors the paper's pipeline, which
        joins per-job GPU summaries onto Slurm accounting rows by job
        id).  Overlapping non-key columns from ``other`` get ``suffix``.
        """
        if how not in ("inner", "left"):
            raise FrameError(f"unsupported join type {how!r}")
        record_kernel("join", self._length + other._length)
        left_keys = self.column(on)
        right_keys = other.column(on)
        # Factorize left and right keys over one shared code space so
        # matching is pure integer indexing.  Only codes are needed —
        # not the grouped view — so the cheap factorization suffices.
        from repro.frame.factorize import factorize_codes

        codes, num_groups = factorize_codes(_concat_columns(left_keys, right_keys))
        left_codes = codes[: len(left_keys)]
        right_codes = codes[len(left_keys) :]
        counts = np.bincount(right_codes, minlength=num_groups)
        if (counts > 1).any():
            dup = _unwrap(right_keys[np.flatnonzero(counts[right_codes] > 1)[0]])
            raise FrameError(f"join key {on!r} is not unique in right table ({dup!r})")
        lookup = np.full(num_groups, -1, dtype=np.intp)
        lookup[right_codes] = np.arange(len(right_keys), dtype=np.intp)

        right_rows = lookup[left_codes]
        if how == "inner":
            left_idx = np.flatnonzero(right_rows >= 0)
            if len(left_idx) == self._length:
                left_idx = None
            else:
                right_rows = right_rows[left_idx]
        else:
            left_idx = None

        # When every left row survives, share the left columns instead
        # of copying them — tables are immutable-by-convention, so the
        # identity gather is pure waste.
        result = self if left_idx is None else self.take(left_idx)
        matched = right_rows >= 0
        for name in other.column_names:
            if name == on:
                continue
            out_name = name if name not in self._columns else name + suffix
            source = other.column(name)
            if matched.all():
                values = source[right_rows]
            else:
                values = np.empty(len(right_rows), dtype=object)
                values[matched] = source[right_rows[matched]]
                values[~matched] = None
            result = result.with_column(out_name, values)
        return result

    # ------------------------------------------------------------------
    # Presentation
    # ------------------------------------------------------------------
    def describe(self, percentiles: Sequence[float] = (25, 50, 75)) -> "Table":
        """Summarise numeric columns (count/mean/std/min/percentiles/max)."""
        rows = []
        for name, col in self._columns.items():
            if column_dtype(col) != "numeric":
                continue
            values = col.astype(float)
            values = values[np.isfinite(values)]
            row: dict[str, Any] = {"column": name, "count": int(values.size)}
            if values.size:
                row.update(
                    mean=float(values.mean()),
                    std=float(values.std(ddof=0)),
                    min=float(values.min()),
                    max=float(values.max()),
                )
                for p in percentiles:
                    row[f"p{p:g}"] = float(np.percentile(values, p))
            rows.append(row)
        return Table.from_rows(rows)

    def to_string(self, max_rows: int = 20) -> str:
        """Render the table as aligned text for terminals/logs."""
        names = list(self.column_names)
        if not names:
            return "(empty table)"
        shown = min(self._length, max_rows)
        cells = [[_format_cell(self._columns[n][i]) for n in names] for i in range(shown)]
        widths = [
            max(len(names[j]), *(len(r[j]) for r in cells)) if cells else len(names[j])
            for j in range(len(names))
        ]
        header = "  ".join(n.ljust(w) for n, w in zip(names, widths))
        lines = [header, "  ".join("-" * w for w in widths)]
        for row in cells:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        if shown < self._length:
            lines.append(f"... ({self._length - shown} more rows)")
        return "\n".join(lines)


def concat_tables(tables: Iterable[Table]) -> Table:
    """Stack tables with identical column sets vertically."""
    tables = [t for t in tables if t.num_rows or t.num_columns]
    if not tables:
        return Table()
    names = tables[0].column_names
    for t in tables[1:]:
        if t.column_names != names:
            raise FrameError(
                f"cannot concat tables with differing columns: {names} vs {t.column_names}"
            )
    data = {}
    for name in names:
        parts = [t.column(name) for t in tables]
        if all(np.issubdtype(p.dtype, np.number) or p.dtype == bool for p in parts):
            data[name] = np.concatenate(parts)
        else:
            merged = np.empty(sum(len(p) for p in parts), dtype=object)
            offset = 0
            for p in parts:
                merged[offset : offset + len(p)] = p
                offset += len(p)
            data[name] = merged
    return Table(data)


def _concat_columns(left: np.ndarray, right: np.ndarray) -> np.ndarray:
    """Stack two columns; objects win when dtypes disagree."""
    if (
        left.dtype != object
        and right.dtype != object
        and (np.issubdtype(left.dtype, np.number) or left.dtype == bool)
        and (np.issubdtype(right.dtype, np.number) or right.dtype == bool)
    ):
        return np.concatenate([left, right])
    merged = np.empty(len(left) + len(right), dtype=object)
    merged[: len(left)] = left
    merged[len(left) :] = right
    return merged


def _sortable(column: np.ndarray) -> np.ndarray:
    """Return an array usable as a lexsort key.

    Object columns of pure numbers compare numerically (an object
    column of ints must not sort "10" before "9"); any other object
    column falls back to string form.
    """
    if column.dtype == object:
        material = column.tolist()
        if _all_numeric(material):
            return np.asarray(material, dtype=float)
        return np.asarray([str(v) for v in column])
    return column


def _sort_key(column: np.ndarray, descending: bool) -> np.ndarray:
    """Lexsort key for one column; descending via negated dense ranks.

    Negating ranks (rather than reversing the final order) flips the
    key comparison while leaving tied rows in first-seen order, which
    keeps ``sort_by`` stable in both directions.
    """
    key = _sortable(column)
    if not descending:
        return key
    _, inverse = np.unique(key, return_inverse=True)
    return -inverse.astype(np.intp, copy=False)


def _unwrap(value: Any) -> Any:
    """Convert numpy scalars into native Python values."""
    if isinstance(value, np.generic):
        return value.item()
    return value


def _format_cell(value: Any) -> str:
    value = _unwrap(value)
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)
