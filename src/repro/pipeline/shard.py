"""The sharded dataset build: island simulation fan-out + merge.

With ``WorkloadConfig.partitions > 1`` the build stage runs one
:class:`~repro.slurm.scheduler.SlurmSimulator` (plus its own
partition-local :class:`~repro.monitor.collector.MonitoringCollector`)
per cluster island, optionally across the
:func:`~repro.pipeline.parallel.parallel_map` process pool, and merges
the per-island outputs deterministically:

* job records — global job-id order, node indices remapped to the
  whole machine;
* monitoring tables — concatenated and sorted by ``(job_id[,
  gpu_index])``, so the merge is independent of which process ran
  which island;
* time series — disjoint union of the island stores;
* obs spans/metrics — drained in each worker and re-parented into the
  session trace in partition order.

The islands here are *uncoupled* (no migration, no fair-share sync —
the pipeline's default scheduler configuration), which is what makes
the process-parallel run bit-identical to running the same islands
serially: each island's event loop depends only on its own bucket of
jobs.  Coupled islands (see
:class:`~repro.slurm.interchange.InterchangeConfig`) must share an
address space and are driven by the serial lockstep runner instead.
"""

from __future__ import annotations

import dataclasses
import os
from dataclasses import dataclass, field

import numpy as np

from repro.cluster.partition import Partition, PartitionError, PartitionLayout
from repro.monitor.collector import MonitoringConfig
from repro.pipeline.instrument import PipelineInstrumentation
from repro.pipeline.parallel import parallel_map
from repro.workload.generator import WorkloadConfig


def island_monitoring(
    monitoring: MonitoringConfig | None, partition_index: int, num_partitions: int
) -> MonitoringConfig:
    """The partition-local monitoring config for one island.

    Each island's collector needs its own RNG stream (sampling draws
    happen in island-local job-completion order), derived from the
    base monitoring seed with the partition index as the spawn key —
    the same stream no matter which process runs the island.
    """
    base = monitoring if monitoring is not None else MonitoringConfig()
    if num_partitions <= 1:
        return base
    derived = int(
        np.random.SeedSequence(
            entropy=base.seed, spawn_key=(partition_index,)
        ).generate_state(1)[0]
    )
    return dataclasses.replace(base, seed=derived)


@dataclass
class IslandTask:
    """Everything one island needs, picklable for the pool."""

    partition: Partition
    num_partitions: int
    config: WorkloadConfig
    monitoring: MonitoringConfig | None
    requests: list
    #: pid of the process that built the task; lets the runner tell the
    #: in-process serial path from a forked pool worker (a fork copies
    #: the parent's *enabled* ambient tracer, so enabled-ness alone
    #: cannot distinguish the two).
    parent_pid: int = 0


@dataclass
class IslandBuildResult:
    """One island's outputs, node indices already global."""

    partition_index: int
    records: list
    gpu_summary: object
    per_gpu: object
    store: object
    sampling_rows: int
    events_processed: int
    peak_rss_bytes: float = 0.0
    span_payload: list | None = None
    metrics_snapshot: dict | None = field(default=None, repr=False)


def _build_island(task: IslandTask) -> IslandBuildResult:
    from repro.cluster.spec import supercloud_spec
    from repro.monitor.collector import MonitoringCollector
    from repro.obs.runtime import peak_rss_bytes
    from repro.slurm.interchange import _remap_nodes
    from repro.slurm.scheduler import SlurmSimulator

    part = task.partition
    base_spec = supercloud_spec(task.config.scaled_nodes)
    simulator = SlurmSimulator(part.spec(base_spec))
    monitoring = island_monitoring(task.monitoring, part.index, task.num_partitions)
    collector = MonitoringCollector(monitoring).attach(simulator)
    result = simulator.run(task.requests)
    simulator.cluster.check_invariants()
    sampling_rows = collector.flush(workers=1)
    gpu_summary = collector.job_gpu_table()
    per_gpu = collector.per_gpu_table()
    _remap_nodes(result.records, part.node_start)
    return IslandBuildResult(
        partition_index=part.index,
        records=result.records,
        gpu_summary=gpu_summary,
        per_gpu=per_gpu,
        store=collector.store,
        sampling_rows=sampling_rows,
        events_processed=result.events_processed,
        peak_rss_bytes=peak_rss_bytes(),
    )


def _run_island(task: IslandTask) -> IslandBuildResult:
    """Pool-safe island entry: owns its obs pair inside a fresh worker.

    In-process (serial fallback, session observability ambient) the
    island's spans flow straight into the session trace.  In a worker
    process — recognised by the pid differing from the task builder's,
    since a forked worker inherits a *copy* of the parent's enabled
    tracer whose spans would be lost with the child — the task runs
    under its own tracer/registry and ships the drained payloads home.
    """
    from repro.obs import runtime

    if os.getpid() == task.parent_pid and runtime.get_tracer().enabled:
        return _build_island(task)
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.trace import Tracer

    tracer = Tracer(process_name=f"repro-island-{task.partition.index}")
    metrics = MetricsRegistry()
    with runtime.use(tracer, metrics):
        result = _build_island(task)
    result.span_payload = tracer.drain_payload()
    result.metrics_snapshot = metrics.drain()
    return result


def check_island_capacity(layout: PartitionLayout, buckets: list, spec) -> None:
    """Fail fast, with a remedy, when an island cannot place its jobs.

    Splitting a small machine into many islands can leave every island
    smaller than the largest job in its bucket; without this check the
    failure surfaces as a :class:`PlacementError` deep inside a pool
    worker.
    """
    gpus_per_node = spec.node.gpus_per_node
    for part, bucket in zip(layout, buckets):
        if not bucket:
            continue
        worst = max(bucket, key=lambda request: request.num_gpus)
        needed = -(-worst.num_gpus // gpus_per_node)
        if worst.num_gpus and needed > part.num_nodes:
            raise PartitionError(
                f"island {part.index} has {part.num_nodes} of the machine's "
                f"{layout.total_nodes} nodes, but job {worst.job_id} in its "
                f"bucket needs {needed} nodes ({worst.num_gpus} GPUs); use "
                "fewer partitions, or a larger scale / num_nodes so every "
                f"island has at least {needed} nodes"
            )


def _merge_tables(tables: list, sort_keys: tuple[str, ...]):
    """Concatenate island tables and sort into a process-independent
    order; empty islands (no rows yet, schema-less) are skipped."""
    from repro.frame import concat_tables

    filled = [table for table in tables if table.num_rows]
    if not filled:
        return tables[0]
    merged = concat_tables(filled) if len(filled) > 1 else filled[0]
    return merged.sort_by(*sort_keys)


def build_sharded_dataset(
    config: WorkloadConfig,
    monitoring: MonitoringConfig | None,
    inst: PipelineInstrumentation,
    workers: int = 1,
):
    """The partitioned counterpart of ``session._build_dataset``.

    Same five stages, same output shape; ``schedule`` fans the islands
    across the pool (sampling included — each island flushes its own
    collector), ``monitor`` merges the partition-local outputs.
    """
    from repro.cluster.spec import supercloud_spec
    from repro.dataset import SupercloudDataset
    from repro.monitor.timeseries import TimeSeriesStore
    from repro.slurm.accounting import accounting_table
    from repro.slurm.interchange import route_requests
    from repro.workload.calibration import PAPER_TARGETS
    from repro.workload.cohorts import generate_sharded

    with inst.stage("workload") as probe:
        requests = generate_sharded(config, workers=workers)
        probe.rows = len(requests)

    layout = PartitionLayout.even(config.scaled_nodes, config.partitions)
    spec = supercloud_spec(config.scaled_nodes)

    with inst.stage("schedule") as probe:
        buckets = route_requests(requests, len(layout))
        check_island_capacity(layout, buckets, spec)
        tasks = [
            IslandTask(
                partition=part,
                num_partitions=len(layout),
                config=config,
                monitoring=monitoring,
                requests=bucket,
                parent_pid=os.getpid(),
            )
            for part, bucket in zip(layout, buckets)
        ]
        islands = parallel_map(_run_island, tasks, workers=workers)
        parent = inst.tracer.current_span_id()
        for island in islands:
            if island.span_payload:
                inst.tracer.adopt(island.span_payload, parent=parent)
            if island.metrics_snapshot:
                inst.metrics.merge(island.metrics_snapshot)
        records = [record for island in islands for record in island.records]
        records.sort(key=lambda record: record.request.job_id)
        inst.metrics.gauge(
            "repro_shard_island_peak_rss_bytes",
            help="largest per-island process peak RSS in the sharded build",
        ).set_max(max(island.peak_rss_bytes for island in islands))
        probe.rows = len(records)

    with inst.stage("sampling") as probe:
        # Sampling already ran island-locally inside ``schedule``; this
        # stage only accounts for it so stage rows stay comparable.
        probe.rows = sum(island.sampling_rows for island in islands)

    with inst.stage("monitor") as probe:
        gpu_summary = _merge_tables(
            [island.gpu_summary for island in islands], ("job_id",)
        )
        per_gpu = _merge_tables(
            [island.per_gpu for island in islands], ("job_id", "gpu_index")
        )
        store = TimeSeriesStore.merged(island.store for island in islands)
        probe.rows = per_gpu.num_rows

    with inst.stage("assemble") as probe:
        jobs = accounting_table(records)
        keep = (np.asarray(jobs["num_gpus"]) > 0) & (
            np.asarray(jobs["run_time_s"], dtype=float)
            >= PAPER_TARGETS.short_job_filter_s
        )
        gpu_jobs = jobs.filter(keep).join(gpu_summary, on="job_id")
        if per_gpu.num_rows:
            context = jobs.select(
                ["job_id", "user", "num_gpus", "run_time_s", "gpu_hours", "lifecycle_class", "interface"]
            )
            per_gpu = per_gpu.join(context, on="job_id")
        probe.rows = jobs.num_rows

    return SupercloudDataset(
        jobs=jobs,
        gpu_jobs=gpu_jobs,
        per_gpu=per_gpu,
        timeseries=store,
        records=records,
        spec=spec,
        config=config,
    )
