"""Tests for life-cycle transition mining."""

import numpy as np
import pytest

from repro.analysis.transitions import (
    campaign_stats,
    segment_campaigns,
    self_transition_rates,
    transition_matrix,
)
from repro.errors import AnalysisError
from repro.frame import Table


def stream(spec):
    """spec: [(user, submit, class), ...]"""
    return Table.from_rows(
        [
            {"user": user, "submit_time_s": submit, "lifecycle_class": cls}
            for user, submit, cls in spec
        ]
    )


class TestTransitionMatrix:
    def test_rows_are_distributions(self):
        jobs = stream(
            [("a", 0.0, "ide"), ("a", 1.0, "development"), ("a", 2.0, "exploratory"),
             ("a", 3.0, "mature")]
        )
        matrix = transition_matrix(jobs)
        for row in matrix.iter_rows():
            total = sum(row[c] for c in ("mature", "exploratory", "development", "ide"))
            assert total in (0.0, pytest.approx(1.0))

    def test_deterministic_chain(self):
        jobs = stream([("a", float(i), "development" if i % 2 == 0 else "mature") for i in range(10)])
        matrix = transition_matrix(jobs)
        dev_row = [r for r in matrix.iter_rows() if r["from_class"] == "development"][0]
        assert dev_row["mature"] == pytest.approx(1.0)

    def test_transitions_do_not_cross_users(self):
        jobs = stream([("a", 0.0, "ide"), ("b", 1.0, "mature")])
        matrix = transition_matrix(jobs)
        ide_row = [r for r in matrix.iter_rows() if r["from_class"] == "ide"][0]
        assert ide_row["num_transitions"] == 0

    def test_self_transition_rates(self):
        jobs = stream([("a", float(i), "mature") for i in range(5)])
        rates = self_transition_rates(transition_matrix(jobs))
        assert rates["mature"] == pytest.approx(1.0)

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            transition_matrix(stream([]))


class TestCampaigns:
    def test_gap_splits_campaigns(self):
        jobs = stream(
            [("a", 0.0, "development"), ("a", 60.0, "mature"), ("a", 100000.0, "ide")]
        )
        campaigns = segment_campaigns(jobs, gap_s=3600.0)
        assert len(campaigns) == 2
        assert campaigns[0]["classes"] == ["development", "mature"]

    def test_span_computed(self):
        jobs = stream([("a", 0.0, "mature"), ("a", 500.0, "mature")])
        campaigns = segment_campaigns(jobs, gap_s=3600.0)
        assert campaigns[0]["span_s"] == 500.0

    def test_stats(self):
        jobs = stream(
            [
                ("a", 0.0, "development"), ("a", 10.0, "exploratory"), ("a", 20.0, "mature"),
                ("b", 0.0, "ide"),
            ]
        )
        stats = campaign_stats(segment_campaigns(jobs, gap_s=3600.0))
        assert stats.num_campaigns == 2
        assert stats.fraction_ending_mature == 0.5
        assert stats.fraction_with_exploration == 1.0  # the only multi-job campaign

    def test_invalid_gap_rejected(self):
        with pytest.raises(AnalysisError):
            segment_campaigns(stream([("a", 0.0, "mature")]), gap_s=0.0)

    def test_empty_campaign_list_rejected(self):
        with pytest.raises(AnalysisError):
            campaign_stats([])


class TestOnGeneratedData:
    def test_matrix_well_formed(self, gpu_jobs):
        matrix = transition_matrix(gpu_jobs)
        assert matrix.num_rows == 4
        total = sum(r["num_transitions"] for r in matrix.iter_rows())
        assert total > gpu_jobs.num_rows * 0.8  # nearly every job has a successor

    def test_mature_is_sticky(self, gpu_jobs):
        """Users in the mature state tend to stay there (the dominant
        class dominates its own successor distribution)."""
        rates = self_transition_rates(transition_matrix(gpu_jobs))
        assert rates["mature"] > 0.4

    def test_campaign_structure_present(self, gpu_jobs):
        stats = campaign_stats(segment_campaigns(gpu_jobs))
        # the generator submits jobs in sessions: campaigns exist and
        # most multi-job bursts contain several jobs
        assert stats.num_campaigns > 50
        assert stats.median_campaign_jobs >= 1.0
