"""Edge-case behavior of the figure harness on degenerate datasets."""

import pytest

from repro.dataset import generate_dataset
from repro.errors import AnalysisError
from repro.figures.registry import run_figure
from repro.monitor.collector import MonitoringConfig
from repro.workload.generator import WorkloadConfig


@pytest.fixture(scope="module")
def no_timeseries_dataset():
    return generate_dataset(
        WorkloadConfig(scale=0.01, seed=404),
        MonitoringConfig(timeseries_fraction=0.0),
    )


@pytest.fixture(scope="module")
def gpu_only_dataset():
    return generate_dataset(
        WorkloadConfig(scale=0.01, seed=405, include_cpu_jobs=False)
    )


class TestMissingTimeseries:
    def test_fig06_raises_clearly(self, no_timeseries_dataset):
        with pytest.raises(AnalysisError, match="time-series"):
            run_figure("fig06", no_timeseries_dataset)

    def test_fig07_raises_clearly(self, no_timeseries_dataset):
        with pytest.raises(AnalysisError, match="time-series"):
            run_figure("fig07", no_timeseries_dataset)

    def test_summary_figures_still_work(self, no_timeseries_dataset):
        for figure_id in ("fig04", "fig09", "fig15"):
            result = run_figure(figure_id, no_timeseries_dataset)
            assert result.comparisons


class TestGpuOnlyWorkload:
    def test_fig03_raises_without_cpu_jobs(self, gpu_only_dataset):
        with pytest.raises(AnalysisError):
            run_figure("fig03", gpu_only_dataset)

    def test_gpu_side_figures_work(self, gpu_only_dataset):
        for figure_id in ("fig04", "fig13", "fig15", "pareto"):
            result = run_figure(figure_id, gpu_only_dataset)
            assert result.comparisons

    def test_dataset_has_no_cpu_jobs(self, gpu_only_dataset):
        import numpy as np

        assert (np.asarray(gpu_only_dataset.jobs["num_gpus"]) > 0).all()
