"""Fig 16: utilization box plots per life-cycle class."""

from repro.figures.registry import run_figure


def test_fig16_class_utilization(benchmark, dataset):
    result = benchmark(run_figure, "fig16", dataset)
    # shape: development/IDE jobs barely touch the GPU
    assert result.get("mature/expl >> dev/IDE ordering holds").measured == 1.0
    assert result.get("ide SM median").measured < 1.0
