"""Tests for the terminal (ASCII) renderers."""

import pytest

from repro.errors import ReproError
from repro.plot import ascii_cdf, ascii_histogram


class TestAsciiCdf:
    def test_basic_shape(self):
        text = ascii_cdf([1.0, 2.0, 3.0, 4.0], width=20, height=5)
        lines = text.splitlines()
        assert len(lines) == 7  # 5 rows + axis + labels
        assert "*" in text
        assert lines[0].startswith("1.00")

    def test_title_included(self):
        text = ascii_cdf([1.0, 2.0], title="runtimes")
        assert text.splitlines()[0] == "runtimes"

    def test_log_axis_label(self):
        text = ascii_cdf([1.0, 10.0, 100.0], log_x=True)
        assert "(log x)" in text

    def test_log_axis_drops_nonpositive(self):
        text = ascii_cdf([0.0, 1.0, 10.0], log_x=True)
        assert "*" in text

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            ascii_cdf([])

    def test_all_nonpositive_log_rejected(self):
        with pytest.raises(ReproError):
            ascii_cdf([0.0, -1.0], log_x=True)

    def test_constant_values(self):
        text = ascii_cdf([5.0, 5.0, 5.0])
        assert "*" in text

    def test_monotone_star_positions(self):
        text = ascii_cdf(list(range(1, 101)), width=30, height=8)
        rows = [line for line in text.splitlines() if "|" in line and "*" in line]
        first_cols = [line.index("*") for line in rows]
        # higher probability rows have stars further right
        assert first_cols == sorted(first_cols, reverse=True)


class TestAsciiHistogram:
    def test_bars_scaled_to_peak(self):
        text = ascii_histogram(["a", "b"], [1.0, 2.0], width=10)
        lines = text.splitlines()
        assert lines[0].count("#") == 5
        assert lines[1].count("#") == 10

    def test_labels_aligned(self):
        text = ascii_histogram(["x", "long"], [1, 1])
        lines = text.splitlines()
        assert lines[0].index("|") == lines[1].index("|")

    def test_length_mismatch_rejected(self):
        with pytest.raises(ReproError):
            ascii_histogram(["a"], [1, 2])

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            ascii_histogram([], [])

    def test_zero_counts_no_crash(self):
        text = ascii_histogram(["a"], [0.0])
        assert "a" in text
