"""Tests for the statistical primitives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import stats as scipy_stats

from repro.analysis.stats import (
    coefficient_of_variation,
    ecdf,
    gini,
    quantiles,
    spearman,
)
from repro.errors import AnalysisError

finite = st.floats(allow_nan=False, allow_infinity=False, width=32)


class TestEcdf:
    def test_evaluate_step(self):
        dist = ecdf([1.0, 2.0, 3.0, 4.0])
        assert dist.evaluate(2.0) == 0.5
        assert dist.evaluate(0.5) == 0.0
        assert dist.evaluate(10.0) == 1.0

    def test_quantile_median(self):
        dist = ecdf([1.0, 2.0, 3.0])
        assert dist.median() == 2.0

    def test_fraction_above(self):
        dist = ecdf([10.0, 20.0, 30.0, 40.0])
        assert dist.fraction_above(25.0) == 0.5

    def test_nans_dropped(self):
        dist = ecdf([1.0, float("nan"), 3.0])
        assert dist.num_samples == 2

    def test_all_nan_rejected(self):
        with pytest.raises(AnalysisError):
            ecdf([float("nan")])

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            ecdf([])

    def test_quantile_out_of_range(self):
        with pytest.raises(AnalysisError):
            ecdf([1.0]).quantile(1.5)

    def test_vector_evaluate(self):
        dist = ecdf([1.0, 2.0])
        out = dist.evaluate(np.asarray([0.0, 1.5, 5.0]))
        assert out.tolist() == [0.0, 0.5, 1.0]


class TestCov:
    def test_known_value(self):
        assert coefficient_of_variation([1.0, 3.0]) == pytest.approx(0.5)

    def test_constant_series_zero(self):
        assert coefficient_of_variation([5.0, 5.0, 5.0]) == 0.0

    def test_zero_mean_is_nan(self):
        assert np.isnan(coefficient_of_variation([0.0, 0.0]))

    def test_empty_is_nan(self):
        assert np.isnan(coefficient_of_variation([]))

    def test_paper_percent_convention(self):
        # "CoV of 126%" == 1.26 in our units
        values = [1.0, 1.0, 10.0]
        assert coefficient_of_variation(values) > 1.0


class TestSpearman:
    def test_perfect_monotone(self):
        rho, p = spearman([1, 2, 3, 4], [10, 20, 30, 40])
        assert rho == pytest.approx(1.0)
        assert p < 0.05

    def test_perfect_inverse(self):
        rho, _ = spearman([1, 2, 3, 4], [4, 3, 2, 1])
        assert rho == pytest.approx(-1.0)

    def test_matches_scipy(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=80)
        y = x + rng.normal(scale=0.8, size=80)
        rho, p = spearman(x, y)
        expected = scipy_stats.spearmanr(x, y)
        assert rho == pytest.approx(expected.statistic, abs=1e-9)
        assert p == pytest.approx(expected.pvalue, rel=1e-6)

    def test_handles_ties_like_scipy(self):
        x = [1, 1, 2, 2, 3, 3, 4]
        y = [1, 2, 2, 3, 3, 4, 4]
        rho, _ = spearman(x, y)
        expected = scipy_stats.spearmanr(x, y)
        assert rho == pytest.approx(expected.statistic, abs=1e-9)

    def test_nan_pairs_dropped(self):
        rho, _ = spearman([1, 2, 3, float("nan")], [1, 2, 3, 100])
        assert rho == pytest.approx(1.0)

    def test_too_few_samples_rejected(self):
        with pytest.raises(AnalysisError):
            spearman([1, 2], [1, 2])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(AnalysisError):
            spearman([1, 2, 3], [1, 2])


class TestQuantilesAndGini:
    def test_quantiles_keys(self):
        q = quantiles([1.0, 2.0, 3.0, 4.0], probs=(0.5,))
        assert q == {0.5: 2.5}

    def test_quantiles_empty_rejected(self):
        with pytest.raises(AnalysisError):
            quantiles([])

    def test_gini_equal_distribution(self):
        assert gini([1.0, 1.0, 1.0, 1.0]) == pytest.approx(0.0, abs=1e-9)

    def test_gini_concentrated(self):
        assert gini([0.0, 0.0, 0.0, 100.0]) == pytest.approx(0.75)

    def test_gini_negative_rejected(self):
        with pytest.raises(AnalysisError):
            gini([-1.0, 1.0])

    def test_gini_empty_is_zero(self):
        assert gini([]) == 0.0


# ----------------------------------------------------------------------
# Properties
# ----------------------------------------------------------------------
@given(st.lists(finite, min_size=1, max_size=100))
@settings(max_examples=80, deadline=None)
def test_ecdf_is_valid_cdf(values):
    dist = ecdf(values)
    assert (np.diff(dist.values) >= 0).all()
    assert (np.diff(dist.probabilities) >= 0).all()
    assert dist.probabilities[-1] == pytest.approx(1.0)
    assert 0.0 <= dist.evaluate(float(np.median(values))) <= 1.0


@given(st.lists(st.floats(0.1, 1e6), min_size=2, max_size=50))
@settings(max_examples=80, deadline=None)
def test_cov_scale_invariant(values):
    base = coefficient_of_variation(values)
    scaled = coefficient_of_variation([v * 7.5 for v in values])
    if np.isnan(base):
        assert np.isnan(scaled)
    else:
        assert scaled == pytest.approx(base, rel=1e-6)


@given(st.lists(st.tuples(finite, finite), min_size=3, max_size=60))
@settings(max_examples=60, deadline=None)
def test_spearman_symmetric_and_bounded(pairs):
    x = [a for a, _ in pairs]
    y = [b for _, b in pairs]
    rho_xy, _ = spearman(x, y)
    rho_yx, _ = spearman(y, x)
    assert -1.0 - 1e-9 <= rho_xy <= 1.0 + 1e-9
    assert rho_xy == pytest.approx(rho_yx, abs=1e-9)


@given(st.lists(st.floats(0.0, 1e6), min_size=1, max_size=60))
@settings(max_examples=60, deadline=None)
def test_gini_bounded(values):
    g = gini(values)
    assert -1e-9 <= g <= 1.0
