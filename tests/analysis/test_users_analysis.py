"""Tests for per-user aggregation and Pareto statistics."""

import numpy as np
import pytest

from repro.analysis.users import pareto_stats, user_table
from repro.errors import AnalysisError
from repro.frame import Table


def jobs_for_users(spec):
    """spec: {user: [(runtime, sm), ...]}"""
    rows = []
    for user, jobs in spec.items():
        for runtime, sm in jobs:
            rows.append(
                {
                    "user": user,
                    "run_time_s": runtime,
                    "sm_mean": sm,
                    "mem_bw_mean": sm / 10.0,
                    "mem_size_mean": sm / 2.0,
                    "gpu_hours": runtime / 3600.0,
                }
            )
    return Table.from_rows(rows)


class TestUserTable:
    def test_one_row_per_user(self):
        users = user_table(jobs_for_users({"a": [(60, 10)], "b": [(120, 20), (240, 30)]}))
        assert users.num_rows == 2

    def test_averages(self):
        users = user_table(jobs_for_users({"a": [(60, 10), (180, 30)]}))
        row = users.row(0)
        assert row["avg_runtime"] == pytest.approx(120.0)
        assert row["avg_sm"] == pytest.approx(20.0)
        assert row["num_jobs"] == 2
        assert row["gpu_hours"] == pytest.approx(240.0 / 3600.0)

    def test_cov_columns(self):
        users = user_table(jobs_for_users({"a": [(60, 10), (180, 30)]}))
        row = users.row(0)
        assert row["cov_runtime"] == pytest.approx(0.5)
        assert row["cov_sm"] == pytest.approx(0.5)

    def test_single_job_user_zero_cov(self):
        users = user_table(jobs_for_users({"a": [(60, 10)]}))
        assert users.row(0)["cov_runtime"] == 0.0

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            user_table(Table.empty(["user"]))


class TestParetoStats:
    def test_known_distribution(self):
        users = user_table(
            jobs_for_users(
                {
                    "heavy": [(60, 1)] * 80,
                    **{f"light{i}": [(60, 1)] for i in range(19)},
                }
            )
        )
        stats = pareto_stats(users)
        assert stats.num_users == 20
        assert stats.top5pct_job_share == pytest.approx(80.0 / 99.0)
        assert stats.median_jobs_per_user == 1.0
        assert stats.gini_coefficient > 0.5

    def test_uniform_distribution(self):
        users = user_table(jobs_for_users({f"u{i}": [(60, 1)] for i in range(10)}))
        stats = pareto_stats(users)
        assert stats.gini_coefficient == pytest.approx(0.0, abs=1e-9)
        assert stats.top20pct_job_share == pytest.approx(0.2)

    def test_on_generated_data(self, gpu_jobs):
        stats = pareto_stats(user_table(gpu_jobs))
        # the paper's Pareto principle, with generous bands
        assert 0.25 <= stats.top5pct_job_share <= 0.65
        assert 0.6 <= stats.top20pct_job_share <= 0.95
        assert stats.top20pct_job_share > stats.top5pct_job_share


class TestGeneratedUserBehavior:
    def test_user_runtime_variability_high(self, gpu_jobs):
        users = user_table(gpu_jobs).filter(
            lambda t: np.asarray(t["num_jobs"], dtype=float) >= 3
        )
        covs = np.asarray(users["cov_runtime"], dtype=float)
        covs = covs[np.isfinite(covs)]
        assert np.median(covs) > 0.8  # paper: 1.55

    def test_user_sm_variability_high(self, gpu_jobs):
        users = user_table(gpu_jobs).filter(
            lambda t: np.asarray(t["num_jobs"], dtype=float) >= 3
        )
        covs = np.asarray(users["cov_sm"], dtype=float)
        covs = covs[np.isfinite(covs)]
        assert np.median(covs) > 0.6  # paper: 1.21
