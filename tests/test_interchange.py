"""Tests for the public-dataset interchange (round trips included)."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.figures.registry import run_figure
from repro.frame import Table, write_csv
from repro.interchange import (
    GpuSummarySchema,
    SlurmLogSchema,
    combine_logs,
    export_challenge_format,
    load_gpu_summary,
    load_slurm_log,
)


@pytest.fixture(scope="module")
def exported(small_dataset, tmp_path_factory):
    directory = tmp_path_factory.mktemp("challenge")
    paths = export_challenge_format(small_dataset, directory)
    return small_dataset, paths


class TestExport:
    def test_writes_both_files(self, exported):
        _, paths = exported
        assert paths["slurm"].exists()
        assert paths["gpu"].exists()

    def test_slurm_row_count_matches(self, exported):
        dataset, paths = exported
        loaded = load_slurm_log(paths["slurm"])
        assert loaded.num_rows == dataset.jobs.num_rows

    def test_gpu_row_count_matches(self, exported):
        dataset, paths = exported
        loaded = load_gpu_summary(paths["gpu"])
        assert loaded.num_rows == dataset.per_gpu.num_rows


class TestRoundTrip:
    def test_lifecycle_classes_preserved(self, exported):
        dataset, paths = exported
        loaded = load_slurm_log(paths["slurm"]).sort_by("job_id")
        original = dataset.jobs.sort_by("job_id")
        assert list(loaded["lifecycle_class"]) == list(original["lifecycle_class"])

    def test_times_preserved(self, exported):
        dataset, paths = exported
        loaded = load_slurm_log(paths["slurm"]).sort_by("job_id")
        original = dataset.jobs.sort_by("job_id")
        np.testing.assert_allclose(
            np.asarray(loaded["run_time_s"], dtype=float),
            np.asarray(original["run_time_s"], dtype=float),
            rtol=1e-9,
        )

    def test_metrics_preserved(self, exported):
        dataset, paths = exported
        loaded = load_gpu_summary(paths["gpu"]).sort_by("job_id", "gpu_index")
        original = dataset.per_gpu.sort_by("job_id", "gpu_index")
        np.testing.assert_allclose(
            np.asarray(loaded["sm_mean"], dtype=float),
            np.asarray(original["sm_mean"], dtype=float),
            rtol=1e-9,
        )

    def test_combined_matches_dataset_gpu_jobs(self, exported):
        dataset, paths = exported
        combined = combine_logs(
            load_slurm_log(paths["slurm"]), load_gpu_summary(paths["gpu"])
        )
        assert combined.num_rows == dataset.gpu_jobs.num_rows
        a = combined.sort_by("job_id")
        b = dataset.gpu_jobs.sort_by("job_id")
        np.testing.assert_allclose(
            np.asarray(a["sm_mean"], dtype=float),
            np.asarray(b["sm_mean"], dtype=float),
            rtol=1e-9,
        )

    def test_figures_run_on_reimported_data(self, exported):
        """The analysis pipeline accepts challenge-format data."""
        dataset, paths = exported
        combined = combine_logs(
            load_slurm_log(paths["slurm"]), load_gpu_summary(paths["gpu"])
        )
        stub = type(dataset)(
            jobs=load_slurm_log(paths["slurm"]),
            gpu_jobs=combined,
            per_gpu=dataset.per_gpu,
            timeseries=dataset.timeseries,
            records=dataset.records,
            spec=dataset.spec,
            config=dataset.config,
        )
        result = run_figure("fig15", stub)
        assert result.get("mature job share").measured > 0


class TestValidation:
    def test_missing_slurm_column_rejected(self, tmp_path):
        bad = Table.from_rows([{"id_job": 1}])
        path = write_csv(bad, tmp_path / "bad.csv")
        with pytest.raises(ReproError, match="missing column"):
            load_slurm_log(path)

    def test_unknown_state_rejected(self, tmp_path):
        row = {
            "id_job": 1, "id_user": "u", "time_submit": 0.0, "time_start": 1.0,
            "time_end": 2.0, "state": "EXPLODED", "exit_code": 0, "cpus_req": 1,
            "mem_req": 1.0, "gres_used": 1, "nodes_alloc": 1, "timelimit": 60,
        }
        path = write_csv(Table.from_rows([row]), tmp_path / "bad.csv")
        with pytest.raises(ReproError, match="unknown Slurm state"):
            load_slurm_log(path)

    def test_missing_metric_column_rejected(self, tmp_path):
        bad = Table.from_rows([{"id_job": 1, "gpu_index": 0}])
        path = write_csv(bad, tmp_path / "bad.csv")
        with pytest.raises(ReproError, match="missing column"):
            load_gpu_summary(path)

    def test_custom_schema(self, tmp_path):
        row = {
            "job": 7, "who": "alice", "sub": 0.0, "beg": 10.0, "fin": 100.0,
            "st": "COMPLETED", "rc": 0, "ncpu": 2, "mem": 8.0, "ngpu": 1,
            "nnodes": 1, "lim": 60,
        }
        path = write_csv(Table.from_rows([row]), tmp_path / "custom.csv")
        schema = SlurmLogSchema(
            job_id="job", user="who", time_submit="sub", time_start="beg",
            time_end="fin", state="st", exit_code="rc", cpus_req="ncpu",
            mem_req_gb="mem", gpus_alloc="ngpu", nodes_alloc="nnodes",
            time_limit_min="lim",
        )
        loaded = load_slurm_log(path, schema)
        assert loaded.row(0)["user"] == "alice"
        assert loaded.row(0)["run_time_s"] == 90.0
        assert loaded.row(0)["lifecycle_class"] == "mature"
