"""Cross-module property-based invariants (hypothesis).

These tie subsystems together: packing never loses jobs, queueing
formulas stay in bounds, the sharing simulator conserves work, and
activity models respect their envelopes for arbitrary parameters.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.queueing import erlang_c, mgc_mean_wait
from repro.opportunities.mig import VALID_PARTITIONS, pack_jobs
from repro.opportunities.sharing_sim import GpuSharingSimulator, SharingConfig, SharingJob

fractions = st.floats(0.0, 1.0, allow_nan=False)


@given(
    st.lists(fractions, min_size=1, max_size=60),
    st.sampled_from(VALID_PARTITIONS),
)
@settings(max_examples=80, deadline=None)
def test_mig_packing_conserves_jobs(requirements, partition):
    reqs = np.asarray(requirements)
    gpus, spilled, headroom = pack_jobs(reqs, partition)
    largest = max({"1g": 1/7, "2g": 2/7, "3g": 3/7, "4g": 4/7, "7g": 1.0}[p] for p in partition)
    placeable = int((reqs <= largest + 1e-9).sum())
    assert spilled == len(reqs) - placeable
    assert 0 <= gpus <= len(reqs)
    assert headroom >= 0.0


@given(
    st.integers(1, 64),
    st.floats(0.0, 100.0, allow_nan=False),
)
@settings(max_examples=100, deadline=None)
def test_erlang_c_is_probability(servers, offered):
    value = erlang_c(servers, offered)
    assert 0.0 <= value <= 1.0


@given(
    st.floats(0.001, 1.0),
    st.floats(0.1, 1000.0),
    st.floats(0.0, 20.0),
    st.integers(1, 32),
)
@settings(max_examples=80, deadline=None)
def test_mgc_wait_nonnegative(arrival, service, scv, servers):
    wait = mgc_mean_wait(arrival, service, scv, servers)
    assert wait >= 0.0 or np.isinf(wait)


@st.composite
def sharing_jobs(draw):
    n = draw(st.integers(1, 40))
    jobs = []
    t = 0.0
    for _ in range(n):
        t += draw(st.floats(0.0, 50.0))
        jobs.append(
            SharingJob(
                arrival_s=t,
                duration_s=draw(st.floats(0.1, 500.0)),
                demand=draw(st.floats(0.0, 100.0)),
            )
        )
    return jobs


@given(sharing_jobs(), st.integers(1, 8), st.booleans())
@settings(max_examples=60, deadline=None)
def test_sharing_sim_serves_everyone(jobs, num_gpus, sharing):
    outcome = GpuSharingSimulator(SharingConfig()).run(jobs, num_gpus, sharing)
    assert outcome.mean_wait_s >= 0.0
    assert outcome.p95_wait_s >= outcome.median_wait_s >= 0.0
    assert outcome.max_queue_length <= len(jobs)


@given(sharing_jobs(), st.integers(1, 6))
@settings(max_examples=40, deadline=None)
def test_sharing_never_increases_mean_wait(jobs, num_gpus):
    sim = GpuSharingSimulator(SharingConfig())
    exclusive = sim.run(jobs, num_gpus, sharing=False)
    shared = sim.run(jobs, num_gpus, sharing=True)
    assert shared.mean_wait_s <= exclusive.mean_wait_s + 1e-6


@given(
    st.floats(1.0, 5000.0),
    st.floats(0.0, 1.0),
    st.integers(0, 2**31 - 1),
)
@settings(max_examples=50, deadline=None)
def test_activity_model_envelope(duration, fraction, seed):
    """Any generated activity model stays inside [0, 100] on every
    metric and its analytic max dominates dense samples."""
    from repro.workload.activity import (
        JobActivityModel,
        PhaseSchedule,
        PowerModel,
        build_metric_process,
    )

    rng = np.random.default_rng(seed)
    schedule = PhaseSchedule.generate(rng, duration, fraction, 60.0, 1.69, 1.26)
    processes = {
        name: build_metric_process(
            rng,
            level=float(rng.uniform(0, 100)),
            noise_cov=float(rng.uniform(0, 0.5)),
            burst_level=float(rng.uniform(0, 100)),
            schedule=schedule,
            num_bursts=int(rng.integers(0, 4)),
        )
        for name in ("sm", "mem_bw", "mem_size", "pcie_tx", "pcie_rx")
    }
    model = JobActivityModel(
        1, 1, duration, schedule, processes, np.ones(1),
        PowerModel(25.0, 1.25, 0.4, 0.03, 0.2),
    )
    times = np.linspace(0.0, duration, 300)
    metrics = model.metrics_at(times, 0)
    peaks = model.analytic_max(0)
    for name in ("sm", "mem_bw", "mem_size", "pcie_tx", "pcie_rx"):
        assert metrics[name].min() >= 0.0
        assert metrics[name].max() <= 100.0
        assert metrics[name].max() <= peaks[name] + 1e-6
    assert metrics["power_w"].max() <= 300.0 + 1e-6
