"""Unit tests for the mergeable quantile sketch and streaming moments.

The exactness contract under test (see docs/performance.md): while a
sketch has never compacted, every query is bit-for-bit the exact
:class:`repro.analysis.stats.Ecdf` answer; after compaction, every
rank query is within the sketch's own ``rank_error_bound()``.
"""

import math

import numpy as np
import pytest

from repro.analysis.stats import ecdf
from repro.errors import FrameError
from repro.frame import QuantileSketch, StreamingMoments


class TestQuantileSketchExactRegime:
    def test_exact_quantiles_below_capacity(self):
        rng = np.random.default_rng(7)
        values = rng.normal(size=300)
        sketch = QuantileSketch(k=512).update(values)
        assert sketch.rank_error_bound() == 0
        exact = ecdf(values)
        for p in (0.0, 0.1, 0.25, 0.5, 0.9, 1.0):
            assert sketch.quantile(p) == exact.quantile(p)

    def test_exact_evaluate_below_capacity(self):
        values = np.array([1.0, 2.0, 2.0, 5.0])
        sketch = QuantileSketch(k=8).update(values)
        exact = ecdf(values)
        for x in (0.0, 1.0, 2.0, 3.0, 5.0, 9.0):
            assert sketch.evaluate(x) == exact.evaluate(x)
        np.testing.assert_array_equal(sketch.values, exact.values)
        np.testing.assert_array_equal(sketch.probabilities, exact.probabilities)

    def test_non_finite_dropped_like_ecdf(self):
        sketch = QuantileSketch(k=8).update([1.0, np.nan, np.inf, -np.inf, 3.0])
        assert sketch.num_samples == 2
        assert sketch.minimum() == 1.0
        assert sketch.maximum() == 3.0


class TestQuantileSketchCompactedRegime:
    def test_rank_error_bound_holds(self):
        rng = np.random.default_rng(11)
        values = rng.lognormal(size=20000)
        sketch = QuantileSketch(k=64).update(values)
        bound = sketch.rank_error_bound()
        assert 0 < bound < sketch.num_samples
        ordered = np.sort(values)
        for p in (0.01, 0.25, 0.5, 0.75, 0.99):
            estimate = sketch.quantile(p)
            rank = np.searchsorted(ordered, estimate, side="right")
            assert abs(rank - p * len(values)) <= bound + 1

    def test_deterministic(self):
        values = np.arange(5000, dtype=float) % 997
        a = QuantileSketch(k=32).update(values)
        b = QuantileSketch(k=32).update(values)
        np.testing.assert_array_equal(a.values, b.values)
        assert a.rank_error_bound() == b.rank_error_bound()

    def test_total_weight_conserved(self):
        rng = np.random.default_rng(3)
        sketch = QuantileSketch(k=16)
        for _ in range(13):
            sketch.update(rng.normal(size=137))
        _, cumw = sketch._materialized()
        assert cumw[-1] == sketch.num_samples == 13 * 137

    def test_min_max_survive_compaction(self):
        rng = np.random.default_rng(5)
        values = rng.normal(size=10000)
        sketch = QuantileSketch(k=16).update(values)
        assert sketch.minimum() == values.min()
        assert sketch.maximum() == values.max()


class TestQuantileSketchMerge:
    def test_merge_matches_single_stream_weight(self):
        rng = np.random.default_rng(13)
        chunks = [rng.normal(size=777) for _ in range(9)]
        merged = QuantileSketch(k=64)
        for chunk in chunks:
            merged.merge(QuantileSketch(k=64).update(chunk))
        assert merged.num_samples == 9 * 777
        ordered = np.sort(np.concatenate(chunks))
        bound = merged.rank_error_bound()
        for p in (0.1, 0.5, 0.9):
            rank = np.searchsorted(ordered, merged.quantile(p), side="right")
            assert abs(rank - p * ordered.size) <= bound + 1

    def test_merge_empty_is_identity(self):
        sketch = QuantileSketch(k=8).update([1.0, 2.0])
        before = sketch.values.copy()
        sketch.merge(QuantileSketch(k=8))
        np.testing.assert_array_equal(sketch.values, before)


class TestQuantileSketchErrors:
    def test_empty_queries_raise(self):
        sketch = QuantileSketch()
        with pytest.raises(FrameError, match="empty sketch"):
            sketch.quantile(0.5)
        with pytest.raises(FrameError, match="empty sketch"):
            sketch.evaluate(1.0)

    def test_bad_probability(self):
        sketch = QuantileSketch(k=8).update([1.0])
        with pytest.raises(FrameError, match="outside"):
            sketch.quantile(1.5)

    def test_tiny_capacity_rejected(self):
        with pytest.raises(FrameError, match=">= 8"):
            QuantileSketch(k=2)


class TestStreamingMoments:
    def test_matches_numpy_in_chunks(self):
        rng = np.random.default_rng(17)
        values = rng.normal(loc=3.0, scale=2.0, size=10001)
        moments = StreamingMoments()
        for start in range(0, values.size, 97):
            moments.update(values[start : start + 97])
        assert moments.count == values.size
        assert moments.minimum == values.min()
        assert moments.maximum == values.max()
        assert moments.mean() == pytest.approx(values.mean(), rel=1e-12)
        assert moments.std() == pytest.approx(values.std(ddof=0), rel=1e-9)

    def test_merge_equals_sequential(self):
        a = StreamingMoments().update([1.0, 2.0, 3.0])
        b = StreamingMoments().update([4.0, 5.0])
        both = StreamingMoments().update([1.0, 2.0, 3.0]).update([4.0, 5.0])
        a.merge(b)
        assert (a.count, a.total, a.total_sq) == (both.count, both.total, both.total_sq)
        assert (a.minimum, a.maximum) == (both.minimum, both.maximum)

    def test_nan_poisons_stats_not_count(self):
        moments = StreamingMoments().update([1.0, float("nan"), 3.0])
        assert moments.count == 3
        assert math.isnan(moments.mean())
        assert math.isnan(moments.std())

    def test_empty_raises(self):
        with pytest.raises(FrameError, match="no samples"):
            StreamingMoments().mean()
