"""The simulated ``nvidia-smi`` sampler.

Real nvidia-smi polls device counters; ours polls an
:class:`ActivityModel` — the ground-truth process describing what the
job does on each of its GPUs.  Two sampling modes mirror the paper:

* :meth:`NvidiaSmiSampler.sample_series` — dense sampling at a fixed
  interval (100 ms in production), used for the time-series subset;
* :meth:`NvidiaSmiSampler.summarize` — min/mean/max summaries computed
  from stratified samples plus the model's analytic extremes, used for
  the full 47k-job summary dataset where dense sampling would be too
  expensive (the paper reports exactly min/mean/max for this reason).
"""

from __future__ import annotations

from typing import Protocol

import numpy as np

from repro.errors import MonitoringError
from repro.monitor.timeseries import METRIC_NAMES, GpuTimeSeries


class ActivityModel(Protocol):
    """Ground truth for one job's GPU activity.

    Implementations live in :mod:`repro.workload.activity`.
    """

    @property
    def num_gpus(self) -> int:
        """Number of GPUs the job holds."""

    def metrics_at(self, times_s: np.ndarray, gpu_index: int) -> dict[str, np.ndarray]:
        """Instantaneous metric values at the given offsets from start."""

    def analytic_max(self, gpu_index: int) -> dict[str, float]:
        """Per-metric supremum over the whole run (captures bursts that
        stratified sampling could miss)."""


class NvidiaSmiSampler:
    """Samples an activity model the way nvidia-smi samples a GPU."""

    def __init__(self, interval_s: float = 0.1, summary_samples: int = 512) -> None:
        if interval_s <= 0:
            raise MonitoringError(f"sampling interval must be positive, got {interval_s}")
        if summary_samples < 2:
            raise MonitoringError("need at least 2 summary samples")
        self.interval_s = interval_s
        self.summary_samples = summary_samples

    # ------------------------------------------------------------------
    def sample_series(
        self,
        job_id: int,
        model: ActivityModel,
        duration_s: float,
        gpu_index: int,
        max_samples: int | None = None,
    ) -> GpuTimeSeries:
        """Densely sample one GPU for the whole run.

        ``max_samples`` bounds memory for very long jobs by widening
        the effective interval (the paper instead bounded data volume
        by collecting the dense series for only 2,149 jobs).
        """
        if duration_s < 0:
            raise MonitoringError(f"negative duration {duration_s}")
        count = int(duration_s / self.interval_s) + 1
        if max_samples is not None and count > max_samples:
            times = np.linspace(0.0, duration_s, max_samples)
        else:
            times = np.arange(count) * self.interval_s
        metrics = model.metrics_at(times, gpu_index)
        self._check_metrics(job_id, metrics)
        return GpuTimeSeries(job_id=job_id, gpu_index=gpu_index, times_s=times, metrics=metrics)

    def summarize(
        self,
        model: ActivityModel,
        duration_s: float,
        gpu_index: int,
        rng: np.random.Generator,
    ) -> dict[str, float]:
        """min/mean/max per metric from stratified sampling.

        Strata are equal-width time bins with one uniform sample each,
        giving an unbiased mean estimate; maxima are taken from the
        model's analytic extremes so short 100 %-utilization bursts are
        never missed (they define the bottleneck analysis of Fig. 7/8).
        """
        if duration_s < 0:
            raise MonitoringError(f"negative duration {duration_s}")
        n = min(self.summary_samples, max(int(duration_s / self.interval_s) + 1, 2))
        edges = np.linspace(0.0, duration_s, n + 1)
        times = edges[:-1] + rng.random(n) * np.diff(edges)
        metrics = model.metrics_at(times, gpu_index)
        self._check_metrics(None, metrics)
        analytic = model.analytic_max(gpu_index)
        out: dict[str, float] = {}
        for name in METRIC_NAMES:
            values = metrics[name]
            out[f"{name}_min"] = float(values.min())
            out[f"{name}_mean"] = float(values.mean())
            out[f"{name}_max"] = float(max(values.max(), analytic.get(name, -np.inf)))
        return out

    def summarize_job(
        self,
        model: ActivityModel,
        duration_s: float,
        rng: np.random.Generator,
    ) -> dict[str, np.ndarray]:
        """Summarize every GPU of a job at once.

        Returns ``{"<metric>_<stat>": array}`` with one element per GPU
        — column fragments ready for a
        :class:`~repro.frame.TableBuilder`.  The stratified offsets for
        all GPUs come from a single C-ordered ``rng.random((g, n))``
        draw, which consumes the generator stream exactly like ``g``
        consecutive :meth:`summarize` calls, so batched and per-GPU
        summarization produce identical datasets.
        """
        if duration_s < 0:
            raise MonitoringError(f"negative duration {duration_s}")
        num_gpus = model.num_gpus
        n = min(self.summary_samples, max(int(duration_s / self.interval_s) + 1, 2))
        edges = np.linspace(0.0, duration_s, n + 1)
        widths = np.diff(edges)
        offsets = rng.random((num_gpus, n))
        out = {
            f"{name}_{stat}": np.empty(num_gpus)
            for name in METRIC_NAMES
            for stat in ("min", "mean", "max")
        }
        for gpu_index in range(num_gpus):
            times = edges[:-1] + offsets[gpu_index] * widths
            metrics = model.metrics_at(times, gpu_index)
            self._check_metrics(None, metrics)
            analytic = model.analytic_max(gpu_index)
            for name in METRIC_NAMES:
                values = metrics[name]
                out[f"{name}_min"][gpu_index] = values.min()
                out[f"{name}_mean"][gpu_index] = values.mean()
                out[f"{name}_max"][gpu_index] = max(
                    values.max(), analytic.get(name, -np.inf)
                )
        return out

    @staticmethod
    def _check_metrics(job_id: int | None, metrics: dict[str, np.ndarray]) -> None:
        missing = [m for m in METRIC_NAMES if m not in metrics]
        if missing:
            label = f"job {job_id}" if job_id is not None else "model"
            raise MonitoringError(f"{label} produced no values for {missing}")
