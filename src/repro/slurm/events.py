"""A minimal discrete-event loop.

Events carry a timestamp, a kind, and a payload.  Ties are broken by a
monotonically increasing sequence number so the simulation is fully
deterministic for a given input (same-timestamp events fire in
insertion order).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any

from repro.errors import SchedulerError


@dataclass(order=True)
class Event:
    """One scheduled occurrence; ordering is (time, sequence)."""

    time_s: float
    sequence: int
    kind: str = field(compare=False)
    payload: Any = field(compare=False, default=None)


class EventLoop:
    """Priority-queue event loop with deterministic tie-breaking."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()
        self._now = 0.0
        self._processed = 0

    @property
    def now(self) -> float:
        """Current simulation time (time of the last popped event)."""
        return self._now

    @property
    def pending(self) -> int:
        return len(self._heap)

    @property
    def processed(self) -> int:
        return self._processed

    def schedule(self, time_s: float, kind: str, payload: Any = None) -> Event:
        """Enqueue an event; scheduling into the past is an error."""
        if time_s < self._now - 1e-9:
            raise SchedulerError(
                f"cannot schedule {kind!r} at t={time_s} before now={self._now}"
            )
        event = Event(time_s, next(self._counter), kind, payload)
        heapq.heappush(self._heap, event)
        return event

    def peek_time(self) -> float | None:
        """Time of the next event without popping (None when empty).

        The partitioned runner uses this to advance an island only up
        to an interchange epoch boundary (see
        :mod:`repro.slurm.interchange`).
        """
        if not self._heap:
            return None
        return self._heap[0].time_s

    def pop(self) -> Event:
        """Remove and return the earliest event, advancing the clock."""
        if not self._heap:
            raise SchedulerError("event loop is empty")
        event = heapq.heappop(self._heap)
        self._now = event.time_s
        self._processed += 1
        return event

    def __bool__(self) -> bool:
        return bool(self._heap)
