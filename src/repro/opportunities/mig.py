"""Multi-Instance GPU (MIG) partitioning what-if (paper Sec. VIII).

The paper calls MIG "a useful step toward mitigating the
low-utilization challenge via co-location" but notes that
repartitioning requires idle GPUs, takes seconds, and needs manual
trials.  This model quantifies the upside of *static* partitions on
the reproduced workload:

* a GPU splits into slices following an A100-style profile set (1g =
  1/7 of the device ... 7g = the whole device);
* a job needs the smallest slice covering its utilization footprint
  (peak-based sizing by default — bursts must fit the slice);
* jobs that fit no slice of the partition spill to dedicated whole
  GPUs;
* first-fit-decreasing packing yields the devices needed to run a job
  population concurrently, hence the capacity multiplier over
  exclusive per-job GPUs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import AnalysisError
from repro.frame import Table

#: Compute fraction per profile (A100 MIG geometry).
MIG_PROFILES = {
    "1g": 1.0 / 7.0,
    "2g": 2.0 / 7.0,
    "3g": 3.0 / 7.0,
    "4g": 4.0 / 7.0,
    "7g": 1.0,
}

#: Valid slice mixes for one GPU (subset of the A100 partition table).
VALID_PARTITIONS = (
    ("7g",),
    ("4g", "3g"),
    ("3g", "3g", "1g"),
    ("3g", "2g", "2g"),
    ("4g", "2g", "1g"),
    ("2g", "2g", "2g", "1g"),
    ("3g", "2g", "1g", "1g"),
    ("1g",) * 7,
)


def _check_partition(partition: tuple[str, ...]) -> None:
    if not partition:
        raise AnalysisError("empty MIG partition")
    unknown = [p for p in partition if p not in MIG_PROFILES]
    if unknown:
        raise AnalysisError(f"unknown MIG profiles: {unknown}")
    total = sum(MIG_PROFILES[p] for p in partition)
    if total > 1.0 + 1e-9:
        raise AnalysisError(f"partition {partition} exceeds one device ({total:.2f})")


def required_fraction(sm: np.ndarray, mem_size: np.ndarray) -> np.ndarray:
    """Device fraction each job needs (compute and memory must fit)."""
    return np.clip(np.maximum(sm, mem_size) / 100.0, 0.0, 1.0)


@dataclass(frozen=True)
class MigStudy:
    """Outcome of one static partition on a job population."""

    partition: tuple[str, ...]
    num_jobs: int
    fraction_fitting: float
    spilled_jobs: int
    gpus_needed: int
    #: exclusive-GPU baseline / MIG devices needed
    capacity_multiplier: float
    mean_slice_headroom: float


def pack_jobs(
    requirements: np.ndarray, partition: tuple[str, ...]
) -> tuple[int, int, float]:
    """First-fit-decreasing packing of jobs into partitioned GPUs.

    Returns ``(gpus_needed, spilled_jobs, mean_headroom)`` where
    headroom is the unused fraction of each used slice.
    """
    _check_partition(partition)
    slice_sizes = sorted((MIG_PROFILES[p] for p in partition), reverse=True)
    largest = slice_sizes[0]

    spilled = int(np.sum(requirements > largest + 1e-9))
    placeable = np.sort(requirements[requirements <= largest + 1e-9])[::-1]

    open_gpus: list[list[float]] = []  # free slice sizes per GPU
    headrooms: list[float] = []
    for requirement in placeable:
        placed = False
        for slices in open_gpus:
            # smallest free slice that fits
            candidates = [s for s in slices if s + 1e-9 >= requirement]
            if candidates:
                chosen = min(candidates)
                slices.remove(chosen)
                headrooms.append(chosen - requirement)
                placed = True
                break
        if not placed:
            slices = list(slice_sizes)
            chosen = min(s for s in slices if s + 1e-9 >= requirement)
            slices.remove(chosen)
            open_gpus.append(slices)
            headrooms.append(chosen - requirement)
    gpus_needed = len(open_gpus) + spilled
    mean_headroom = float(np.mean(headrooms)) if headrooms else 0.0
    return gpus_needed, spilled, mean_headroom


def mig_study(
    gpu_jobs: Table,
    partition: tuple[str, ...],
    sizing: str = "peak",
) -> MigStudy:
    """Evaluate one static partition on the job population.

    ``sizing="peak"`` sizes each job by its maximum utilization
    (bursts never throttle); ``"mean"`` sizes by the average
    (optimistic — bursts queue inside the slice).
    """
    if gpu_jobs.num_rows == 0:
        raise AnalysisError("no jobs")
    if sizing not in ("peak", "mean"):
        raise AnalysisError(f"sizing must be 'peak' or 'mean', got {sizing!r}")
    suffix = "max" if sizing == "peak" else "mean"
    sm = np.asarray(gpu_jobs[f"sm_{suffix}"], dtype=float)
    mem = np.asarray(gpu_jobs[f"mem_size_{suffix}"], dtype=float)
    requirements = required_fraction(sm, mem)

    gpus_needed, spilled, headroom = pack_jobs(requirements, partition)
    largest = max(MIG_PROFILES[p] for p in partition)
    return MigStudy(
        partition=partition,
        num_jobs=gpu_jobs.num_rows,
        fraction_fitting=float(np.mean(requirements <= largest + 1e-9)),
        spilled_jobs=spilled,
        gpus_needed=gpus_needed,
        capacity_multiplier=gpu_jobs.num_rows / max(gpus_needed, 1),
        mean_slice_headroom=headroom,
    )


def partition_sweep(gpu_jobs: Table, sizing: str = "peak") -> Table:
    """Evaluate every valid partition; one row each."""
    rows = []
    for partition in VALID_PARTITIONS:
        study = mig_study(gpu_jobs, partition, sizing)
        rows.append(
            {
                "partition": "+".join(partition),
                "capacity_multiplier": study.capacity_multiplier,
                "fraction_fitting": study.fraction_fitting,
                "gpus_needed": study.gpus_needed,
                "mean_slice_headroom": study.mean_slice_headroom,
            }
        )
    return Table.from_rows(rows)


def best_partition(gpu_jobs: Table, sizing: str = "peak") -> MigStudy:
    """The partition with the highest capacity multiplier."""
    best: MigStudy | None = None
    for partition in VALID_PARTITIONS:
        study = mig_study(gpu_jobs, partition, sizing)
        if best is None or study.capacity_multiplier > best.capacity_multiplier:
            best = study
    assert best is not None
    return best


def repartition_overhead_fraction(
    reconfigure_s: float,
    jobs_per_gpu_per_day: float,
    repartition_every_n_jobs: float = 10.0,
) -> float:
    """Fraction of GPU time lost to MIG reconfiguration.

    The paper complains that "resetting MIG configurations require
    GPUs to be idle and takes [up to a] few seconds with user
    intervention"; this converts that cost into a utilization tax for
    a given churn rate.
    """
    if reconfigure_s < 0 or jobs_per_gpu_per_day < 0 or repartition_every_n_jobs <= 0:
        raise AnalysisError("overhead parameters must be non-negative (period positive)")
    reconfigs_per_day = jobs_per_gpu_per_day / repartition_every_n_jobs
    return min(reconfigs_per_day * reconfigure_s / 86400.0, 1.0)
