"""A small columnar table library built on numpy.

The paper's analysis pipeline was written against pandas (accelerated
with Modin).  pandas is not available in this environment, so
:mod:`repro.frame` provides the subset of columnar operations the
characterization actually needs: typed columns, boolean filtering,
sorting, group-by with aggregation, joins, and CSV/JSONL persistence.

The central type is :class:`Table`; :class:`GroupBy` is returned by
:meth:`Table.group_by`.

Example
-------
>>> from repro.frame import Table
>>> t = Table({"user": ["a", "b", "a"], "runtime_s": [60.0, 120.0, 30.0]})
>>> t.group_by("user").mean("runtime_s").sort_by("user").column("runtime_s_mean")
array([ 45., 120.])
"""

from repro.frame.builder import TableBuilder
from repro.frame.column import as_column, column_dtype, is_string_column
from repro.frame.factorize import Factorization, factorize_columns
from repro.frame.groupby import GroupBy
from repro.frame.io import read_csv, read_jsonl, write_csv, write_jsonl
from repro.frame.table import Table, concat_tables

__all__ = [
    "Table",
    "TableBuilder",
    "GroupBy",
    "Factorization",
    "factorize_columns",
    "concat_tables",
    "as_column",
    "column_dtype",
    "is_string_column",
    "read_csv",
    "read_jsonl",
    "write_csv",
    "write_jsonl",
]
