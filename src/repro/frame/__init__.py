"""A small columnar table library built on numpy.

The paper's analysis pipeline was written against pandas (accelerated
with Modin).  pandas is not available in this environment, so
:mod:`repro.frame` provides the subset of columnar operations the
characterization actually needs: typed columns, boolean filtering,
sorting, group-by with aggregation, joins, CSV/JSONL/NPZ persistence —
and, for inputs larger than memory, *chunked* execution behind the
same verbs (:class:`ChunkedTable`, :class:`QuantileSketch`; see
``docs/frame.md``).

This package is the single public surface: import every name from
``repro.frame`` itself.  The submodules (``repro.frame.table``,
``repro.frame.io``, ...) are implementation detail; touching them
directly is deprecated and warns.  The one documented exception is
:mod:`repro.frame.reference` — the intentionally-naive oracle the
property tests and benchmarks compare against, which is not part of
the API and never will be.

Example
-------
>>> from repro.frame import Table
>>> t = Table({"user": ["a", "b", "a"], "runtime_s": [60.0, 120.0, 30.0]})
>>> t.group_by("user").mean("runtime_s").sort_by("user").column("runtime_s_mean")
array([ 45., 120.])

Streaming the same aggregate chunk-by-chunk:

>>> t.to_chunked(chunk_rows=2).group_by("user").mean("runtime_s").sort_by(
...     "user").column("runtime_s_mean")
array([ 45., 120.])
"""

from repro.frame.builder import TableBuilder
from repro.frame.chunked import (
    DEFAULT_CHUNK_BYTES,
    DEFAULT_CHUNK_ROWS,
    ChunkedTable,
    StreamingGroupBy,
    adaptive_chunk_rows,
    concat_chunked,
    merge_sorted_chunked,
)
from repro.frame.codec import LOSSLESS, QUANT_STEP, SpillCodec
from repro.frame.column import as_column, column_dtype, is_string_column
from repro.frame.factorize import Factorization, factorize_columns
from repro.frame.groupby import (
    EXACT_STREAMING_REDUCERS,
    STREAMABLE_REDUCERS,
    GroupBy,
    StreamingAggregateState,
)
from repro.frame.io import (
    read_csv,
    read_jsonl,
    read_table_npz,
    scan_csv,
    scan_jsonl,
    table_raw_bytes,
    write_csv,
    write_jsonl,
    write_table_npz,
)
from repro.frame.sketch import DEFAULT_SKETCH_K, QuantileSketch, StreamingMoments
from repro.frame.table import Table, concat_tables

__all__ = [
    "Table",
    "TableBuilder",
    "ChunkedTable",
    "StreamingGroupBy",
    "StreamingAggregateState",
    "QuantileSketch",
    "StreamingMoments",
    "GroupBy",
    "Factorization",
    "factorize_columns",
    "concat_tables",
    "concat_chunked",
    "merge_sorted_chunked",
    "as_column",
    "column_dtype",
    "is_string_column",
    "read_csv",
    "read_jsonl",
    "write_csv",
    "write_jsonl",
    "read_table_npz",
    "write_table_npz",
    "table_raw_bytes",
    "scan_csv",
    "scan_jsonl",
    "SpillCodec",
    "LOSSLESS",
    "QUANT_STEP",
    "adaptive_chunk_rows",
    "DEFAULT_CHUNK_BYTES",
    "DEFAULT_CHUNK_ROWS",
    "DEFAULT_SKETCH_K",
    "STREAMABLE_REDUCERS",
    "EXACT_STREAMING_REDUCERS",
]

#: Submodules kept importable for compatibility but deprecated as
#: import targets.  The eager imports above bound each one as a package
#: attribute; removing those bindings routes plain attribute access
#: (``repro.frame.io``) through :func:`__getattr__` below, which warns.
#: ``from repro.frame.<sub> import X`` bypasses ``__getattr__`` by
#: design (the import system reads ``sys.modules`` directly) — the
#: in-repo importers were migrated instead.
_DEPRECATED_SUBMODULES = (
    "builder",
    "chunked",
    "codec",
    "column",
    "factorize",
    "groupby",
    "io",
    "sketch",
    "table",
    "reference",
)

for _name in _DEPRECATED_SUBMODULES:
    globals().pop(_name, None)
del _name


def __getattr__(name: str):
    if name in _DEPRECATED_SUBMODULES:
        import importlib
        import warnings

        warnings.warn(
            f"importing repro.frame.{name} directly is deprecated; "
            "repro.frame is the public surface (repro.frame.reference stays "
            "available as the test oracle only)",
            DeprecationWarning,
            stacklevel=2,
        )
        return importlib.import_module(f"repro.frame.{name}")
    raise AttributeError(f"module 'repro.frame' has no attribute {name!r}")
