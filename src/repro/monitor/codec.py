"""Compact on-disk encoding for GPU time series.

The paper's operators worried about telemetry volume (42 GB for 2,149
jobs) and file-system load.  nvidia-smi output is highly compressible:
utilization percentages are small integers that dwell on a level for
many samples.  This codec quantises each metric to 0.5 % steps,
delta-encodes, and run-length-encodes the (mostly zero) deltas before
handing the arrays to numpy's compressed container.

The encoding is lossy only through quantisation (max error 0.25 %,
below nvidia-smi's own integer resolution for utilization metrics;
power is quantised to 0.5 W).
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.errors import MonitoringError
from repro.frame.codec import QUANT_STEP, rle_decode as _rle_decode, rle_encode as _rle_encode
from repro.monitor.timeseries import METRIC_NAMES, GpuTimeSeries, TimeSeriesStore

__all__ = [
    "QUANT_STEP",
    "encode_series",
    "decode_series",
    "save_store",
    "load_store",
    "compression_ratio",
]

_FORMAT_VERSION = 1


def encode_series(series: GpuTimeSeries) -> dict[str, np.ndarray]:
    """Encode one series into named integer arrays (npz-ready)."""
    payload: dict[str, np.ndarray] = {
        "format_version": np.asarray([_FORMAT_VERSION]),
        "job_id": np.asarray([series.job_id]),
        "gpu_index": np.asarray([series.gpu_index]),
        "num_samples": np.asarray([series.num_samples]),
    }
    if series.num_samples:
        payload["t0"] = np.asarray([series.times_s[0]])
        # sampling steps are near-constant: store as quantised deltas
        steps = np.diff(series.times_s)
        payload["steps_us"] = np.round(steps * 1e6).astype(np.int64)
    else:
        payload["t0"] = np.asarray([0.0])
        payload["steps_us"] = np.empty(0, dtype=np.int64)
    for name in METRIC_NAMES:
        quantised = np.round(series.metrics[name] / QUANT_STEP).astype(np.int32)
        # first delta carries the initial level so cumsum reconstructs
        deltas = np.diff(quantised, prepend=np.int32(0)) if quantised.size else quantised
        run_values, run_lengths = _rle_encode(deltas)
        payload[f"{name}_values"] = run_values
        payload[f"{name}_lengths"] = run_lengths
    return payload


def decode_series(payload: dict[str, np.ndarray]) -> GpuTimeSeries:
    """Invert :func:`encode_series`."""
    version = int(payload["format_version"][0])
    if version != _FORMAT_VERSION:
        raise MonitoringError(f"unsupported series format version {version}")
    n = int(payload["num_samples"][0])
    if n:
        steps = payload["steps_us"].astype(float) / 1e6
        times = float(payload["t0"][0]) + np.concatenate(([0.0], np.cumsum(steps)))
    else:
        times = np.empty(0)
    metrics = {}
    for name in METRIC_NAMES:
        run_values = payload[f"{name}_values"]
        run_lengths = payload[f"{name}_lengths"]
        if run_values.shape != run_lengths.shape:
            raise MonitoringError(f"metric {name!r}: corrupt run-length payload")
        deltas = _rle_decode(run_values, run_lengths)
        if deltas.size != n:
            raise MonitoringError(
                f"metric {name!r}: decoded {deltas.size} samples, expected {n}"
            )
        metrics[name] = np.cumsum(deltas).astype(float) * QUANT_STEP
    return GpuTimeSeries(
        job_id=int(payload["job_id"][0]),
        gpu_index=int(payload["gpu_index"][0]),
        times_s=times,
        metrics=metrics,
    )


def save_store(store: TimeSeriesStore, path: str | Path) -> Path:
    """Write a whole store to one compressed ``.npz`` file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    bundle: dict[str, np.ndarray] = {}
    keys = []
    for series in store:
        prefix = f"s{series.job_id}_{series.gpu_index}"
        keys.append(prefix)
        for name, array in encode_series(series).items():
            bundle[f"{prefix}/{name}"] = array
    bundle["__keys__"] = np.asarray(keys)
    np.savez_compressed(path, **bundle)
    return path


def load_store(path: str | Path) -> TimeSeriesStore:
    """Read a store written by :func:`save_store`.

    Raises :class:`MonitoringError` for anything unreadable — a
    truncated or overwritten file, a foreign zip, missing members —
    so callers (notably the pipeline artifact cache) can treat every
    corruption uniformly instead of leaking zipfile/numpy internals.
    """
    path = Path(path)
    try:
        with np.load(path, allow_pickle=False) as data:
            keys = [str(k) for k in data["__keys__"]]
            store = TimeSeriesStore()
            for prefix in keys:
                payload = {
                    name[len(prefix) + 1 :]: data[name]
                    for name in data.files
                    if name.startswith(prefix + "/")
                }
                store.add(decode_series(payload))
    except MonitoringError:
        raise
    except Exception as exc:  # BadZipFile, KeyError, OSError, ValueError, ...
        raise MonitoringError(f"unreadable time-series store {path}: {exc}") from exc
    return store


def compression_ratio(store: TimeSeriesStore, path: str | Path) -> float:
    """Raw float64 bytes divided by the encoded file size."""
    raw_bytes = store.total_samples() * (1 + len(METRIC_NAMES)) * 8
    encoded = Path(path).stat().st_size
    if encoded == 0:
        raise MonitoringError("encoded file is empty")
    return raw_bytes / encoded
