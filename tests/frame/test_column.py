"""Tests for repro.frame.column coercion."""

import numpy as np
import pytest

from repro.errors import FrameError
from repro.frame import as_column, column_dtype, is_string_column


class TestAsColumn:
    def test_list_of_ints_is_numeric(self):
        col = as_column([1, 2, 3])
        assert np.issubdtype(col.dtype, np.integer)

    def test_list_of_floats_is_numeric(self):
        col = as_column([1.5, 2.5])
        assert np.issubdtype(col.dtype, np.floating)

    def test_bools_stay_numeric(self):
        col = as_column([True, False])
        assert column_dtype(col) == "numeric"

    def test_strings_become_object(self):
        col = as_column(["a", "b"])
        assert col.dtype == object

    def test_mixed_none_becomes_object(self):
        col = as_column([1, None, 3])
        assert col.dtype == object
        assert col[1] is None

    def test_numpy_array_passes_through(self):
        arr = np.arange(4)
        assert as_column(arr) is arr

    def test_2d_array_rejected(self):
        with pytest.raises(FrameError, match="1-D"):
            as_column(np.zeros((2, 2)))

    def test_bare_string_rejected(self):
        with pytest.raises(FrameError, match="single string"):
            as_column("abc")

    def test_scalar_rejected(self):
        with pytest.raises(FrameError):
            as_column(42)

    def test_empty_list(self):
        assert len(as_column([])) == 0

    def test_generator_input(self):
        col = as_column(x * 2 for x in range(3))
        assert list(col) == [0, 2, 4]


class TestColumnDtype:
    def test_numeric(self):
        assert column_dtype(np.asarray([1.0, 2.0])) == "numeric"

    def test_string_object_array(self):
        assert column_dtype(as_column(["x", "y"])) == "string"

    def test_unicode_array(self):
        assert column_dtype(np.asarray(["x", "y"])) == "string"

    def test_object_with_none(self):
        assert column_dtype(as_column(["x", None])) == "object"

    def test_is_string_column(self):
        assert is_string_column(as_column(["x"]))
        assert not is_string_column(np.asarray([1, 2]))
