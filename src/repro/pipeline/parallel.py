"""Process-parallel fan-out for pipeline sessions.

Two fan-out shapes appear in the reproduction:

* **many figures, one dataset** — workers each load the shared dataset
  from the on-disk cache once (initializer), then stream figure ids;
* **many seeds, one analysis** — robustness sweeps run the full
  pipeline per seed in separate processes.

Everything degrades to serial execution: ``workers <= 1``, a single
work item, or a pool that cannot start (restricted environments) all
take the in-process path, so parallelism is purely an optimisation and
never a correctness requirement.
"""

from __future__ import annotations

import os
import traceback
from typing import Callable, Iterable, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")


def resolve_workers(workers: int | None) -> int:
    """Normalise a requested worker count to ``[1, 64]``.

    ``None`` means "no preference": the ``REPRO_WORKERS`` environment
    variable supplies the default (letting CLI users and CI set
    parallelism globally), falling back to serial.  A malformed
    ``REPRO_WORKERS`` is ignored — parallelism is an optimisation, not
    a correctness requirement, so it degrades rather than crashes.

    An explicit request above the core count is honoured — the pools
    here are I/O-and-compute mixes where mild oversubscription is the
    caller's call — but capped to keep a typo from forking hundreds of
    interpreters.
    """
    if workers is None:
        env = os.environ.get("REPRO_WORKERS", "")
        try:
            workers = int(env)
        except ValueError:
            return 1
    if workers <= 1:
        return 1
    return min(int(workers), 64)


class ParallelTaskError(RuntimeError):
    """A ``parallel_map`` task failed inside a worker process.

    Raised in the *parent* with the offending item's index and the
    worker's formatted traceback embedded in the message — the chained
    ``__cause__`` does not survive the pool's exception pickling, so
    the context is carried explicitly.
    """

    def __init__(self, index: int, detail: str) -> None:
        super().__init__(
            f"parallel_map task {index} failed in a worker process:\n{detail}"
        )
        self.index = index
        self.detail = detail

    def __reduce__(self):
        return (ParallelTaskError, (self.index, self.detail))


class _IndexedTask:
    """Picklable wrapper running ``fn`` on ``(index, item)`` pairs."""

    def __init__(self, fn: Callable[[T], R]) -> None:
        self.fn = fn

    def __call__(self, pair: tuple[int, T]) -> R:
        index, item = pair
        try:
            return self.fn(item)
        except Exception as exc:
            raise ParallelTaskError(index, traceback.format_exc()) from exc


def parallel_map(
    fn: Callable[[T], R], items: Iterable[T], workers: int | None = None
) -> list[R]:
    """``[fn(x) for x in items]`` across a process pool.

    Results keep item order.  ``fn`` and the items must be picklable
    (module-level functions).  Falls back to the serial path when the
    pool is pointless (one worker, one item) or cannot start.  A task
    that raises in a worker surfaces as :class:`ParallelTaskError`
    carrying the item index and the worker traceback; the serial path
    raises the original exception unwrapped (its traceback is already
    intact).
    """
    items = list(items)
    workers = resolve_workers(workers)
    if workers <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    try:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=min(workers, len(items))) as pool:
            return list(pool.map(_IndexedTask(fn), enumerate(items)))
    except (ImportError, OSError, PermissionError):
        return [fn(item) for item in items]


# ----------------------------------------------------------------------
# Figure fan-out against one shared cached dataset
# ----------------------------------------------------------------------
_WORKER_DATASET = None


def _figure_worker_init(cache_dir: str, key: str) -> None:
    """Pool initializer: start worker observability, load the dataset.

    The worker gets its own enabled tracer/metrics pair installed for
    the process lifetime (:func:`repro.obs.runtime.activate`); every
    figure run drains its spans and metric deltas back to the parent,
    which re-parents them into the session trace.
    """
    global _WORKER_DATASET
    from repro.obs import runtime
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.trace import Tracer

    runtime.activate(Tracer(process_name="repro-worker"), MetricsRegistry())
    from repro.pipeline.cache import DatasetCache

    _WORKER_DATASET = DatasetCache(cache_dir).load(key)


def _figure_worker_run(figure_id: str):
    """Run one figure; return ``(result, span payload, metric deltas)``."""
    from repro.errors import AnalysisError
    from repro.figures.registry import run_figure
    from repro.obs import runtime

    if _WORKER_DATASET is None:
        raise AnalysisError("figure worker has no dataset (cache miss in worker)")
    result = run_figure(figure_id, _WORKER_DATASET)
    return result, runtime.get_tracer().drain_payload(), runtime.get_metrics().drain()


def run_figures_parallel(
    figure_ids: Sequence[str], cache_dir: str | os.PathLike, key: str, workers: int
) -> list | None:
    """Run figures across a worker pool sharing one cached dataset.

    Returns ``(result, span_payload, metrics_snapshot)`` triples in
    ``figure_ids`` order, or ``None`` if the pool could not run
    (caller falls back to serial execution).
    """
    workers = resolve_workers(workers)
    if workers <= 1 or len(figure_ids) <= 1:
        return None
    try:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(
            max_workers=min(workers, len(figure_ids)),
            initializer=_figure_worker_init,
            initargs=(str(cache_dir), key),
        ) as pool:
            return list(pool.map(_figure_worker_run, figure_ids))
    except Exception:
        return None
