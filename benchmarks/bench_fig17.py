"""Fig 17: per-user life-cycle composition."""

from repro.figures.registry import run_figure


def test_fig17_user_composition(benchmark, dataset):
    result = benchmark(run_figure, "fig17", dataset)
    # shape: many users are dominated by non-mature work
    assert result.get("users with mature job share <40%").measured > 0.05
