"""Life-cycle transition structure of user job streams (paper Fig 2).

Fig 2 sketches the typical workflow — design in an IDE, debug
development runs, sweep hyper-parameters, finish with a mature run.
If that structure is real it should be visible as *transition
statistics* in the per-user job sequence: which class tends to follow
which, and how jobs cluster into bursts ("campaigns") separated by
think time.  This module mines both.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import AnalysisError
from repro.frame import Table
from repro.slurm.job import LIFECYCLE_CLASSES


def transition_matrix(gpu_jobs: Table) -> Table:
    """Per-user class-to-class transition probabilities, pooled.

    One row per source class, one column per destination class, cells
    = P(next job's class | this job's class), computed over
    consecutive submissions of the same user.
    """
    if gpu_jobs.num_rows == 0:
        raise AnalysisError("no jobs")
    counts = {a: {b: 0 for b in LIFECYCLE_CLASSES} for a in LIFECYCLE_CLASSES}
    ordered = gpu_jobs.sort_by("submit_time_s")
    last_class: dict[str, str] = {}
    users = list(ordered["user"])
    classes = list(ordered["lifecycle_class"])
    for user, cls in zip(users, classes):
        previous = last_class.get(user)
        if previous is not None:
            counts[previous][cls] += 1
        last_class[user] = cls
    rows = []
    for source in LIFECYCLE_CLASSES:
        total = sum(counts[source].values())
        row: dict[str, object] = {"from_class": source, "num_transitions": total}
        for destination in LIFECYCLE_CLASSES:
            row[destination] = counts[source][destination] / total if total else 0.0
        rows.append(row)
    return Table.from_rows(rows)


def self_transition_rates(matrix: Table) -> dict[str, float]:
    """P(same class again) per class — workflow 'stickiness'."""
    return {
        str(row["from_class"]): float(row[str(row["from_class"])])
        for row in matrix.iter_rows()
    }


@dataclass(frozen=True)
class CampaignStats:
    """Burst structure of user submissions."""

    num_campaigns: int
    median_campaign_jobs: float
    median_campaign_span_s: float
    #: fraction of campaigns whose final job is mature ("the workflow
    #: converges", Fig 2's arrow into production)
    fraction_ending_mature: float
    #: fraction of multi-job campaigns containing any exploratory job
    fraction_with_exploration: float


def segment_campaigns(gpu_jobs: Table, gap_s: float = 2.0 * 3600.0) -> list[dict]:
    """Split each user's submissions into campaigns by idle gaps.

    A campaign is a maximal run of submissions with inter-arrival gaps
    below ``gap_s`` (think time).  Returns one dict per campaign with
    ``user``, ``classes`` (in order), ``span_s``.
    """
    if gap_s <= 0:
        raise AnalysisError("gap must be positive")
    if gpu_jobs.num_rows == 0:
        raise AnalysisError("no jobs")
    ordered = gpu_jobs.sort_by("submit_time_s")
    per_user: dict[str, list[tuple[float, str]]] = {}
    for row in ordered.iter_rows():
        per_user.setdefault(row["user"], []).append(
            (float(row["submit_time_s"]), str(row["lifecycle_class"]))
        )
    campaigns = []
    for user, jobs in per_user.items():
        current: list[tuple[float, str]] = []
        for submit, cls in jobs:
            if current and submit - current[-1][0] > gap_s:
                campaigns.append(_campaign_record(user, current))
                current = []
            current.append((submit, cls))
        if current:
            campaigns.append(_campaign_record(user, current))
    return campaigns


def _campaign_record(user: str, jobs: list[tuple[float, str]]) -> dict:
    return {
        "user": user,
        "classes": [cls for _, cls in jobs],
        "span_s": jobs[-1][0] - jobs[0][0],
    }


def campaign_stats(campaigns: list[dict]) -> CampaignStats:
    """Aggregate campaign structure."""
    if not campaigns:
        raise AnalysisError("no campaigns")
    sizes = np.asarray([len(c["classes"]) for c in campaigns], dtype=float)
    spans = np.asarray([c["span_s"] for c in campaigns], dtype=float)
    ending_mature = np.asarray([c["classes"][-1] == "mature" for c in campaigns])
    multi = [c for c in campaigns if len(c["classes"]) > 1]
    with_exploration = (
        float(np.mean([("exploratory" in c["classes"]) for c in multi])) if multi else 0.0
    )
    return CampaignStats(
        num_campaigns=len(campaigns),
        median_campaign_jobs=float(np.median(sizes)),
        median_campaign_span_s=float(np.median(spans)),
        fraction_ending_mature=float(ending_mature.mean()),
        fraction_with_exploration=with_exploration,
    )
