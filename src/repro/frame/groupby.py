"""Group-by support for :class:`repro.frame.Table`.

The paper's pipeline aggregates jobs by user, by GPU count, by
interface type, and by life-cycle class.  :class:`GroupBy` supports
iteration over groups and a vectorised ``aggregate`` that applies named
reducers to columns.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, Mapping, Sequence

import numpy as np

from repro.errors import FrameError
from repro.frame.table import Table, _unwrap

Reducer = Callable[[np.ndarray], Any]

_BUILTIN_REDUCERS: dict[str, Reducer] = {
    "mean": lambda a: float(np.mean(a.astype(float))),
    "sum": lambda a: float(np.sum(a.astype(float))),
    "min": lambda a: float(np.min(a.astype(float))),
    "max": lambda a: float(np.max(a.astype(float))),
    "median": lambda a: float(np.median(a.astype(float))),
    "std": lambda a: float(np.std(a.astype(float), ddof=0)),
    "count": lambda a: int(len(a)),
    "first": lambda a: _unwrap(a[0]),
    "last": lambda a: _unwrap(a[-1]),
}


class GroupBy:
    """Lazily-evaluated grouping of a table by one or more key columns."""

    def __init__(self, table: Table, keys: Sequence[str]) -> None:
        if not keys:
            raise FrameError("group_by requires at least one key column")
        self._table = table
        self._keys = tuple(keys)
        self._index = self._build_index()

    def _build_index(self) -> dict[tuple[Any, ...], np.ndarray]:
        columns = [self._table.column(k) for k in self._keys]
        buckets: dict[tuple[Any, ...], list[int]] = {}
        for i in range(self._table.num_rows):
            key = tuple(_unwrap(col[i]) for col in columns)
            buckets.setdefault(key, []).append(i)
        return {k: np.asarray(v, dtype=np.intp) for k, v in buckets.items()}

    # ------------------------------------------------------------------
    @property
    def num_groups(self) -> int:
        return len(self._index)

    def keys(self) -> list[tuple[Any, ...]]:
        """Group keys in first-seen order."""
        return list(self._index)

    def __iter__(self) -> Iterator[tuple[tuple[Any, ...], Table]]:
        for key, idx in self._index.items():
            yield key, self._table.take(idx)

    def group(self, *key: Any) -> Table:
        """Return the sub-table for one group key."""
        k = tuple(key)
        if k not in self._index:
            raise FrameError(f"no group with key {k!r}")
        return self._table.take(self._index[k])

    def sizes(self) -> Table:
        """Return a table of group keys and their row counts."""
        rows = [dict(zip(self._keys, k), count=len(idx)) for k, idx in self._index.items()]
        return Table.from_rows(rows)

    # ------------------------------------------------------------------
    def aggregate(self, spec: Mapping[str, Sequence[str] | str]) -> Table:
        """Aggregate columns per group.

        ``spec`` maps a column name to one reducer name or a list of
        reducer names (``mean``/``sum``/``min``/``max``/``median``/
        ``std``/``count``/``first``/``last``).  The result has one row
        per group with columns ``{column}_{reducer}``.
        """
        normalized: list[tuple[str, str, Reducer]] = []
        for column, reducers in spec.items():
            if isinstance(reducers, str):
                reducers = [reducers]
            for name in reducers:
                if name not in _BUILTIN_REDUCERS:
                    raise FrameError(
                        f"unknown reducer {name!r}; choose from {sorted(_BUILTIN_REDUCERS)}"
                    )
                normalized.append((column, name, _BUILTIN_REDUCERS[name]))

        rows = []
        for key, idx in self._index.items():
            row: dict[str, Any] = dict(zip(self._keys, key))
            for column, name, fn in normalized:
                row[f"{column}_{name}"] = fn(self._table.column(column)[idx])
            rows.append(row)
        return Table.from_rows(rows)

    def apply(self, fn: Callable[[Table], Mapping[str, Any]]) -> Table:
        """Apply ``fn`` to each group's sub-table; collect dict results."""
        rows = []
        for key, idx in self._index.items():
            row: dict[str, Any] = dict(zip(self._keys, key))
            row.update(fn(self._table.take(idx)))
            rows.append(row)
        return Table.from_rows(rows)

    def mean(self, column: str) -> Table:
        """Shorthand for ``aggregate({column: "mean"})``."""
        return self.aggregate({column: "mean"})

    def sum(self, column: str) -> Table:
        """Shorthand for ``aggregate({column: "sum"})``."""
        return self.aggregate({column: "sum"})
