"""A small dependency-free SVG plotting library.

matplotlib is not available in every deployment of this package, so
the figure harness renders its CDFs, bar charts, and box plots through
this module instead.  The API is deliberately tiny:

>>> from repro.plot import Figure, LineSeries
>>> fig = Figure(title="runtimes", x_label="minutes", x_log=True)
>>> _ = fig.add(LineSeries("gpu", [1, 10, 100], [0.1, 0.5, 1.0]))
>>> fig.render().startswith("<svg")
True

:mod:`repro.plot.ascii` additionally renders CDFs as terminal text for
the CLI.
"""

from repro.plot.ascii import ascii_cdf, ascii_histogram
from repro.plot.svg import BarSeries, BoxSeries, Figure, LineSeries

__all__ = [
    "BarSeries",
    "BoxSeries",
    "Figure",
    "LineSeries",
    "ascii_cdf",
    "ascii_histogram",
]
