"""Job requests, lifecycle states, and exit conditions.

The paper classifies jobs along two independent axes:

* **Interface** — how the job was submitted: ``map-reduce``, ``batch``,
  ``interactive``, or ``other`` (the general Slurm interface used by
  most deep-learning jobs).  Fig. 5 conditions utilization on this.
* **Life-cycle class** — where the job sits in the algorithm
  development cycle (Sec. VI): ``ide`` (design), ``development``
  (debugging), ``exploratory`` (hyper-parameter tuning, killed by the
  user), ``mature`` (completes with exit code 0).

The life-cycle class is *derived from how the job ends*, exactly as in
the paper: mature = zero exit code, exploratory = cancelled by user,
development = non-zero exit (crash while debugging), IDE = interactive
session that hits its timeout limit.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import SchedulerError

#: Interface types with the paper's observed job shares (Fig. 5).
INTERFACE_TYPES = ("map-reduce", "batch", "interactive", "other")

#: Life-cycle classes with the paper's observed job shares (Fig. 15a).
LIFECYCLE_CLASSES = ("mature", "exploratory", "development", "ide")


class JobState(enum.Enum):
    """Scheduler-visible job lifecycle."""

    PENDING = "pending"
    RUNNING = "running"
    FINISHED = "finished"


class ExitCondition(enum.Enum):
    """How a job left the system; maps 1:1 onto life-cycle classes."""

    COMPLETED = "completed"
    CANCELLED_BY_USER = "cancelled_by_user"
    FAILED = "failed"
    TIMEOUT = "timeout"
    NODE_FAILURE = "node_failure"

    @property
    def lifecycle_class(self) -> str:
        """The paper's life-cycle classification of this exit (Sec. VI).

        Hardware failures (<0.5% of jobs per the paper) are folded into
        ``development`` since they manifest as non-zero exits.
        """
        return {
            ExitCondition.COMPLETED: "mature",
            ExitCondition.CANCELLED_BY_USER: "exploratory",
            ExitCondition.FAILED: "development",
            ExitCondition.TIMEOUT: "ide",
            ExitCondition.NODE_FAILURE: "development",
        }[self]


#: Exit condition that realises each intended life-cycle class.
EXIT_FOR_CLASS = {
    "mature": ExitCondition.COMPLETED,
    "exploratory": ExitCondition.CANCELLED_BY_USER,
    "development": ExitCondition.FAILED,
    "ide": ExitCondition.TIMEOUT,
}


@dataclass
class JobRequest:
    """Everything known about a job at submission time.

    ``runtime_s`` is the job's *intrinsic* runtime; the simulator may
    truncate it at ``time_limit_s`` (producing a TIMEOUT exit).
    """

    job_id: int
    user: str
    submit_time_s: float
    runtime_s: float
    num_gpus: int
    cores: int
    memory_gb: float
    interface: str = "other"
    intended_class: str = "mature"
    time_limit_s: float = 24 * 3600.0
    tags: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.runtime_s < 0:
            raise SchedulerError(f"job {self.job_id}: negative runtime {self.runtime_s}")
        if self.num_gpus < 0 or self.cores <= 0 or self.memory_gb < 0:
            raise SchedulerError(f"job {self.job_id}: invalid resource request")
        if self.interface not in INTERFACE_TYPES:
            raise SchedulerError(
                f"job {self.job_id}: unknown interface {self.interface!r}"
            )
        if self.intended_class not in LIFECYCLE_CLASSES:
            raise SchedulerError(
                f"job {self.job_id}: unknown life-cycle class {self.intended_class!r}"
            )
        if self.time_limit_s <= 0:
            raise SchedulerError(f"job {self.job_id}: non-positive time limit")

    @property
    def is_gpu_job(self) -> bool:
        return self.num_gpus > 0


@dataclass
class JobRecord:
    """The outcome of one job after simulation (sacct-style row)."""

    request: JobRequest
    start_time_s: float
    end_time_s: float
    nodes: tuple[int, ...]
    exit_condition: ExitCondition

    @property
    def wait_time_s(self) -> float:
        return self.start_time_s - self.request.submit_time_s

    @property
    def run_time_s(self) -> float:
        return self.end_time_s - self.start_time_s

    @property
    def service_time_s(self) -> float:
        return self.end_time_s - self.request.submit_time_s

    @property
    def wait_fraction(self) -> float:
        """Queue wait as a fraction of service time (paper Fig. 3b)."""
        service = self.service_time_s
        if service <= 0:
            return 0.0
        return self.wait_time_s / service

    @property
    def gpu_hours(self) -> float:
        return self.request.num_gpus * self.run_time_s / 3600.0

    @property
    def lifecycle_class(self) -> str:
        return self.exit_condition.lifecycle_class

    def validate(self) -> None:
        """Sanity checks used by tests: causality and resource sanity."""
        if self.start_time_s < self.request.submit_time_s - 1e-9:
            raise SchedulerError(f"job {self.request.job_id} started before submission")
        if self.end_time_s < self.start_time_s - 1e-9:
            raise SchedulerError(f"job {self.request.job_id} ended before starting")
        if self.request.is_gpu_job and not self.nodes:
            raise SchedulerError(f"GPU job {self.request.job_id} ran on no nodes")
