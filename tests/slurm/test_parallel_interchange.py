"""Process-parallel coupled islands vs the serial lockstep oracle.

:mod:`repro.slurm.parallel` promises that stepping one persistent
worker process per island through the epoch protocol — exchanging only
the bounded interchange payload — is **bit-identical** to
:class:`~repro.slurm.interchange.PartitionedRunner` stepping the same
islands serially in one address space.  These tests pin that contract
event for event (fingerprints over every job record), for migration
coupling, fair-share coupling, and the uncoupled fan-out, plus the
serial fallback and the per-island setup/finish hooks the sharded
build relies on.

Workloads are rebuilt fresh for every run: migration mutates request
``tags`` in place, so sharing one request list across runs would leak
state between the candidates.
"""

import pytest

from repro.cluster.partition import PartitionLayout
from repro.errors import SchedulerError
from repro.slurm.interchange import (
    InterchangeConfig,
    PartitionedRunner,
    run_partitioned,
)
from repro.slurm.parallel import ParallelPartitionedRunner
from repro.slurm.policies import FairSharePolicy
from repro.slurm.scheduler import SchedulerConfig
from tests.slurm.test_interchange import fingerprints, workload
from tests.slurm.test_job import make_request

MIGRATION = InterchangeConfig(epoch_s=1800.0, migrate_after_s=600.0)


def hot_island_requests():
    """Cohort 0 floods island 0; the rest sit idle (fresh every call)."""
    return [
        make_request(
            job_id=i,
            user=f"u{i % 3}",
            submit_time_s=0.0,
            runtime_s=7200.0,
            num_gpus=2,
            tags={"cohort": 0},
        )
        for i in range(24)
    ]


def serial_oracle(requests, num_partitions, total_nodes, *, config=None, interchange=None):
    runner = PartitionedRunner(
        PartitionLayout.even(total_nodes, num_partitions),
        config=config,
        interchange=interchange,
    )
    return runner.run(requests)


def parallel_run(requests, num_partitions, total_nodes, *, workers, config=None,
                 interchange=None, **kwargs):
    runner = ParallelPartitionedRunner(
        PartitionLayout.even(total_nodes, num_partitions),
        config=config,
        interchange=interchange,
        workers=workers,
        **kwargs,
    )
    return runner.run(requests)


class TestMigrationCoupling:
    def test_parallel_matches_serial_event_for_event(self):
        serial = serial_oracle(
            hot_island_requests(), 2, 4, interchange=MIGRATION
        )
        parallel = parallel_run(
            hot_island_requests(), 2, 4, workers=2, interchange=MIGRATION
        )
        assert parallel.mode == "parallel"
        assert serial.migrations > 0
        assert parallel.migrations == serial.migrations
        assert fingerprints(parallel.merged_records()) == fingerprints(
            serial.merged_records()
        )

    def test_migrated_tags_cross_the_process_boundary(self):
        parallel = parallel_run(
            hot_island_requests(), 2, 4, workers=2, interchange=MIGRATION
        )
        migrated = [
            r for r in parallel.merged_records() if r.request.tags.get("migrated")
        ]
        assert len(migrated) == parallel.migrations > 0
        for record in migrated:
            target = parallel.layout[record.request.tags["migrated_to"]]
            for node in record.nodes:
                assert target.node_start <= node < target.node_stop

    def test_merged_result_counters_match(self):
        serial = serial_oracle(
            hot_island_requests(), 2, 4, interchange=MIGRATION
        )
        parallel = parallel_run(
            hot_island_requests(), 2, 4, workers=2, interchange=MIGRATION
        )
        assert parallel.merged().events_processed == serial.merged().events_processed
        assert parallel.merged().makespan_s == serial.merged().makespan_s


class TestFairShareCoupling:
    CONFIG = SchedulerConfig(policy="fair_share")
    SYNC = InterchangeConfig(epoch_s=3600.0, fair_share_sync=True)

    def test_parallel_matches_serial_event_for_event(self):
        serial = serial_oracle(
            workload(cohorts=2), 2, 16, config=self.CONFIG, interchange=self.SYNC
        )
        parallel = parallel_run(
            workload(cohorts=2), 2, 16,
            workers=2, config=self.CONFIG, interchange=self.SYNC,
        )
        assert parallel.mode == "parallel"
        assert fingerprints(parallel.merged_records()) == fingerprints(
            serial.merged_records()
        )

    def test_parent_ledger_matches_serial_global_usage(self):
        serial_runner = PartitionedRunner(
            PartitionLayout.even(16, 2), config=self.CONFIG, interchange=self.SYNC
        )
        serial_runner.run(workload(cohorts=2))
        parallel_runner = ParallelPartitionedRunner(
            PartitionLayout.even(16, 2),
            config=self.CONFIG,
            interchange=self.SYNC,
            workers=2,
        )
        parallel_runner.run(workload(cohorts=2))
        assert parallel_runner._global_usage.keys() == serial_runner._global_usage.keys()
        for user, hours in serial_runner._global_usage.items():
            assert parallel_runner._global_usage[user] == pytest.approx(hours)


class TestUncoupledAndFallback:
    def test_uncoupled_parallel_matches_fanout(self):
        free = run_partitioned(workload(cohorts=4), 4, total_nodes=64)
        parallel = parallel_run(workload(cohorts=4), 4, 64, workers=4)
        assert parallel.mode == "parallel"
        assert fingerprints(parallel.merged_records()) == fingerprints(
            free.merged_records()
        )

    def test_workers_1_falls_back_to_serial_lockstep(self):
        fallback = parallel_run(
            hot_island_requests(), 2, 4, workers=1, interchange=MIGRATION
        )
        serial = serial_oracle(
            hot_island_requests(), 2, 4, interchange=MIGRATION
        )
        assert fallback.mode == "serial"
        assert fallback.island_peak_rss_bytes == 0.0
        assert fallback.migrations == serial.migrations
        assert fingerprints(fallback.merged_records()) == fingerprints(
            serial.merged_records()
        )

    def test_single_island_falls_back_to_serial(self):
        result = parallel_run(workload(cohorts=1), 1, 8, workers=4)
        assert result.mode == "serial"
        assert len(result.merged_records()) == len(workload(cohorts=1))


class TestValidation:
    def test_failure_model_rejected(self):
        with pytest.raises(SchedulerError, match="failure"):
            ParallelPartitionedRunner(
                PartitionLayout.even(16, 2),
                config=SchedulerConfig(failure_model="weibull"),
            )

    def test_policy_objects_rejected(self):
        with pytest.raises(SchedulerError, match="registry name"):
            ParallelPartitionedRunner(
                PartitionLayout.even(16, 2),
                config=SchedulerConfig(policy=FairSharePolicy()),
            )

    def test_fair_share_sync_requires_fair_share_policy(self):
        with pytest.raises(SchedulerError, match="fair_share"):
            ParallelPartitionedRunner(
                PartitionLayout.even(16, 2),
                interchange=InterchangeConfig(fair_share_sync=True),
            )


# Module-level hooks: workers pickle-reference them by qualified name.
def _setup_hook(simulator, partition, context):
    return {"island": partition.index, "salt": context.get("salt")}


def _finish_hook(simulator, state, result):
    return {
        "island": state["island"],
        "salt": state["salt"],
        "records": len(result.records),
    }


class TestIslandHooks:
    @pytest.mark.parametrize("workers,mode", [(2, "parallel"), (1, "serial")])
    def test_hooks_run_on_both_paths(self, workers, mode):
        result = parallel_run(
            hot_island_requests(), 2, 4,
            workers=workers,
            interchange=MIGRATION,
            island_setup=_setup_hook,
            island_finish=_finish_hook,
            island_context={"salt": 42},
        )
        assert result.mode == mode
        assert [extra["island"] for extra in result.extras] == [0, 1]
        assert all(extra["salt"] == 42 for extra in result.extras)
        assert sum(extra["records"] for extra in result.extras) == 24

    @pytest.mark.parametrize("workers", [2, 1])
    def test_return_records_false_keeps_records_out_of_parent(self, workers):
        result = parallel_run(
            hot_island_requests(), 2, 4,
            workers=workers,
            interchange=MIGRATION,
            island_finish=_finish_hook,
            island_setup=_setup_hook,
            return_records=False,
        )
        assert result.merged_records() == []
        # ... but the islands saw every record before the drop.
        assert sum(extra["records"] for extra in result.extras) == 24
