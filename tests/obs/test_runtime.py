"""Ambient runtime scoping, the frame-kernel hook, and the
`PipelineInstrumentation` adapter (nested stages must not double-count
in ``total_seconds``)."""

import time

from repro.obs import NULL_METRICS, NULL_TRACER, MetricsRegistry, Tracer
from repro.obs import runtime
from repro.pipeline.instrument import PipelineInstrumentation


class TestRuntimeScoping:
    def test_defaults_are_null(self):
        assert runtime.get_tracer() is NULL_TRACER
        assert runtime.get_metrics() is NULL_METRICS

    def test_use_scopes_and_restores(self):
        tracer, metrics = Tracer(), MetricsRegistry()
        with runtime.use(tracer, metrics):
            assert runtime.get_tracer() is tracer
            assert runtime.get_metrics() is metrics
            inner_t = Tracer()
            with runtime.use(inner_t, None):
                assert runtime.get_tracer() is inner_t
                assert runtime.get_metrics() is NULL_METRICS
            assert runtime.get_tracer() is tracer
        assert runtime.get_tracer() is NULL_TRACER

    def test_use_restores_on_exception(self):
        try:
            with runtime.use(Tracer(), MetricsRegistry()):
                raise RuntimeError
        except RuntimeError:
            pass
        assert runtime.get_tracer() is NULL_TRACER

    def test_activate_deactivate(self):
        tracer = Tracer()
        runtime.activate(tracer, None)
        try:
            assert runtime.get_tracer() is tracer
            assert runtime.get_metrics() is NULL_METRICS
        finally:
            runtime.deactivate()
        assert runtime.get_tracer() is NULL_TRACER


class TestRecordKernel:
    def test_disabled_is_silent(self):
        runtime.record_kernel("aggregate", 100)  # must not raise or allocate

    def test_enabled_counts_calls_and_rows(self):
        metrics = MetricsRegistry()
        with runtime.use(None, metrics):
            runtime.record_kernel("aggregate", 100)
            runtime.record_kernel("aggregate", 50)
            runtime.record_kernel("join", 10)
        assert metrics.counter_value(
            "repro_frame_kernel_calls_total", kernel="aggregate") == 2
        assert metrics.counter_value(
            "repro_frame_kernel_rows_total", kernel="aggregate") == 150
        assert metrics.counter_value(
            "repro_frame_kernel_calls_total", kernel="join") == 1

    def test_frame_kernels_report_through_ambient_metrics(self):
        from repro.frame import Table

        table = Table({"k": [1, 1, 2], "v": [1.0, 2.0, 3.0]})
        metrics = MetricsRegistry()
        with runtime.use(None, metrics):
            table.group_by("k").aggregate({"v": "sum"})
            table.value_counts("k")
        assert metrics.counter_value(
            "repro_frame_kernel_calls_total", kernel="aggregate") == 1
        assert metrics.counter_value(
            "repro_frame_kernel_rows_total", kernel="value_counts") == 3


class TestInstrumentationAdapter:
    def test_total_seconds_ignores_nested_stages(self):
        inst = PipelineInstrumentation(Tracer(), MetricsRegistry())
        with inst.stage("outer"):
            time.sleep(0.02)
            with inst.stage("inner"):
                time.sleep(0.02)
        outer = next(r for r in inst.stages if r.name == "outer")
        inner = next(r for r in inst.stages if r.name == "inner")
        assert outer.depth == 0
        assert inner.depth == 1
        # the satellite fix: only top-level stages are summed, so the
        # total can never exceed wall time
        assert inst.total_seconds() == outer.seconds
        assert inst.total_seconds() < outer.seconds + inner.seconds

    def test_stage_records_feed_metrics(self):
        metrics = MetricsRegistry()
        inst = PipelineInstrumentation(Tracer(), metrics)
        with inst.stage("workload") as probe:
            probe.rows = 10
        hist = metrics.histogram("repro_stage_seconds", stage="workload")
        assert hist.count == 1
        assert metrics.counter_value("repro_stage_rows_total", stage="workload") == 10

    def test_default_instrumentation_is_null_backed(self):
        inst = PipelineInstrumentation()
        with inst.stage("workload"):
            pass
        assert inst.stage_names() == ["workload"]
        assert inst.tracer.finished() == []
