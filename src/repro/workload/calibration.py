"""Every statistic the paper reports, plus the generator knobs.

:class:`PaperTargets` is the single source of truth for "what the
paper says"; figure modules use it to emit paper-vs-measured rows and
tests use it (with tolerances) to validate calibration.

:class:`GeneratorKnobs` holds the distribution anchors the workload
generator samples from.  Anchors were derived from the paper's numbers
(derivations in comments) and then hand-tuned against the generated
dataset so the pooled statistics land near the targets.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class PaperTargets:
    """Numbers quoted in the paper, with the section/figure they come from."""

    # --- dataset description (Sec. II)
    study_days: int = 125
    num_users: int = 191
    total_jobs: int = 74820
    gpu_jobs_analyzed: int = 47120
    timeseries_jobs: int = 2149
    short_job_filter_s: float = 30.0

    # --- Fig 3(a): runtimes (minutes)
    gpu_runtime_p25_min: float = 4.0
    gpu_runtime_median_min: float = 30.0
    gpu_runtime_p75_min: float = 300.0
    cpu_runtime_median_min: float = 8.0

    # --- Fig 3(b) / Sec. III: queue waits
    gpu_jobs_wait_below_2pct_service: float = 0.50   # "more than 50%"
    cpu_jobs_wait_below_2pct_service: float = 0.20   # "less than 20%"
    gpu_jobs_wait_below_1min: float = 0.70
    cpu_jobs_wait_above_1min: float = 0.70

    # --- Fig 4(a): average utilization (%)
    sm_util_median: float = 16.0
    mem_bw_util_median: float = 2.0
    mem_size_util_median: float = 9.0
    frac_jobs_sm_above_50: float = 0.20
    frac_jobs_mem_above_50: float = 0.04
    frac_jobs_size_above_50: float = 0.15

    # --- Fig 5: interface mix
    interface_shares: dict = field(
        default_factory=lambda: {
            "map-reduce": 0.01,
            "batch": 0.30,
            "interactive": 0.04,
            "other": 0.65,
        }
    )

    # --- Fig 6: active/idle phases (time-series subset)
    active_fraction_p25: float = 0.14
    active_fraction_median: float = 0.84
    active_fraction_p75: float = 0.95
    idle_interval_cov_median: float = 1.26
    active_interval_cov_median: float = 1.69

    # --- Fig 7(a): within-run CoV of utilization
    sm_cov_median: float = 0.14
    mem_bw_cov_median: float = 0.146
    mem_size_cov_median: float = 0.082
    frac_jobs_sm_cov_above_23pct: float = 0.25

    # --- Fig 7(b)/8: bottlenecks (fraction of jobs hitting 100%)
    bottleneck_sm: float = 0.22
    bottleneck_mem_bw: float = 0.002
    bottleneck_mem_size: float = 0.08
    bottleneck_pcie_rx: float = 0.14
    bottleneck_pcie_tx: float = 0.10
    bottleneck_rx_and_sm: float = 0.09
    bottleneck_any_pair_max: float = 0.10

    # --- Fig 9: power
    avg_power_median_w: float = 45.0
    max_power_median_w: float = 87.0
    gpu_max_power_w: float = 300.0
    unimpacted_at_150w_cap: float = 0.60       # "over 60%"
    avg_impacted_at_150w_cap: float = 0.10     # "less than 10%"

    # --- Fig 10/11: per-user statistics
    user_avg_runtime_median_min: float = 392.0
    user_avg_runtime_p25_min: float = 135.0
    user_avg_runtime_p75_min: float = 823.0
    user_avg_sm_median: float = 10.75
    user_avg_mem_median: float = 1.8
    user_avg_size_median: float = 11.2
    frac_users_sm_above_20: float = 0.32
    frac_users_mem_above_20: float = 0.05
    user_runtime_cov_median: float = 1.55
    user_runtime_cov_p25: float = 0.86        # 75% of users exceed this
    user_runtime_cov_p75: float = 2.27
    user_sm_cov_median: float = 1.21
    user_mem_cov_median: float = 1.82
    user_size_cov_median: float = 0.99

    # --- Sec. IV: Pareto principle
    median_user_job_count: float = 36.0
    top5pct_user_job_share: float = 0.44
    top20pct_user_job_share: float = 0.832

    # --- Fig 13 / Sec. V: multi-GPU jobs
    frac_jobs_single_gpu: float = 0.84
    frac_jobs_gt_two_gpus: float = 0.024
    frac_jobs_nine_plus_gpus: float = 0.01    # "less than 1%"
    multi_gpu_hours_share: float = 0.50
    frac_users_any_multi_gpu: float = 0.60
    frac_users_three_plus_gpus: float = 0.13
    frac_users_nine_plus_gpus: float = 0.052
    wait_median_single_gpu_s: float = 3.0
    wait_median_multi_gpu_s: float = 1.0
    frac_multi_gpu_jobs_with_idle_gpus: float = 0.40

    # --- Fig 15: life-cycle classes
    class_shares: dict = field(
        default_factory=lambda: {
            "mature": 0.60,
            "exploratory": 0.18,
            "development": 0.19,
            "ide": 0.035,
        }
    )
    class_gpu_hour_shares: dict = field(
        default_factory=lambda: {
            "mature": 0.39,
            "exploratory": 0.34,
            "development": 0.09,
            "ide": 0.18,
        }
    )
    mature_runtime_median_min: float = 36.0
    exploratory_runtime_median_min: float = 62.0

    # --- Fig 16: median SM utilization by class (%)
    class_sm_medians: dict = field(
        default_factory=lambda: {
            "mature": 21.0,
            "exploratory": 15.0,
            "development": 0.0,
            "ide": 0.0,
        }
    )

    # --- Fig 17
    frac_users_mature_jobs_below_40pct: float = 0.50
    frac_users_nonmature_hours_above_60pct: float = 0.25


#: Module-level singleton; targets never change.
PAPER_TARGETS = PaperTargets()


@dataclass(frozen=True)
class GeneratorKnobs:
    """Distribution anchors used by the workload generator.

    Quantile anchors are ``(probability, value)`` tuples; runtimes are
    in seconds, utilizations in percent.
    """

    # Runtime of a job relative to its user's scale is lognormal with
    # this CoV drawn per user around the Fig-11 target (median 1.55).
    user_runtime_cov_median: float = 1.55
    user_runtime_cov_spread: float = 0.9

    # User-level runtime scale: median of a median user's jobs, in
    # seconds.  Fig 10 gives user-average runtime median 392 min; a
    # lognormal with CoV 1.55 has mean/median ~2.4, so the median scale
    # is ~164 min.  The weight exponent makes heavy submitters run
    # shorter jobs so the *pooled* median lands at 30 min (Fig 3a).
    user_runtime_scale_median_s: float = 210.0 * 60.0
    user_runtime_scale_sigma: float = 1.4
    runtime_weight_exponent: float = 0.38

    # Life-cycle class runtime multipliers (Fig 15b GPU-hour shares).
    class_runtime_multiplier: dict = field(
        default_factory=lambda: {
            "mature": 1.0,
            "exploratory": 2.3,
            "development": 0.45,
            "ide": 1.0,  # IDE jobs run to their timeout limit instead
        }
    )
    #: Exploratory (hyper-parameter sweep) jobs have a heavier runtime
    #: tail: a sweep mixes quick kills with near-full training runs.
    exploratory_runtime_sigma_factor: float = 1.25

    # Multi-GPU jobs run somewhat longer (needed for their 50% GPU-hour
    # share given a 16% job share).
    multi_gpu_runtime_multiplier: float = 2.8

    # Per-class SM mean-over-run anchors (Fig 4a pooled + Fig 16 medians).
    sm_anchors: dict = field(
        default_factory=lambda: {
            "mature": ((0.0, 0.0), (0.25, 6.5), (0.5, 22.0), (0.75, 48.0), (0.95, 78.0), (1.0, 95.0)),
            "exploratory": ((0.0, 0.0), (0.25, 3.0), (0.5, 14.0), (0.75, 34.0), (0.95, 65.0), (1.0, 85.0)),
            "development": ((0.0, 0.0), (0.5, 0.6), (0.8, 5.0), (1.0, 25.0)),
            "ide": ((0.0, 0.0), (0.8, 0.0), (0.95, 1.0), (1.0, 5.0)),
        }
    )

    # Memory-size mean anchors per class (Fig 4a median 9%, Fig 16c).
    size_anchors: dict = field(
        default_factory=lambda: {
            "mature": ((0.0, 0.5), (0.25, 3.0), (0.5, 9.0), (0.75, 22.0), (0.95, 55.0), (1.0, 85.0)),
            "exploratory": ((0.0, 0.5), (0.25, 2.5), (0.5, 7.0), (0.75, 18.0), (0.95, 45.0), (1.0, 75.0)),
            "development": ((0.0, 0.0), (0.5, 2.0), (0.8, 8.0), (1.0, 35.0)),
            "ide": ((0.0, 0.0), (0.7, 1.0), (1.0, 12.0)),
        }
    )

    # Memory-bandwidth-to-SM ratio for compute-bound jobs, and the
    # memory-intensive subpopulation ("~30% of jobs have close to zero
    # SM utilization and [up to] 40% memory utilization", Sec. III).
    mem_ratio_anchors: tuple = ((0.0, 0.02), (0.5, 0.085), (0.9, 0.20), (1.0, 0.40))
    memory_intensive_user_fraction: float = 0.15
    memory_intensive_job_prob: float = 0.55
    memory_intensive_base_prob: float = 0.01
    memory_intensive_mem_range: tuple = (20.0, 75.0)

    # PCIe mean utilization: "uniform distribution of bandwidths".
    pcie_tx_range: tuple = (0.0, 55.0)
    pcie_rx_range: tuple = (0.0, 65.0)
    #: dev/IDE sessions barely move data over PCIe.
    pcie_class_multiplier: dict = field(
        default_factory=lambda: {
            "mature": 1.0,
            "exploratory": 1.0,
            "development": 0.15,
            "ide": 0.05,
        }
    )
    #: Active-phase level is mean / max(active fraction, this floor) —
    #: keeps short unlucky schedules from inverting to absurd levels.
    level_inversion_floor: float = 0.2

    # Active-fraction anchors per class (Fig 6a pooled).
    active_fraction_anchors: dict = field(
        default_factory=lambda: {
            "mature": ((0.0, 0.05), (0.2, 0.72), (0.5, 0.9), (0.75, 0.96), (1.0, 1.0)),
            "exploratory": ((0.0, 0.05), (0.25, 0.6), (0.5, 0.82), (0.75, 0.93), (1.0, 1.0)),
            "development": ((0.0, 0.05), (0.5, 0.22), (1.0, 0.55)),
            "ide": ((0.0, 0.0), (0.5, 0.03), (1.0, 0.12)),
        }
    )

    # Phase interval structure (Fig 6b targets: CoV medians 126% idle,
    # 169% active).  The generating CoVs sit above the targets because
    # the per-job *sample* CoV of a heavy-tailed lognormal with few
    # intervals systematically underestimates the population CoV.
    active_interval_median_s: float = 120.0
    active_interval_cov_median: float = 2.6
    idle_interval_cov_median: float = 1.9
    interval_cov_spread: float = 0.35

    # Within-active-phase utilization noise (Fig 7a CoV medians).
    sm_noise_cov_median: float = 0.14
    mem_noise_cov_median: float = 0.146
    size_noise_cov_median: float = 0.05
    noise_cov_spread: float = 0.55

    # Peak bursts: max util = level * peak multiplier (median ~2.4)
    # chosen so the median max power lands at 87 W (Fig 9a).
    peak_multiplier_median: float = 1.6
    peak_multiplier_spread: float = 0.25

    # Bottleneck probabilities *conditional on mature/exploratory*
    # (dev/IDE jobs have no sustained kernels to saturate anything).
    bottleneck_conditional: dict = field(
        default_factory=lambda: {
            "sm": 0.28,
            "pcie_rx": 0.18,
            "pcie_tx": 0.13,
            "mem_size": 0.10,
            "mem_bw": 0.003,
        }
    )
    p_rx_given_sm: float = 0.41
    p_tx_given_rx: float = 0.35

    # Power model: P = idle + 1.25*SM% + 0.4*mem_bw% + 0.04*(tx+rx)%
    # + 0.2*mem_size%, clipped to the 300 W board limit.  Median job
    # (SM 16%, mem 2%) lands at ~46 W average (Fig 9a target 45 W).
    power_idle_w: float = 25.0
    power_per_sm_pct: float = 1.25
    power_per_mem_pct: float = 0.40
    power_per_pcie_pct: float = 0.03
    power_per_size_pct: float = 0.20

    # User population (Sec. IV Pareto principle).
    user_weight_alpha: float = 0.2
    user_weight_range: tuple = (1.0, 900.0)
    #: Expert users use GPUs more efficiently (Fig 12 correlation).
    util_weight_exponent: float = 0.30
    util_user_noise_sigma: float = 0.35
    #: Dirichlet concentration scale for per-user class/interface mixes
    #: (small => users differ a lot, Fig 17).
    class_mix_concentration: float = 0.45
    interface_mix_concentration: float = 2.5
    #: Population interface mix (map-reduce, batch, interactive, other)
    #: — Fig 5's 1/30/4/65 split; scenario presets shift it.
    global_interface_shares: tuple = (0.01, 0.30, 0.04, 0.65)

    # Per-class interface-conditional life-cycle probabilities
    # P(class | interface); derived in DESIGN.md from Fig 5 + Fig 15.
    class_given_interface: dict = field(
        default_factory=lambda: {
            # Job-weighted pooling is dominated by heavy users whose
            # tilts sit near these bases (see UserPopulation), so the
            # bases are set directly to hit the Fig 15a pooled shares.
            "interactive": {"mature": 0.10, "exploratory": 0.05, "development": 0.25, "ide": 0.60},
            "map-reduce": {"mature": 0.70, "exploratory": 0.0005, "development": 0.299, "ide": 0.0005},
            "batch": {"mature": 0.62, "exploratory": 0.15, "development": 0.215, "ide": 0.015},
            "other": {"mature": 0.615, "exploratory": 0.205, "development": 0.165, "ide": 0.015},
        }
    )

    # Interface utilization multipliers (Fig 5: other > batch > rest).
    interface_util_multiplier: dict = field(
        default_factory=lambda: {
            "map-reduce": 0.35,
            "batch": 0.8,
            "interactive": 0.4,
            "other": 1.1,
        }
    )

    # GPU-count behavior: users fall into categories that bound the
    # largest job they run (Sec. V user breakdown), and each category
    # has a per-job GPU-count distribution.
    user_gpu_categories: tuple = ("single", "dual", "medium", "large")
    user_gpu_category_probs: tuple = (0.40, 0.47, 0.078, 0.052)
    gpu_count_by_category: dict = field(
        default_factory=lambda: {
            "single": {1: 1.0},
            "dual": {1: 0.84, 2: 0.16},
            "medium": {1: 0.82, 2: 0.16, 4: 0.012, 6: 0.005, 8: 0.003},
            "large": {1: 0.82, 2: 0.125, 4: 0.025, 8: 0.017, 10: 0.006, 12: 0.004, 16: 0.003},
        }
    )

    # Multi-GPU idle-GPU pathology (Fig 14): 40% of multi-GPU jobs have
    # at least half of their GPUs idle.
    multi_gpu_idle_prob: float = 0.28
    #: Per-GPU utilization jitter among *active* GPUs (Fig 14b: low CoV).
    per_gpu_jitter_cov: float = 0.08

    # IDE session time limits: 12 h or 24 h "depending on the requested
    # amount" (Sec. VI).
    ide_time_limits_s: tuple = (12 * 3600.0, 24 * 3600.0)
    ide_limit_probs: tuple = (0.5, 0.5)

    #: Quick validation runs: a slice of jobs across all classes that
    #: run for seconds-to-minutes (builds Fig 3a's lower tail).
    quick_job_fraction: float = 0.18
    quick_job_range_s: tuple = (35.0, 480.0)

    # Short-job population removed by the 30 s filter.
    short_gpu_job_fraction: float = 0.085

    # CPU-job workload (drives Fig 3): whole-node requests arriving in
    # campaign bursts (parameter sweeps / map-reduce arrays).
    cpu_job_count_ratio: float = 0.49          # CPU jobs per GPU job (~23k/47k)
    cpu_runtime_anchors: tuple = (
        (0.0, 3.0), (0.25, 120.0), (0.5, 480.0), (0.75, 1500.0), (0.95, 14000.0), (1.0, 90000.0)
    )
    cpu_campaign_share: float = 0.85
    cpu_campaign_size_median: float = 900.0
    cpu_campaign_size_sigma: float = 0.9
    cpu_campaign_spacing_s: float = 1.0

    # GPU-job arrival sessions.
    session_jobs_mean: float = 4.0
    session_spacing_s: float = 300.0
    #: Conference-deadline surges: (start_day, end_day, rate multiplier).
    deadline_windows: tuple = ((20.0, 27.0, 2.0), (80.0, 87.0, 2.0))

    # GPU-job CPU-side requests: few cores ("users do not need all CPU
    # cores ... they request fewer CPU cores and memory", Sec. III).
    gpu_job_cores_choices: tuple = (2, 4, 8, 16)
    gpu_job_cores_probs: tuple = (0.25, 0.4, 0.25, 0.1)
    gpu_job_memory_range_gb: tuple = (10.0, 120.0)

    # CPU jobs request the whole node.
    cpu_job_cores: int = 40
    cpu_job_memory_gb: float = 360.0
