"""Tests for the monitoring collector wired into the scheduler."""

import numpy as np
import pytest

from repro.cluster.spec import supercloud_spec
from repro.errors import MonitoringError
from repro.monitor.collector import MonitoringCollector, MonitoringConfig
from repro.slurm.scheduler import SlurmSimulator
from tests.monitor.test_nvidia_smi import FlatModel
from tests.slurm.test_job import make_request


def run_with_collector(requests, config=None):
    simulator = SlurmSimulator(supercloud_spec(2))
    collector = MonitoringCollector(config).attach(simulator)
    simulator.run(requests)
    return collector


def gpu_request(job_id, num_gpus=1, runtime_s=120.0, **kw):
    request = make_request(job_id=job_id, num_gpus=num_gpus, runtime_s=runtime_s, **kw)
    request.tags["activity"] = FlatModel(num_gpus)
    return request


class TestCollection:
    def test_per_gpu_rows_one_per_device(self):
        collector = run_with_collector([gpu_request(1, num_gpus=2)])
        table = collector.per_gpu_table()
        assert table.num_rows == 2
        assert set(table["gpu_index"]) == {0, 1}

    def test_cpu_rows_for_every_job(self):
        collector = run_with_collector(
            [gpu_request(1), make_request(job_id=2, num_gpus=0, cores=4)]
        )
        assert collector.cpu_table().num_rows == 2

    def test_cpu_only_job_has_no_gpu_rows(self):
        collector = run_with_collector([make_request(job_id=1, num_gpus=0, cores=4)])
        assert collector.per_gpu_table().num_rows == 0

    def test_gpu_job_without_model_rejected(self):
        request = make_request(job_id=1, num_gpus=1)
        with pytest.raises(MonitoringError, match="no activity model"):
            run_with_collector([request])

    def test_summary_values_match_model(self):
        collector = run_with_collector([gpu_request(1)])
        row = collector.per_gpu_table().row(0)
        assert row["sm_mean"] == pytest.approx(40.0)
        assert row["power_w_max"] == pytest.approx(100.0)


class TestTimeSeriesSelection:
    def test_fraction_one_keeps_all(self):
        config = MonitoringConfig(timeseries_fraction=1.0)
        collector = run_with_collector([gpu_request(i) for i in range(4)], config)
        assert len(collector.store.job_ids()) == 4

    def test_fraction_zero_keeps_none(self):
        config = MonitoringConfig(timeseries_fraction=0.0)
        collector = run_with_collector([gpu_request(i) for i in range(4)], config)
        assert len(collector.store) == 0

    def test_invalid_fraction_rejected(self):
        with pytest.raises(MonitoringError):
            MonitoringCollector(MonitoringConfig(timeseries_fraction=1.5))

    def test_series_capped_at_max_samples(self):
        config = MonitoringConfig(timeseries_fraction=1.0, timeseries_max_samples=100)
        collector = run_with_collector([gpu_request(1, runtime_s=3600.0)], config)
        series = collector.store.get(1, 0)
        assert series.num_samples == 100


class TestJobAggregation:
    def test_multi_gpu_average(self):
        collector = run_with_collector([gpu_request(1, num_gpus=2)])
        table = collector.job_gpu_table()
        assert table.num_rows == 1
        assert table.row(0)["sm_mean"] == pytest.approx(40.0)

    def test_min_of_mins_max_of_maxes(self):
        collector = run_with_collector([gpu_request(1, num_gpus=2)])
        row = collector.job_gpu_table().row(0)
        assert row["sm_min"] <= row["sm_mean"] <= row["sm_max"]

    def test_empty_collector_gives_empty_table(self):
        collector = MonitoringCollector()
        assert collector.job_gpu_table().num_rows == 0


def spill_requests():
    return [gpu_request(i, num_gpus=2) for i in range(6)]


class TestSummarySpill:
    """Per-GPU summary rows spilled to disk instead of held in memory.

    Spilling is a runtime switch (``enable_spill``), deliberately not a
    ``MonitoringConfig`` field: the config hashes into dataset cache
    keys and where the rows live must not change what they are.
    """

    def test_spilled_run_matches_in_memory(self, tmp_path):
        baseline = run_with_collector(spill_requests())
        simulator = SlurmSimulator(supercloud_spec(2))
        collector = MonitoringCollector(
            MonitoringConfig(summary_chunk_rows=4)
        ).attach(simulator)
        collector.enable_spill(tmp_path / "summary")
        simulator.run(spill_requests())
        # sampling is deferred: chunks hit disk at flush, not mid-run
        collector.flush()
        assert list((tmp_path / "summary").glob("run_*.npz"))
        assert (
            collector.per_gpu_table().to_dict()
            == baseline.per_gpu_table().to_dict()
        )
        assert (
            collector.job_gpu_table().to_dict()
            == baseline.job_gpu_table().to_dict()
        )

    def test_enable_spill_mid_stream_moves_sealed_chunks(self, tmp_path):
        simulator = SlurmSimulator(supercloud_spec(2))
        collector = MonitoringCollector(
            MonitoringConfig(summary_chunk_rows=4)
        ).attach(simulator)
        simulator.run(spill_requests())
        before = collector.per_gpu_table().to_dict()
        collector.enable_spill(tmp_path / "late")
        assert list((tmp_path / "late").glob("run_*.npz"))
        assert collector.per_gpu_table().to_dict() == before

    def test_sorted_summary_stream_is_global_sort(self, tmp_path):
        simulator = SlurmSimulator(supercloud_spec(2))
        collector = MonitoringCollector(
            MonitoringConfig(summary_chunk_rows=4)
        ).attach(simulator)
        collector.enable_spill(tmp_path / "summary", chunk_rows=4)
        simulator.run(spill_requests())
        merged = collector.sorted_summary_stream(chunk_rows=3).materialize()
        expected = collector.per_gpu_table().sort_by("job_id", "gpu_index")
        assert merged.to_dict() == expected.to_dict()

    def test_per_gpu_chunked_streams_sealed_parts(self, tmp_path):
        simulator = SlurmSimulator(supercloud_spec(2))
        collector = MonitoringCollector(
            MonitoringConfig(summary_chunk_rows=4)
        ).attach(simulator)
        collector.enable_spill(tmp_path / "summary")
        simulator.run(spill_requests())
        chunks = list(collector.per_gpu_chunked().chunks())
        assert len(chunks) > 1
        total = sum(chunk.num_rows for chunk in chunks)
        assert total == collector.per_gpu_table().num_rows
