"""Property-based tests for the spill codec (hypothesis).

The spill format promises two things (see :mod:`repro.frame.codec`):

* every lossless scheme — RLE, modular delta, dictionary — reconstructs
  the column with identical dtype and element-wise equal values, for
  *any* input, including empty columns, single-run columns, all-distinct
  columns, and values at the dtype boundaries where delta arithmetic
  wraps;
* the opt-in ``quant`` scheme never errs by more than ``QUANT_STEP / 2``
  per sample.

These suites drive both promises with generated data rather than the
telemetry-shaped fixtures the unit tests use.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frame.codec import (
    QUANT_STEP,
    decode_column,
    encode_column,
    rle_decode,
    rle_encode,
)

#: Signed/unsigned widths whose boundaries the delta scheme must wrap
#: across without losing exactness.
_INT_DTYPES = (np.int8, np.int16, np.int32, np.int64, np.uint8, np.uint64)


def _int_arrays():
    """Integer columns biased toward dtype-boundary values."""

    @st.composite
    def build(draw):
        dtype = np.dtype(draw(st.sampled_from(_INT_DTYPES)))
        info = np.iinfo(dtype)
        boundary = st.sampled_from(
            [info.min, info.min + 1, 0, 1, info.max - 1, info.max]
        )
        element = st.one_of(boundary, st.integers(info.min, info.max))
        values = draw(st.lists(element, min_size=0, max_size=64))
        return np.array(values, dtype=dtype)

    return build()


def _float_arrays(allow_nan=True):
    element = st.floats(
        allow_nan=allow_nan, allow_infinity=allow_nan, width=64
    )
    return st.lists(element, min_size=0, max_size=64).map(
        lambda v: np.array(v, dtype=np.float64)
    )


def _object_arrays():
    word = st.text(alphabet="abcdef", min_size=0, max_size=4)
    return st.lists(word, min_size=0, max_size=64).map(
        lambda v: np.array(v, dtype=object)
    )


def _assert_identical(decoded, values):
    assert decoded.dtype == values.dtype
    if values.dtype.kind == "f":
        np.testing.assert_array_equal(decoded, values)  # NaN == NaN here
    else:
        assert decoded.shape == values.shape
        assert all(a == b for a, b in zip(decoded, values))


@given(st.one_of(_int_arrays(), _float_arrays()))
@settings(max_examples=200, deadline=None)
def test_rle_round_trip_is_exact(values):
    """rle_decode(rle_encode(x)) == x for empty, single-run,
    all-distinct, and dtype-boundary inputs alike."""
    run_values, run_lengths = rle_decode_args = rle_encode(values)
    assert run_lengths.sum() == values.size
    assert (run_lengths > 0).all()
    _assert_identical(rle_decode(*rle_decode_args), values)


@given(_int_arrays())
@settings(max_examples=200, deadline=None)
def test_rle_single_run_collapses(values):
    """A constant column must encode as (at most) one run — the case
    the format exists for."""
    if values.size == 0:
        return
    constant = np.full(values.size, values[0], dtype=values.dtype)
    run_values, run_lengths = rle_encode(constant)
    assert run_values.size == 1
    assert run_lengths[0] == constant.size


@given(_int_arrays())
@settings(max_examples=200, deadline=None)
def test_integer_encode_round_trip_wraps_exactly(values):
    """Delta encoding wraps modularly in the source dtype, so columns
    that straddle iinfo.min/iinfo.max still round-trip bit exactly."""
    scheme, arrays = encode_column(values)
    _assert_identical(decode_column(scheme, arrays), values)


@given(_float_arrays())
@settings(max_examples=200, deadline=None)
def test_float_encode_round_trip_is_exact(values):
    """Lossless float path: NaN maps to NaN, every finite value is
    bit identical, and the adaptive raw fallback never corrupts."""
    scheme, arrays = encode_column(values)
    assert not scheme.startswith("quant")
    _assert_identical(decode_column(scheme, arrays), values)


@given(_object_arrays())
@settings(max_examples=200, deadline=None)
def test_object_encode_round_trip_is_exact(values):
    """Dictionary coding round-trips object columns — including the
    all-distinct case where the dictionary would be pure overhead."""
    scheme, arrays = encode_column(values)
    decoded = decode_column(scheme, arrays)
    assert decoded.shape == values.shape
    assert all(a == b for a, b in zip(decoded, values))


@given(_float_arrays(allow_nan=False))
@settings(max_examples=200, deadline=None)
def test_quantisation_error_is_bounded(values):
    """The lossy scheme's whole promise: |decoded - x| <= QUANT_STEP/2.

    Quantised levels are exact int64s and the delta+RLE transport is
    lossless, so the only error is the initial rounding.
    """
    # Keep |x / QUANT_STEP| inside int64 so the level computation is
    # well defined (the codec is only opted in for telemetry columns,
    # which are percentages and watts).
    values = np.clip(values, -1e15, 1e15)
    scheme, arrays = encode_column(values, quantise=True)
    decoded = decode_column(scheme, arrays)
    if scheme == "quant":
        assert np.abs(decoded - values).max(initial=0.0) <= QUANT_STEP / 2
    else:
        # Adaptive fallback (e.g. empty input) must stay lossless.
        _assert_identical(decoded, values)


@given(_float_arrays(allow_nan=True))
@settings(max_examples=100, deadline=None)
def test_quantisation_refuses_non_finite(values):
    """Columns with NaN/inf fall through to a lossless scheme even
    when opted into quantisation."""
    if values.size and np.isfinite(values).all():
        return
    scheme, arrays = encode_column(values, quantise=True)
    assert scheme != "quant"
    _assert_identical(decode_column(scheme, arrays), values)
