"""The pending-job queue: FCFS order with bounded backfill.

At the time of the study Supercloud ran a single queue for all jobs
regardless of function or size (Sec. II, "System Operations Details").
Multi-GPU jobs are "scheduled quickly with a high priority" (Sec. V),
which we model as a priority boost.  Backfill lets small jobs jump past
a stuck head-of-line job, bounded by a scan depth as in real Slurm.

The queue keeps its entries sorted on a precomputed key tuple, so a
submit is a :func:`bisect.insort` into an already-sorted list rather
than a full re-sort of the queue — under a deadline surge the queue
holds thousands of jobs and submit-time re-sorting dominated the
scheduler loop.  Only :meth:`JobQueue.reprioritize` pays for a full
sort, because it invalidates every key at once.
"""

from __future__ import annotations

from bisect import insort
from typing import Callable, Iterator

from repro.errors import SchedulerError
from repro.slurm.job import JobRequest

#: Sort key of one queue entry.  Job ids are unique, so keys are too —
#: the request itself is never compared.
_QueueKey = tuple[float, float, int]


def _queue_key(priority: float, request: JobRequest) -> _QueueKey:
    return (-priority, request.submit_time_s, request.job_id)


class JobQueue:
    """Pending jobs ordered by (priority desc, submit time, job id)."""

    def __init__(self, backfill_depth: int = 64) -> None:
        if backfill_depth < 1:
            raise SchedulerError("backfill depth must be >= 1")
        self._jobs: list[tuple[_QueueKey, JobRequest]] = []
        self._backfill_depth = backfill_depth
        #: Whether the last :meth:`pop_first_placeable` skipped a
        #: stuck head-of-line job (a backfill decision).  Diagnostics
        #: only — the scheduler mirrors it into `repro.obs` metrics.
        self.last_pop_was_backfill = False

    def __len__(self) -> int:
        return len(self._jobs)

    def __bool__(self) -> bool:
        return bool(self._jobs)

    def push(self, request: JobRequest, priority: float = 0.0) -> None:
        """Insert a job with the given priority (higher runs earlier)."""
        insort(self._jobs, (_queue_key(priority, request), request))

    def scan(self) -> Iterator[JobRequest]:
        """Jobs in dispatch order, limited to the backfill window."""
        for _, request in self._jobs[: self._backfill_depth]:
            yield request

    def remove(self, job_id: int) -> JobRequest:
        """Remove and return the job with ``job_id``."""
        for i, (_, request) in enumerate(self._jobs):
            if request.job_id == job_id:
                del self._jobs[i]
                return request
        raise SchedulerError(f"job {job_id} not in queue")

    def pop_first_placeable(
        self, can_place: Callable[[JobRequest], bool]
    ) -> JobRequest | None:
        """Dequeue the first job (within the backfill window) that fits.

        Returns None when nothing in the window can be placed.
        """
        for position, request in enumerate(self.scan()):
            if can_place(request):
                self.last_pop_was_backfill = position > 0
                return self.remove(request.job_id)
        return None

    def reprioritize(self, priority_fn: Callable[[JobRequest], float]) -> None:
        """Recompute every queued job's priority (stateful policies).

        Mirrors Slurm's periodic priority recalculation: fair-share
        weights drift as users consume resources, so queued jobs must
        be re-ranked, not just ranked at submit time.  Every key
        changes, so this is the one operation that re-sorts the list.
        """
        self._jobs = sorted(
            (_queue_key(priority_fn(request), request), request)
            for _, request in self._jobs
        )

    def snapshot(self) -> list[int]:
        """Pending job ids in dispatch order (diagnostics/tests)."""
        return [request.job_id for _, request in self._jobs]
