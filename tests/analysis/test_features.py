"""Tests for series features and idle-phase prediction."""

import numpy as np
import pytest

from repro.analysis.features import (
    IdlePhasePredictor,
    evaluate_predictor,
    predictor_study,
    series_features,
)
from repro.errors import AnalysisError
from tests.analysis.test_phases import series_from_sm


class TestSeriesFeatures:
    def test_idle_fraction(self):
        features = series_features(series_from_sm([0.0] * 50 + [20.0] * 50))
        assert features.idle_fraction == pytest.approx(0.5)

    def test_transitions_counted(self):
        sm = ([20.0] * 10 + [0.0] * 10) * 3
        features = series_features(series_from_sm(sm))
        assert features.num_transitions == 5

    def test_periodic_signal_detected(self):
        t = np.arange(512)
        sm = 30.0 + 20.0 * np.sin(2 * np.pi * t / 64.0)
        features = series_features(series_from_sm(sm, step=1.0))
        assert features.dominant_period_s == pytest.approx(64.0, rel=0.1)

    def test_smooth_signal_high_autocorrelation(self):
        t = np.arange(200)
        sm = 30.0 + 20.0 * np.sin(2 * np.pi * t / 100.0)
        features = series_features(series_from_sm(sm))
        assert features.lag1_autocorrelation > 0.9

    def test_regular_runs_negative_burstiness(self):
        sm = ([20.0] * 10 + [0.0] * 10) * 5
        features = series_features(series_from_sm(sm))
        assert features.burstiness < 0.0  # equal-length runs: sigma ~ 0

    def test_too_short_rejected(self):
        with pytest.raises(AnalysisError):
            series_features(series_from_sm([1.0]))


class TestIdlePhasePredictor:
    def test_invalid_params(self):
        with pytest.raises(AnalysisError):
            IdlePhasePredictor(window_s=0.0)
        with pytest.raises(AnalysisError):
            IdlePhasePredictor(persistence_weight=1.5)

    def test_persistent_idle_predicts_idle(self):
        series = series_from_sm([0.0] * 100)
        mask = np.zeros(100, dtype=bool)
        predictor = IdlePhasePredictor()
        assert predictor.idle_probability(series.times_s, mask, 50) == 1.0

    def test_persistent_active_predicts_active(self):
        series = series_from_sm([50.0] * 100)
        mask = np.ones(100, dtype=bool)
        predictor = IdlePhasePredictor()
        assert predictor.idle_probability(series.times_s, mask, 50) == 0.0


class TestEvaluatePredictor:
    def test_constant_series_perfect(self):
        score = evaluate_predictor(series_from_sm([50.0] * 200), horizon_s=10.0)
        assert score.accuracy == 1.0
        assert score.skill == 0.0  # baseline is also perfect

    def test_long_phases_high_accuracy(self):
        sm = [50.0] * 300 + [0.0] * 300
        score = evaluate_predictor(series_from_sm(sm), horizon_s=5.0)
        assert score.accuracy > 0.9

    def test_fast_alternation_defeats_persistence(self):
        # phases shorter than the horizon: persistence mispredicts
        sm = ([50.0] * 3 + [0.0] * 3) * 60
        score = evaluate_predictor(series_from_sm(sm), horizon_s=3.0)
        assert score.accuracy < 0.6

    def test_short_series_rejected(self):
        with pytest.raises(AnalysisError):
            evaluate_predictor(series_from_sm([1.0, 2.0]), horizon_s=100.0)

    def test_invalid_horizon_rejected(self):
        with pytest.raises(AnalysisError):
            evaluate_predictor(series_from_sm([1.0] * 50), horizon_s=0.0)


class TestPredictorStudy:
    def test_on_generated_data(self, medium_dataset):
        scores, accuracy, skill = predictor_study(
            medium_dataset.timeseries, horizon_s=60.0, max_jobs=60
        )
        assert len(scores) > 10
        # phases mostly outlast a 60 s horizon, so prediction works --
        # the quantitative basis for the paper's co-location claim
        assert accuracy > 0.8

    def test_empty_store_rejected(self):
        from repro.monitor.timeseries import TimeSeriesStore

        with pytest.raises(AnalysisError):
            predictor_study(TimeSeriesStore())
