"""Streaming frame-engine gates: bounded memory, matching answers.

The out-of-core path exists so that figure-grade statistics can be
computed over series larger than what we are willing to materialize.
These gates pin both halves of that contract:

* **bounded memory** — a one-pass quantile sketch over a synthetic
  series ~25x larger than one chunk must peak (tracemalloc, which sees
  every numpy buffer) at a small multiple of the chunk size, nowhere
  near the materialized footprint;
* **matching answers** — streaming group-by aggregates on the bench
  dataset must agree with the materialized kernels: bit-for-bit for
  the exact verbs (count/min/max), within float tolerance for
  sum/mean/std (per-chunk partials legitimately re-associate the
  reduction), and within the sketch's *tracked* rank-error bound for
  quantiles;
* **figure grade** — fig03–05 comparisons match across
  representations, and fig06+fig09 run over a ~25-chunk
  ``streaming_view()`` with bit-identical counts/retained samples,
  rank-bounded medians, and a peak under eight chunk footprints.

``REPRO_BENCH_FULL=1`` adds a scale-0.5 end-to-end smoke: build, spill
``per_gpu`` to disk, and stream fig04's five CDFs off the spill under
a tracemalloc budget.

Under ``python -m repro bench`` the suite reports throughput and peak
memory via :func:`repro.bench.record_bench_stat` into BENCH_<n>.json.
"""

import os
import time
import tracemalloc

import numpy as np
import pytest

from repro.bench import record_bench_stat
from repro.frame import ChunkedTable, QuantileSketch, Table

CHUNK_ROWS = 65536
NUM_CHUNKS = 48
CHUNK_BYTES = CHUNK_ROWS * 8  # one float64 column per chunk


def _synthetic_chunks():
    """Deterministic lognormal chunks, produced lazily per iteration."""
    rng = np.random.default_rng(20220214)
    for _ in range(NUM_CHUNKS):
        yield Table({"v": rng.lognormal(mean=3.0, sigma=1.2, size=CHUNK_ROWS)})


def test_sketch_one_pass_bounded_memory():
    """One-pass percentiles over ~3.1M samples peak far below the
    materialized footprint, and land within the tracked rank bound."""
    chunked = ChunkedTable(_synthetic_chunks, num_rows=NUM_CHUNKS * CHUNK_ROWS)

    tracemalloc.start()
    tracemalloc.reset_peak()
    start = time.perf_counter()
    sketch = chunked.sketch("v")
    elapsed = time.perf_counter() - start
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    total_rows = NUM_CHUNKS * CHUNK_ROWS
    materialized_bytes = total_rows * 8
    budget = 8 * CHUNK_BYTES  # a handful of in-flight chunk-sized buffers
    assert peak < budget, (
        f"one-pass sketch peaked at {peak / 1e6:.1f} MB; budget "
        f"{budget / 1e6:.1f} MB (materialized would be "
        f"{materialized_bytes / 1e6:.1f} MB)"
    )
    assert sketch.num_samples == total_rows

    # Accuracy against the true ranks (materialized only *after* the
    # memory gate): the sketch's own error bound must hold.
    values = np.sort(np.concatenate([np.asarray(c["v"]) for c in chunked.chunks()]))
    bound = sketch.rank_error_bound()
    assert bound < 0.02 * total_rows, f"rank bound {bound} too loose"
    for p in (0.25, 0.5, 0.75, 0.95, 0.99):
        estimate = sketch.quantile(p)
        true_rank = np.searchsorted(values, estimate, side="right")
        assert abs(true_rank - p * total_rows) <= bound + 1, (
            f"q{p}: estimate {estimate} at rank {true_rank}, "
            f"target {p * total_rows:.0f}, bound {bound}"
        )

    record_bench_stat(
        "stream_sketch",
        rows=total_rows,
        rows_per_s=round(total_rows / elapsed, 1),
        peak_tracemalloc_bytes=int(peak),
        materialized_bytes=materialized_bytes,
        rank_error_bound=int(bound),
    )


def test_streaming_aggregate_matches_materialized(dataset):
    """Chunked group-by on the bench dataset vs the vectorized kernel:
    exact verbs bit-for-bit, accumulated verbs within tolerance."""
    spec = {"run_time_s": ("sum", "count", "mean", "min", "max", "std")}
    materialized = dataset.gpu_jobs.group_by("user").aggregate(spec)

    start = time.perf_counter()
    streamed = (
        dataset.gpu_jobs.to_chunked(chunk_rows=512).group_by("user").aggregate(spec)
    )
    elapsed = time.perf_counter() - start

    assert list(streamed["user"]) == list(materialized["user"])
    for exact in ("run_time_s_count", "run_time_s_min", "run_time_s_max"):
        assert np.array_equal(
            np.asarray(streamed[exact]), np.asarray(materialized[exact])
        ), exact
    for accumulated in ("run_time_s_sum", "run_time_s_mean", "run_time_s_std"):
        np.testing.assert_allclose(
            np.asarray(streamed[accumulated], dtype=float),
            np.asarray(materialized[accumulated], dtype=float),
            rtol=1e-9,
            err_msg=accumulated,
        )

    counts = dataset.gpu_jobs.to_chunked(chunk_rows=512).value_counts(
        "lifecycle_class"
    )
    naive = {}
    for label in dataset.gpu_jobs["lifecycle_class"]:
        naive[label] = naive.get(label, 0) + 1
    assert dict(zip(counts["lifecycle_class"], counts["count"])) == naive

    record_bench_stat(
        "stream_aggregate",
        rows=dataset.gpu_jobs.num_rows,
        groups=streamed.num_rows,
        rows_per_s=round(dataset.gpu_jobs.num_rows / max(elapsed, 1e-9), 1),
    )


def test_streaming_figures_match_materialized(dataset):
    """fig03/fig04/fig05 on ``streaming_view()``: threshold fractions
    and interface shares are bit-identical, sketched quantiles within
    the paper-grade tolerance."""
    from repro.figures import fig03, fig04, fig05

    exact03 = fig03.run(dataset)
    exact04 = fig04.run(dataset)
    exact05 = fig05.run(dataset)
    view = dataset.streaming_view(chunk_rows=1024)
    stream03 = fig03.run(view)
    stream04 = fig04.run(view)
    stream05 = fig05.run(view)

    for exact, streamed in (
        (exact03, stream03),
        (exact04, stream04),
        (exact05, stream05),
    ):
        for ours, theirs in zip(exact.comparisons, streamed.comparisons):
            assert ours.name == theirs.name
            exact_kinds = ("waiting <1 min", "waiting >1 min", "job share")
            if any(kind in ours.name for kind in exact_kinds):
                # Integer-count ratios accumulate exactly: bit-exact.
                assert ours.measured == theirs.measured, ours.name
            else:
                assert theirs.measured == pytest.approx(
                    ours.measured, rel=0.05, abs=0.75
                ), ours.name


def test_streaming_fig06_fig09_figure_grade(dataset):
    """fig06/fig09 over a ~25-chunk streaming view, figure grade.

    fig06 folds the series store (shared by both representations), so
    its phase table and every comparison must be *bit-identical* on the
    streaming path.  fig09's cap-impact fractions are integer-count
    ratios (bit-identical); its power medians come from the quantile
    sketch and must sit within the sketch's tracked rank-error bound
    of the exact distribution.  The whole streaming run must peak
    (tracemalloc) under eight chunk footprints, where one footprint is
    an in-flight chunk from each of the three chunked job tables.
    """
    from repro.figures import fig06, fig09

    chunk_rows = max(256, dataset.gpu_jobs.num_rows // 25)
    view = dataset.streaming_view(chunk_rows=chunk_rows)
    width = sum(
        len(table.column_names)
        for table in (dataset.jobs, dataset.gpu_jobs, dataset.per_gpu)
    )
    chunk_bytes = chunk_rows * width * 8

    exact06 = fig06.run(dataset)
    exact09 = fig09.run(dataset)

    tracemalloc.start()
    tracemalloc.reset_peak()
    start = time.perf_counter()
    stream06 = fig06.run(view)
    stream09 = fig09.run(view)
    elapsed = time.perf_counter() - start
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    assert peak < 8 * chunk_bytes, (
        f"fig06+fig09 streaming peaked at {peak / 1e6:.2f} MB; budget "
        f"{8 * chunk_bytes / 1e6:.2f} MB (8x one {chunk_rows}-row "
        "chunk of all three tables)"
    )

    # fig06: same store, same fold — identical retained sample set.
    exact_phases = exact06.series["phase_table"]
    stream_phases = stream06.series["phase_table"]
    assert stream_phases.num_rows == exact_phases.num_rows
    for name in exact_phases.column_names:
        np.testing.assert_array_equal(
            np.asarray(stream_phases[name]), np.asarray(exact_phases[name]), name
        )
    for ours, theirs in zip(exact06.comparisons, stream06.comparisons):
        assert ours.name == theirs.name
        assert ours.measured == theirs.measured or (
            np.isnan(ours.measured) and np.isnan(theirs.measured)
        ), ours.name

    # fig09: integer-count fractions bit-identical, sketched medians
    # within the tracked rank bound of the exact sample ranks.
    for ours, theirs in zip(exact09.comparisons, stream09.comparisons):
        assert ours.name == theirs.name
        if "cap" in ours.name:
            assert ours.measured == theirs.measured, ours.name
    for column, cdf in (
        ("power_w_mean", stream09.series["avg_cdf"]),
        ("power_w_max", stream09.series["max_cdf"]),
    ):
        exact_values = np.asarray(dataset.gpu_jobs[column], dtype=float)
        exact_values = np.sort(exact_values[np.isfinite(exact_values)])
        bound = cdf.rank_error_bound()
        estimate = cdf.median()
        true_rank = np.searchsorted(exact_values, estimate, side="right")
        assert abs(true_rank - 0.5 * exact_values.size) <= bound + 1, (
            f"{column} median {estimate} at rank {true_rank}, target "
            f"{0.5 * exact_values.size:.0f}, bound {bound}"
        )

    record_bench_stat(
        "stream_figures",
        rows=int(dataset.gpu_jobs.num_rows),
        chunk_rows=chunk_rows,
        peak_tracemalloc_bytes=int(peak),
        seconds=round(elapsed, 3),
    )


@pytest.mark.skipif(
    not os.environ.get("REPRO_BENCH_FULL"),
    reason="set REPRO_BENCH_FULL=1 for the scale-0.5 out-of-core smoke",
)
def test_full_scale_spill_and_stream(tmp_path):
    """Scale-0.5 build: spill per_gpu to disk, stream fig04 off the
    spill with bounded working memory."""
    from repro.analysis.stats import column_ecdf
    from repro.pipeline import Session
    from repro.workload.generator import WorkloadConfig

    dataset = Session(WorkloadConfig(scale=0.5, seed=20220214)).dataset()
    spilled = dataset.per_gpu.to_chunked(chunk_rows=4096).spill(tmp_path / "per_gpu")
    chunk_budget_bytes = 4096 * len(dataset.per_gpu.column_names) * 8

    tracemalloc.start()
    tracemalloc.reset_peak()
    sketch = column_ecdf(spilled, "sm_mean")
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    assert sketch.num_samples == dataset.per_gpu.num_rows
    assert peak < 16 * chunk_budget_bytes, (
        f"streaming off the spill peaked at {peak / 1e6:.1f} MB "
        f"(chunk ~{chunk_budget_bytes / 1e6:.2f} MB)"
    )
    exact = np.asarray(dataset.per_gpu["sm_mean"], dtype=float)
    exact = exact[np.isfinite(exact)]
    assert sketch.median() == pytest.approx(float(np.median(exact)), rel=0.05, abs=1.0)
    record_bench_stat(
        "stream_full_scale",
        rows=int(dataset.per_gpu.num_rows),
        peak_tracemalloc_bytes=int(peak),
    )
