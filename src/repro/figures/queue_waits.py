"""Sec. V text: median queue wait by job GPU count."""

from __future__ import annotations

from repro.analysis.multigpu import wait_by_size
from repro.dataset import SupercloudDataset
from repro.figures.base import Comparison, FigureResult

PAPER_MEDIANS_S = {"1": 3.0, "2": 1.0, "3-8": 1.0, ">=9": 1.0}


def run(dataset: SupercloudDataset) -> FigureResult:
    """Median waits per size bucket: multi-GPU jobs are *not* slower
    to schedule (they take the expedited priority path)."""
    waits = wait_by_size(dataset.gpu_jobs)
    rows = {str(r["gpus"]): r for r in waits.iter_rows()}
    comparisons = []
    for label, paper in PAPER_MEDIANS_S.items():
        row = rows.get(label)
        if row is not None and row["num_jobs"] > 0:
            comparisons.append(
                Comparison(f"median wait, {label} GPU(s)", paper, row["median_wait_s"], " s")
            )
    return FigureResult(
        figure_id="queue_waits",
        title="Queue wait by job size (Sec. V)",
        series={"waits": waits},
        comparisons=comparisons,
    )
