"""Tracer behaviour: nesting, thread safety, the no-op path, and the
cross-process adopt/drain hand-off — including a hypothesis property
test that a randomized span tree survives a simulated worker merge
losslessly."""

import os
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import NULL_TRACER, SpanRecord, Tracer
from repro.obs.trace import _NULL_SPAN


class TestSpanNesting:
    def test_single_span(self):
        tracer = Tracer()
        with tracer.span("work", category="test", rows=7) as span:
            span.set(extra="yes")
        (record,) = tracer.finished()
        assert record.name == "work"
        assert record.category == "test"
        assert record.parent_id is None
        assert record.attrs == {"rows": 7, "extra": "yes"}
        assert record.duration_us >= 0
        assert record.pid == os.getpid()

    def test_nesting_assigns_parents(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("middle") as middle:
                with tracer.span("inner"):
                    assert tracer.depth() == 3
        records = {r.name: r for r in tracer.finished()}
        assert records["outer"].parent_id is None
        assert records["middle"].parent_id == records["outer"].span_id
        assert records["inner"].parent_id == records["middle"].span_id
        assert outer.span_id != middle.span_id

    def test_siblings_share_a_parent(self):
        tracer = Tracer()
        with tracer.span("parent"):
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        records = {r.name: r for r in tracer.finished()}
        assert records["a"].parent_id == records["parent"].span_id
        assert records["b"].parent_id == records["parent"].span_id

    def test_parent_resolved_at_enter_not_creation(self):
        # span() and __enter__ may be separated by other spans opening.
        tracer = Tracer()
        pending = tracer.span("late")
        with tracer.span("outer"):
            with pending:
                pass
        records = {r.name: r for r in tracer.finished()}
        assert records["late"].parent_id == records["outer"].span_id

    def test_exception_is_recorded_and_propagates(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("nope")
        (record,) = tracer.finished()
        assert record.attrs["error"] == "ValueError"
        assert tracer.depth() == 0  # stack was unwound

    def test_timestamps_nest(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        records = {r.name: r for r in tracer.finished()}
        assert records["outer"].start_us <= records["inner"].start_us
        assert records["inner"].end_us <= records["outer"].end_us

    def test_roots(self):
        tracer = Tracer()
        with tracer.span("r1"):
            with tracer.span("child"):
                pass
        with tracer.span("r2"):
            pass
        assert [r.name for r in tracer.roots()] == ["r1", "r2"]


class TestThreadSafety:
    def test_threads_keep_independent_stacks(self):
        tracer = Tracer()
        barrier = threading.Barrier(4)

        def worker(i):
            with tracer.span(f"outer-{i}"):
                barrier.wait(timeout=10)
                with tracer.span(f"inner-{i}"):
                    pass

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        records = {r.name: r for r in tracer.finished()}
        assert len(records) == 8
        for i in range(4):
            assert records[f"inner-{i}"].parent_id == records[f"outer-{i}"].span_id
        tids = {records[f"outer-{i}"].tid for i in range(4)}
        assert len(tids) == 4


class TestNullTracer:
    def test_disabled_flag(self):
        assert NULL_TRACER.enabled is False
        assert Tracer().enabled is True

    def test_everything_is_a_noop(self):
        with NULL_TRACER.span("anything", category="x", rows=1) as span:
            assert span is _NULL_SPAN
            span.set(more=2)
        assert NULL_TRACER.finished() == []
        assert NULL_TRACER.current_span_id() is None
        assert NULL_TRACER.depth() == 0
        assert NULL_TRACER.drain_payload() == []
        assert NULL_TRACER.adopt([{"id": 1}]) == 0

    def test_null_span_is_shared(self):
        assert NULL_TRACER.span("a") is NULL_TRACER.span("b")


class TestPayloadRoundTrip:
    def test_record_payload_round_trip(self):
        record = SpanRecord(
            span_id=3, parent_id=1, name="n", category="c",
            start_us=10, duration_us=5, pid=42, tid=7, attrs={"k": "v"},
        )
        assert SpanRecord.from_payload(record.to_payload()) == record

    def test_drain_clears(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        payload = tracer.drain_payload()
        assert len(payload) == 1
        assert tracer.finished() == []

    def test_adopt_reparents_roots_and_remaps_ids(self):
        worker = Tracer()
        with worker.span("root", category="figure"):
            with worker.span("child"):
                pass
        payload = worker.drain_payload()

        parent = Tracer()
        with parent.span("figures") as anchor:
            adopted = parent.adopt(payload, parent=anchor.span_id)
        assert adopted == 2
        records = {r.name: r for r in parent.finished()}
        assert records["root"].parent_id == records["figures"].span_id
        assert records["child"].parent_id == records["root"].span_id
        # ids were remapped into the parent tracer's id space
        assert records["root"].span_id != records["child"].span_id
        assert records["root"].pid == os.getpid()  # preserved, same proc here

    def test_adopt_avoids_id_collisions(self):
        parent = Tracer()
        with parent.span("local"):  # takes id 1
            pass
        worker = Tracer()
        with worker.span("remote"):  # also id 1 in its own space
            pass
        parent.adopt(worker.drain_payload())
        ids = [r.span_id for r in parent.finished()]
        assert len(ids) == len(set(ids))


# ----------------------------------------------------------------------
# Property test: a random span forest serializes and re-parents
# losslessly across a simulated worker merge.
# ----------------------------------------------------------------------

_tree_shapes = st.lists(
    # each entry: parent index into the list of previously created
    # spans (None = root), i.e. a random forest in creation order
    st.one_of(st.none(), st.integers(min_value=0, max_value=30)),
    min_size=1,
    max_size=24,
)


def _build_worker_trace(shape):
    """Materialize a forest shape on a fresh tracer via adopt()."""
    payload = []
    for i, parent_ref in enumerate(shape):
        parent = None
        if parent_ref is not None and parent_ref < i:
            parent = parent_ref + 1  # ids are 1-based below
        payload.append(
            {
                "id": i + 1,
                "parent": parent,
                "name": f"span-{i}",
                "cat": "prop",
                "ts": 1000 + i,
                "dur": i,
                "pid": 999,
                "tid": 7,
                "attrs": {"i": i},
            }
        )
    return payload


@settings(max_examples=60, deadline=None)
@given(shape=_tree_shapes)
def test_adopt_preserves_tree_shape(shape):
    payload = _build_worker_trace(shape)
    session = Tracer()
    with session.span("figures") as anchor:
        adopted = session.adopt(payload, parent=anchor.span_id)
    assert adopted == len(payload)

    records = session.finished()
    by_name = {r.name: r for r in records}
    anchor_id = by_name["figures"].span_id

    # every original edge survives under the new ids; every original
    # root hangs off the anchor span
    for original in payload:
        merged = by_name[original["name"]]
        if original["parent"] is None:
            assert merged.parent_id == anchor_id
        else:
            parent_name = f"span-{original['parent'] - 1}"
            assert merged.parent_id == by_name[parent_name].span_id
        # timing, identity, and attributes are untouched
        assert merged.start_us == original["ts"]
        assert merged.duration_us == original["dur"]
        assert merged.pid == 999
        assert merged.tid == 7
        assert merged.attrs == original["attrs"]

    # and the merged trace has no duplicate ids
    ids = [r.span_id for r in records]
    assert len(ids) == len(set(ids))


@settings(max_examples=40, deadline=None)
@given(shape=_tree_shapes)
def test_payload_round_trip_is_lossless(shape):
    payload = _build_worker_trace(shape)
    records = [SpanRecord.from_payload(p) for p in payload]
    assert [r.to_payload() for r in records] == payload
