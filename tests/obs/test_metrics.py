"""MetricsRegistry: instrument semantics, label identity, snapshots,
and the cross-process merge rules (counters/histograms add, gauges
take the maximum)."""

import pickle

import pytest

from repro.obs import (
    COUNT_BUCKETS,
    DEFAULT_BUCKETS,
    NULL_METRICS,
    MetricsRegistry,
)


class TestInstruments:
    def test_counter_get_or_create(self):
        m = MetricsRegistry()
        a = m.counter("hits_total", kind="x")
        b = m.counter("hits_total", kind="x")
        assert a is b
        a.inc()
        b.inc(2.5)
        assert m.counter_value("hits_total", kind="x") == 3.5

    def test_labels_distinguish_series(self):
        m = MetricsRegistry()
        m.counter("c", kind="a").inc()
        m.counter("c", kind="b").inc(5)
        assert m.counter_value("c", kind="a") == 1
        assert m.counter_value("c", kind="b") == 5
        assert m.counter_value("c", kind="missing") == 0

    def test_label_order_does_not_matter(self):
        m = MetricsRegistry()
        assert m.counter("c", a="1", b="2") is m.counter("c", b="2", a="1")

    def test_label_values_are_stringified(self):
        m = MetricsRegistry()
        assert m.counter("c", backfill=True) is m.counter("c", backfill="True")

    def test_gauge_set_and_set_max(self):
        m = MetricsRegistry()
        g = m.gauge("depth")
        g.set(4)
        g.set_max(2)
        assert g.value == 4
        g.set_max(9)
        assert g.value == 9

    def test_histogram_buckets(self):
        m = MetricsRegistry()
        h = m.histogram("lat", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 0.5, 5.0, 50.0):
            h.observe(v)
        assert h.count == 5
        assert h.sum == pytest.approx(56.05)
        assert h.cumulative() == [
            (0.1, 1),
            (1.0, 3),
            (10.0, 4),
            (float("inf"), 5),
        ]

    def test_histogram_boundary_is_le(self):
        # Prometheus buckets are `le` (inclusive upper bounds).
        m = MetricsRegistry()
        h = m.histogram("lat", buckets=(1.0, 2.0))
        h.observe(1.0)
        assert h.cumulative()[0] == (1.0, 1)

    def test_kind_conflict_raises(self):
        m = MetricsRegistry()
        m.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            m.gauge("x")

    def test_help_text_kept_from_first_registration(self):
        m = MetricsRegistry()
        m.counter("x", help="first")
        m.counter("x", help="second")
        assert m.help_text("x") == "first"
        assert m.kind("x") == "counter"
        assert m.names() == ["x"]


class TestNullMetrics:
    def test_disabled_and_inert(self):
        assert NULL_METRICS.enabled is False
        NULL_METRICS.counter("c", kind="x").inc()
        NULL_METRICS.gauge("g").set(3)
        NULL_METRICS.histogram("h").observe(1.0)
        assert NULL_METRICS.snapshot() == {
            "counters": [], "gauges": [], "histograms": [],
        }
        NULL_METRICS.merge({"counters": [("c", (), 1.0)]})  # no-op

    def test_shared_instrument(self):
        assert NULL_METRICS.counter("a") is NULL_METRICS.histogram("b")


class TestSnapshotMerge:
    def _worker_registry(self):
        w = MetricsRegistry()
        w.counter("jobs_total", help="jobs", kind="gpu").inc(3)
        w.gauge("peak_queue").set(7)
        h = w.histogram("lat", buckets=(1.0, 10.0), stage="x")
        h.observe(0.5)
        h.observe(5.0)
        return w

    def test_snapshot_is_picklable(self):
        snap = self._worker_registry().snapshot()
        assert pickle.loads(pickle.dumps(snap)) == snap

    def test_drain_resets(self):
        w = self._worker_registry()
        snap = w.drain()
        assert snap["counters"]
        assert w.snapshot()["counters"] == []

    def test_merge_adds_counters_and_histograms(self):
        parent = MetricsRegistry()
        parent.counter("jobs_total", kind="gpu").inc(1)
        parent.merge(self._worker_registry().snapshot())
        parent.merge(self._worker_registry().snapshot())
        assert parent.counter_value("jobs_total", kind="gpu") == 7
        hist = parent.histogram("lat", buckets=(1.0, 10.0), stage="x")
        assert hist.count == 4
        assert hist.sum == pytest.approx(11.0)
        assert hist.cumulative() == [(1.0, 2), (10.0, 4), (float("inf"), 4)]

    def test_merge_takes_gauge_max(self):
        parent = MetricsRegistry()
        parent.gauge("peak_queue").set(9)
        parent.merge(self._worker_registry().snapshot())
        assert parent.gauge("peak_queue").value == 9
        low = MetricsRegistry()
        low.gauge("peak_queue").set(2)
        low.merge(self._worker_registry().snapshot())
        assert low.gauge("peak_queue").value == 7

    def test_merge_carries_help_text(self):
        parent = MetricsRegistry()
        parent.merge(self._worker_registry().snapshot())
        assert parent.help_text("jobs_total") == "jobs"


def test_default_bucket_sets_are_sorted():
    assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)
    assert list(COUNT_BUCKETS) == sorted(COUNT_BUCKETS)
