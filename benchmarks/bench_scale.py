"""Perf-smoke gates for the partitioned (sharded) full-scale build.

This is the suite that makes ``scale=1.0`` the *benchmarked default*:
it builds the paper-sized dataset as four cluster islands, twice —
once fanned across a 4-process pool, once serially in-process — and
gates on the refactor's two load-bearing promises:

* **bit identity** — the parallel and serial sharded builds produce
  the same dataset, table for table and series for series (this is
  the contract that makes ``--workers`` safe at any scale);
* **scaling** — on a machine with >= 4 cores the 4-worker build must
  be at least 2x faster than the serial one, and routing must keep
  the per-island job buckets balanced so no island serialises the
  pool.

A second module half gates the *streaming coupled* build that makes
10x-scale traces tractable: the same four islands, coupled through
migration interchange, built process-parallel with every island
spilling its tables to disk.  The parent consumes the k-way merged
chunk streams without ever materializing the dataset, and the gates
pin (a) figure-grade statistics bit-identical to the serial
materialized coupled build, (b) parent working memory bounded by a
chunk-size constant (independent of scale), (c) the same >= 2x
speedup at 4 workers on real parallel hardware, (d) the *entire*
figure registry running off the chunk streams with integer-count
stats bit identical and the parent peak at O(islands x chunk), and
(e) the spill codec: lossless round trips bit identical, and opt-in
telemetry quantisation cuts encoded spill bytes >= 3x below the raw
layout (both recorded as checked stats for ``--check``).

``REPRO_BENCH_SCALE_FULL`` shrinks or grows the build (default
``1.0``; the equality, balance, and memory gates hold at any scale).
It accepts either a plain scale (``0.25``) or an ``Nx`` multiplier —
``REPRO_BENCH_SCALE_FULL=10x`` opts into the 10x-scale streaming
build that motivated the sharded spill path.  Wall times, speedup,
migrations, and peak memory are reported via
:func:`repro.bench.record_bench_stat` so ``python -m repro bench``
records the trajectory and ``--check`` can flag regressions.

Monitoring is configured light (sparse time series): the gate targets
the workload + simulation spine, not sampling volume, and a full-scale
dense-series build would push the suite past ten minutes per run.
"""

from __future__ import annotations

import os
import time
import tracemalloc

import numpy as np
import pytest

from repro.bench import record_bench_stat
from repro.monitor.collector import MonitoringConfig
from repro.pipeline import Session
from repro.slurm.interchange import InterchangeConfig, route_requests
from repro.workload.generator import WorkloadConfig


def _parse_scale(raw: str) -> float:
    """``"0.25"`` is a scale; ``"10x"`` multiplies the 1.0 default."""
    raw = raw.strip().lower()
    if raw.endswith("x"):
        return float(raw[:-1])
    return float(raw)


FULL_SCALE = _parse_scale(os.environ.get("REPRO_BENCH_SCALE_FULL", "1.0"))
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "20220214"))
PARTITIONS = 4

#: The streaming coupled gate defaults to scale 2.0 — large enough
#: that materializing in the parent would visibly dominate RSS — and
#: follows any explicit REPRO_BENCH_SCALE_FULL in either direction:
#: ``10x`` opts into the 10x-scale streaming build, ``0.25`` shrinks
#: for constrained CI (every gate but the speedup is scale-free).
STREAM_SCALE = FULL_SCALE if FULL_SCALE != 1.0 else 2.0
STREAM_CHUNK_ROWS = 8192

LIGHT_MONITORING = MonitoringConfig(
    summary_samples=64, timeseries_fraction=0.004, timeseries_max_samples=500
)


def _num_nodes(scale: float = FULL_SCALE) -> int:
    # At scale 1.0 this is exactly the paper's 224-node machine.  At the
    # reduced REPRO_BENCH_SCALE_FULL values CI boxes use, grow the
    # configured machine so every island still has the 8 nodes the
    # largest (16-GPU) jobs need to place at all.
    import math

    return max(224, math.ceil(8 * PARTITIONS / scale))


def _build(workers: int) -> tuple[Session, float]:
    config = WorkloadConfig(
        scale=FULL_SCALE,
        seed=BENCH_SEED,
        num_nodes=_num_nodes(),
        partitions=PARTITIONS,
    )
    session = Session(config, LIGHT_MONITORING, workers=workers)
    start = time.perf_counter()
    session.dataset()
    return session, time.perf_counter() - start


@pytest.fixture(scope="module")
def builds():
    # Parallel first: the pool forks from a parent that has not yet
    # built anything, so each island's peak-RSS reading reflects the
    # island's own footprint instead of inherited parent pages.
    parallel_session, parallel_s = _build(workers=PARTITIONS)
    serial_session, serial_s = _build(workers=1)
    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
    island_rss = parallel_session.metrics.gauge(
        "repro_shard_island_peak_rss_bytes"
    ).value
    record_bench_stat(
        "scale_equivalence",
        scale=FULL_SCALE,
        partitions=PARTITIONS,
        workers=PARTITIONS,
        serial_s=round(serial_s, 3),
        parallel_s=round(parallel_s, 3),
        speedup=round(speedup, 3),
        island_peak_rss_bytes=island_rss,
        cpu_count=os.cpu_count(),
        jobs=serial_session.dataset().jobs.num_rows,
    )
    return parallel_session, serial_session, parallel_s, serial_s


def test_parallel_build_is_bit_identical(builds):
    """Gate: unconditional, at any scale and on any core count."""
    parallel_session, serial_session, _, _ = builds
    serial = serial_session.dataset()
    parallel = parallel_session.dataset()
    assert serial.jobs.to_dict() == parallel.jobs.to_dict()
    assert serial.gpu_jobs.to_dict() == parallel.gpu_jobs.to_dict()
    assert serial.per_gpu.to_dict() == parallel.per_gpu.to_dict()
    assert len(serial.timeseries) == len(parallel.timeseries)
    for series in serial.timeseries:
        twin = parallel.timeseries.get(series.job_id, series.gpu_index)
        assert np.array_equal(series.times_s, twin.times_s)
        for name, values in series.metrics.items():
            assert np.array_equal(values, twin.metrics[name]), name


def test_island_rss_stays_bounded(builds):
    """Gate: a worker holds its own island, not the merged dataset."""
    from repro.obs.runtime import peak_rss_bytes

    parallel_session, _, _, _ = builds
    island_rss = parallel_session.metrics.gauge(
        "repro_shard_island_peak_rss_bytes"
    ).value
    assert island_rss > 0
    runner_rss = peak_rss_bytes()
    assert island_rss <= max(runner_rss, 1.0), (
        f"island RSS {island_rss:.0f} exceeds the merged-build runner "
        f"peak {runner_rss:.0f}"
    )


def test_four_workers_scale(builds):
    """Gate: >= 2x at 4 workers — needs real parallel hardware."""
    _, _, parallel_s, serial_s = builds
    cores = os.cpu_count() or 1
    if cores < 4:
        pytest.skip(f"speedup gate needs >= 4 cores, machine has {cores}")
    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
    assert speedup >= 2.0, (
        f"4-worker sharded build only {speedup:.2f}x faster than serial "
        f"({parallel_s:.1f}s vs {serial_s:.1f}s) on {cores} cores"
    )


def test_island_buckets_stay_balanced(builds):
    """Cohort routing must not let one island serialise the pool."""
    _, serial_session, _, _ = builds
    requests = [record.request for record in serial_session.dataset().records]
    buckets = route_requests(requests, PARTITIONS)
    sizes = [len(bucket) for bucket in buckets]
    mean = sum(sizes) / len(sizes)
    record_bench_stat(
        "island_balance",
        bucket_sizes=sizes,
        max_over_mean=round(max(sizes) / mean, 3),
    )
    assert min(sizes) > 0, f"empty island bucket: {sizes}"
    # GPU-hour-heavy users skew buckets; 2.5x mean still keeps the
    # pool's critical path well under serial.
    assert max(sizes) <= 2.5 * mean, f"island buckets unbalanced: {sizes}"


# ----------------------------------------------------------------------
# Streaming coupled islands: the 10x-scale build path
# ----------------------------------------------------------------------

#: Coupling for the streaming gate: migration interchange forces the
#: islands into lockstep epochs, so the build exercises the
#: process-parallel epoch protocol, not just the embarrassing fan-out.
STREAM_INTERCHANGE = InterchangeConfig(epoch_s=6 * 3600.0, migrate_after_s=3600.0)


def _stream_config() -> WorkloadConfig:
    return WorkloadConfig(
        scale=STREAM_SCALE,
        seed=BENCH_SEED,
        num_nodes=_num_nodes(STREAM_SCALE),
        partitions=PARTITIONS,
    )


@pytest.fixture(scope="module")
def coupled_builds():
    """Streaming process-parallel coupled build vs serial materialized.

    The parallel build spills every island table to disk and hands the
    parent only chunk-stream handles; the serial build runs the same
    coupled lockstep in-process and materializes, providing the ground
    truth the bit-identity gate compares against.

    The parallel build runs with a live progress sink installed — the
    heartbeat side channel promises to be observation-only, so the
    bit-identity gate downstream is also the proof that watching a
    build never changes it.
    """
    from repro.obs.progress import ProgressAggregator, use_sink

    config = _stream_config()
    stream_session = Session(
        config, LIGHT_MONITORING, workers=PARTITIONS, interchange=STREAM_INTERCHANGE
    )
    progress = ProgressAggregator()
    start = time.perf_counter()
    with use_sink(progress):
        stream = stream_session.streaming_dataset(chunk_rows=STREAM_CHUNK_ROWS)
    parallel_s = time.perf_counter() - start

    serial_session = Session(
        config, LIGHT_MONITORING, workers=1, interchange=STREAM_INTERCHANGE
    )
    start = time.perf_counter()
    serial = serial_session.dataset()
    serial_s = time.perf_counter() - start

    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
    record_bench_stat(
        "stream_coupled",
        scale=STREAM_SCALE,
        partitions=PARTITIONS,
        workers=PARTITIONS,
        chunk_rows=STREAM_CHUNK_ROWS,
        serial_s=round(serial_s, 3),
        parallel_s=round(parallel_s, 3),
        speedup=round(speedup, 3),
        rows_per_s=round(serial.jobs.num_rows / max(parallel_s, 1e-9), 1),
        migrations=stream_session.metrics.counter_value(
            "repro_shard_migrations_total"
        ),
        island_peak_rss_bytes=stream_session.metrics.gauge(
            "repro_shard_island_peak_rss_bytes"
        ).value,
        heartbeats=progress.heartbeats,
        cpu_count=os.cpu_count(),
        jobs=serial.jobs.num_rows,
    )
    return stream_session, serial_session, stream, serial, parallel_s, serial_s, progress


def _assert_stream_matches_table(stream_table, serial_table) -> None:
    """Chunk-wise bit-identity without materializing the stream."""
    columns = {
        name: np.asarray(serial_table[name]) for name in serial_table.column_names
    }
    offset = 0
    for chunk in stream_table.chunks():
        assert tuple(chunk.column_names) == tuple(serial_table.column_names)
        for name in chunk.column_names:
            expected = columns[name][offset : offset + chunk.num_rows]
            assert np.array_equal(np.asarray(chunk[name]), expected), name
        offset += chunk.num_rows
    assert offset == serial_table.num_rows


def test_coupled_stream_is_bit_identical(coupled_builds):
    """Gate: the streaming build is the serial build, chunk for chunk.

    Compares every table row-for-row against the serial materialized
    coupled build (same interchange, same epochs) while only ever
    holding one chunk of the stream, plus the figure-grade statistics
    the streaming view exists to serve.
    """
    _, _, stream, serial, _, _, _ = coupled_builds
    assert stream.is_streaming and not serial.is_streaming
    _assert_stream_matches_table(stream.jobs, serial.jobs)
    _assert_stream_matches_table(stream.gpu_jobs, serial.gpu_jobs)
    _assert_stream_matches_table(stream.per_gpu, serial.per_gpu)
    assert stream.num_users == serial.num_users
    assert len(stream.timeseries) == len(serial.timeseries)
    for series in serial.timeseries:
        twin = stream.timeseries.get(series.job_id, series.gpu_index)
        assert np.array_equal(series.times_s, twin.times_s)
        for name, values in series.metrics.items():
            assert np.array_equal(values, twin.metrics[name]), name

    from repro.figures import fig05

    exact = fig05.run(serial)
    streamed = fig05.run(stream)
    for ours, theirs in zip(exact.comparisons, streamed.comparisons):
        assert ours.name == theirs.name
        if "job share" in ours.name:
            assert ours.measured == theirs.measured, ours.name


def test_coupled_stream_parent_memory_bounded(coupled_builds):
    """Gate: consuming the merged streams costs O(chunk), not O(scale).

    tracemalloc sees every numpy buffer the parent touches while it
    k-way merges the island spills, merge-joins the assemble verbs,
    and sketches a figure-grade CDF.  The budget is a constant
    multiple of the chunk footprint — it does not grow with
    ``STREAM_SCALE``, which is the whole point of the spill path.
    """
    from repro.analysis.stats import column_ecdf, column_fraction

    _, _, stream, _, _, _, _ = coupled_builds
    # ~50 columns of float64 per row is a generous upper bound on the
    # widest assembled table (per_gpu + job context).
    chunk_bytes = STREAM_CHUNK_ROWS * 50 * 8

    tracemalloc.start()
    tracemalloc.reset_peak()
    sketch = column_ecdf(stream.gpu_jobs, "sm_mean")
    short_share = column_fraction(
        stream.jobs, "run_time_s", lambda r: r < 3600.0
    )
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    record_bench_stat(
        "stream_coupled_memory",
        parent_peak_tracemalloc_bytes=int(peak),
        chunk_bytes=chunk_bytes,
        sketch_samples=sketch.num_samples,
    )
    assert 0.0 < short_share < 1.0
    assert peak < 48 * chunk_bytes, (
        f"parent consumption peaked at {peak / 1e6:.1f} MB; budget "
        f"{48 * chunk_bytes / 1e6:.1f} MB (48x one "
        f"{STREAM_CHUNK_ROWS}-row chunk)"
    )


def test_coupled_build_emits_live_heartbeats(coupled_builds):
    """Gate: every island reported live telemetry during the build.

    The heartbeats must carry a moving epoch counter and the worker's
    peak RSS — the fields ``--progress`` renders — and their arrival
    must not have perturbed the build (the bit-identity gate above ran
    against this same watched build).
    """
    _, _, _, _, _, _, progress = coupled_builds
    islands = progress.islands()
    assert {hb.island for hb in islands} == set(range(PARTITIONS))
    assert progress.heartbeats >= PARTITIONS
    for hb in islands:
        assert hb.epoch > 0
        assert hb.peak_rss_bytes > 0
    assert "island" in progress.render()


def test_coupled_parallel_speedup(coupled_builds):
    """Gate: >= 2x at 4 workers — needs real parallel hardware."""
    _, _, _, _, parallel_s, serial_s, _ = coupled_builds
    cores = os.cpu_count() or 1
    if cores < 4:
        pytest.skip(f"speedup gate needs >= 4 cores, machine has {cores}")
    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
    assert speedup >= 2.0, (
        f"4-worker coupled streaming build only {speedup:.2f}x faster "
        f"than serial ({parallel_s:.1f}s vs {serial_s:.1f}s) on {cores} cores"
    )


# ----------------------------------------------------------------------
# Full figure registry on the streaming build
# ----------------------------------------------------------------------

#: Comparison names whose measured value is a ratio of integer counts.
#: These accumulate exactly on the chunk stream, so the streaming build
#: must reproduce them bit for bit (float-sum shares and sketched
#: quantiles are checked to tolerance instead).
_EXACT_STAT_MARKERS = (
    "waiting <1 min",
    "waiting >1 min",
    "job share",
    "job fraction",
    "jobs with >",
    "users with",
    "unimpacted",
    "avg-impacted",
)


def test_stream_runs_full_figure_registry(coupled_builds):
    """Gate: every registered figure runs off the streaming build.

    No figure may materialize the dataset: the whole registry runs
    against the k-way merged chunk streams under one tracemalloc
    window, and the parent's peak must stay a constant multiple of
    ``islands x chunk`` — independent of ``STREAM_SCALE``.  Against the
    serial materialized ground truth, integer-count statistics are bit
    identical, everything else agrees to figure-grade tolerance, and a
    representative sketched median sits within the sketch's tracked
    rank-error bound of the exact sample ranks.
    """
    from repro.analysis.stats import column_ecdf
    from repro.figures.registry import all_figures, get_figure

    _, _, stream, serial, _, _, _ = coupled_builds
    chunk_bytes = STREAM_CHUNK_ROWS * 50 * 8

    serial_results = {fid: get_figure(fid)(serial) for fid in all_figures()}

    tracemalloc.start()
    tracemalloc.reset_peak()
    start = time.perf_counter()
    stream_results = {fid: get_figure(fid)(stream) for fid in all_figures()}
    elapsed = time.perf_counter() - start
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    assert stream.is_streaming, "a figure producer materialized the view"
    budget = 16 * PARTITIONS * chunk_bytes
    assert peak < budget, (
        f"figure registry over the stream peaked at {peak / 1e6:.1f} MB; "
        f"budget {budget / 1e6:.1f} MB (16 x {PARTITIONS} islands x one "
        f"{STREAM_CHUNK_ROWS}-row chunk)"
    )

    exact_checked = 0
    for fid, exact in serial_results.items():
        streamed = stream_results[fid]
        assert [c.name for c in exact.comparisons] == [
            c.name for c in streamed.comparisons
        ], fid
        for ours, theirs in zip(exact.comparisons, streamed.comparisons):
            if any(marker in ours.name for marker in _EXACT_STAT_MARKERS):
                assert ours.measured == theirs.measured, f"{fid}: {ours.name}"
                exact_checked += 1
            elif np.isnan(ours.measured):
                assert np.isnan(theirs.measured), f"{fid}: {ours.name}"
            else:
                assert theirs.measured == pytest.approx(
                    ours.measured, rel=0.05, abs=0.75
                ), f"{fid}: {ours.name}"
    assert exact_checked >= 8, "exact-stat marker list matched too few stats"

    sketch = column_ecdf(stream.per_gpu, "power_w_mean")
    exact_values = np.asarray(serial.per_gpu["power_w_mean"], dtype=float)
    exact_values = np.sort(exact_values[np.isfinite(exact_values)])
    bound = sketch.rank_error_bound()
    true_rank = np.searchsorted(exact_values, sketch.median(), side="right")
    assert abs(true_rank - 0.5 * exact_values.size) <= bound + 1, (
        f"sketched median at rank {true_rank}, target "
        f"{0.5 * exact_values.size:.0f}, bound {bound}"
    )

    record_bench_stat(
        "stream_figure_registry",
        figures=len(stream_results),
        exact_stats=exact_checked,
        parent_peak_tracemalloc_bytes=int(peak),
        chunk_bytes=chunk_bytes,
        seconds=round(elapsed, 3),
        rank_error_bound=int(bound),
    )


# ----------------------------------------------------------------------
# Spill codec: lossless bit identity, opt-in quantisation ratio
# ----------------------------------------------------------------------


def test_spill_codec_compresses_telemetry(coupled_builds, tmp_path_factory):
    """Gate: the codec pays for the spill path on the streaming build.

    Re-spilling the streaming build's widest table through the default
    lossless codec must round-trip bit identically, chunk for chunk.
    Opting the telemetry summary columns (``*_min/_mean/_max``) into
    quantisation must cut the encoded spill bytes at least 3x below
    the raw layout while staying within ``QUANT_STEP / 2`` of every
    original sample.  Both ratios and the encoded byte volumes are
    recorded as checked stats, so ``repro bench --check`` flags a
    codec or schema change that silently bloats the spill.
    """
    from pathlib import Path

    from repro.frame.codec import QUANT_STEP, SpillCodec
    from repro.frame.io import table_raw_bytes

    _, _, stream, _, _, _, _ = coupled_builds
    base = tmp_path_factory.mktemp("spill-codec")
    source = stream.per_gpu

    lossless_dir = base / "lossless"
    lossless = source.spill(lossless_dir)
    raw_bytes = 0
    for original, decoded in zip(source.chunks(), lossless.chunks()):
        raw_bytes += table_raw_bytes(original)
        assert tuple(original.column_names) == tuple(decoded.column_names)
        for name in original.column_names:
            np.testing.assert_array_equal(
                np.asarray(decoded[name]), np.asarray(original[name]), name
            )
    lossless_bytes = sum(p.stat().st_size for p in Path(lossless_dir).glob("*.npz"))

    telemetry = tuple(
        name
        for name in source.column_names
        if name.rsplit("_", 1)[-1] in ("min", "mean", "max")
    )
    assert telemetry, "per_gpu lost its telemetry summary columns"
    quant_dir = base / "quantised"
    quantised = source.spill(quant_dir, codec=SpillCodec(quantise=telemetry))
    for original, decoded in zip(source.chunks(), quantised.chunks()):
        for name in original.column_names:
            expected = np.asarray(original[name])
            got = np.asarray(decoded[name])
            if name in telemetry:
                finite = np.isfinite(expected.astype(float))
                assert np.all(
                    np.abs(got[finite].astype(float) - expected[finite].astype(float))
                    <= QUANT_STEP / 2 + 1e-9
                ), name
            else:
                np.testing.assert_array_equal(got, expected, name)
    quantised_bytes = sum(p.stat().st_size for p in Path(quant_dir).glob("*.npz"))

    lossless_ratio = raw_bytes / lossless_bytes if lossless_bytes else 0.0
    quantised_ratio = raw_bytes / quantised_bytes if quantised_bytes else 0.0
    record_bench_stat(
        "spill_codec",
        raw_bytes=raw_bytes,
        lossless_spill_bytes=lossless_bytes,
        quantised_spill_bytes=quantised_bytes,
        lossless_compression_ratio=round(lossless_ratio, 3),
        compression_ratio=round(quantised_ratio, 3),
    )
    assert lossless_ratio > 1.0, "lossless codec failed to beat the raw layout"
    assert quantised_ratio >= 3.0, (
        f"opt-in quantisation only reached {quantised_ratio:.2f}x over raw "
        f"({quantised_bytes} vs {raw_bytes} bytes); the spill codec no "
        "longer pays for the streaming build"
    )
