"""Shape tests: the generated dataset vs the paper's statistics.

These are the reproduction-quality gates.  Tolerances are wide (the
paper's numbers come from one 125-day production sample; ours come
from a scaled-down synthetic draw) but orderings and rough magnitudes
must hold.
"""

import numpy as np
import pytest

from repro.workload.calibration import PAPER_TARGETS


@pytest.fixture(scope="session")
def g(gpu_jobs):
    return gpu_jobs


def column(table, name):
    return np.asarray(table[name], dtype=float)


class TestRuntimes:
    def test_gpu_median_within_2x(self, g):
        median_min = np.median(column(g, "run_time_s")) / 60.0
        assert PAPER_TARGETS.gpu_runtime_median_min / 2 <= median_min <= PAPER_TARGETS.gpu_runtime_median_min * 2

    def test_runtime_spread_is_wide(self, g):
        rt = column(g, "run_time_s")
        assert np.percentile(rt, 75) / np.percentile(rt, 25) > 5.0

    def test_cpu_jobs_shorter_than_gpu_jobs(self, medium_dataset, g):
        cpu = medium_dataset.jobs.filter(lambda t: np.asarray(t["num_gpus"]) == 0)
        assert np.median(column(cpu, "run_time_s")) < np.median(column(g, "run_time_s"))

    def test_thirty_second_filter_applied(self, g):
        assert column(g, "run_time_s").min() >= PAPER_TARGETS.short_job_filter_s


class TestQueueWaits:
    def test_most_gpu_jobs_wait_under_a_minute(self, g):
        waits = column(g, "wait_time_s")
        assert (waits < 60.0).mean() >= PAPER_TARGETS.gpu_jobs_wait_below_1min

    def test_majority_gpu_jobs_wait_under_2pct_of_service(self, g):
        frac = column(g, "wait_fraction")
        assert (frac < 0.02).mean() >= PAPER_TARGETS.gpu_jobs_wait_below_2pct_service

    def test_cpu_jobs_wait_longer(self, medium_dataset, g):
        cpu = medium_dataset.jobs.filter(lambda t: np.asarray(t["num_gpus"]) == 0)
        assert np.median(column(cpu, "wait_time_s")) > np.median(column(g, "wait_time_s"))

    def test_cpu_jobs_rarely_under_2pct(self, medium_dataset):
        cpu = medium_dataset.jobs.filter(lambda t: np.asarray(t["num_gpus"]) == 0)
        frac = column(cpu, "wait_fraction")
        assert (frac < 0.02).mean() <= 0.45  # paper: < 0.20


class TestUtilization:
    def test_sm_median_low_but_nonzero(self, g):
        median = np.median(column(g, "sm_mean"))
        assert 4.0 <= median <= 25.0  # paper: 16

    def test_mem_bw_lower_than_sm(self, g):
        assert np.median(column(g, "mem_bw_mean")) < np.median(column(g, "sm_mean"))

    def test_fraction_sm_above_50(self, g):
        frac = (column(g, "sm_mean") > 50.0).mean()
        assert 0.08 <= frac <= 0.35  # paper: 0.20

    def test_fraction_mem_above_50(self, g):
        frac = (column(g, "mem_bw_mean") > 50.0).mean()
        assert frac <= 0.10  # paper: 0.04

    def test_mem_size_median(self, g):
        median = np.median(column(g, "mem_size_mean"))
        assert 4.0 <= median <= 18.0  # paper: 9

    def test_utilization_in_percent_range(self, g):
        for name in ("sm_mean", "mem_bw_mean", "mem_size_mean", "sm_max"):
            values = column(g, name)
            assert values.min() >= 0.0
            assert values.max() <= 100.0


class TestPower:
    def test_avg_power_median(self, g):
        median = np.median(column(g, "power_w_mean"))
        assert median == pytest.approx(PAPER_TARGETS.avg_power_median_w, rel=0.35)

    def test_max_power_median(self, g):
        median = np.median(column(g, "power_w_max"))
        assert median == pytest.approx(PAPER_TARGETS.max_power_median_w, rel=0.45)

    def test_power_within_board_limits(self, g):
        assert column(g, "power_w_max").max() <= 300.0
        assert column(g, "power_w_min").min() >= 0.0

    def test_most_jobs_unimpacted_at_150w(self, g):
        unimpacted = (column(g, "power_w_max") < 150.0).mean()
        # paper: "over 60%"; allow seed noise at reduced scale
        assert unimpacted >= PAPER_TARGETS.unimpacted_at_150w_cap - 0.08

    def test_few_jobs_avg_impacted_at_150w(self, g):
        impacted = (column(g, "power_w_mean") >= 150.0).mean()
        assert impacted <= PAPER_TARGETS.avg_impacted_at_150w_cap


class TestLifecycleMix:
    def test_class_shares(self, g):
        classes = np.asarray(list(g["lifecycle_class"]))
        for cls, share in PAPER_TARGETS.class_shares.items():
            measured = (classes == cls).mean()
            assert measured == pytest.approx(share, abs=max(0.4 * share, 0.02)), cls

    def test_nonmature_hours_dominate_mature_job_share(self, g):
        classes = np.asarray(list(g["lifecycle_class"]))
        hours = column(g, "gpu_hours")
        mature_hours = hours[classes == "mature"].sum() / hours.sum()
        mature_jobs = (classes == "mature").mean()
        # the paper's headline: mature jobs are 60% of jobs but only
        # ~39% of GPU hours
        assert mature_hours < mature_jobs

    def test_ide_hours_disproportionate(self, g):
        classes = np.asarray(list(g["lifecycle_class"]))
        hours = column(g, "gpu_hours")
        ide_hours = hours[classes == "ide"].sum() / hours.sum()
        ide_jobs = (classes == "ide").mean()
        assert ide_hours > 2.0 * ide_jobs

    def test_dev_and_ide_barely_use_gpus(self, g):
        classes = np.asarray(list(g["lifecycle_class"]))
        sm = column(g, "sm_mean")
        assert np.median(sm[np.isin(classes, ("development", "ide"))]) < 2.0

    def test_exploratory_runs_longer_than_mature(self, g):
        classes = np.asarray(list(g["lifecycle_class"]))
        rt = column(g, "run_time_s")
        assert np.median(rt[classes == "exploratory"]) > np.median(rt[classes == "mature"])


class TestMultiGpu:
    def test_single_gpu_share(self, g):
        counts = column(g, "num_gpus")
        assert (counts == 1).mean() == pytest.approx(0.84, abs=0.06)

    def test_large_jobs_rare(self, g):
        counts = column(g, "num_gpus")
        assert (counts >= 9).mean() < 0.02

    def test_multi_gpu_hour_share(self, g):
        counts = column(g, "num_gpus")
        hours = column(g, "gpu_hours")
        share = hours[counts > 1].sum() / hours.sum()
        assert 0.3 <= share <= 0.65  # paper: 0.50


class TestDatasetBookkeeping:
    def test_described_counts_consistent(self, medium_dataset):
        text = medium_dataset.describe()
        assert str(len(medium_dataset.gpu_jobs)) in text

    def test_timeseries_subset_fraction(self, medium_dataset):
        expected = len(medium_dataset.gpu_jobs) * (2149.0 / 47120.0)
        assert len(medium_dataset.timeseries.job_ids()) == pytest.approx(expected, rel=0.4)

    def test_per_gpu_rows_cover_gpu_counts(self, medium_dataset):
        per_gpu_ids = set(medium_dataset.per_gpu["job_id"])
        job_ids = set(medium_dataset.gpu_jobs["job_id"])
        assert job_ids <= per_gpu_ids
