"""Time-series containers for sampled GPU telemetry."""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

import numpy as np

from repro.errors import MonitoringError

#: Series per spill batch file: small enough that loading one batch
#: stays bounded, large enough to amortize the zip overhead.
SPILL_BATCH_SERIES = 64
_SPILL_MANIFEST = "manifest.json"
_SPILL_FORMAT_VERSION = 1

#: Metrics reported per GPU sample, in nvidia-smi naming order:
#: SM utilization (%), memory-bandwidth utilization (%), memory-size
#: utilization (%), PCIe Tx/Rx bandwidth utilization (%), power (W).
METRIC_NAMES = ("sm", "mem_bw", "mem_size", "pcie_tx", "pcie_rx", "power_w")


@dataclass
class GpuTimeSeries:
    """Sampled telemetry for one GPU of one job.

    ``times_s`` are offsets from job start; ``metrics`` maps metric
    name to an equal-length float array.
    """

    job_id: int
    gpu_index: int
    times_s: np.ndarray
    metrics: dict[str, np.ndarray]

    def __post_init__(self) -> None:
        n = len(self.times_s)
        for name in METRIC_NAMES:
            if name not in self.metrics:
                raise MonitoringError(f"series for job {self.job_id} missing metric {name!r}")
            if len(self.metrics[name]) != n:
                raise MonitoringError(
                    f"metric {name!r} has {len(self.metrics[name])} samples, expected {n}"
                )

    @property
    def num_samples(self) -> int:
        return len(self.times_s)

    @property
    def duration_s(self) -> float:
        if self.num_samples == 0:
            return 0.0
        return float(self.times_s[-1] - self.times_s[0])

    def metric(self, name: str) -> np.ndarray:
        if name not in self.metrics:
            raise MonitoringError(f"unknown metric {name!r}")
        return self.metrics[name]

    def summary(self) -> dict[str, float]:
        """min/mean/max per metric — the paper's production summary."""
        out: dict[str, float] = {}
        for name in METRIC_NAMES:
            values = self.metrics[name]
            if values.size == 0:
                out[f"{name}_min"] = out[f"{name}_mean"] = out[f"{name}_max"] = float("nan")
            else:
                out[f"{name}_min"] = float(values.min())
                out[f"{name}_mean"] = float(values.mean())
                out[f"{name}_max"] = float(values.max())
        return out


class TimeSeriesStore:
    """Central store of full-resolution series, keyed by (job, gpu)."""

    def __init__(self) -> None:
        self._series: dict[tuple[int, int], GpuTimeSeries] = {}

    def add(self, series: GpuTimeSeries) -> None:
        key = (series.job_id, series.gpu_index)
        if key in self._series:
            raise MonitoringError(f"duplicate series for job {key[0]} GPU {key[1]}")
        self._series[key] = series

    def __len__(self) -> int:
        return len(self._series)

    def merge_from(self, other: "TimeSeriesStore") -> None:
        """Absorb another store's series (duplicate keys are an error).

        The partitioned build keeps one store per cluster island; job
        ids are globally unique, so island stores are disjoint and the
        merge is a plain union.
        """
        for series in other:
            self.add(series)

    @classmethod
    def merged(cls, stores: "Iterable[TimeSeriesStore]") -> "TimeSeriesStore":
        """Union of several disjoint stores (island merge)."""
        out = cls()
        for store in stores:
            out.merge_from(store)
        return out

    def job_ids(self) -> list[int]:
        """Distinct job ids with at least one stored series."""
        return sorted({job_id for job_id, _ in self._series})

    def series_for_job(self, job_id: int) -> list[GpuTimeSeries]:
        return [s for (jid, _), s in sorted(self._series.items()) if jid == job_id]

    def get(self, job_id: int, gpu_index: int) -> GpuTimeSeries:
        key = (job_id, gpu_index)
        if key not in self._series:
            raise MonitoringError(f"no series for job {job_id} GPU {gpu_index}")
        return self._series[key]

    def __iter__(self) -> Iterator[GpuTimeSeries]:
        return iter(self._series.values())

    def iter_sorted(self) -> Iterator[GpuTimeSeries]:
        """Series in global ``(job_id, gpu_index)`` order.

        The one-pass analysis folds (:mod:`repro.analysis.phases`)
        rely on this grouping so they can hold one job's candidates at
        a time.
        """
        for key in sorted(self._series):
            yield self._series[key]

    def total_samples(self) -> int:
        return sum(s.num_samples for s in self._series.values())

    def scan_table(self, chunk_rows: int = 65536) -> "ChunkedTable":
        """Stream every stored sample as one long chunked table.

        Columns: ``job_id``, ``gpu_index``, ``time_s`` plus every
        metric in :data:`METRIC_NAMES`, one row per sample, series in
        ``(job_id, gpu_index)`` order.  Series are batched until a
        chunk reaches ``chunk_rows`` rows, so the percentile/CDF
        figures can digest arbitrarily long telemetry with one chunk
        resident at a time.
        """
        from repro.frame import ChunkedTable, Table

        keys = sorted(self._series)

        def produce() -> Iterator[Table]:
            batch: list[GpuTimeSeries] = []
            staged = 0
            for key in keys:
                series = self._series[key]
                if series.num_samples == 0:
                    continue
                batch.append(series)
                staged += series.num_samples
                if staged >= chunk_rows:
                    yield _series_table(batch)
                    batch, staged = [], 0
            if batch:
                yield _series_table(batch)

        return ChunkedTable(produce, num_rows=self.total_samples())

    def spill(
        self, directory: str | Path, codec: "object | None | str" = "default"
    ) -> "SpilledTimeSeriesStore":
        """Write every series to batched ``.npz`` files; return the view.

        By default the batch members are written through the lossless
        spill codec — exact run-length encoding where idle dwells make
        it win, raw arrays otherwise — so the streaming build hands
        figure code bit-identical samples to what the in-memory store
        holds.  A :class:`~repro.frame.SpillCodec` with ``quantise=``
        metric names opts those arrays into the lossy
        quantise+delta+RLE transform of :mod:`repro.monitor.codec`
        (max error ``QUANT_STEP/2``); ``codec=None`` writes the legacy
        raw-array layout.  Batches of :data:`SPILL_BATCH_SERIES` series
        land in ``batch_%06d.npz`` with a JSON manifest, and the
        returned :class:`SpilledTimeSeriesStore` loads one batch member
        at a time on access.  Spill traffic counts into the
        ``repro_frame_spill_*`` byte counters.
        """
        from repro.frame.codec import LOSSLESS, encode_column
        from repro.obs.runtime import get_metrics, record_event

        if codec == "default":
            codec = LOSSLESS
        target = Path(directory)
        target.mkdir(parents=True, exist_ok=True)
        keys = sorted(self._series)
        files: list[dict] = []
        raw_bytes = 0
        encoded_bytes = 0
        for start in range(0, len(keys), SPILL_BATCH_SERIES):
            batch_keys = keys[start : start + SPILL_BATCH_SERIES]
            name = f"batch_{len(files):06d}.npz"
            payload: dict[str, np.ndarray] = {}
            entries: list[list[int]] = []
            for job_id, gpu_index in batch_keys:
                series = self._series[(job_id, gpu_index)]
                prefix = f"s{job_id}_{gpu_index}/"
                arrays = [("times_s", np.asarray(series.times_s, dtype=float))]
                arrays += [
                    (metric, np.asarray(series.metrics[metric], dtype=float))
                    for metric in METRIC_NAMES
                ]
                for label, values in arrays:
                    raw_bytes += values.nbytes
                    if codec is None:
                        payload[prefix + label] = values
                        continue
                    scheme, parts = encode_column(
                        values, quantise=label in codec.quantise
                    )
                    if scheme == "rle":
                        payload[prefix + label + "#rle_v"] = parts["v"]
                        payload[prefix + label + "#rle_l"] = parts["l"]
                    elif scheme == "quant":
                        payload[prefix + label + "#q_v"] = parts["v"]
                        payload[prefix + label + "#q_l"] = parts["l"]
                    else:
                        payload[prefix + label] = values
                entries.append([job_id, gpu_index, series.num_samples])
            path = target / name
            np.savez_compressed(path, **payload)
            encoded_bytes += path.stat().st_size
            files.append({"name": name, "series": entries})
        manifest = {"format_version": _SPILL_FORMAT_VERSION, "files": files}
        (target / _SPILL_MANIFEST).write_text(json.dumps(manifest))
        metrics = get_metrics()
        if metrics.enabled:
            metrics.counter(
                "repro_frame_spill_chunks_total",
                help="table chunks spilled to disk by the streaming engine",
            ).inc(len(files))
            metrics.counter(
                "repro_frame_spill_bytes_total",
                help="bytes of spill files written by the streaming engine (encoded)",
            ).inc(encoded_bytes)
            metrics.counter(
                "repro_frame_spill_raw_bytes_total",
                help="bytes the raw (uncodec'd) spill layout would have written",
            ).inc(raw_bytes)
        if codec is not None:
            record_event(
                "frame.spill.codec",
                category="monitor",
                directory=str(target),
                raw_bytes=raw_bytes,
                encoded_bytes=encoded_bytes,
                ratio=round(raw_bytes / encoded_bytes, 3) if encoded_bytes else 0.0,
            )
        return SpilledTimeSeriesStore([target])


class SpilledTimeSeriesStore:
    """Disk-backed union of spilled series directories.

    Duck-types the read side of :class:`TimeSeriesStore` (``job_ids``,
    ``series_for_job``, ``get``, iteration, ``total_samples``,
    ``scan_table``) while keeping at most one batch file open per
    directory; figure code runs unchanged against either store.  The
    partitioned build spills one directory per island and unions them
    here — job ids are globally unique, so duplicate keys mean a bug
    and raise.
    """

    def __init__(self, directories: "Iterable[str | Path]") -> None:
        #: (job_id, gpu_index) -> (batch file path, num_samples)
        self._index: dict[tuple[int, int], tuple[Path, int]] = {}
        self.directories = tuple(Path(d) for d in directories)
        for directory in self.directories:
            manifest_path = directory / _SPILL_MANIFEST
            if not manifest_path.is_file():
                raise MonitoringError(f"no spill manifest in {directory}")
            manifest = json.loads(manifest_path.read_text())
            version = int(manifest.get("format_version", -1))
            if version != _SPILL_FORMAT_VERSION:
                raise MonitoringError(
                    f"unsupported spill format version {version} in {directory}"
                )
            for entry in manifest["files"]:
                path = directory / entry["name"]
                for job_id, gpu_index, num_samples in entry["series"]:
                    key = (int(job_id), int(gpu_index))
                    if key in self._index:
                        raise MonitoringError(
                            f"duplicate spilled series for job {key[0]} GPU {key[1]}"
                        )
                    self._index[key] = (path, int(num_samples))
        self._open_path: Path | None = None
        self._open_file: "np.lib.npyio.NpzFile | None" = None
        self._open_members: frozenset[str] = frozenset()

    @classmethod
    def union(cls, stores: "Iterable[SpilledTimeSeriesStore]") -> "SpilledTimeSeriesStore":
        """One view over several spilled stores (the island merge)."""
        return cls(
            directory for store in stores for directory in store.directories
        )

    def _batch(self, path: Path) -> "np.lib.npyio.NpzFile":
        if self._open_path != path:
            if self._open_file is not None:
                self._open_file.close()
            self._open_file = np.load(path)
            self._open_path = path
            self._open_members = frozenset(self._open_file.files)
        return self._open_file

    def _read_array(self, batch, key: str) -> np.ndarray:
        """Decode one spilled array, whatever scheme encoded it."""
        from repro.frame.codec import QUANT_STEP, rle_decode

        if key in self._open_members:
            return batch[key]
        if key + "#rle_v" in self._open_members:
            return rle_decode(batch[key + "#rle_v"], batch[key + "#rle_l"])
        if key + "#q_v" in self._open_members:
            deltas = rle_decode(batch[key + "#q_v"], batch[key + "#q_l"])
            return np.cumsum(deltas).astype(float) * QUANT_STEP
        raise KeyError(key)

    def _load(self, key: tuple[int, int]) -> GpuTimeSeries:
        path, _ = self._index[key]
        batch = self._batch(path)
        prefix = f"s{key[0]}_{key[1]}/"
        try:
            times = self._read_array(batch, prefix + "times_s")
            metrics = {
                name: self._read_array(batch, prefix + name)
                for name in METRIC_NAMES
            }
        except KeyError as error:
            raise MonitoringError(
                f"spill batch {path} is missing arrays for job {key[0]} "
                f"GPU {key[1]}"
            ) from error
        return GpuTimeSeries(
            job_id=key[0], gpu_index=key[1], times_s=times, metrics=metrics
        )

    def __len__(self) -> int:
        return len(self._index)

    def job_ids(self) -> list[int]:
        """Distinct job ids with at least one spilled series."""
        return sorted({job_id for job_id, _ in self._index})

    def series_for_job(self, job_id: int) -> list[GpuTimeSeries]:
        return [
            self._load(key) for key in sorted(self._index) if key[0] == job_id
        ]

    def get(self, job_id: int, gpu_index: int) -> GpuTimeSeries:
        key = (job_id, gpu_index)
        if key not in self._index:
            raise MonitoringError(f"no series for job {job_id} GPU {gpu_index}")
        return self._load(key)

    def __iter__(self) -> Iterator[GpuTimeSeries]:
        for key in sorted(self._index):
            yield self._load(key)

    def iter_sorted(self) -> Iterator[GpuTimeSeries]:
        """Series in ``(job_id, gpu_index)`` order, one batch resident."""
        return iter(self)

    def total_samples(self) -> int:
        return sum(count for _, count in self._index.values())

    def materialize(self) -> TimeSeriesStore:
        """Load every spilled series back into an in-memory store."""
        store = TimeSeriesStore()
        for series in self:
            store.add(series)
        return store

    def scan_table(self, chunk_rows: int = 65536) -> "ChunkedTable":
        """Stream every spilled sample as one long chunked table.

        Same contract as :meth:`TimeSeriesStore.scan_table` — series in
        ``(job_id, gpu_index)`` order, batched to ``chunk_rows`` — but
        each series is loaded from disk only while its batch is being
        staged, so the resident set stays bounded by the chunk size
        plus one batch file.
        """
        from repro.frame import ChunkedTable

        keys = sorted(self._index)

        def produce() -> "Iterator[Table]":
            batch: list[GpuTimeSeries] = []
            staged = 0
            for key in keys:
                if self._index[key][1] == 0:
                    continue
                series = self._load(key)
                batch.append(series)
                staged += series.num_samples
                if staged >= chunk_rows:
                    yield _series_table(batch)
                    batch, staged = [], 0
            if batch:
                yield _series_table(batch)

        return ChunkedTable(produce, num_rows=self.total_samples())


def _series_table(batch: "list[GpuTimeSeries]") -> "Table":
    """Concatenate a batch of series into one sample-per-row table."""
    from repro.frame import Table

    data: dict[str, np.ndarray] = {
        "job_id": np.concatenate(
            [np.full(s.num_samples, s.job_id, dtype=np.int64) for s in batch]
        ),
        "gpu_index": np.concatenate(
            [np.full(s.num_samples, s.gpu_index, dtype=np.int64) for s in batch]
        ),
        "time_s": np.concatenate([np.asarray(s.times_s, dtype=float) for s in batch]),
    }
    for name in METRIC_NAMES:
        data[name] = np.concatenate(
            [np.asarray(s.metrics[name], dtype=float) for s in batch]
        )
    return Table(data)
