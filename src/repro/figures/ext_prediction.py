"""Extension figure: predictability studies (paper future work).

Two of the paper's forward-looking claims, quantified: per-user
behavior prediction barely beats a global baseline (Sec. IV), while
near-future idle-phase prediction is accurate enough to drive
co-location (Sec. III).
"""

from __future__ import annotations

from repro.analysis.features import predictor_study
from repro.analysis.prediction import predictability_gain, strategy_comparison
from repro.dataset import SupercloudDataset
from repro.figures.base import Comparison, FigureResult


def run(dataset: SupercloudDataset) -> FigureResult:
    comparison = strategy_comparison(dataset.gpu_jobs, metrics=("run_time_s", "sm_mean"))
    runtime_gain = predictability_gain(comparison, "run_time_s")
    sm_gain = predictability_gain(comparison, "sm_mean")
    scores, accuracy, skill = predictor_study(dataset.timeseries, horizon_s=60.0)

    comparisons = [
        # Sec. IV: "difficult to predict the behavior of individual
        # users" — per-user history helps runtime prediction <50%
        Comparison("runtime predictability gain (<0.5)", 0.5, runtime_gain),
        Comparison("SM predictability gain", 0.3, sm_gain),
        # Sec. III: idle phases are predictable at short horizons
        Comparison("60s idle-phase prediction accuracy", 0.85, accuracy),
    ]
    return FigureResult(
        figure_id="ext_prediction",
        title="Predictability studies (extension)",
        series={
            "strategy_comparison": comparison,
            "phase_scores": scores,
            "phase_skill": skill,
        },
        comparisons=comparisons,
        notes="extension analysis; targets encode the paper's qualitative claims",
    )
