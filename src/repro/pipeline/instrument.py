"""Per-stage timing and row-count instrumentation for pipeline sessions.

A :class:`~repro.pipeline.session.Session` executes the dataset
pipeline as named stages (``workload → schedule → monitor →
assemble``) plus the cache interactions (``cache_load`` /
``cache_store``) and figure execution (``figures``).  Every stage run
is recorded here with wall time and the number of rows (or items) it
produced, and named counters track how often the expensive paths ran —
``build`` vs ``cache_hit`` is how callers verify that a dataset was
constructed exactly once.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator


@dataclass(frozen=True)
class StageRecord:
    """One executed pipeline stage."""

    name: str
    seconds: float
    rows: int
    from_cache: bool = False

    def formatted(self) -> str:
        source = " [cache]" if self.from_cache else ""
        return f"{self.name}: {self.seconds:.3f} s, {self.rows} rows{source}"


class StageProbe:
    """Mutable handle a running stage uses to report its row count."""

    def __init__(self) -> None:
        self.rows = 0


@dataclass
class PipelineInstrumentation:
    """Stage records and counters for one session."""

    stages: list[StageRecord] = field(default_factory=list)
    counters: dict[str, int] = field(default_factory=dict)

    @contextmanager
    def stage(self, name: str, from_cache: bool = False) -> Iterator[StageProbe]:
        """Time a stage; the yielded probe collects the row count."""
        probe = StageProbe()
        start = time.perf_counter()
        try:
            yield probe
        finally:
            self.stages.append(
                StageRecord(name, time.perf_counter() - start, int(probe.rows), from_cache)
            )

    def bump(self, name: str, by: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + by

    def count(self, name: str) -> int:
        return self.counters.get(name, 0)

    def executed(self, name: str) -> bool:
        """Whether a stage with this name ran at least once."""
        return any(record.name == name for record in self.stages)

    def stage_names(self) -> list[str]:
        return [record.name for record in self.stages]

    def total_seconds(self) -> float:
        return sum(record.seconds for record in self.stages)

    def to_text(self) -> str:
        lines = []
        for record in self.stages:
            lines.append("  stage " + record.formatted())
        if self.counters:
            pairs = ", ".join(f"{k}={v}" for k, v in sorted(self.counters.items()))
            lines.append(f"  counters: {pairs}")
        return "\n".join(lines)
