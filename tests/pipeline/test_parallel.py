"""Tests for the process-parallel fan-out helpers."""

import pickle

import pytest

from repro.pipeline import parallel_map, resolve_workers
from repro.pipeline.parallel import ParallelTaskError


def _square(x: int) -> int:
    return x * x


def _fail_on_two(x: int) -> int:
    if x == 2:
        raise ValueError(f"bad item {x}")
    return x


class TestResolveWorkers:
    def test_none_and_nonpositive_are_serial(self):
        assert resolve_workers(None) == 1
        assert resolve_workers(0) == 1
        assert resolve_workers(-3) == 1

    def test_explicit_request_honoured(self):
        assert resolve_workers(4) == 4

    def test_capped(self):
        assert resolve_workers(10_000) == 64

    def test_none_reads_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "6")
        assert resolve_workers(None) == 6

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "6")
        assert resolve_workers(2) == 2

    def test_malformed_env_is_serial(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "many")
        assert resolve_workers(None) == 1

    def test_env_capped_and_normalised(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "100000")
        assert resolve_workers(None) == 64
        monkeypatch.setenv("REPRO_WORKERS", "-2")
        assert resolve_workers(None) == 1


class TestParallelTaskError:
    def test_worker_failure_carries_index_and_traceback(self):
        with pytest.raises(ParallelTaskError) as excinfo:
            parallel_map(_fail_on_two, [0, 1, 2, 3], workers=2)
        assert excinfo.value.index == 2
        assert "bad item 2" in excinfo.value.detail
        assert "ValueError" in str(excinfo.value)
        assert "task 2" in str(excinfo.value)

    def test_serial_path_raises_original(self):
        with pytest.raises(ValueError, match="bad item 2"):
            parallel_map(_fail_on_two, [0, 1, 2, 3], workers=1)

    def test_survives_pickling(self):
        err = ParallelTaskError(5, "Traceback ...")
        clone = pickle.loads(pickle.dumps(err))
        assert isinstance(clone, ParallelTaskError)
        assert clone.index == 5
        assert clone.detail == "Traceback ..."
        assert str(clone) == str(err)


class TestParallelMap:
    def test_serial_path(self):
        assert parallel_map(_square, [1, 2, 3], workers=1) == [1, 4, 9]

    def test_single_item_stays_serial(self):
        assert parallel_map(_square, [7], workers=8) == [49]

    def test_parallel_matches_serial_and_keeps_order(self):
        items = list(range(20))
        assert parallel_map(_square, items, workers=3) == [x * x for x in items]

    def test_empty(self):
        assert parallel_map(_square, [], workers=4) == []
