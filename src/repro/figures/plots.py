"""Render figure results as SVG charts.

Each paper figure maps to one or more charts built from the data
series its ``run()`` stored in ``FigureResult.series``.  Used by the
``python -m repro plot`` command.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis.stats import Ecdf
from repro.errors import AnalysisError
from repro.figures.base import FigureResult
from repro.plot import BarSeries, BoxSeries, Figure, LineSeries


def _cdf_series(label: str, dist: Ecdf, max_points: int = 400) -> LineSeries:
    """Down-sample an ECDF to a drawable polyline."""
    step = max(len(dist.values) // max_points, 1)
    xs = list(dist.values[::step]) + [float(dist.values[-1])]
    ys = list(dist.probabilities[::step]) + [1.0]
    return LineSeries(label, xs, ys)


def _cdf_chart(title, x_label, named_cdfs, x_log=False) -> Figure:
    fig = Figure(title=title, x_label=x_label, y_label="CDF", x_log=x_log)
    for label, dist in named_cdfs:
        if dist is not None:
            fig.add(_cdf_series(label, dist))
    if not fig.series:
        raise AnalysisError(f"no series available for chart {title!r}")
    return fig


def figure_charts(result: FigureResult) -> dict[str, Figure]:
    """Build the charts for one figure result, keyed by chart name."""
    builder = _BUILDERS.get(result.figure_id)
    if builder is None:
        raise AnalysisError(f"no chart builder for {result.figure_id!r}")
    return builder(result)


def save_figure_plots(result: FigureResult, directory: str | Path) -> list[Path]:
    """Render every chart of a figure to ``directory`` as SVG files."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    paths = []
    for name, chart in figure_charts(result).items():
        path = directory / f"{result.figure_id}_{name}.svg"
        path.write_text(chart.render(), encoding="utf-8")
        paths.append(path)
    return paths


def plottable_figures() -> list[str]:
    """Figure ids that have a chart builder."""
    return list(_BUILDERS)


# ----------------------------------------------------------------------
# Per-figure builders
# ----------------------------------------------------------------------
def _fig03(result: FigureResult) -> dict[str, Figure]:
    series = result.series
    return {
        "runtimes": _cdf_chart(
            "Fig 3(a): job run times",
            "run time (minutes)",
            [("GPU jobs", series["gpu_runtime_cdf"]), ("CPU jobs", series["cpu_runtime_cdf"])],
            x_log=True,
        ),
        "wait_fraction": _cdf_chart(
            "Fig 3(b): queue wait as fraction of service time",
            "wait / service time",
            [
                ("GPU jobs", series["gpu_wait_fraction_cdf"]),
                ("CPU jobs", series["cpu_wait_fraction_cdf"]),
            ],
        ),
    }


def _fig04(result: FigureResult) -> dict[str, Figure]:
    series = result.series
    return {
        "utilization": _cdf_chart(
            "Fig 4(a): average GPU resource utilization",
            "utilization (%)",
            [
                ("SM", series["sm"]),
                ("memory BW", series["mem_bw"]),
                ("memory size", series["mem_size"]),
            ],
        ),
        "pcie": _cdf_chart(
            "Fig 4(b): PCIe bandwidth utilization",
            "utilization (%)",
            [("Tx", series["pcie_tx"]), ("Rx", series["pcie_rx"])],
        ),
    }


def _fig05(result: FigureResult) -> dict[str, Figure]:
    sm = [
        (name.split("_", 1)[1], dist)
        for name, dist in result.series.items()
        if name.startswith("sm_")
    ]
    mem = [
        (name.split("_", 1)[1], dist)
        for name, dist in result.series.items()
        if name.startswith("mem_")
    ]
    return {
        "sm": _cdf_chart("Fig 5(a): SM utilization by interface", "SM utilization (%)", sm),
        "mem": _cdf_chart("Fig 5(b): memory utilization by interface", "memory utilization (%)", mem),
    }


def _fig06(result: FigureResult) -> dict[str, Figure]:
    charts = {
        "active_fraction": _cdf_chart(
            "Fig 6(a): time in active phases",
            "active fraction of run time",
            [("jobs", result.series["active_fraction_cdf"])],
        )
    }
    cov_series = [
        ("idle intervals", result.series.get("idle_cov_cdf")),
        ("active intervals", result.series.get("active_cov_cdf")),
    ]
    if any(dist is not None for _, dist in cov_series):
        charts["interval_cov"] = _cdf_chart(
            "Fig 6(b): CoV of phase interval lengths", "CoV", cov_series
        )
    return charts


def _fig07(result: FigureResult) -> dict[str, Figure]:
    covs = result.series["covs"]
    bottlenecks = result.series["bottlenecks"]
    charts = {}
    named = [(name, dist) for name, dist in covs.items() if dist is not None]
    if named:
        charts["within_run_cov"] = _cdf_chart(
            "Fig 7(a): within-run utilization CoV", "CoV", named
        )
    charts["bottlenecks"] = Figure(
        title="Fig 7(b): jobs bottlenecked per resource", y_label="fraction of jobs"
    ).add(BarSeries("bottlenecked", list(bottlenecks), list(bottlenecks.values())))
    return charts


def _fig08(result: FigureResult) -> dict[str, Figure]:
    single = result.series["single"]
    pairs = result.series["pairs"]
    top_pairs = sorted(pairs.items(), key=lambda kv: -kv[1])[:6]
    return {
        "single": Figure(
            title="Fig 8(a): single-resource bottlenecks", y_label="fraction of jobs"
        ).add(BarSeries("single", list(single), list(single.values()))),
        "pairs": Figure(
            title="Fig 8(b): pairwise bottlenecks (top 6)", y_label="fraction of jobs"
        ).add(
            BarSeries(
                "pairs",
                [f"{a}+{b}" for (a, b), _ in top_pairs],
                [v for _, v in top_pairs],
            )
        ),
    }


def _fig09(result: FigureResult) -> dict[str, Figure]:
    impacts = result.series["cap_impacts"]
    return {
        "power": _cdf_chart(
            "Fig 9(a): GPU power consumption",
            "power (W)",
            [("average", result.series["avg_cdf"]), ("maximum", result.series["max_cdf"])],
        ),
        "caps": Figure(
            title="Fig 9(b): jobs unimpacted per cap", y_label="fraction of jobs"
        ).add(
            BarSeries(
                "unimpacted",
                [f"{impact.cap_w:.0f}W" for impact in impacts],
                [impact.unimpacted_fraction for impact in impacts],
            )
        ),
    }


def _fig10(result: FigureResult) -> dict[str, Figure]:
    return {
        "runtime": _cdf_chart(
            "Fig 10: per-user average run time",
            "average run time (minutes)",
            [("users", result.series["runtime"])],
            x_log=True,
        ),
        "utilization": _cdf_chart(
            "Fig 10: per-user average utilization",
            "utilization (%)",
            [
                ("SM", result.series["sm"]),
                ("memory BW", result.series["mem_bw"]),
                ("memory size", result.series["mem_size"]),
            ],
        ),
    }


def _fig11(result: FigureResult) -> dict[str, Figure]:
    named = [
        ("run time", result.series["runtime"]),
        ("SM", result.series["sm"]),
        ("memory BW", result.series["mem_bw"]),
        ("memory size", result.series["mem_size"]),
    ]
    return {
        "cov": _cdf_chart("Fig 11: within-user CoV of job characteristics", "CoV", named)
    }


def _fig12(result: FigureResult) -> dict[str, Figure]:
    correlations = result.series["correlations"]
    rows = list(correlations.iter_rows())
    njobs = [r for r in rows if r["activity"] == "num_jobs"]
    hours = [r for r in rows if r["activity"] == "gpu_hours"]
    categories = [r["behavior"] for r in njobs]
    chart = Figure(title="Fig 12: Spearman correlations", y_label="rho")
    chart.add(BarSeries("num_jobs", categories, [r["rho"] for r in njobs]))
    chart.add(BarSeries("gpu_hours", categories, [r["rho"] for r in hours]))
    return {"correlations": chart}


def _fig13(result: FigureResult) -> dict[str, Figure]:
    breakdown = result.series["breakdown"]
    rows = list(breakdown.iter_rows())
    categories = [r["gpus"] for r in rows]
    chart = Figure(title="Fig 13: job size mix vs GPU-hour share", y_label="fraction")
    chart.add(BarSeries("jobs", categories, [r["job_fraction"] for r in rows]))
    chart.add(BarSeries("GPU hours", categories, [r["gpu_hour_fraction"] for r in rows]))
    return {"sizes": chart}


def _fig14(result: FigureResult) -> dict[str, Figure]:
    named = [
        ("all GPUs", result.series.get("cov_all_cdf")),
        ("active GPUs only", result.series.get("cov_active_cdf")),
    ]
    return {
        "cross_gpu_cov": _cdf_chart(
            "Fig 14: cross-GPU SM CoV of multi-GPU jobs", "CoV", named
        )
    }


def _fig15(result: FigureResult) -> dict[str, Figure]:
    rows = list(result.series["breakdown"].iter_rows())
    categories = [r["lifecycle_class"] for r in rows]
    chart = Figure(title="Fig 15: life-cycle mix", y_label="fraction")
    chart.add(BarSeries("jobs", categories, [r["job_fraction"] for r in rows]))
    chart.add(BarSeries("GPU hours", categories, [r["gpu_hour_fraction"] for r in rows]))
    return {"lifecycle": chart}


def _fig16(result: FigureResult) -> dict[str, Figure]:
    boxes = result.series["boxes"]
    charts = {}
    for metric, label in (
        ("sm_mean", "SM"),
        ("mem_bw_mean", "memory BW"),
        ("mem_size_mean", "memory size"),
    ):
        rows = [r for r in boxes.iter_rows() if r["metric"] == metric]
        if not rows:
            continue
        chart = Figure(title=f"Fig 16: {label} utilization by class", y_label="utilization (%)")
        chart.add(
            BoxSeries(
                label,
                [r["lifecycle_class"] for r in rows],
                [(r["p25"], r["median"], r["p75"]) for r in rows],
            )
        )
        charts[metric] = chart
    return charts


def _fig17(result: FigureResult) -> dict[str, Figure]:
    charts = {}
    for key, title in (("by_jobs", "jobs"), ("by_gpu_hours", "GPU hours")):
        table = result.series[key]
        pct = [float(v) for v in table["user_percentile"]]
        chart = Figure(
            title=f"Fig 17: mature share of each user's {title}",
            x_label="users (percentile, sorted by mature share)",
            y_label="mature fraction",
        )
        chart.add(LineSeries("mature", pct, [float(v) for v in table["mature_fraction"]]))
        charts[key] = chart
    return charts


def _queue_waits(result: FigureResult) -> dict[str, Figure]:
    rows = list(result.series["waits"].iter_rows())
    rows = [r for r in rows if r["num_jobs"] > 0]
    chart = Figure(title="Median queue wait by job size", y_label="seconds")
    chart.add(BarSeries("median wait", [r["gpus"] for r in rows], [r["median_wait_s"] for r in rows]))
    return {"waits": chart}


def _pareto(result: FigureResult) -> dict[str, Figure]:
    users = result.series["users"]
    counts = sorted((float(v) for v in users["num_jobs"]), reverse=True)
    total = sum(counts) or 1.0
    cumulative = []
    running = 0.0
    for count in counts:
        running += count
        cumulative.append(running / total)
    pct = [(i + 1) / len(counts) * 100.0 for i in range(len(counts))]
    chart = Figure(
        title="User activity concentration",
        x_label="top users (%)",
        y_label="cumulative job share",
    )
    chart.add(LineSeries("cumulative", pct, cumulative))
    return {"concentration": chart}


def _ext_timeline(result: FigureResult) -> dict[str, Figure]:
    occupancy = result.series["occupancy"]
    chart = Figure(
        title="Concurrent GPU occupancy",
        x_label="time (days)",
        y_label="GPUs in use",
    )
    days = [float(t) / 86400.0 for t in occupancy.times_s]
    chart.add(LineSeries("in use", days, [float(v) for v in occupancy.occupancy]))
    chart.add(
        LineSeries(
            "capacity", [days[0], days[-1]], [occupancy.capacity, occupancy.capacity]
        )
    )
    daily = result.series["daily_gpu_hours"]
    bars = Figure(title="GPU hours per day", y_label="GPU hours")
    rows = list(daily.iter_rows())
    step = max(len(rows) // 25, 1)  # keep the category axis readable
    sampled = rows[::step]
    bars.add(
        BarSeries(
            "per day",
            [str(r["day"]) for r in sampled],
            [r["gpu_hours"] for r in sampled],
        )
    )
    return {"occupancy": chart, "daily": bars}


def _ext_prediction(result: FigureResult) -> dict[str, Figure]:
    comparison = result.series["strategy_comparison"]
    rows = [r for r in comparison.iter_rows() if r["metric"] == "run_time_s"]
    chart = Figure(
        title="Next-job runtime prediction error by strategy",
        y_label="mean |log(pred/actual)|",
    )
    chart.add(
        BarSeries(
            "runtime",
            [r["strategy"] for r in rows],
            [r["mean_log_error"] for r in rows],
        )
    )
    return {"strategies": chart}


def _ext_queueing(result: FigureResult) -> dict[str, Figure]:
    params = result.series["parameters"]
    chart = Figure(title="Stationary workload parameters", y_label="value")
    chart.add(
        BarSeries(
            "parameters",
            ["arrivals/hour", "mean service (h)", "service SCV", "offered GPU load"],
            [
                params["arrival_rate_per_s"] * 3600.0,
                params["mean_service_s"] / 3600.0,
                params["service_scv"],
                params["offered_gpu_load"],
            ],
        )
    )
    return {"parameters": chart}


_BUILDERS = {
    "fig03": _fig03,
    "fig04": _fig04,
    "fig05": _fig05,
    "fig06": _fig06,
    "fig07": _fig07,
    "fig08": _fig08,
    "fig09": _fig09,
    "fig10": _fig10,
    "fig11": _fig11,
    "fig12": _fig12,
    "fig13": _fig13,
    "fig14": _fig14,
    "fig15": _fig15,
    "fig16": _fig16,
    "fig17": _fig17,
    "queue_waits": _queue_waits,
    "pareto": _pareto,
    "ext_timeline": _ext_timeline,
    "ext_prediction": _ext_prediction,
    "ext_queueing": _ext_queueing,
}
