"""Interchange with the public MIT Supercloud dataset format.

The authors released an anonymized dataset ("The MIT Supercloud
Dataset", HPEC 2021; the Datacenter Challenge) with a Slurm accounting
CSV and per-GPU summary CSVs.  This module maps between that schema
and this package's tables, in both directions:

* :func:`load_slurm_log` / :func:`load_gpu_summary` — read
  challenge-style CSVs into our column names, deriving the life-cycle
  class from the recorded Slurm job state exactly as the paper does;
* :func:`combine_logs` — join the two on job id and apply the paper's
  30-second filter, producing a table with the same layout as
  :attr:`repro.dataset.SupercloudDataset.gpu_jobs`;
* :func:`export_challenge_format` — write a generated dataset back
  out in the public schema, so the two pipelines can be diffed.

Column names are configurable through :class:`SlurmLogSchema` /
:class:`GpuSummarySchema` since the released files have gone through
several revisions.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.analysis.lifecycle import classify_exit
from repro.errors import ReproError
from repro.frame import Table, TableBuilder, read_csv, write_csv

#: Slurm job states appearing in the public dataset.
_STATE_TO_EXIT = {
    "COMPLETED": "completed",
    "CANCELLED": "cancelled_by_user",
    "FAILED": "failed",
    "TIMEOUT": "timeout",
    "NODE_FAIL": "node_failure",
}
_EXIT_TO_STATE = {v: k for k, v in _STATE_TO_EXIT.items()}


@dataclass(frozen=True)
class SlurmLogSchema:
    """Column names of the challenge-format Slurm accounting CSV."""

    job_id: str = "id_job"
    user: str = "id_user"
    time_submit: str = "time_submit"
    time_start: str = "time_start"
    time_end: str = "time_end"
    state: str = "state"
    exit_code: str = "exit_code"
    cpus_req: str = "cpus_req"
    mem_req_gb: str = "mem_req"
    gpus_alloc: str = "gres_used"
    nodes_alloc: str = "nodes_alloc"
    time_limit_min: str = "timelimit"


@dataclass(frozen=True)
class GpuSummarySchema:
    """Column names of the challenge-format per-GPU summary CSV."""

    job_id: str = "id_job"
    gpu_index: str = "gpu_index"
    #: challenge name -> (our metric, scale); utilization fields are
    #: percentages, power is watts.
    metric_map: tuple = (
        ("utilization_gpu_pct", "sm"),
        ("utilization_memory_pct", "mem_bw"),
        ("memory_used_pct", "mem_size"),
        ("pcie_tx_util_pct", "pcie_tx"),
        ("pcie_rx_util_pct", "pcie_rx"),
        ("power_draw_w", "power_w"),
    )


def load_slurm_log(path: str | Path, schema: SlurmLogSchema | None = None) -> Table:
    """Read a challenge-format Slurm log into accounting columns."""
    schema = schema or SlurmLogSchema()
    raw = read_csv(path)
    for required in (schema.job_id, schema.state, schema.time_submit, schema.time_start, schema.time_end):
        if required not in raw:
            raise ReproError(f"Slurm log missing column {required!r}")

    builder = TableBuilder()
    for row in raw.iter_rows():
        state = str(row[schema.state]).upper()
        if state not in _STATE_TO_EXIT:
            raise ReproError(f"unknown Slurm state {state!r} for job {row[schema.job_id]}")
        exit_code = int(row.get(schema.exit_code) or 0)
        lifecycle = classify_exit(
            exit_code,
            cancelled_by_user=state == "CANCELLED",
            timed_out=state == "TIMEOUT",
        )
        submit = float(row[schema.time_submit])
        start = float(row[schema.time_start])
        end = float(row[schema.time_end])
        num_gpus = int(row.get(schema.gpus_alloc) or 0)
        run_time = end - start
        service = end - submit
        builder.append_row(
            {
                "job_id": int(row[schema.job_id]),
                "user": str(row[schema.user]),
                "num_gpus": num_gpus,
                "cores": int(row.get(schema.cpus_req) or 1),
                "memory_gb": float(row.get(schema.mem_req_gb) or 0.0),
                "submit_time_s": submit,
                "start_time_s": start,
                "end_time_s": end,
                "wait_time_s": start - submit,
                "run_time_s": run_time,
                "wait_fraction": (start - submit) / service if service > 0 else 0.0,
                "num_nodes": int(row.get(schema.nodes_alloc) or 1),
                "gpu_hours": num_gpus * run_time / 3600.0,
                "exit_condition": _STATE_TO_EXIT[state],
                "lifecycle_class": lifecycle,
                "time_limit_s": float(row.get(schema.time_limit_min) or 0.0) * 60.0,
            }
        )
    return builder.finish()


def load_gpu_summary(path: str | Path, schema: GpuSummarySchema | None = None) -> Table:
    """Read a challenge-format per-GPU summary into our metric names."""
    schema = schema or GpuSummarySchema()
    raw = read_csv(path)
    if schema.job_id not in raw:
        raise ReproError(f"GPU summary missing column {schema.job_id!r}")
    for public_name, _ in schema.metric_map:
        for stat in ("min", "mean", "max"):
            column = f"{public_name}_{stat}"
            if column not in raw:
                raise ReproError(f"GPU summary missing column {column!r}")
    builder = TableBuilder()
    for row in raw.iter_rows():
        out = {
            "job_id": int(row[schema.job_id]),
            "gpu_index": int(row.get(schema.gpu_index) or 0),
        }
        for public_name, ours in schema.metric_map:
            for stat in ("min", "mean", "max"):
                out[f"{ours}_{stat}"] = float(row[f"{public_name}_{stat}"] or 0.0)
        builder.append_row(out)
    return builder.finish()


def combine_logs(
    slurm: Table, per_gpu: Table, short_filter_s: float = 30.0
) -> Table:
    """Join accounting and averaged GPU summaries on job id.

    Reproduces the paper's dataset assembly: GPU jobs only, jobs
    shorter than ``short_filter_s`` dropped, multi-GPU metrics
    averaged per job (min of mins / max of maxes).
    """
    metric_names = ("sm", "mem_bw", "mem_size", "pcie_tx", "pcie_rx", "power_w")
    spec = {}
    for name in metric_names:
        spec[f"{name}_min"] = "min"
        spec[f"{name}_mean"] = "mean"
        spec[f"{name}_max"] = "max"
    per_job = per_gpu.group_by("job_id").aggregate(spec)
    renames = {}
    for name in metric_names:
        renames[f"{name}_min_min"] = f"{name}_min"
        renames[f"{name}_mean_mean"] = f"{name}_mean"
        renames[f"{name}_max_max"] = f"{name}_max"
    per_job = per_job.rename(renames)

    # One combined mask -> one row gather instead of two chained filters.
    keep = (np.asarray(slurm["num_gpus"]) > 0) & (
        np.asarray(slurm["run_time_s"], dtype=float) >= short_filter_s
    )
    return slurm.filter(keep).join(per_job, on="job_id")


def export_challenge_format(dataset, directory: str | Path) -> dict[str, Path]:
    """Write a generated dataset in the public schema.

    Returns the paths of the two CSVs (``slurm-log.csv`` and
    ``gpu-summary.csv``).
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    slurm_schema = SlurmLogSchema()
    gpu_schema = GpuSummarySchema()

    slurm_builder = TableBuilder()
    for row in dataset.jobs.iter_rows():
        slurm_builder.append_row(
            {
                slurm_schema.job_id: row["job_id"],
                slurm_schema.user: row["user"],
                slurm_schema.time_submit: row["submit_time_s"],
                slurm_schema.time_start: row["start_time_s"],
                slurm_schema.time_end: row["end_time_s"],
                slurm_schema.state: _EXIT_TO_STATE[row["exit_condition"]],
                slurm_schema.exit_code: 0 if row["exit_condition"] != "failed" else 1,
                slurm_schema.cpus_req: row["cores"],
                slurm_schema.mem_req_gb: row["memory_gb"],
                slurm_schema.gpus_alloc: row["num_gpus"],
                slurm_schema.nodes_alloc: row["num_nodes"],
                slurm_schema.time_limit_min: row["time_limit_s"] / 60.0,
            }
        )
    slurm_path = write_csv(slurm_builder.finish(), directory / "slurm-log.csv")

    # The per-GPU export is a pure column relabelling, so it moves
    # whole columns instead of iterating rows.
    gpu_data = {
        gpu_schema.job_id: dataset.per_gpu["job_id"],
        gpu_schema.gpu_index: dataset.per_gpu["gpu_index"],
    }
    for public_name, ours in gpu_schema.metric_map:
        for stat in ("min", "mean", "max"):
            gpu_data[f"{public_name}_{stat}"] = dataset.per_gpu[f"{ours}_{stat}"]
    gpu_path = write_csv(Table(gpu_data), directory / "gpu-summary.csv")
    return {"slurm": slurm_path, "gpu": gpu_path}
