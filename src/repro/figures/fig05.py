"""Fig 5: SM and memory utilization by job interface type."""

from __future__ import annotations

import numpy as np

from repro.analysis.stats import ecdf
from repro.dataset import SupercloudDataset
from repro.figures.base import Comparison, FigureResult
from repro.slurm.job import INTERFACE_TYPES

#: Job shares per interface reported by the paper.
PAPER_SHARES = {"map-reduce": 0.01, "batch": 0.30, "interactive": 0.04, "other": 0.65}


def run(dataset: SupercloudDataset) -> FigureResult:
    """Utilization CDFs conditioned on submission interface."""
    gpu = dataset.gpu_jobs
    interfaces = np.asarray(list(gpu["interface"]))

    series: dict[str, object] = {}
    medians: dict[str, float] = {}
    comparisons = []
    for interface in INTERFACE_TYPES:
        mask = interfaces == interface
        share = float(mask.mean())
        comparisons.append(
            Comparison(f"{interface} job share", PAPER_SHARES[interface], share)
        )
        if mask.any():
            sm = ecdf(np.asarray(gpu["sm_mean"], dtype=float)[mask])
            mem = ecdf(np.asarray(gpu["mem_bw_mean"], dtype=float)[mask])
            series[f"sm_{interface}"] = sm
            series[f"mem_{interface}"] = mem
            medians[interface] = sm.median()

    # Ordering claim: "other" jobs have the highest SM utilization,
    # followed by batch; map-reduce and interactive are lowest.
    ordered = all(
        medians.get("other", 0.0) >= medians.get(k, 0.0)
        for k in ("batch", "interactive", "map-reduce")
    ) and medians.get("batch", 0.0) >= max(
        medians.get("interactive", 0.0), medians.get("map-reduce", 0.0)
    )
    comparisons.append(
        Comparison("SM ordering other>batch>interactive/map-reduce holds", 1.0, float(ordered))
    )
    return FigureResult(
        figure_id="fig05",
        title="Utilization by interface type",
        series=series,
        comparisons=comparisons,
        notes=f"per-interface SM medians: { {k: round(v, 1) for k, v in medians.items()} }",
    )
