"""Static hardware specifications (paper Table I and Fig. 1).

The Supercloud system: 224 nodes, each with two Intel Xeon Gold 6248
CPUs (20 cores, 2-way hyper-threading), 384 GB RAM, two Nvidia V100
GPUs (32 GB), 100 Gb/s Omnipath in a two-layer partial fat-tree, 25
Gb/s Ethernet, 1 TB SSD + 3.8 TB HDD local storage and a shared SSD
pool.  Power figures come from the V100 datasheet values the paper
quotes (300 W board power).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ReproError


@dataclass(frozen=True)
class GpuSpec:
    """One GPU model's envelope; utilization metrics are % of these."""

    model: str = "Nvidia Volta V100"
    memory_gb: float = 32.0
    max_power_w: float = 300.0
    idle_power_w: float = 25.0
    #: Peak PCIe 3.0 x16 bandwidth per direction, in MB/s.
    pcie_bandwidth_mbps: float = 16000.0
    #: Relative compute throughput (1.0 = V100); used by the
    #: multi-tier what-if models in :mod:`repro.opportunities`.
    relative_speed: float = 1.0

    def __post_init__(self) -> None:
        if self.memory_gb <= 0 or self.max_power_w <= 0:
            raise ReproError("GPU envelope values must be positive")
        if self.idle_power_w >= self.max_power_w:
            raise ReproError("idle power must be below max power")


@dataclass(frozen=True)
class StorageSpec:
    """Local and shared storage capacities."""

    local_ssd_tb: float = 1.0
    local_hdd_tb: float = 3.8
    shared_ssd_tb: float = 873.0


@dataclass(frozen=True)
class NodeSpec:
    """One compute node (paper Fig. 1)."""

    cpus_per_node: int = 2
    cores_per_cpu: int = 20
    hyperthreads_per_core: int = 2
    ram_gb: float = 384.0
    gpus_per_node: int = 2
    gpu: GpuSpec = field(default_factory=GpuSpec)
    network_gbps: float = 25.0
    interconnect_gbps: float = 100.0

    @property
    def physical_cores(self) -> int:
        return self.cpus_per_node * self.cores_per_cpu

    @property
    def logical_cores(self) -> int:
        return self.physical_cores * self.hyperthreads_per_core


@dataclass(frozen=True)
class ClusterSpec:
    """The full system: node count plus per-node spec."""

    name: str = "MIT Supercloud (TX-GAIA)"
    num_nodes: int = 224
    node: NodeSpec = field(default_factory=NodeSpec)
    storage: StorageSpec = field(default_factory=StorageSpec)
    interconnect: str = "100 Gb/s Omnipath two-layer partial fat-tree"

    def __post_init__(self) -> None:
        if self.num_nodes <= 0:
            raise ReproError("cluster must have at least one node")

    @property
    def total_gpus(self) -> int:
        return self.num_nodes * self.node.gpus_per_node

    @property
    def total_cores(self) -> int:
        return self.num_nodes * self.node.physical_cores

    @property
    def total_gpu_power_budget_w(self) -> float:
        """Power needed to run all GPUs flat out — the headroom Fig. 9
        shows is mostly unused."""
        return self.total_gpus * self.node.gpu.max_power_w

    def summary_rows(self) -> list[dict[str, object]]:
        """Rows for the Table I reproduction."""
        return [
            {"section": "node", "item": "Number of Nodes", "value": self.num_nodes},
            {"section": "node", "item": "Number of CPU Cores", "value": self.total_cores},
            {"section": "node", "item": "Node RAM (GB)", "value": self.node.ram_gb},
            {"section": "node", "item": "Interconnect", "value": self.interconnect},
            {"section": "gpu", "item": "Number of GPUs", "value": self.total_gpus},
            {"section": "gpu", "item": "GPUs per Node", "value": self.node.gpus_per_node},
            {"section": "gpu", "item": "GPU Type", "value": self.node.gpu.model},
            {"section": "gpu", "item": "GPU RAM (GB)", "value": self.node.gpu.memory_gb},
            {"section": "storage", "item": "Local SSD (TB)", "value": self.storage.local_ssd_tb},
            {"section": "storage", "item": "Local HDD (TB)", "value": self.storage.local_hdd_tb},
            {"section": "storage", "item": "Shared SSD (TB)", "value": self.storage.shared_ssd_tb},
        ]


def supercloud_spec(num_nodes: int = 224) -> ClusterSpec:
    """The paper's system, optionally scaled down for fast tests.

    ``num_nodes`` scales the machine while preserving the per-node
    configuration (2 V100s, 40 cores, 384 GB).
    """
    return ClusterSpec(num_nodes=num_nodes)
