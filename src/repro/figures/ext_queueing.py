"""Extension figure: queueing-theoretic view of provisioning.

Recasts the Sec. III takeaway in closed form: the offered GPU load in
Erlangs vs installed capacity, and the analytic fleet size that keeps
the mean wait under a minute (Allen-Cunneen M/G/c).
"""

from __future__ import annotations

from repro.analysis.queueing import required_gpus_for_wait, workload_parameters
from repro.dataset import SupercloudDataset
from repro.errors import AnalysisError
from repro.figures.base import Comparison, FigureResult


def run(dataset: SupercloudDataset) -> FigureResult:
    params = workload_parameters(dataset.gpu_jobs)
    capacity = dataset.spec.total_gpus
    utilization = params["offered_gpu_load"] / capacity
    try:
        needed = required_gpus_for_wait(
            params["arrival_rate_per_s"],
            params["mean_service_s"],
            params["service_scv"],
            target_wait_s=60.0,
            max_servers=4 * capacity,
        )
        headroom_factor = capacity / needed
    except AnalysisError:
        needed = -1
        headroom_factor = 0.0

    comparisons = [
        Comparison("offered load / capacity (<0.7)", 0.5, utilization),
        # runtimes are heavy-tailed: SCV far above exponential
        Comparison("service-time SCV (>>1)", 4.0, params["service_scv"]),
        Comparison("capacity / analytic need (>1)", 1.5, headroom_factor),
    ]
    return FigureResult(
        figure_id="ext_queueing",
        title="Queueing-theoretic provisioning (extension)",
        series={"parameters": params, "gpus_needed_for_60s": needed},
        comparisons=comparisons,
        notes="Allen-Cunneen M/G/c on the stationary approximation of the workload",
    )
