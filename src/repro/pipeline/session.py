"""The :class:`Session` — single entry point to the dataset engine.

A session owns one pipeline configuration and everything derived from
it: the staged dataset build (``workload → schedule → sampling →
monitor → assemble``), the on-disk artifact cache, figure execution
(optionally across a process pool), and per-stage instrumentation.
The ``sampling`` stage evaluates the GPU sampling tasks the
monitoring epilogs deferred during ``schedule`` — it is the expensive,
embarrassingly parallel part of a cold build, and the session's
``workers`` setting shards it across a process pool.  Consumers —
the CLI, figure regeneration, validation, robustness sweeps,
benchmarks — share one session instead of each re-running the
generation pipeline:

>>> from repro.pipeline import Session
>>> session = Session.from_scenario(scale=0.01, seed=7)
>>> dataset = session.dataset()           # built once, memoized
>>> dataset is session.dataset()          # later calls are free
True

With ``cache_dir`` set, the built artifacts persist: a second session
(or a second *process*) with the same configuration loads the frame
tables and time series from disk instead of re-simulating, and cached
figure results short-circuit ``run_figures`` entirely.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path
from typing import Sequence

from repro.monitor.collector import MonitoringConfig
from repro.obs import runtime as obs_runtime
from repro.obs.events import FlightRecorder, NullRecorder
from repro.obs.metrics import MetricsRegistry, NullMetrics
from repro.obs.trace import NullTracer, Tracer
from repro.pipeline.cache import DatasetCache, dataset_key
from repro.pipeline.instrument import PipelineInstrumentation, StageRecord
from repro.pipeline.parallel import resolve_workers, run_figures_parallel
from repro.workload.generator import WorkloadConfig

#: The dataset-construction stages, in execution order.
BUILD_STAGES = ("workload", "schedule", "sampling", "monitor", "assemble")


def _build_dataset(
    config: WorkloadConfig,
    monitoring: MonitoringConfig | None,
    inst: PipelineInstrumentation,
    workers: int = 1,
    interchange=None,
    streaming: bool = False,
    spill_dir=None,
    chunk_rows: int | None = None,
):
    """Run the full staged pipeline (the former ``generate_dataset`` body)."""
    import numpy as np

    from repro.cluster.spec import supercloud_spec
    from repro.dataset import SupercloudDataset
    from repro.monitor.collector import MonitoringCollector
    from repro.slurm.accounting import accounting_table
    from repro.slurm.scheduler import SlurmSimulator
    from repro.workload.calibration import PAPER_TARGETS
    from repro.workload.generator import WorkloadGenerator

    if config.partitions > 1:
        from repro.pipeline.shard import build_sharded_dataset

        return build_sharded_dataset(
            config,
            monitoring,
            inst,
            workers=workers,
            interchange=interchange,
            streaming=streaming,
            spill_dir=spill_dir,
            chunk_rows=chunk_rows,
        )

    with inst.stage("workload") as probe:
        if config.resolved_cohorts > 1:
            from repro.workload.cohorts import generate_sharded

            requests = generate_sharded(config, workers=workers)
        else:
            requests = WorkloadGenerator(config).generate()
        probe.rows = len(requests)

    with inst.stage("schedule") as probe:
        spec = supercloud_spec(config.scaled_nodes)
        simulator = SlurmSimulator(spec)
        collector = MonitoringCollector(monitoring).attach(simulator)
        result = simulator.run(requests)
        simulator.cluster.check_invariants()
        probe.rows = len(result.records)

    with inst.stage("sampling") as probe:
        # Evaluate the sampling tasks the epilogs deferred — the
        # expensive half of monitoring, sharded across a process pool
        # when workers > 1 with bit-identical output.
        probe.rows = collector.flush(workers=workers)

    with inst.stage("monitor") as probe:
        gpu_summary = collector.job_gpu_table()
        per_gpu = collector.per_gpu_table()
        probe.rows = per_gpu.num_rows

    with inst.stage("assemble") as probe:
        jobs = accounting_table(result.records)
        # One combined mask -> one row gather; the join then shares the
        # filtered columns outright when every GPU job has a summary.
        keep = (np.asarray(jobs["num_gpus"]) > 0) & (
            np.asarray(jobs["run_time_s"], dtype=float)
            >= PAPER_TARGETS.short_job_filter_s
        )
        gpu_jobs = jobs.filter(keep).join(gpu_summary, on="job_id")
        if per_gpu.num_rows:
            context = jobs.select(
                ["job_id", "user", "num_gpus", "run_time_s", "gpu_hours", "lifecycle_class", "interface"]
            )
            per_gpu = per_gpu.join(context, on="job_id")
        probe.rows = jobs.num_rows

    return SupercloudDataset(
        jobs=jobs,
        gpu_jobs=gpu_jobs,
        per_gpu=per_gpu,
        timeseries=collector.store,
        records=result.records,
        spec=spec,
        config=config,
    )


class Session:
    """Shared, cached, optionally parallel dataset engine.

    Parameters
    ----------
    config:
        Workload configuration (defaults to the paper workload).
    monitoring:
        Telemetry configuration (defaults preserved when ``None``).
    cache_dir:
        Directory for the on-disk artifact cache.  ``None`` disables
        disk caching (the in-memory memo still applies).
    workers:
        Process-pool width for the deferred-sampling stage of cold
        dataset builds and for figure fan-out; ``1`` means serial.
        ``None`` defers to the ``REPRO_WORKERS`` environment variable
        (serial when unset).  Parallel figure execution additionally
        requires a disk cache (workers load the shared dataset from
        it); the sampling stage does not.
    tracer, metrics, recorder:
        The session's observability triple (see :mod:`repro.obs`).
        Defaults to a fresh enabled :class:`~repro.obs.trace.Tracer`,
        :class:`~repro.obs.metrics.MetricsRegistry`, and
        :class:`~repro.obs.events.FlightRecorder`; pass
        :data:`~repro.obs.trace.NULL_TRACER` /
        :data:`~repro.obs.metrics.NULL_METRICS` /
        :data:`~repro.obs.events.NULL_RECORDER` to opt out entirely.
        While the session builds datasets or runs figures the triple
        is installed as the ambient observability
        (:func:`repro.obs.runtime.use`), so the scheduler loop, the
        frame kernels, and the collector report into it too, and every
        span close is mirrored into the flight recorder.
    """

    def __init__(
        self,
        config: WorkloadConfig | None = None,
        monitoring: MonitoringConfig | None = None,
        *,
        cache_dir: str | Path | None = None,
        workers: int | None = None,
        interchange=None,
        tracer: Tracer | NullTracer | None = None,
        metrics: MetricsRegistry | NullMetrics | None = None,
        recorder: FlightRecorder | NullRecorder | None = None,
    ) -> None:
        self.config = config or WorkloadConfig()
        self.monitoring = monitoring
        self.workers = resolve_workers(workers)
        self.interchange = interchange
        self.cache = DatasetCache(cache_dir) if cache_dir is not None else None
        self.tracer = tracer if tracer is not None else Tracer()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.recorder = recorder if recorder is not None else FlightRecorder()
        if self.tracer.enabled and self.recorder.enabled:
            self.tracer.listener = self.recorder.span_closed
        self.instrumentation = PipelineInstrumentation(self.tracer, self.metrics)
        self._dataset = None
        self._streaming_dataset = None

    @classmethod
    def from_scenario(
        cls,
        scenario: str = "paper",
        *,
        scale: float = 0.1,
        seed: int = 20220214,
        days: float | None = None,
        partitions: int = 1,
        cohorts: int | None = None,
        monitoring: MonitoringConfig | None = None,
        interchange=None,
        **session_kwargs,
    ) -> "Session":
        """Build a session from a named workload scenario.

        ``partitions``/``cohorts`` select the sharded simulation path
        and ``interchange`` couples the islands (migration / fair-share
        sync; see ``docs/scaling.md``); the defaults keep the legacy
        whole-machine serial model bit-for-bit.
        """
        from repro.workload.scenarios import make_scenario

        config = make_scenario(scenario, scale=scale, seed=seed)
        if days is not None and days != config.days:
            config = dataclasses.replace(config, days=days)
        if partitions != config.partitions or cohorts != config.cohorts:
            config = dataclasses.replace(config, partitions=partitions, cohorts=cohorts)
        return cls(config, monitoring, interchange=interchange, **session_kwargs)

    # ------------------------------------------------------------------
    # Dataset
    # ------------------------------------------------------------------
    @property
    def key(self) -> str:
        """The cache key: content hash of the full configuration."""
        return dataset_key(self.config, self.monitoring, self.interchange)

    def dataset(self):
        """The dataset — memoized, cache-backed, built at most once."""
        inst = self.instrumentation
        if self._dataset is not None:
            inst.bump("memory_hit")
            return self._dataset
        with obs_runtime.use(self.tracer, self.metrics, self.recorder):
            if self.cache is not None and self.cache.has(self.key):
                with inst.stage("cache_load", from_cache=True) as probe:
                    loaded = self.cache.load(self.key)
                    probe.rows = loaded.jobs.num_rows if loaded is not None else 0
                if loaded is not None:
                    inst.bump("cache_hit")
                    self._dataset = loaded
                    return loaded
                inst.bump("cache_corrupt")
                self.cache.evict(self.key)
            dataset = _build_dataset(
                self.config,
                self.monitoring,
                inst,
                workers=self.workers,
                interchange=self.interchange,
            )
            inst.bump("build")
            if self.cache is not None:
                with inst.stage("cache_store") as probe:
                    self.cache.store(self.key, dataset)
                    probe.rows = dataset.jobs.num_rows
        self._dataset = dataset
        return dataset

    def streaming_dataset(
        self,
        chunk_rows: int | None = None,
        spill_dir: str | Path | None = None,
    ):
        """The dataset as a bounded-memory streaming build.

        With ``partitions > 1`` this is the spill-and-merge path: each
        island spills its monitoring outputs to ``spill_dir`` (a fresh
        temp directory by default) and the parent k-way-merges the
        chunk streams, so parent memory stays bounded by the chunk
        size.  The result carries chunked job tables, a
        :class:`~repro.monitor.timeseries.SpilledTimeSeriesStore`, and
        no job records; call :meth:`SupercloudDataset.materialize` to
        pull it back into memory.  Streaming builds bypass the disk
        cache (the artifacts *are* the spill files) but are memoized
        on the session.  Unpartitioned configs fall back to a chunked
        view of the materialized dataset.
        """
        if self.config.partitions <= 1:
            return self.dataset().streaming_view(chunk_rows)
        if self._streaming_dataset is not None:
            self.instrumentation.bump("memory_hit")
            return self._streaming_dataset
        with obs_runtime.use(self.tracer, self.metrics, self.recorder):
            dataset = _build_dataset(
                self.config,
                self.monitoring,
                self.instrumentation,
                workers=self.workers,
                interchange=self.interchange,
                streaming=True,
                spill_dir=spill_dir,
                chunk_rows=chunk_rows,
            )
            self.instrumentation.bump("build")
        self._streaming_dataset = dataset
        return dataset

    # ------------------------------------------------------------------
    # Figures
    # ------------------------------------------------------------------
    def run_figures(self, figure_ids: Sequence[str] | None = None) -> list:
        """Run figure reproductions against the shared dataset.

        Cached figure results are returned without touching the
        dataset at all; the remainder run serially or across the
        worker pool (``workers > 1``), each worker loading the shared
        dataset from the on-disk cache exactly once.  Worker runs come
        back with their span payloads and metric snapshots, which are
        re-parented into this session's trace under the ``figures``
        stage and merged into its registry.
        """
        from repro.figures.registry import all_figures, get_figure, run_figure

        ids = list(figure_ids) if figure_ids is not None else all_figures()
        for figure_id in ids:
            get_figure(figure_id)  # validate up front
        inst = self.instrumentation
        results: dict[str, object] = {}
        misses = []
        with obs_runtime.use(self.tracer, self.metrics, self.recorder):
            for figure_id in ids:
                cached = self.cache.load_figure(self.key, figure_id) if self.cache else None
                if cached is not None:
                    results[figure_id] = cached
                    inst.bump("figure_cache_hit")
                else:
                    misses.append(figure_id)
            if misses:
                dataset = self.dataset()
                with inst.stage("figures") as probe:
                    computed = None
                    if self.workers > 1 and self.cache is not None and self.cache.has(self.key):
                        pooled = run_figures_parallel(
                            misses, self.cache.root, self.key, self.workers
                        )
                        if pooled is not None:
                            inst.bump("figure_pool_runs")
                            parent = self.tracer.current_span_id()
                            computed = []
                            for result, spans, metrics_snapshot in pooled:
                                self.tracer.adopt(spans, parent=parent)
                                self.metrics.merge(metrics_snapshot)
                                computed.append(result)
                    if computed is None:
                        computed = [run_figure(fid, dataset) for fid in misses]
                    probe.rows = len(misses)
                inst.bump("figures_computed", len(misses))
                for figure_id, result in zip(misses, computed):
                    results[figure_id] = result
                    if self.cache is not None:
                        self.cache.store_figure(self.key, figure_id, result)
        return [results[figure_id] for figure_id in ids]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def stages(self) -> list[StageRecord]:
        return list(self.instrumentation.stages)

    def executed(self, stage_name: str) -> bool:
        """Whether a pipeline stage actually ran in this session."""
        return self.instrumentation.executed(stage_name)

    def summary(self) -> str:
        """Per-stage timing/row counts plus cache and build counters."""
        cfg = self.config
        cache_line = str(self.cache.root) if self.cache is not None else "disabled"
        lines = [
            f"pipeline session {self.key}",
            f"  config: scale={cfg.scale:g} seed={cfg.seed} days={cfg.days:g}",
            f"  partitions: {cfg.partitions} (cohorts: {cfg.resolved_cohorts})",
            f"  cache: {cache_line}",
            f"  workers: {self.workers}",
            f"  builds: {self.instrumentation.count('build')}, "
            f"cache hits: {self.instrumentation.count('cache_hit')}, "
            f"figure cache hits: {self.instrumentation.count('figure_cache_hit')}",
        ]
        text = self.instrumentation.to_text()
        if text:
            lines.append(text)
        return "\n".join(lines)


def as_dataset(source):
    """Accept a :class:`Session` or a dataset; return the dataset.

    The compatibility bridge that lets every report/summary entry
    point take either the redesigned session API or a bare
    ``SupercloudDataset``.
    """
    if isinstance(source, Session):
        return source.dataset()
    return source
