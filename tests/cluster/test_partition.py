"""Tests for partitioned cluster layouts (node-range islands)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.partition import Partition, PartitionError, PartitionLayout
from repro.cluster.spec import supercloud_spec


class TestPartition:
    def test_half_open_range(self):
        part = Partition(index=0, node_start=4, num_nodes=3)
        assert part.node_stop == 7
        assert part.to_global_node(0) == 4
        assert part.to_global_node(2) == 6

    def test_local_index_bounds(self):
        part = Partition(index=1, node_start=0, num_nodes=2)
        with pytest.raises(PartitionError, match="out of range"):
            part.to_global_node(2)
        with pytest.raises(PartitionError, match="out of range"):
            part.to_global_node(-1)

    def test_invalid_fields(self):
        with pytest.raises(PartitionError):
            Partition(index=-1, node_start=0, num_nodes=1)
        with pytest.raises(PartitionError):
            Partition(index=0, node_start=-1, num_nodes=1)
        with pytest.raises(PartitionError):
            Partition(index=0, node_start=0, num_nodes=0)

    def test_island_spec_keeps_node_config(self):
        base = supercloud_spec(16)
        island = Partition(index=2, node_start=8, num_nodes=4).spec(base)
        assert island.num_nodes == 4
        assert island.node == base.node
        assert "[partition 2]" in island.name


class TestPartitionLayout:
    def test_even_split_exact(self):
        layout = PartitionLayout.even(8, 4)
        assert [p.num_nodes for p in layout] == [2, 2, 2, 2]
        assert [p.node_start for p in layout] == [0, 2, 4, 6]

    def test_even_split_with_remainder(self):
        layout = PartitionLayout.even(10, 4)
        # first total % k islands get the extra node
        assert [p.num_nodes for p in layout] == [3, 3, 2, 2]
        assert layout[-1].node_stop == 10

    def test_single_partition_is_whole_machine(self):
        layout = PartitionLayout.even(224, 1)
        assert len(layout) == 1
        assert layout[0].num_nodes == 224

    def test_too_many_partitions(self):
        with pytest.raises(PartitionError, match="at least one node"):
            PartitionLayout.even(3, 4)

    def test_zero_partitions(self):
        with pytest.raises(PartitionError):
            PartitionLayout.even(8, 0)

    def test_non_tiling_layout_rejected(self):
        parts = (
            Partition(index=0, node_start=0, num_nodes=2),
            Partition(index=1, node_start=3, num_nodes=2),
        )
        with pytest.raises(PartitionError, match="tile"):
            PartitionLayout(total_nodes=5, partitions=parts)

    def test_incomplete_cover_rejected(self):
        parts = (Partition(index=0, node_start=0, num_nodes=2),)
        with pytest.raises(PartitionError, match="cover"):
            PartitionLayout(total_nodes=5, partitions=parts)

    def test_cohort_routing_wraps(self):
        layout = PartitionLayout.even(8, 3)
        assert layout.island_for_cohort(0).index == 0
        assert layout.island_for_cohort(4).index == 1
        with pytest.raises(PartitionError):
            layout.island_for_cohort(-1)

    def test_node_routing(self):
        layout = PartitionLayout.even(10, 4)  # sizes 3,3,2,2
        assert layout.island_for_node(0).index == 0
        assert layout.island_for_node(5).index == 1
        assert layout.island_for_node(9).index == 3
        with pytest.raises(PartitionError):
            layout.island_for_node(10)

    def test_specs_match_layout(self):
        layout = PartitionLayout.even(16, 4)
        specs = layout.specs()
        assert [s.num_nodes for s in specs] == [4, 4, 4, 4]
        with pytest.raises(PartitionError, match="layout covers"):
            layout.specs(supercloud_spec(8))

    def test_describe_lines(self):
        lines = PartitionLayout.even(8, 2).describe()
        assert lines == [
            "island 0: nodes 0..3 (4 nodes)",
            "island 1: nodes 4..7 (4 nodes)",
        ]

    @settings(max_examples=60, deadline=None)
    @given(
        total=st.integers(min_value=1, max_value=500),
        k=st.integers(min_value=1, max_value=16),
    )
    def test_even_layout_properties(self, total, k):
        if k > total:
            with pytest.raises(PartitionError):
                PartitionLayout.even(total, k)
            return
        layout = PartitionLayout.even(total, k)
        sizes = [p.num_nodes for p in layout]
        # tiles the machine, near-equal, every node owned by one island
        assert sum(sizes) == total
        assert max(sizes) - min(sizes) <= 1
        for node in range(total):
            part = layout.island_for_node(node)
            assert part.node_start <= node < part.node_stop
            local = node - part.node_start
            assert part.to_global_node(local) == node
