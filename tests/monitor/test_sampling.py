"""Property tests for deferred batched sampling.

The whole deferral refactor rests on two bit-for-bit contracts:

* batching changes nothing — ``metrics_at_all`` / ``summarize_job``
  match the per-GPU ``metrics_at`` / ``summarize`` loop exactly,
  including the RNG stream they consume;
* deferring changes nothing — a collector that flushes after every
  epilog (the old inline behavior), one that flushes once at the end,
  and one that flushes across a process pool all build identical
  tables and series stores.

Hypothesis drives arbitrary activity models and job mixes through
both.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.spec import supercloud_spec
from repro.monitor.collector import MonitoringCollector, MonitoringConfig
from repro.monitor.nvidia_smi import NvidiaSmiSampler
from repro.monitor.sampling import SamplingPlan, SamplingTask, evaluate_task
from repro.monitor.timeseries import METRIC_NAMES
from repro.slurm.scheduler import SlurmSimulator
from tests.monitor.test_nvidia_smi import BurstyModel, FlatModel
from tests.slurm.test_job import make_request


def make_model(seed, num_gpus, duration_s, fraction):
    """A calibrated-shape :class:`JobActivityModel` from one seed."""
    from repro.workload.activity import (
        JobActivityModel,
        PhaseSchedule,
        PowerModel,
        build_metric_process,
    )

    rng = np.random.default_rng(seed)
    schedule = PhaseSchedule.generate(rng, duration_s, fraction, 60.0, 1.69, 1.26)
    processes = {
        name: build_metric_process(
            rng,
            level=float(rng.uniform(0, 100)),
            noise_cov=float(rng.uniform(0, 0.5)),
            burst_level=float(rng.uniform(0, 100)),
            schedule=schedule,
            num_bursts=int(rng.integers(0, 4)),
        )
        for name in ("sm", "mem_bw", "mem_size", "pcie_tx", "pcie_rx")
    }
    # include an idle GPU (scale 0) whenever there is room for one
    gpu_scale = rng.uniform(0.2, 1.0, num_gpus)
    if num_gpus > 1:
        gpu_scale[-1] = 0.0
    return JobActivityModel(
        1, num_gpus, duration_s, schedule, processes, gpu_scale,
        PowerModel(25.0, 1.25, 0.4, 0.03, 0.2),
    )


class TestBatchedMatchesPerGpu:
    @given(
        st.integers(0, 2**31 - 1),
        st.integers(1, 4),
        st.floats(1.0, 5000.0),
        st.floats(0.0, 1.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_metrics_at_all_bit_identical(self, seed, num_gpus, duration, fraction):
        model = make_model(seed, num_gpus, duration, fraction)
        times = np.random.default_rng(seed + 1).uniform(
            0.0, duration, (num_gpus, 64)
        )
        batched = model.metrics_at_all(times)
        for gpu_index in range(num_gpus):
            single = model.metrics_at(times[gpu_index], gpu_index)
            for name in METRIC_NAMES:
                assert np.array_equal(batched[name][gpu_index], single[name]), name

    @given(
        st.integers(0, 2**31 - 1),
        st.integers(1, 4),
        st.floats(1.0, 5000.0),
    )
    @settings(max_examples=20, deadline=None)
    def test_summarize_job_matches_per_gpu_stream(self, seed, num_gpus, duration):
        """``summarize_job`` equals ``num_gpus`` consecutive
        ``summarize`` calls — same values, same RNG stream consumed."""
        model = make_model(seed, num_gpus, duration, 0.8)
        sampler = NvidiaSmiSampler(0.1, 64)
        rng_batched = np.random.default_rng(seed)
        rng_single = np.random.default_rng(seed)
        batched = sampler.summarize_job(model, duration, rng_batched)
        for gpu_index in range(num_gpus):
            single = sampler.summarize(model, duration, gpu_index, rng_single)
            for name, values in batched.items():
                assert values[gpu_index] == single[name], name
        assert (
            rng_batched.bit_generator.state == rng_single.bit_generator.state
        )

    def test_sample_series_job_matches_per_gpu(self):
        model = make_model(11, 3, 400.0, 0.6)
        sampler = NvidiaSmiSampler(0.1)
        all_series = sampler.sample_series_job(7, model, 400.0, max_samples=200)
        assert len(all_series) == 3
        for gpu_index, series in enumerate(all_series):
            single = sampler.sample_series(7, model, 400.0, gpu_index, max_samples=200)
            assert series.job_id == 7 and series.gpu_index == gpu_index
            assert np.array_equal(series.times_s, single.times_s)
            for name in METRIC_NAMES:
                assert np.array_equal(series.metrics[name], single.metrics[name])

    def test_protocol_fallback_without_metrics_at_all(self):
        """Test doubles without the batched method keep working and
        match their own per-GPU evaluation."""
        sampler = NvidiaSmiSampler(0.1, 32)
        for model in (FlatModel(2), BurstyModel(2)):
            offsets = np.random.default_rng(3).random((2, 32))
            summary = sampler.summarize_with_offsets(model, 120.0, offsets)
            assert summary["sm_max"].shape == (2,)


def _evaluated(task):
    plan = SamplingPlan(gpu_interval_s=0.1, timeseries_max_samples=100)
    return evaluate_task(plan, task)


class TestEvaluateTask:
    def test_deterministic(self):
        model = make_model(5, 2, 300.0, 0.7)
        offsets = np.random.default_rng(5).random((2, 32))
        task = SamplingTask(3, model, 300.0, offsets, keep_series=True)
        first, second = _evaluated(task), _evaluated(task)
        assert first.job_id == second.job_id == 3
        for name, values in first.summary.items():
            assert np.array_equal(values, second.summary[name]), name
        assert len(first.series) == len(second.series) == 2

    def test_no_series_when_not_kept(self):
        model = make_model(5, 2, 300.0, 0.7)
        offsets = np.random.default_rng(5).random((2, 32))
        task = SamplingTask(3, model, 300.0, offsets, keep_series=False)
        assert _evaluated(task).series == []


def _gpu_request(job_id, num_gpus, runtime_s):
    request = make_request(job_id=job_id, num_gpus=num_gpus, runtime_s=runtime_s)
    request.tags["activity"] = FlatModel(num_gpus)
    return request


def _run_collector(shape, collector):
    """Simulate a job mix described by ``shape`` on a fresh cluster."""
    requests = [
        _gpu_request(job_id, num_gpus, runtime)
        if num_gpus
        else make_request(job_id=job_id, num_gpus=0, cores=2, runtime_s=runtime)
        for job_id, (num_gpus, runtime) in enumerate(shape, start=1)
    ]
    simulator = SlurmSimulator(supercloud_spec(2))
    collector.attach(simulator)
    simulator.run(requests)
    return collector


def _snapshot(collector):
    per_gpu = collector.per_gpu_table().to_dict()
    cpu = collector.cpu_table().to_dict()
    series = {
        (s.job_id, s.gpu_index): (s.times_s, s.metrics) for s in collector.store
    }
    return per_gpu, cpu, series


def _assert_same(left, right):
    assert left[0] == right[0]  # per-GPU summary table
    assert left[1] == right[1]  # CPU table
    assert left[2].keys() == right[2].keys()
    for key, (times, metrics) in left[2].items():
        other_times, other_metrics = right[2][key]
        assert np.array_equal(times, other_times)
        for name in METRIC_NAMES:
            assert np.array_equal(metrics[name], other_metrics[name]), name


class _InlineCollector(MonitoringCollector):
    """The pre-deferral behavior: evaluate inside every epilog."""

    def epilog(self, record):
        super().epilog(record)
        self.flush()


job_shapes = st.lists(
    st.tuples(st.integers(0, 3), st.floats(1.0, 500.0)),
    min_size=1,
    max_size=6,
)


class TestDeferralIsInvisible:
    @given(job_shapes)
    @settings(max_examples=15, deadline=None)
    def test_inline_deferred_parallel_identical(self, shape):
        config = MonitoringConfig(timeseries_fraction=0.5, timeseries_max_samples=50)
        inline = _run_collector(shape, _InlineCollector(config))
        deferred = _run_collector(shape, MonitoringCollector(config))
        pooled = _run_collector(shape, MonitoringCollector(config))
        assert inline.pending_tasks == 0
        pooled.flush(workers=2)
        inline_snap = _snapshot(inline)
        _assert_same(inline_snap, _snapshot(deferred))
        _assert_same(inline_snap, _snapshot(pooled))

    def test_accessors_flush_pending(self):
        collector = _run_collector([(2, 100.0)], MonitoringCollector())
        assert collector.pending_tasks == 1
        assert collector.per_gpu_table().num_rows == 2
        assert collector.pending_tasks == 0

    def test_flush_reports_row_count_and_is_idempotent(self):
        collector = _run_collector([(2, 100.0), (1, 50.0)], MonitoringCollector())
        assert collector.flush() == 3
        assert collector.flush() == 0
