"""Two-layer partial fat-tree interconnect model.

The Supercloud nodes are wired by 100 Gb/s Omnipath in a two-layer
partial fat-tree.  The scheduler uses the topology to place multi-node
jobs "as densely as possible, either on the same node or on
neighboring nodes on the network interconnect" (paper Sec. V).  We
model leaf switches each serving a fixed radix of nodes and a core
layer connecting every leaf, using :mod:`networkx` for distance
queries.
"""

from __future__ import annotations

import itertools

import networkx as nx

from repro.errors import ReproError


class FatTreeTopology:
    """A two-layer fat tree: nodes -> leaf switches -> core switches.

    Parameters
    ----------
    num_nodes:
        Number of compute nodes.
    leaf_radix:
        Compute nodes attached to one leaf switch.
    num_core:
        Core switches; every leaf uplinks to every core ("partial"
        means the uplink bandwidth is tapered, which does not affect
        hop distances).
    """

    def __init__(self, num_nodes: int, leaf_radix: int = 32, num_core: int = 2) -> None:
        if num_nodes <= 0 or leaf_radix <= 0 or num_core <= 0:
            raise ReproError("topology sizes must be positive")
        self.num_nodes = num_nodes
        self.leaf_radix = leaf_radix
        self.num_core = num_core
        self.num_leaves = (num_nodes + leaf_radix - 1) // leaf_radix
        self.graph = nx.Graph()
        for node in range(num_nodes):
            leaf = self._leaf_of(node)
            self.graph.add_edge(("node", node), ("leaf", leaf))
        for leaf, core in itertools.product(range(self.num_leaves), range(num_core)):
            self.graph.add_edge(("leaf", leaf), ("core", core))

    def _leaf_of(self, node: int) -> int:
        return node // self.leaf_radix

    def leaf_of(self, node: int) -> int:
        """Leaf switch index serving ``node``."""
        self._check_node(node)
        return self._leaf_of(node)

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.num_nodes:
            raise ReproError(f"node {node} out of range [0, {self.num_nodes})")

    def hop_distance(self, a: int, b: int) -> int:
        """Switch hops between two nodes (0 if same node, 2 if same
        leaf, 4 across the core)."""
        self._check_node(a)
        self._check_node(b)
        if a == b:
            return 0
        if self._leaf_of(a) == self._leaf_of(b):
            return 2
        return 4

    def group_span(self, nodes: list[int]) -> int:
        """Worst-case hop distance within a placement group.

        Dense placements (span 0 or 2) keep NCCL all-reduce traffic off
        the tapered core uplinks.
        """
        if not nodes:
            return 0
        return max(self.hop_distance(a, b) for a in nodes for b in nodes)

    def neighbors_by_distance(self, node: int) -> list[int]:
        """All other nodes ordered by hop distance then index — the
        scheduler's candidate order for growing a multi-node placement."""
        self._check_node(node)
        others = [n for n in range(self.num_nodes) if n != node]
        return sorted(others, key=lambda n: (self.hop_distance(node, n), n))

    def bisection_links(self) -> int:
        """Number of leaf-to-core links crossing the bisection."""
        return self.num_leaves * self.num_core
