"""Reproduction of "AI-Enabling Workloads on Large-Scale GPU-Accelerated
System: Characterization, Opportunities, and Implications" (HPCA 2022).

The package rebuilds the paper's entire measurement pipeline on a
calibrated synthetic substrate (the production traces are not
redistributable):

* :mod:`repro.frame` — columnar table library (pandas substitute);
* :mod:`repro.cluster` — the 224-node / 448-V100 hardware model;
* :mod:`repro.slurm` — event-driven scheduler simulator;
* :mod:`repro.monitor` — nvidia-smi/CPU telemetry substrate;
* :mod:`repro.workload` — calibrated workload generator;
* :mod:`repro.pipeline` — the dataset engine: staged sessions, an
  on-disk artifact cache, process-parallel fan-out;
* :mod:`repro.analysis` — the characterization toolkit;
* :mod:`repro.figures` — per-figure reproduction harness;
* :mod:`repro.opportunities` — Sec. VI/VIII what-if models.

Quickstart
----------
A :class:`~repro.pipeline.Session` owns dataset construction: it runs
the ``workload → schedule → monitor → assemble`` stages at most once,
memoizes the result, and (with ``cache_dir``) persists the artifacts
so later runs — even in other processes — skip generation entirely.

>>> from repro import Session
>>> session = Session.from_scenario(scale=0.02, seed=7)
>>> dataset = session.dataset()
>>> dataset.gpu_jobs.num_rows > 0
True
>>> dataset is session.dataset()   # shared, not rebuilt
True

Compatibility
-------------
The original one-call entry point still works — it is now a thin
wrapper that builds a fresh, uncached session per call:

>>> from repro import generate_dataset, WorkloadConfig
>>> generate_dataset(WorkloadConfig(scale=0.02, seed=7)).gpu_jobs.num_rows > 0
True
"""

from repro.dataset import SupercloudDataset, default_dataset, generate_dataset
from repro.pipeline import Session
from repro.workload.calibration import PAPER_TARGETS, PaperTargets
from repro.workload.generator import WorkloadConfig

__version__ = "1.6.0"

__all__ = [
    "PAPER_TARGETS",
    "PaperTargets",
    "Session",
    "SupercloudDataset",
    "WorkloadConfig",
    "default_dataset",
    "generate_dataset",
    "__version__",
]
