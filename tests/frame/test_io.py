"""Tests for repro.frame CSV/JSONL round trips."""

import pytest

from repro.errors import FrameError
from repro.frame import Table, read_csv, read_jsonl, write_csv, write_jsonl


@pytest.fixture
def table():
    return Table(
        {
            "job_id": [1, 2, 3],
            "user": ["a", "b", "c"],
            "runtime": [10.5, 20.0, 0.25],
            "flag": [True, False, True],
        }
    )


class TestCsv:
    def test_roundtrip_values(self, table, tmp_path):
        path = write_csv(table, tmp_path / "t.csv")
        again = read_csv(path)
        assert again.num_rows == 3
        assert list(again["job_id"]) == [1, 2, 3]
        assert list(again["runtime"]) == [10.5, 20.0, 0.25]
        assert list(again["user"]) == ["a", "b", "c"]

    def test_roundtrip_booleans(self, table, tmp_path):
        again = read_csv(write_csv(table, tmp_path / "t.csv"))
        assert list(again["flag"]) == [True, False, True]

    def test_none_roundtrips_as_none(self, tmp_path):
        t = Table({"x": [1, None, 3]})
        again = read_csv(write_csv(t, tmp_path / "t.csv"))
        assert list(again["x"]) == [1, None, 3]

    def test_creates_parent_dirs(self, table, tmp_path):
        path = write_csv(table, tmp_path / "deep" / "nested" / "t.csv")
        assert path.exists()

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(FrameError, match="empty"):
            read_csv(path)

    def test_ragged_row_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1,2\n3\n")
        with pytest.raises(FrameError, match="cells"):
            read_csv(path)

    def test_int_float_string_inference(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("a,b,c\n1,1.5,xyz\n")
        t = read_csv(path)
        assert t.row(0) == {"a": 1, "b": 1.5, "c": "xyz"}


class TestJsonl:
    def test_roundtrip(self, table, tmp_path):
        again = read_jsonl(write_jsonl(table, tmp_path / "t.jsonl"))
        assert again.num_rows == 3
        assert again.row(1) == table.row(1)

    def test_skips_blank_lines(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"a": 1}\n\n{"a": 2}\n')
        t = read_jsonl(path)
        assert t.num_rows == 2

    def test_union_of_keys(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"a": 1}\n{"b": 2}\n')
        t = read_jsonl(path)
        assert t.row(0) == {"a": 1, "b": None}
