"""Monitoring-overhead accounting (paper Sec. II operational lessons).

The paper warns that "logging tools can easily overload the metadata
server and shared file system" and reports a 42 GB dense time-series
dataset for 2,149 jobs.  This model accounts the data volume and
shared-filesystem load of a monitoring configuration, so the
interval/coverage trade-off can be designed rather than guessed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import MonitoringError
from repro.frame import Table

#: Bytes per GPU sample: nvidia-smi CSV row with timestamp + 6 metrics.
BYTES_PER_GPU_SAMPLE = 96.0
#: Bytes per CPU sample (Slurm plugin record).
BYTES_PER_CPU_SAMPLE = 64.0


@dataclass(frozen=True)
class MonitoringVolume:
    """Data volume produced by one monitoring configuration."""

    gpu_series_gb: float
    gpu_summary_gb: float
    cpu_series_gb: float
    #: files copied back by epilogs (metadata-server operations)
    epilog_file_count: int

    @property
    def total_gb(self) -> float:
        return self.gpu_series_gb + self.gpu_summary_gb + self.cpu_series_gb


def monitoring_volume(
    jobs: Table,
    gpu_interval_s: float = 0.1,
    cpu_interval_s: float = 10.0,
    timeseries_fraction: float = 2149.0 / 47120.0,
) -> MonitoringVolume:
    """Estimate telemetry volume for a job population.

    ``jobs`` needs ``run_time_s`` and ``num_gpus`` columns.  Dense GPU
    series exist for ``timeseries_fraction`` of GPU jobs; every GPU
    job gets a summary row per GPU, and every job a CPU series.
    """
    if gpu_interval_s <= 0 or cpu_interval_s <= 0:
        raise MonitoringError("sampling intervals must be positive")
    if not 0.0 <= timeseries_fraction <= 1.0:
        raise MonitoringError("timeseries_fraction must be in [0, 1]")
    if jobs.num_rows == 0:
        raise MonitoringError("no jobs")

    runtimes = np.asarray(jobs["run_time_s"], dtype=float)
    gpus = np.asarray(jobs["num_gpus"], dtype=float)

    gpu_samples = (runtimes / gpu_interval_s) * gpus
    dense_bytes = gpu_samples.sum() * timeseries_fraction * BYTES_PER_GPU_SAMPLE
    summary_bytes = float(gpus.sum()) * 3 * 6 * 16.0  # min/mean/max x 6 metrics
    cpu_bytes = (runtimes / cpu_interval_s).sum() * BYTES_PER_CPU_SAMPLE

    gpu_jobs = int((gpus > 0).sum())
    epilog_files = jobs.num_rows + gpu_jobs  # one CPU file + one GPU file
    return MonitoringVolume(
        gpu_series_gb=float(dense_bytes / 1e9),
        gpu_summary_gb=float(summary_bytes / 1e9),
        cpu_series_gb=float(cpu_bytes / 1e9),
        epilog_file_count=epilog_files,
    )


def interval_tradeoff(
    jobs: Table, intervals_s=(0.1, 1.0, 10.0), timeseries_fraction: float = 2149.0 / 47120.0
) -> Table:
    """Data volume per candidate GPU sampling interval.

    The paper chose 100 ms "as a compromise between data volume and
    usability"; this table is the quantitative version of that choice.
    """
    rows = []
    for interval in intervals_s:
        volume = monitoring_volume(
            jobs, gpu_interval_s=interval, timeseries_fraction=timeseries_fraction
        )
        rows.append(
            {
                "gpu_interval_s": interval,
                "dense_series_gb": volume.gpu_series_gb,
                "total_gb": volume.total_gb,
                "epilog_files": volume.epilog_file_count,
            }
        )
    return Table.from_rows(rows)
