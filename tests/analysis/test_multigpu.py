"""Tests for multi-GPU job analysis."""

import numpy as np
import pytest

from repro.analysis.multigpu import (
    gpu_count_breakdown,
    idle_gpu_fraction,
    multi_gpu_cov,
    user_gpu_breadth,
    wait_by_size,
)
from repro.errors import AnalysisError
from repro.frame import Table


def jobs(rows):
    defaults = {"user": "u", "gpu_hours": 1.0, "wait_time_s": 1.0}
    return Table.from_rows([{**defaults, **r} for r in rows])


class TestBreakdown:
    def test_buckets(self):
        table = gpu_count_breakdown(
            jobs([{"num_gpus": 1}, {"num_gpus": 1}, {"num_gpus": 2}, {"num_gpus": 16}])
        )
        by_label = {r["gpus"]: r for r in table.iter_rows()}
        assert by_label["1"]["job_fraction"] == 0.5
        assert by_label["2"]["job_fraction"] == 0.25
        assert by_label[">=9"]["num_jobs"] == 1

    def test_gpu_hour_fraction_sums_to_one(self):
        table = gpu_count_breakdown(
            jobs([{"num_gpus": 1, "gpu_hours": 3.0}, {"num_gpus": 4, "gpu_hours": 9.0}])
        )
        assert sum(table["gpu_hour_fraction"]) == pytest.approx(1.0)

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            gpu_count_breakdown(jobs([]))


class TestUserBreadth:
    def test_fractions(self):
        table = jobs(
            [
                {"user": "a", "num_gpus": 1},
                {"user": "a", "num_gpus": 2},
                {"user": "b", "num_gpus": 1},
                {"user": "c", "num_gpus": 16},
            ]
        )
        breadth = user_gpu_breadth(table)
        assert breadth["any_multi_gpu"] == pytest.approx(2.0 / 3.0)
        assert breadth["nine_plus"] == pytest.approx(1.0 / 3.0)


class TestWaitBySize:
    def test_median_per_bucket(self):
        table = jobs(
            [
                {"num_gpus": 1, "wait_time_s": 3.0},
                {"num_gpus": 1, "wait_time_s": 5.0},
                {"num_gpus": 2, "wait_time_s": 1.0},
            ]
        )
        waits = wait_by_size(table)
        by_label = {r["gpus"]: r for r in waits.iter_rows()}
        assert by_label["1"]["median_wait_s"] == 4.0
        assert by_label["2"]["median_wait_s"] == 1.0
        assert np.isnan(by_label[">=9"]["median_wait_s"])


def per_gpu_rows(spec):
    """spec: {job_id: [sm per gpu]}"""
    rows = []
    for job_id, sms in spec.items():
        for gpu_index, sm in enumerate(sms):
            rows.append(
                {
                    "job_id": job_id,
                    "gpu_index": gpu_index,
                    "sm_mean": sm,
                    "mem_bw_mean": sm / 10.0,
                    "mem_size_mean": sm / 2.0,
                }
            )
    return Table.from_rows(rows)


class TestMultiGpuCov:
    def test_single_gpu_jobs_skipped(self):
        assert multi_gpu_cov(per_gpu_rows({1: [50.0]})) == []

    def test_uniform_gpus_zero_cov(self):
        results = multi_gpu_cov(per_gpu_rows({1: [40.0, 40.0]}))
        assert results[0].cov_all["sm_mean"] == pytest.approx(0.0)
        assert results[0].num_idle_gpus == 0

    def test_idle_gpu_detected_and_excluded(self):
        results = multi_gpu_cov(per_gpu_rows({1: [40.0, 42.0, 0.0, 0.0]}))
        result = results[0]
        assert result.num_idle_gpus == 2
        assert result.cov_all["sm_mean"] > 0.5
        assert result.cov_active["sm_mean"] < 0.1

    def test_all_idle_gives_nan_active_cov(self):
        results = multi_gpu_cov(per_gpu_rows({1: [0.0, 0.0]}))
        assert np.isnan(results[0].cov_active["sm_mean"])

    def test_idle_fraction(self):
        results = multi_gpu_cov(
            per_gpu_rows({1: [40.0, 0.0], 2: [40.0, 41.0], 3: [10.0, 0.0]})
        )
        assert idle_gpu_fraction(results) == pytest.approx(2.0 / 3.0)

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            multi_gpu_cov(Table.empty(["job_id"]))
        with pytest.raises(AnalysisError):
            idle_gpu_fraction([])


class TestOnGeneratedData:
    def test_active_only_cov_much_lower(self, medium_dataset):
        results = multi_gpu_cov(medium_dataset.per_gpu)
        assert len(results) > 20
        all_cov = np.asarray([r.cov_all["sm_mean"] for r in results])
        active_cov = np.asarray([r.cov_active["sm_mean"] for r in results])
        all_cov = all_cov[np.isfinite(all_cov)]
        active_cov = active_cov[np.isfinite(active_cov)]
        assert np.median(active_cov) < 0.5 * max(np.median(all_cov), 0.05) + 0.05

    def test_idle_pathology_present(self, medium_dataset):
        results = multi_gpu_cov(medium_dataset.per_gpu)
        fraction = idle_gpu_fraction(results)
        assert 0.2 <= fraction <= 0.6  # paper: 0.40
