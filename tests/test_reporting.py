"""Tests for the operator summary report."""

from repro.reporting import operator_summary


class TestOperatorSummary:
    def test_contains_all_sections(self, medium_dataset):
        text = operator_summary(medium_dataset)
        for section in (
            "queue health",
            "GPU utilization",
            "development life-cycle footprint",
            "power headroom",
            "user population",
            "monitoring data volume",
        ):
            assert section in text, section

    def test_contains_ascii_charts(self, medium_dataset):
        text = operator_summary(medium_dataset)
        assert "CDF" in text
        assert "#" in text  # histogram bars
        assert "*" in text  # CDF dots

    def test_mentions_lifecycle_classes(self, medium_dataset):
        text = operator_summary(medium_dataset)
        for cls in ("mature", "exploratory", "ide"):
            assert cls in text

    def test_headline_numbers_present(self, medium_dataset):
        text = operator_summary(medium_dataset)
        assert "median wait" in text
        assert "W cap" in text
        assert "Gini" in text
