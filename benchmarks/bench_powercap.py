"""Opportunity study: power-cap over-provisioning (Fig 9b follow-on)."""

from repro.opportunities.powercap import best_design, powercap_study


def test_powercap_sweep(benchmark, dataset):
    study = benchmark(powercap_study, dataset.gpu_jobs)
    design = best_design(study)
    # low power draw makes aggressive capping a throughput win
    assert design.relative_throughput > 1.2
    assert design.cap_w < 300.0
