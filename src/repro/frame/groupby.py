"""Group-by support for :class:`repro.frame.Table`.

The paper's pipeline aggregates jobs by user, by GPU count, by
interface type, and by life-cycle class.  :class:`GroupBy` supports
iteration over groups and a vectorised ``aggregate`` that applies named
reducers to columns.

Execution model
---------------
Keys are factorized once (:mod:`repro.frame.factorize`): every row gets
an integer group code in first-seen order, and one stable sort of the
codes turns the table into contiguous per-group segments.  From there:

* ``sizes`` and the ``count`` reducer are segment-length differences;
* ``min``/``max``/``sum`` run as ``np.{minimum,maximum,add}.reduceat``
  over the sorted value column; ``mean``/``std`` derive from those;
* ``first``/``last`` fancy-index the segment boundaries;
* ``median`` sorts values within segments via one ``lexsort`` and
  averages the two middle elements per segment.

So that the vectorized kernels stay **bit-for-bit identical** to the
row-at-a-time reference path (:mod:`repro.frame.reference`), the
builtin accumulation reducers are defined with *sequential* left-to-
right summation (a single-segment ``np.add.reduceat``) rather than
``np.sum``'s pairwise summation — ``reduceat`` reduces each segment
sequentially, so defining the scalar reducer the same way makes "one
group at a time" and "all groups at once" agree to the last ULP.  The
property tests assert exactly that.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, Mapping, Sequence

import numpy as np

from repro.errors import FrameError
from repro.frame.factorize import Factorization, factorize_columns
from repro.frame.table import Table, _unwrap
from repro.obs.runtime import record_kernel

Reducer = Callable[[np.ndarray], Any]

_SEGMENT_START = np.zeros(1, dtype=np.intp)


def _seq_sum(values: np.ndarray) -> float:
    """Sequential left-to-right sum — the scalar twin of ``add.reduceat``."""
    if len(values) == 0:
        return 0.0
    return float(np.add.reduceat(values, _SEGMENT_START)[0])


def _seq_mean(a: np.ndarray) -> float:
    floats = a.astype(float)
    return _seq_sum(floats) / len(floats)


def _seq_std(a: np.ndarray) -> float:
    floats = a.astype(float)
    mean = _seq_sum(floats) / len(floats)
    centered = floats - mean
    return float(np.sqrt(_seq_sum(centered * centered) / len(floats)))


_BUILTIN_REDUCERS: dict[str, Reducer] = {
    "mean": _seq_mean,
    "sum": lambda a: _seq_sum(a.astype(float)),
    "min": lambda a: float(np.min(a.astype(float))),
    "max": lambda a: float(np.max(a.astype(float))),
    "median": lambda a: float(np.median(a.astype(float))),
    "std": _seq_std,
    "count": lambda a: int(len(a)),
    "first": lambda a: _unwrap(a[0]),
    "last": lambda a: _unwrap(a[-1]),
}


class GroupBy:
    """Grouping of a table by one or more key columns.

    Group order is first-seen order of the key; row order within a
    group is the table's row order (the factorization sort is stable).
    """

    def __init__(self, table: Table, keys: Sequence[str]) -> None:
        if not keys:
            raise FrameError("group_by requires at least one key column")
        self._table = table
        self._keys = tuple(keys)
        self._fact: Factorization = factorize_columns(
            [table.column(k) for k in self._keys]
        )
        self._key_tuples: list[tuple[Any, ...]] | None = None
        self._lookup: dict[tuple[Any, ...], int] | None = None

    # ------------------------------------------------------------------
    @property
    def num_groups(self) -> int:
        return self._fact.num_groups

    def keys(self) -> list[tuple[Any, ...]]:
        """Group keys in first-seen order."""
        if self._key_tuples is None:
            reps = [
                self._table.column(k)[self._fact.first_rows] for k in self._keys
            ]
            self._key_tuples = [
                tuple(_unwrap(col[g]) for col in reps)
                for g in range(self._fact.num_groups)
            ]
        return list(self._key_tuples)

    def _group_rows(self, group: int) -> np.ndarray:
        f = self._fact
        return f.order[f.starts[group] : f.starts[group + 1]]

    def __iter__(self) -> Iterator[tuple[tuple[Any, ...], Table]]:
        for group, key in enumerate(self.keys()):
            yield key, self._table.take(self._group_rows(group))

    def group(self, *key: Any) -> Table:
        """Return the sub-table for one group key."""
        if self._lookup is None:
            self._lookup = {k: g for g, k in enumerate(self.keys())}
        k = tuple(key)
        group = self._lookup.get(k)
        if group is None:
            raise FrameError(f"no group with key {k!r}")
        return self._table.take(self._group_rows(group))

    def _key_columns(self) -> dict[str, np.ndarray]:
        """Key columns of the output table, one row per group."""
        return {
            name: self._table.column(name)[self._fact.first_rows]
            for name in self._keys
        }

    def sizes(self) -> Table:
        """Return a table of group keys and their row counts."""
        if self._fact.num_groups == 0:
            return Table.from_rows([])
        data = self._key_columns()
        data["count"] = self._fact.sizes.astype(np.int64, copy=False)
        return Table(data)

    # ------------------------------------------------------------------
    def aggregate(self, spec: Mapping[str, Sequence[str] | str]) -> Table:
        """Aggregate columns per group.

        ``spec`` maps a column name to one reducer name or a list of
        reducer names (``mean``/``sum``/``min``/``max``/``median``/
        ``std``/``count``/``first``/``last``).  The result has one row
        per group with columns ``{column}_{reducer}``.
        """
        record_kernel("aggregate", self._table.num_rows)
        normalized: list[tuple[str, str]] = []
        for column, reducers in spec.items():
            if isinstance(reducers, str):
                reducers = [reducers]
            for name in reducers:
                if name not in _BUILTIN_REDUCERS:
                    raise FrameError(
                        f"unknown reducer {name!r}; choose from {sorted(_BUILTIN_REDUCERS)}"
                    )
                normalized.append((column, name))

        if self._fact.num_groups == 0:
            return Table.from_rows([])
        data = self._key_columns()
        sorted_cache: dict[str, np.ndarray] = {}
        for column, name in normalized:
            values = sorted_cache.get(column)
            if values is None:
                values = sorted_cache[column] = self._table.column(column)[
                    self._fact.order
                ]
            data[f"{column}_{name}"] = _reduce_segments(values, self._fact, name)
        return Table(data)

    def apply(self, fn: Callable[[Table], Mapping[str, Any]]) -> Table:
        """Apply ``fn`` to each group's sub-table; collect dict results."""
        from repro.frame.builder import TableBuilder

        if self._fact.num_groups == 0:
            return Table.from_rows([])
        builder = TableBuilder(columns=self._keys)
        for key, sub in self:
            row: dict[str, Any] = dict(zip(self._keys, key))
            row.update(fn(sub))
            builder.append_row(row)
        return builder.finish()

    def mean(self, column: str) -> Table:
        """Shorthand for ``aggregate({column: "mean"})``."""
        return self.aggregate({column: "mean"})

    def sum(self, column: str) -> Table:
        """Shorthand for ``aggregate({column: "sum"})``."""
        return self.aggregate({column: "sum"})


def _reduce_segments(values: np.ndarray, fact: Factorization, name: str) -> np.ndarray:
    """Reduce a code-sorted value column into one value per group.

    Every kernel is whole-column vectorized and bit-identical to
    applying the matching ``_BUILTIN_REDUCERS`` entry per group.
    """
    starts = fact.starts[:-1]
    if name == "count":
        return fact.sizes.astype(np.int64, copy=False)
    if name == "first":
        return values[starts]
    if name == "last":
        return values[fact.starts[1:] - 1]
    floats = values.astype(float)
    if name in ("min", "max"):
        ufunc = np.minimum if name == "min" else np.maximum
        return ufunc.reduceat(floats, starts)
    counts = fact.sizes
    if name == "sum":
        return np.add.reduceat(floats, starts)
    if name == "mean":
        return np.add.reduceat(floats, starts) / counts
    if name == "std":
        means = np.add.reduceat(floats, starts) / counts
        centered = floats - np.repeat(means, counts)
        return np.sqrt(np.add.reduceat(centered * centered, starts) / counts)
    if name == "median":
        return _segment_median(floats, fact)
    raise FrameError(f"no vectorized kernel for reducer {name!r}")


def _segment_median(floats: np.ndarray, fact: Factorization) -> np.ndarray:
    """Per-segment median: value-sort within segments, average middles.

    Matches ``np.median`` bit-for-bit: the even-count cell is the same
    ``(a + b) / 2`` of the two middle elements, and any NaN in a
    segment yields NaN (NaNs sort last, so ``np.median`` sees one at
    the top and poisons the result).
    """
    counts = fact.sizes
    starts = fact.starts[:-1]
    seg_dtype = np.uint16 if fact.num_groups <= np.iinfo(np.uint16).max else np.intp
    segment_ids = np.repeat(np.arange(fact.num_groups, dtype=seg_dtype), counts)
    # Sort by (segment, value) in two passes: an unstable value sort
    # (ties between equal floats cannot change a median) followed by a
    # stable radix sort of the small segment ids — much cheaper than
    # one lexsort with a float key.
    by_value_order = np.argsort(floats)
    regroup = np.argsort(segment_ids[by_value_order], kind="stable")
    by_value = floats[by_value_order[regroup]]
    lo = by_value[starts + (counts - 1) // 2]
    hi = by_value[starts + counts // 2]
    medians = np.where(counts % 2 == 1, lo, (lo + hi) / 2.0)
    has_nan = np.add.reduceat(np.isnan(floats), starts) > 0
    if has_nan.any():
        medians = np.where(has_nan, np.nan, medians)
    return medians
