"""Run every figure and render the paper-vs-measured report.

``python -m repro report`` writes EXPERIMENTS.md from this module.
Entry points accept either a :class:`repro.pipeline.Session` (shared
cached dataset, parallel figure fan-out) or a bare
:class:`~repro.dataset.SupercloudDataset`.
"""

from __future__ import annotations

from pathlib import Path

from repro.dataset import SupercloudDataset
from repro.figures.base import FigureResult
from repro.figures import registry


def run_all(source) -> list[FigureResult]:
    """Run every registered figure against one shared dataset source."""
    return registry.run_all(source)


def render_markdown(dataset: SupercloudDataset, results: list[FigureResult]) -> str:
    """Render the EXPERIMENTS.md body."""
    lines = [
        "# EXPERIMENTS — paper vs. measured",
        "",
        "Regenerated with `python -m repro report`.  The dataset is the",
        "calibrated synthetic reproduction described in DESIGN.md; the",
        "*shape* of every figure (orderings, crossovers, rough factors)",
        "is the reproduction target, not exact trace equality.",
        "",
        f"Dataset: {dataset.describe()}.",
        "",
    ]
    for result in results:
        lines.append(f"## {result.figure_id} — {result.title}")
        lines.append("")
        lines.append("| statistic | paper | measured | ratio |")
        lines.append("|---|---|---|---|")
        for c in result.comparisons:
            ratio = f"{c.ratio:.2f}" if c.ratio == c.ratio else "—"
            lines.append(
                f"| {c.name} | {c.paper:g}{c.unit} | {c.measured:.3g}{c.unit} | {ratio} |"
            )
        if result.notes:
            lines.append("")
            lines.append(f"*{result.notes}*")
        lines.append("")
    return "\n".join(lines)


def write_report(source, path: str | Path) -> Path:
    """Run all figures and write the markdown report to ``path``."""
    from repro.pipeline.session import as_dataset

    results = run_all(source)
    path = Path(path)
    path.write_text(render_markdown(as_dataset(source), results), encoding="utf-8")
    return path
