"""Tests for the end-to-end dataset pipeline.

New code builds datasets through :class:`repro.pipeline.Session`; the
deprecated ``default_dataset`` shim keeps exactly one test pinning its
warning until the 2.0 removal (see CHANGELOG.md).
"""

import numpy as np
import pytest

from repro.dataset import default_dataset, generate_dataset
from repro.pipeline import Session
from repro.workload.calibration import PAPER_TARGETS
from repro.workload.generator import WorkloadConfig


class TestPipeline:
    def test_tables_linked_by_job_id(self, small_dataset):
        gpu_ids = set(small_dataset.gpu_jobs["job_id"])
        all_ids = set(small_dataset.jobs["job_id"])
        assert gpu_ids <= all_ids

    def test_gpu_jobs_have_metrics(self, small_dataset):
        for column in ("sm_mean", "power_w_max", "pcie_rx_mean"):
            assert column in small_dataset.gpu_jobs

    def test_short_jobs_filtered(self, small_dataset):
        runtimes = np.asarray(small_dataset.gpu_jobs["run_time_s"], dtype=float)
        assert runtimes.min() >= PAPER_TARGETS.short_job_filter_s

    def test_jobs_table_keeps_short_and_cpu_jobs(self, small_dataset):
        assert len(small_dataset.jobs) > len(small_dataset.gpu_jobs)

    def test_per_gpu_row_counts_match_gpu_requests(self, small_dataset):
        per_gpu = small_dataset.per_gpu
        counts = {}
        for row in per_gpu.iter_rows():
            counts[row["job_id"]] = counts.get(row["job_id"], 0) + 1
        for row in small_dataset.gpu_jobs.iter_rows():
            assert counts[row["job_id"]] == row["num_gpus"]

    def test_timeseries_jobs_are_gpu_jobs(self, small_dataset):
        all_gpu_ids = {
            row["job_id"]
            for row in small_dataset.jobs.iter_rows()
            if row["num_gpus"] > 0
        }
        for job_id in small_dataset.timeseries.job_ids():
            assert job_id in all_gpu_ids

    def test_describe_mentions_counts(self, small_dataset):
        text = small_dataset.describe()
        assert "total jobs" in text
        assert "users" in text

    def test_num_users_bounded_by_config(self, small_dataset):
        assert small_dataset.num_users <= small_dataset.config.scaled_users

    def test_spec_scaled(self, small_dataset):
        assert small_dataset.spec.num_nodes == small_dataset.config.scaled_nodes


class TestDeterminism:
    def test_same_seed_same_dataset(self):
        a = generate_dataset(WorkloadConfig(scale=0.01, seed=77))
        b = generate_dataset(WorkloadConfig(scale=0.01, seed=77))
        assert a.jobs.num_rows == b.jobs.num_rows
        assert list(a.gpu_jobs["sm_mean"]) == list(b.gpu_jobs["sm_mean"])
        assert list(a.jobs["wait_time_s"]) == list(b.jobs["wait_time_s"])

    def test_session_memoizes_dataset(self):
        session = Session(WorkloadConfig(scale=0.01, seed=55))
        assert session.dataset() is session.dataset()

    def test_session_matches_generate_dataset(self):
        config = WorkloadConfig(scale=0.01, seed=55)
        from_session = Session(config).dataset()
        direct = generate_dataset(config)
        assert list(from_session.gpu_jobs["sm_mean"]) == list(direct.gpu_jobs["sm_mean"])

    def test_default_dataset_still_warns_until_removal(self):
        with pytest.warns(DeprecationWarning, match="Session"):
            first = default_dataset(scale=0.01, seed=55)
        with pytest.warns(DeprecationWarning, match="Session"):
            second = default_dataset(scale=0.01, seed=55)
        assert first is second
