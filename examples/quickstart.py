"""Quickstart: generate a dataset and reproduce two headline figures.

Run with ``python examples/quickstart.py``.  Uses a reduced scale so
the whole script finishes in well under a minute; raise ``SCALE`` to
1.0 for the paper-sized dataset (47k GPU jobs, ~4 minutes).
"""

from repro import WorkloadConfig, generate_dataset
from repro.figures.registry import run_figure

SCALE = 0.05
SEED = 20220214


def main() -> None:
    print(f"Generating the Supercloud-like dataset at scale {SCALE} ...")
    dataset = generate_dataset(WorkloadConfig(scale=SCALE, seed=SEED))
    print(dataset.describe())
    print()

    print("First rows of the combined GPU-job table:")
    preview = dataset.gpu_jobs.select(
        ["job_id", "user", "num_gpus", "run_time_s", "sm_mean", "power_w_mean", "lifecycle_class"]
    )
    print(preview.head(8).to_string())
    print()

    for figure_id in ("fig04", "fig15"):
        result = run_figure(figure_id, dataset)
        print(result.to_text())
        print()

    print("Try `python -m repro report` for all figures at once.")


if __name__ == "__main__":
    main()
