"""Perf-smoke gates for the partitioned (sharded) full-scale build.

This is the suite that makes ``scale=1.0`` the *benchmarked default*:
it builds the paper-sized dataset as four cluster islands, twice —
once fanned across a 4-process pool, once serially in-process — and
gates on the refactor's two load-bearing promises:

* **bit identity** — the parallel and serial sharded builds produce
  the same dataset, table for table and series for series (this is
  the contract that makes ``--workers`` safe at any scale);
* **scaling** — on a machine with >= 4 cores the 4-worker build must
  be at least 2x faster than the serial one, and routing must keep
  the per-island job buckets balanced so no island serialises the
  pool.

A second module half gates the *streaming coupled* build that makes
10x-scale traces tractable: the same four islands, coupled through
migration interchange, built process-parallel with every island
spilling its tables to disk.  The parent consumes the k-way merged
chunk streams without ever materializing the dataset, and the gates
pin (a) figure-grade statistics bit-identical to the serial
materialized coupled build, (b) parent working memory bounded by a
chunk-size constant (independent of scale), and (c) the same >= 2x
speedup at 4 workers on real parallel hardware.

``REPRO_BENCH_SCALE_FULL`` shrinks or grows the build (default
``1.0``; the equality, balance, and memory gates hold at any scale).
It accepts either a plain scale (``0.25``) or an ``Nx`` multiplier —
``REPRO_BENCH_SCALE_FULL=10x`` opts into the 10x-scale streaming
build that motivated the sharded spill path.  Wall times, speedup,
migrations, and peak memory are reported via
:func:`repro.bench.record_bench_stat` so ``python -m repro bench``
records the trajectory and ``--check`` can flag regressions.

Monitoring is configured light (sparse time series): the gate targets
the workload + simulation spine, not sampling volume, and a full-scale
dense-series build would push the suite past ten minutes per run.
"""

from __future__ import annotations

import os
import time
import tracemalloc

import numpy as np
import pytest

from repro.bench import record_bench_stat
from repro.monitor.collector import MonitoringConfig
from repro.pipeline import Session
from repro.slurm.interchange import InterchangeConfig, route_requests
from repro.workload.generator import WorkloadConfig


def _parse_scale(raw: str) -> float:
    """``"0.25"`` is a scale; ``"10x"`` multiplies the 1.0 default."""
    raw = raw.strip().lower()
    if raw.endswith("x"):
        return float(raw[:-1])
    return float(raw)


FULL_SCALE = _parse_scale(os.environ.get("REPRO_BENCH_SCALE_FULL", "1.0"))
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "20220214"))
PARTITIONS = 4

#: The streaming coupled gate defaults to scale 2.0 — large enough
#: that materializing in the parent would visibly dominate RSS — and
#: follows any explicit REPRO_BENCH_SCALE_FULL in either direction:
#: ``10x`` opts into the 10x-scale streaming build, ``0.25`` shrinks
#: for constrained CI (every gate but the speedup is scale-free).
STREAM_SCALE = FULL_SCALE if FULL_SCALE != 1.0 else 2.0
STREAM_CHUNK_ROWS = 8192

LIGHT_MONITORING = MonitoringConfig(
    summary_samples=64, timeseries_fraction=0.004, timeseries_max_samples=500
)


def _num_nodes(scale: float = FULL_SCALE) -> int:
    # At scale 1.0 this is exactly the paper's 224-node machine.  At the
    # reduced REPRO_BENCH_SCALE_FULL values CI boxes use, grow the
    # configured machine so every island still has the 8 nodes the
    # largest (16-GPU) jobs need to place at all.
    import math

    return max(224, math.ceil(8 * PARTITIONS / scale))


def _build(workers: int) -> tuple[Session, float]:
    config = WorkloadConfig(
        scale=FULL_SCALE,
        seed=BENCH_SEED,
        num_nodes=_num_nodes(),
        partitions=PARTITIONS,
    )
    session = Session(config, LIGHT_MONITORING, workers=workers)
    start = time.perf_counter()
    session.dataset()
    return session, time.perf_counter() - start


@pytest.fixture(scope="module")
def builds():
    # Parallel first: the pool forks from a parent that has not yet
    # built anything, so each island's peak-RSS reading reflects the
    # island's own footprint instead of inherited parent pages.
    parallel_session, parallel_s = _build(workers=PARTITIONS)
    serial_session, serial_s = _build(workers=1)
    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
    island_rss = parallel_session.metrics.gauge(
        "repro_shard_island_peak_rss_bytes"
    ).value
    record_bench_stat(
        "scale_equivalence",
        scale=FULL_SCALE,
        partitions=PARTITIONS,
        workers=PARTITIONS,
        serial_s=round(serial_s, 3),
        parallel_s=round(parallel_s, 3),
        speedup=round(speedup, 3),
        island_peak_rss_bytes=island_rss,
        cpu_count=os.cpu_count(),
        jobs=serial_session.dataset().jobs.num_rows,
    )
    return parallel_session, serial_session, parallel_s, serial_s


def test_parallel_build_is_bit_identical(builds):
    """Gate: unconditional, at any scale and on any core count."""
    parallel_session, serial_session, _, _ = builds
    serial = serial_session.dataset()
    parallel = parallel_session.dataset()
    assert serial.jobs.to_dict() == parallel.jobs.to_dict()
    assert serial.gpu_jobs.to_dict() == parallel.gpu_jobs.to_dict()
    assert serial.per_gpu.to_dict() == parallel.per_gpu.to_dict()
    assert len(serial.timeseries) == len(parallel.timeseries)
    for series in serial.timeseries:
        twin = parallel.timeseries.get(series.job_id, series.gpu_index)
        assert np.array_equal(series.times_s, twin.times_s)
        for name, values in series.metrics.items():
            assert np.array_equal(values, twin.metrics[name]), name


def test_island_rss_stays_bounded(builds):
    """Gate: a worker holds its own island, not the merged dataset."""
    from repro.obs.runtime import peak_rss_bytes

    parallel_session, _, _, _ = builds
    island_rss = parallel_session.metrics.gauge(
        "repro_shard_island_peak_rss_bytes"
    ).value
    assert island_rss > 0
    runner_rss = peak_rss_bytes()
    assert island_rss <= max(runner_rss, 1.0), (
        f"island RSS {island_rss:.0f} exceeds the merged-build runner "
        f"peak {runner_rss:.0f}"
    )


def test_four_workers_scale(builds):
    """Gate: >= 2x at 4 workers — needs real parallel hardware."""
    _, _, parallel_s, serial_s = builds
    cores = os.cpu_count() or 1
    if cores < 4:
        pytest.skip(f"speedup gate needs >= 4 cores, machine has {cores}")
    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
    assert speedup >= 2.0, (
        f"4-worker sharded build only {speedup:.2f}x faster than serial "
        f"({parallel_s:.1f}s vs {serial_s:.1f}s) on {cores} cores"
    )


def test_island_buckets_stay_balanced(builds):
    """Cohort routing must not let one island serialise the pool."""
    _, serial_session, _, _ = builds
    requests = [record.request for record in serial_session.dataset().records]
    buckets = route_requests(requests, PARTITIONS)
    sizes = [len(bucket) for bucket in buckets]
    mean = sum(sizes) / len(sizes)
    record_bench_stat(
        "island_balance",
        bucket_sizes=sizes,
        max_over_mean=round(max(sizes) / mean, 3),
    )
    assert min(sizes) > 0, f"empty island bucket: {sizes}"
    # GPU-hour-heavy users skew buckets; 2.5x mean still keeps the
    # pool's critical path well under serial.
    assert max(sizes) <= 2.5 * mean, f"island buckets unbalanced: {sizes}"


# ----------------------------------------------------------------------
# Streaming coupled islands: the 10x-scale build path
# ----------------------------------------------------------------------

#: Coupling for the streaming gate: migration interchange forces the
#: islands into lockstep epochs, so the build exercises the
#: process-parallel epoch protocol, not just the embarrassing fan-out.
STREAM_INTERCHANGE = InterchangeConfig(epoch_s=6 * 3600.0, migrate_after_s=3600.0)


def _stream_config() -> WorkloadConfig:
    return WorkloadConfig(
        scale=STREAM_SCALE,
        seed=BENCH_SEED,
        num_nodes=_num_nodes(STREAM_SCALE),
        partitions=PARTITIONS,
    )


@pytest.fixture(scope="module")
def coupled_builds():
    """Streaming process-parallel coupled build vs serial materialized.

    The parallel build spills every island table to disk and hands the
    parent only chunk-stream handles; the serial build runs the same
    coupled lockstep in-process and materializes, providing the ground
    truth the bit-identity gate compares against.

    The parallel build runs with a live progress sink installed — the
    heartbeat side channel promises to be observation-only, so the
    bit-identity gate downstream is also the proof that watching a
    build never changes it.
    """
    from repro.obs.progress import ProgressAggregator, use_sink

    config = _stream_config()
    stream_session = Session(
        config, LIGHT_MONITORING, workers=PARTITIONS, interchange=STREAM_INTERCHANGE
    )
    progress = ProgressAggregator()
    start = time.perf_counter()
    with use_sink(progress):
        stream = stream_session.streaming_dataset(chunk_rows=STREAM_CHUNK_ROWS)
    parallel_s = time.perf_counter() - start

    serial_session = Session(
        config, LIGHT_MONITORING, workers=1, interchange=STREAM_INTERCHANGE
    )
    start = time.perf_counter()
    serial = serial_session.dataset()
    serial_s = time.perf_counter() - start

    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
    record_bench_stat(
        "stream_coupled",
        scale=STREAM_SCALE,
        partitions=PARTITIONS,
        workers=PARTITIONS,
        chunk_rows=STREAM_CHUNK_ROWS,
        serial_s=round(serial_s, 3),
        parallel_s=round(parallel_s, 3),
        speedup=round(speedup, 3),
        rows_per_s=round(serial.jobs.num_rows / max(parallel_s, 1e-9), 1),
        migrations=stream_session.metrics.counter_value(
            "repro_shard_migrations_total"
        ),
        island_peak_rss_bytes=stream_session.metrics.gauge(
            "repro_shard_island_peak_rss_bytes"
        ).value,
        heartbeats=progress.heartbeats,
        cpu_count=os.cpu_count(),
        jobs=serial.jobs.num_rows,
    )
    return stream_session, serial_session, stream, serial, parallel_s, serial_s, progress


def _assert_stream_matches_table(stream_table, serial_table) -> None:
    """Chunk-wise bit-identity without materializing the stream."""
    columns = {
        name: np.asarray(serial_table[name]) for name in serial_table.column_names
    }
    offset = 0
    for chunk in stream_table.chunks():
        assert tuple(chunk.column_names) == tuple(serial_table.column_names)
        for name in chunk.column_names:
            expected = columns[name][offset : offset + chunk.num_rows]
            assert np.array_equal(np.asarray(chunk[name]), expected), name
        offset += chunk.num_rows
    assert offset == serial_table.num_rows


def test_coupled_stream_is_bit_identical(coupled_builds):
    """Gate: the streaming build is the serial build, chunk for chunk.

    Compares every table row-for-row against the serial materialized
    coupled build (same interchange, same epochs) while only ever
    holding one chunk of the stream, plus the figure-grade statistics
    the streaming view exists to serve.
    """
    _, _, stream, serial, _, _, _ = coupled_builds
    assert stream.is_streaming and not serial.is_streaming
    _assert_stream_matches_table(stream.jobs, serial.jobs)
    _assert_stream_matches_table(stream.gpu_jobs, serial.gpu_jobs)
    _assert_stream_matches_table(stream.per_gpu, serial.per_gpu)
    assert stream.num_users == serial.num_users
    assert len(stream.timeseries) == len(serial.timeseries)
    for series in serial.timeseries:
        twin = stream.timeseries.get(series.job_id, series.gpu_index)
        assert np.array_equal(series.times_s, twin.times_s)
        for name, values in series.metrics.items():
            assert np.array_equal(values, twin.metrics[name]), name

    from repro.figures import fig05

    exact = fig05.run(serial)
    streamed = fig05.run(stream)
    for ours, theirs in zip(exact.comparisons, streamed.comparisons):
        assert ours.name == theirs.name
        if "job share" in ours.name:
            assert ours.measured == theirs.measured, ours.name


def test_coupled_stream_parent_memory_bounded(coupled_builds):
    """Gate: consuming the merged streams costs O(chunk), not O(scale).

    tracemalloc sees every numpy buffer the parent touches while it
    k-way merges the island spills, merge-joins the assemble verbs,
    and sketches a figure-grade CDF.  The budget is a constant
    multiple of the chunk footprint — it does not grow with
    ``STREAM_SCALE``, which is the whole point of the spill path.
    """
    from repro.analysis.stats import column_ecdf, column_fraction

    _, _, stream, _, _, _, _ = coupled_builds
    # ~50 columns of float64 per row is a generous upper bound on the
    # widest assembled table (per_gpu + job context).
    chunk_bytes = STREAM_CHUNK_ROWS * 50 * 8

    tracemalloc.start()
    tracemalloc.reset_peak()
    sketch = column_ecdf(stream.gpu_jobs, "sm_mean")
    short_share = column_fraction(
        stream.jobs, "run_time_s", lambda r: r < 3600.0
    )
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    record_bench_stat(
        "stream_coupled_memory",
        parent_peak_tracemalloc_bytes=int(peak),
        chunk_bytes=chunk_bytes,
        sketch_samples=sketch.num_samples,
    )
    assert 0.0 < short_share < 1.0
    assert peak < 48 * chunk_bytes, (
        f"parent consumption peaked at {peak / 1e6:.1f} MB; budget "
        f"{48 * chunk_bytes / 1e6:.1f} MB (48x one "
        f"{STREAM_CHUNK_ROWS}-row chunk)"
    )


def test_coupled_build_emits_live_heartbeats(coupled_builds):
    """Gate: every island reported live telemetry during the build.

    The heartbeats must carry a moving epoch counter and the worker's
    peak RSS — the fields ``--progress`` renders — and their arrival
    must not have perturbed the build (the bit-identity gate above ran
    against this same watched build).
    """
    _, _, _, _, _, _, progress = coupled_builds
    islands = progress.islands()
    assert {hb.island for hb in islands} == set(range(PARTITIONS))
    assert progress.heartbeats >= PARTITIONS
    for hb in islands:
        assert hb.epoch > 0
        assert hb.peak_rss_bytes > 0
    assert "island" in progress.render()


def test_coupled_parallel_speedup(coupled_builds):
    """Gate: >= 2x at 4 workers — needs real parallel hardware."""
    _, _, _, _, parallel_s, serial_s, _ = coupled_builds
    cores = os.cpu_count() or 1
    if cores < 4:
        pytest.skip(f"speedup gate needs >= 4 cores, machine has {cores}")
    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
    assert speedup >= 2.0, (
        f"4-worker coupled streaming build only {speedup:.2f}x faster "
        f"than serial ({parallel_s:.1f}s vs {serial_s:.1f}s) on {cores} cores"
    )
