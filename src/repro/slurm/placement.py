"""Topology-aware job placement.

Placement policy follows the paper's description:

* GPU jobs request few CPU cores, so several GPU jobs are co-located on
  one CPU node (this is why GPU jobs see short queues, Sec. III).
* Multi-GPU jobs are "placed as densely as possible, either on the same
  node or on neighboring nodes on the network interconnect" (Sec. V).
* CPU-only jobs "usually request all cores and full memory of the
  nodes", so they occupy whole nodes and queue longer.
* Jobs never share a GPU.
"""

from __future__ import annotations

from repro.cluster.node import Cluster
from repro.cluster.spec import ClusterSpec
from repro.cluster.topology import FatTreeTopology
from repro.errors import PlacementError
from repro.slurm.job import JobRequest


def check_spec_feasible(spec: ClusterSpec, request: JobRequest) -> None:
    """Raise PlacementError if the job can never run on a cluster of
    this spec.

    Feasibility depends only on the *static* spec (node shape and node
    count), never on current allocations — which is what lets the
    partitioned interchange plan migrations for remote islands from
    their specs alone, without touching their live cluster state.
    """
    node_spec = spec.node
    if request.num_gpus == 0:
        if request.cores > node_spec.physical_cores or request.memory_gb > node_spec.ram_gb:
            raise PlacementError(
                f"job {request.job_id} requests more than one node provides"
            )
        return
    full_nodes, remainder = divmod(request.num_gpus, node_spec.gpus_per_node)
    nodes_needed = full_nodes + (1 if remainder else 0)
    if nodes_needed > spec.num_nodes:
        raise PlacementError(
            f"job {request.job_id} requests {request.num_gpus} GPUs; the "
            f"cluster has {spec.total_gpus}"
        )
    per_node_cores = PlacementPolicy._per_node_cores(request, nodes_needed)
    if per_node_cores > node_spec.physical_cores:
        raise PlacementError(
            f"job {request.job_id} needs {per_node_cores} cores per node"
        )


class PlacementPolicy:
    """Chooses nodes (and per-node resource slices) for a request."""

    def __init__(self, cluster: Cluster, topology: FatTreeTopology | None = None) -> None:
        self.cluster = cluster
        self.topology = topology or FatTreeTopology(cluster.spec.num_nodes)
        # Negative-result cache: request shapes known not to fit in the
        # cluster's *current* state.  The scheduler invalidates it on
        # every allocation change.  Without it, a long queue of
        # identical jobs (CPU campaigns) makes each dispatch round scan
        # the whole cluster once per queued job.
        self._failed_shapes: set[tuple[int, int, int]] = set()

    def invalidate(self) -> None:
        """Forget cached placement failures (cluster state changed)."""
        self._failed_shapes.clear()

    @staticmethod
    def _shape(request: JobRequest) -> tuple[int, int, int]:
        return (request.num_gpus, request.cores, int(-(-request.memory_gb // 1)))

    # ------------------------------------------------------------------
    def check_feasible(self, request: JobRequest) -> None:
        """Raise PlacementError if the job can never run on this cluster."""
        check_spec_feasible(self.cluster.spec, request)

    @staticmethod
    def _per_node_cores(request: JobRequest, nodes_needed: int) -> int:
        return max(1, -(-request.cores // max(nodes_needed, 1)))

    # ------------------------------------------------------------------
    def find_placement(self, request: JobRequest) -> list[tuple[int, int, float, int]] | None:
        """Return ``[(node_index, cores, memory_gb, gpus), ...]`` or None.

        The returned plan covers the full request; None means the job
        cannot start right now (but may later).
        """
        shape = self._shape(request)
        if shape in self._failed_shapes:
            return None
        if request.num_gpus == 0:
            plan = self._place_cpu_job(request)
        else:
            plan = self._place_gpu_job(request)
        if plan is None:
            self._failed_shapes.add(shape)
        return plan

    def _place_cpu_job(self, request: JobRequest) -> list[tuple[int, int, float, int]] | None:
        for node in self.cluster.nodes:
            if node.can_fit(request.cores, request.memory_gb, 0):
                return [(node.index, request.cores, request.memory_gb, 0)]
        return None

    def _place_gpu_job(self, request: JobRequest) -> list[tuple[int, int, float, int]] | None:
        gpus_per_node = self.cluster.spec.node.gpus_per_node
        nodes_needed = -(-request.num_gpus // gpus_per_node)
        per_node_cores = self._per_node_cores(request, nodes_needed)
        per_node_mem = request.memory_gb / max(nodes_needed, 1)

        if nodes_needed == 1:
            node = self._best_single_node(request.num_gpus, per_node_cores, per_node_mem)
            if node is None:
                return None
            return [(node, per_node_cores, per_node_mem, request.num_gpus)]
        return self._dense_multi_node(request, nodes_needed, per_node_cores, per_node_mem)

    def _best_single_node(self, gpus: int, cores: int, memory_gb: float) -> int | None:
        """Pick the feasible node with the fewest free GPUs (best fit),
        packing GPU jobs densely and leaving whole nodes for CPU jobs."""
        best: tuple[int, int] | None = None
        for node in self.cluster.nodes:
            if node.can_fit(cores, memory_gb, gpus):
                key = (node.free_gpus, node.index)
                if best is None or key < best:
                    best = key
        return None if best is None else best[1]

    def _dense_multi_node(
        self,
        request: JobRequest,
        nodes_needed: int,
        per_node_cores: int,
        per_node_mem: float,
    ) -> list[tuple[int, int, float, int]] | None:
        """Grow a placement from each candidate anchor in topology order
        and keep the one with the smallest network span."""
        gpus_per_node = self.cluster.spec.node.gpus_per_node

        def fits(node_index: int) -> bool:
            node = self.cluster.nodes[node_index]
            return node.can_fit(per_node_cores, per_node_mem, gpus_per_node)

        candidates = [n.index for n in self.cluster.nodes if fits(n.index)]
        if len(candidates) < nodes_needed:
            return None

        best_group: list[int] | None = None
        best_span = None
        for anchor in candidates:
            group = [anchor]
            for neighbor in self.topology.neighbors_by_distance(anchor):
                if len(group) == nodes_needed:
                    break
                if neighbor in set(candidates):
                    group.append(neighbor)
            if len(group) < nodes_needed:
                continue
            span = self.topology.group_span(group)
            if best_span is None or span < best_span:
                best_group, best_span = group, span
                if span == 0:
                    break

        if best_group is None:
            return None
        plan = []
        remaining_gpus = request.num_gpus
        for node_index in best_group:
            take = min(gpus_per_node, remaining_gpus)
            plan.append((node_index, per_node_cores, per_node_mem, take))
            remaining_gpus -= take
        if remaining_gpus != 0:
            raise PlacementError(
                f"internal error: {remaining_gpus} GPUs left unplaced for job {request.job_id}"
            )
        return plan
