"""Registry of all figure reproductions."""

from __future__ import annotations

import time
from typing import Callable

from repro.dataset import SupercloudDataset
from repro.errors import AnalysisError
from repro.figures import (
    ext_prediction,
    ext_queueing,
    ext_timeline,
    fig03,
    fig04,
    fig05,
    fig06,
    fig07,
    fig08,
    fig09,
    fig10,
    fig11,
    fig12,
    fig13,
    fig14,
    fig15,
    fig16,
    fig17,
    pareto,
    queue_waits,
    table1,
)
from repro.figures.base import FigureResult

FigureRunner = Callable[[SupercloudDataset], FigureResult]

_REGISTRY: dict[str, FigureRunner] = {
    "table1": table1.run,
    "fig03": fig03.run,
    "fig04": fig04.run,
    "fig05": fig05.run,
    "fig06": fig06.run,
    "fig07": fig07.run,
    "fig08": fig08.run,
    "fig09": fig09.run,
    "fig10": fig10.run,
    "fig11": fig11.run,
    "fig12": fig12.run,
    "fig13": fig13.run,
    "fig14": fig14.run,
    "fig15": fig15.run,
    "fig16": fig16.run,
    "fig17": fig17.run,
    "queue_waits": queue_waits.run,
    "pareto": pareto.run,
    # extensions beyond the paper's own figures
    "ext_timeline": ext_timeline.run,
    "ext_prediction": ext_prediction.run,
    "ext_queueing": ext_queueing.run,
}


def all_figures() -> list[str]:
    """Ids of every registered figure, in paper order."""
    return list(_REGISTRY)


def get_figure(figure_id: str) -> FigureRunner:
    if figure_id not in _REGISTRY:
        raise AnalysisError(
            f"unknown figure {figure_id!r}; available: {', '.join(_REGISTRY)}"
        )
    return _REGISTRY[figure_id]


#: Wall-time buckets for figure runs (seconds).
_FIGURE_BUCKETS = (0.005, 0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 15.0, 60.0)


def run_figure(figure_id: str, dataset: SupercloudDataset) -> FigureResult:
    """Run one figure reproduction against a dataset.

    When observability is active (inside a session build or a pool
    worker), the run is recorded as a ``figure:<id>`` span and its
    wall time lands in the ``repro_figure_seconds`` histogram.
    """
    from repro.obs import runtime

    tracer, metrics = runtime.get_tracer(), runtime.get_metrics()
    if not tracer.enabled and not metrics.enabled:
        return get_figure(figure_id)(dataset)
    start = time.perf_counter()
    with tracer.span(f"figure:{figure_id}", category="figure"):
        result = get_figure(figure_id)(dataset)
    metrics.histogram(
        "repro_figure_seconds",
        buckets=_FIGURE_BUCKETS,
        help="figure reproduction wall time",
        figure=figure_id,
    ).observe(time.perf_counter() - start)
    return result


def run_all(source, figure_ids: list[str] | None = None) -> list[FigureResult]:
    """Run figure reproductions against a shared dataset source.

    ``source`` is preferably a :class:`repro.pipeline.Session` — the
    figures then share its memoized dataset, its on-disk result cache,
    and its worker pool — but a bare :class:`SupercloudDataset` is
    accepted for compatibility (serial, uncached).
    """
    from repro.pipeline.session import Session

    if isinstance(source, Session):
        return source.run_figures(figure_ids)
    ids = figure_ids if figure_ids is not None else all_figures()
    return [run_figure(figure_id, source) for figure_id in ids]
