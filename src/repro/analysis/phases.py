"""Active/idle phase segmentation of GPU time series (Fig 6, Fig 7a).

The paper's finding: GPU jobs alternate between active phases (GPU
resources in use) and idle phases (only host CPUs busy), at irregular
intervals.  We recover those phases from a sampled series exactly the
way an operator would: a sample is *active* when any GPU-side signal
(SM or memory-bandwidth utilization) exceeds a small threshold, and
consecutive same-state samples form intervals.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.stats import coefficient_of_variation
from repro.errors import AnalysisError
from repro.monitor.timeseries import GpuTimeSeries

#: Utilization (%) below which a sample counts as idle.
ACTIVITY_THRESHOLD = 0.5


@dataclass(frozen=True)
class PhaseStats:
    """Per-job phase statistics."""

    job_id: int
    active_fraction: float
    num_active_intervals: int
    num_idle_intervals: int
    active_interval_cov: float
    idle_interval_cov: float
    mean_active_interval_s: float
    mean_idle_interval_s: float


def activity_mask(series: GpuTimeSeries, threshold: float = ACTIVITY_THRESHOLD) -> np.ndarray:
    """Boolean per-sample activity: any GPU-side signal above threshold."""
    sm = series.metric("sm")
    mem = series.metric("mem_bw")
    return (sm > threshold) | (mem > threshold)


def _intervals(times_s: np.ndarray, mask: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Lengths of maximal same-state runs: (active_lengths, idle_lengths)."""
    if len(times_s) == 0:
        return np.empty(0), np.empty(0)
    change = np.nonzero(np.diff(mask.astype(np.int8)))[0]
    starts = np.concatenate(([0], change + 1))
    ends = np.concatenate((change, [len(mask) - 1]))
    lengths = times_s[ends] - times_s[starts]
    # A run of a single sample still occupies one sampling interval.
    if len(times_s) > 1:
        step = float(np.median(np.diff(times_s)))
        lengths = np.maximum(lengths, step)
    states = mask[starts]
    return lengths[states], lengths[~states]


def phase_stats(series: GpuTimeSeries, threshold: float = ACTIVITY_THRESHOLD) -> PhaseStats:
    """Segment one series into phases and summarise them."""
    if series.num_samples == 0:
        raise AnalysisError(f"series for job {series.job_id} has no samples")
    mask = activity_mask(series, threshold)
    active_lengths, idle_lengths = _intervals(series.times_s, mask)
    total = active_lengths.sum() + idle_lengths.sum()
    active_fraction = float(active_lengths.sum() / total) if total > 0 else float(mask.mean())
    return PhaseStats(
        job_id=series.job_id,
        active_fraction=active_fraction,
        num_active_intervals=len(active_lengths),
        num_idle_intervals=len(idle_lengths),
        active_interval_cov=coefficient_of_variation(active_lengths),
        idle_interval_cov=coefficient_of_variation(idle_lengths),
        mean_active_interval_s=float(active_lengths.mean()) if len(active_lengths) else 0.0,
        mean_idle_interval_s=float(idle_lengths.mean()) if len(idle_lengths) else 0.0,
    )


def within_active_cov(
    series: GpuTimeSeries,
    metrics: tuple[str, ...] = ("sm", "mem_bw", "mem_size"),
    threshold: float = ACTIVITY_THRESHOLD,
) -> dict[str, float]:
    """CoV of each metric over the job's *active* samples (Fig 7a).

    The paper computes utilization variability during active phases;
    including idle zeros would trivially inflate every CoV.
    """
    mask = activity_mask(series, threshold)
    out: dict[str, float] = {}
    for name in metrics:
        values = series.metric(name)[mask]
        out[name] = coefficient_of_variation(values) if values.size else float("nan")
    return out


class PhaseAccumulator:
    """Mergeable one-pass fold producing the per-job phase table.

    Feed it series grouped by job (``store.iter_sorted()`` order); it
    keeps exactly one job's running best candidate resident — the
    series with the highest SM mean, strict ``>`` so the first
    candidate wins ties, matching ``max()`` over an ascending
    ``gpu_index`` list.  Island shards each fold their own jobs and
    :meth:`merge` takes the disjoint union, so the partitioned build
    never holds more than one series per shard.
    """

    def __init__(self) -> None:
        #: job id -> finished phase row, in first-seen order per shard.
        self._rows: dict[int, dict] = {}
        self._job: int | None = None
        self._best: GpuTimeSeries | None = None
        self._best_mean = float("-inf")

    def update(self, series: GpuTimeSeries) -> None:
        """Fold in the next series (must arrive grouped by job id)."""
        if series.job_id != self._job:
            self._finish_job()
            self._job = series.job_id
        mean = float(series.metric("sm").mean())
        if self._best is None or mean > self._best_mean:
            self._best = series
            self._best_mean = mean

    def _finish_job(self) -> None:
        if self._best is None:
            return
        stats = phase_stats(self._best)
        covs = within_active_cov(self._best)
        self._rows[self._best.job_id] = {
            "job_id": self._best.job_id,
            "active_fraction": stats.active_fraction,
            "active_interval_cov": stats.active_interval_cov,
            "idle_interval_cov": stats.idle_interval_cov,
            "num_active_intervals": stats.num_active_intervals,
            "num_idle_intervals": stats.num_idle_intervals,
            "sm_active_cov": covs["sm"],
            "mem_bw_active_cov": covs["mem_bw"],
            "mem_size_active_cov": covs["mem_size"],
        }
        self._best = None
        self._best_mean = float("-inf")

    def merge(self, other: "PhaseAccumulator") -> None:
        """Absorb another shard's finished rows (disjoint job ids)."""
        other._finish_job()
        for job_id, row in other._rows.items():
            if job_id in self._rows:
                raise AnalysisError(f"job {job_id} folded by two phase shards")
            self._rows[job_id] = row

    def result(self, jobs_with_context=None):
        """The phase table, rows in ascending job-id order."""
        from repro.frame import Table

        self._finish_job()
        rows = []
        for job_id in sorted(self._rows):
            row = dict(self._rows[job_id])
            if jobs_with_context and job_id in jobs_with_context:
                row.update(jobs_with_context[job_id])
            rows.append(row)
        return Table.from_rows(rows)


def job_phase_table(store, jobs_with_context=None):
    """Phase stats for every job in a time-series store, as a Table.

    ``jobs_with_context`` optionally maps job id -> dict of extra
    columns (lifecycle class etc.).  Multi-GPU jobs use their most
    active GPU (idle GPUs would report a zero active fraction that
    says nothing about the job's phase structure).

    One bounded-memory pass: series stream through in ``(job_id,
    gpu_index)`` order (``iter_sorted`` keeps one spill batch resident
    for a :class:`~repro.monitor.timeseries.SpilledTimeSeriesStore`)
    and the :class:`PhaseAccumulator` holds a single candidate series
    at a time, so the table costs O(jobs) rows rather than O(samples).
    """
    accumulator = PhaseAccumulator()
    series_iter = (
        store.iter_sorted() if hasattr(store, "iter_sorted") else iter(store)
    )
    for series in series_iter:
        accumulator.update(series)
    return accumulator.result(jobs_with_context)
