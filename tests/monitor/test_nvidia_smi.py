"""Tests for the simulated nvidia-smi sampler."""

import numpy as np
import pytest

from repro.errors import MonitoringError
from repro.monitor.nvidia_smi import NvidiaSmiSampler
from repro.monitor.timeseries import METRIC_NAMES


class FlatModel:
    """Constant 40% utilization on every metric, power 100 W."""

    def __init__(self, num_gpus=1):
        self._num_gpus = num_gpus

    @property
    def num_gpus(self):
        return self._num_gpus

    def metrics_at(self, times_s, gpu_index):
        out = {name: np.full(len(times_s), 40.0) for name in METRIC_NAMES}
        out["power_w"] = np.full(len(times_s), 100.0)
        return out

    def analytic_max(self, gpu_index):
        out = {name: 40.0 for name in METRIC_NAMES}
        out["power_w"] = 100.0
        return out


class BurstyModel(FlatModel):
    """Flat 10% with a 100% burst in one narrow window."""

    def metrics_at(self, times_s, gpu_index):
        out = {name: np.full(len(times_s), 10.0) for name in METRIC_NAMES}
        burst = (times_s >= 50.0) & (times_s < 50.2)
        out["sm"] = np.where(burst, 100.0, 10.0)
        out["power_w"] = np.full(len(times_s), 40.0)
        return out

    def analytic_max(self, gpu_index):
        out = {name: 10.0 for name in METRIC_NAMES}
        out["sm"] = 100.0
        out["power_w"] = 40.0
        return out


@pytest.fixture
def rng():
    return np.random.default_rng(3)


class TestSampleSeries:
    def test_sample_count_matches_interval(self):
        sampler = NvidiaSmiSampler(interval_s=0.1)
        series = sampler.sample_series(1, FlatModel(), duration_s=1.0, gpu_index=0)
        assert series.num_samples == 11

    def test_max_samples_decimates(self):
        sampler = NvidiaSmiSampler(interval_s=0.1)
        series = sampler.sample_series(1, FlatModel(), 1000.0, 0, max_samples=50)
        assert series.num_samples == 50
        assert series.times_s[-1] == pytest.approx(1000.0)

    def test_negative_duration_rejected(self):
        with pytest.raises(MonitoringError):
            NvidiaSmiSampler().sample_series(1, FlatModel(), -1.0, 0)

    def test_invalid_interval_rejected(self):
        with pytest.raises(MonitoringError):
            NvidiaSmiSampler(interval_s=0.0)


class TestSummarize:
    def test_flat_model_summary(self, rng):
        sampler = NvidiaSmiSampler(summary_samples=64)
        summary = sampler.summarize(FlatModel(), 100.0, 0, rng)
        assert summary["sm_mean"] == pytest.approx(40.0)
        assert summary["sm_min"] == pytest.approx(40.0)
        assert summary["sm_max"] == pytest.approx(40.0)
        assert summary["power_w_mean"] == pytest.approx(100.0)

    def test_analytic_max_catches_missed_burst(self, rng):
        # 64 stratified samples over 1000 s will usually miss a 0.2 s
        # burst, but the summary max must still report it.
        sampler = NvidiaSmiSampler(summary_samples=64)
        summary = sampler.summarize(BurstyModel(), 1000.0, 0, rng)
        assert summary["sm_max"] == 100.0
        assert summary["sm_mean"] < 15.0

    def test_short_job_uses_few_samples(self, rng):
        sampler = NvidiaSmiSampler(interval_s=0.1, summary_samples=512)
        summary = sampler.summarize(FlatModel(), 0.5, 0, rng)
        assert summary["sm_mean"] == pytest.approx(40.0)

    def test_too_few_summary_samples_rejected(self):
        with pytest.raises(MonitoringError):
            NvidiaSmiSampler(summary_samples=1)

    def test_negative_duration_rejected(self, rng):
        with pytest.raises(MonitoringError):
            NvidiaSmiSampler().summarize(FlatModel(), -5.0, 0, rng)
