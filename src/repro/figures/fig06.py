"""Fig 6: active/idle phase structure from the time-series subset."""

from __future__ import annotations

import numpy as np

from repro.analysis.phases import job_phase_table
from repro.analysis.stats import ecdf
from repro.dataset import SupercloudDataset
from repro.errors import AnalysisError
from repro.figures.base import Comparison, FigureResult


def run(dataset: SupercloudDataset) -> FigureResult:
    """Fig 6(a): active-time share CDF; Fig 6(b): interval-length CoVs."""
    if len(dataset.timeseries) == 0:
        raise AnalysisError("dataset has no time-series subset")
    phases = job_phase_table(dataset.timeseries)

    active = ecdf(phases["active_fraction"])
    # Interval CoV is defined only for jobs with >= 2 intervals of the
    # given kind; others are NaN and dropped by ecdf().
    active_cov = np.asarray(phases["active_interval_cov"], dtype=float)
    idle_cov = np.asarray(phases["idle_interval_cov"], dtype=float)
    multi_active = active_cov[np.asarray(phases["num_active_intervals"]) >= 2]
    multi_idle = idle_cov[np.asarray(phases["num_idle_intervals"]) >= 2]

    comparisons = [
        Comparison("active-time share p25", 0.14, active.quantile(0.25)),
        Comparison("active-time share median", 0.84, active.median()),
        Comparison("active-time share p75", 0.95, active.quantile(0.75)),
    ]
    series: dict[str, object] = {"active_fraction_cdf": active, "phase_table": phases}
    if np.isfinite(multi_idle).any():
        idle_ecdf = ecdf(multi_idle)
        series["idle_cov_cdf"] = idle_ecdf
        comparisons.append(Comparison("idle interval CoV median", 1.26, idle_ecdf.median()))
    if np.isfinite(multi_active).any():
        active_ecdf = ecdf(multi_active)
        series["active_cov_cdf"] = active_ecdf
        comparisons.append(
            Comparison("active interval CoV median", 1.69, active_ecdf.median())
        )
    return FigureResult(
        figure_id="fig06",
        title="Active/idle phases of GPU jobs",
        series=series,
        comparisons=comparisons,
        notes=f"computed over {phases.num_rows} dense-sampled jobs",
    )
