"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``generate``  — generate the dataset and write it to CSV files.
``figure``    — reproduce one figure and print paper-vs-measured rows.
``report``    — run every figure and write EXPERIMENTS-style markdown.
``plot``      — render figures as SVG charts.
``opportunities`` — run the Sec. VI/VIII what-if studies.
``summary``   — operator-facing text report with ASCII charts.
``validate``  — grade the dataset against the paper's statistics.
``obs``       — observability: traced run report (``obs``), live island
telemetry (``obs top``), or summarize a trace (``--trace FILE``).
``bench``     — run the performance-smoke benchmark gates; ``--report``
renders the stored trajectory as a trend table.

Every command accepts ``--scale`` (1.0 = paper size), ``--seed``,
``--days``, and ``--scenario`` (paper, training_heavy,
exploration_surge, interactive_campus).  The dataset-building commands
(``generate``, ``report``, ``plot``, ``validate``, ``obs``)
additionally take ``--workers`` (process-parallel deferred sampling
and figure fan-out; defaults to ``$REPRO_WORKERS`` or serial),
``--cache-dir`` (pipeline artifact cache location; defaults to
``$REPRO_CACHE_DIR`` or the XDG cache home), ``--no-cache``, and the
observability exports ``--trace-out FILE`` (Chrome trace-event JSON,
loadable in ``chrome://tracing``/Perfetto), ``--metrics-out FILE``
(Prometheus text exposition), and ``--events-out FILE`` (flight
recorder JSONL), plus ``--progress`` for live per-island build
telemetry on stderr — see ``docs/observability.md``.  All of
them share one :class:`repro.pipeline.Session`, so the dataset is
built at most once per configuration — and at most once *ever* while
the cache holds it.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
from pathlib import Path

import numpy as _np

from repro.frame import write_csv
from repro.pipeline import Session, default_cache_dir


@dataclasses.dataclass
class DatasetOptions:
    """The dataset/session flags shared by every subcommand."""

    scale: float = 0.1
    seed: int = 20220214
    days: float = 125.0
    scenario: str = "paper"
    partitions: int = 1
    cohorts: int | None = None
    epoch_hours: float | None = None
    migrate_after_hours: float | None = None
    workers: int | None = None
    cache_dir: str | None = None
    no_cache: bool = False

    @staticmethod
    def add_arguments(parser: argparse.ArgumentParser, *, session_flags: bool = False) -> None:
        """Install the shared flags on one subcommand parser."""
        parser.add_argument("--scale", type=float, default=0.1, help="dataset scale (1.0 = paper size)")
        parser.add_argument("--seed", type=int, default=20220214, help="generation seed")
        parser.add_argument("--days", type=float, default=125.0, help="study duration in days")
        parser.add_argument(
            "--scenario",
            default="paper",
            help="workload scenario (paper, training_heavy, exploration_surge, interactive_campus)",
        )
        parser.add_argument(
            "--partitions", type=int, default=1,
            help="cluster islands for the sharded simulation (1 = the "
                 "legacy whole-machine model; see docs/scaling.md)",
        )
        parser.add_argument(
            "--cohorts", type=int, default=None,
            help="user cohorts for sharded workload generation "
                 "(default: follow --partitions)",
        )
        parser.add_argument(
            "--epoch-hours", type=float, default=None,
            help="couple the islands: interchange epoch length in "
                 "simulated hours (with --partitions > 1; default "
                 "uncoupled)",
        )
        parser.add_argument(
            "--migrate-after-hours", type=float, default=None,
            help="migrate jobs queued longer than this many simulated "
                 "hours at each interchange epoch (implies coupling)",
        )
        if session_flags:
            parser.add_argument(
                "--workers", type=int, default=None,
                help="worker processes for deferred sampling and figure fan-out "
                     "(default: $REPRO_WORKERS, else serial)",
            )
            parser.add_argument(
                "--cache-dir", default=None,
                help="pipeline artifact cache directory (default: $REPRO_CACHE_DIR or the XDG cache home)",
            )
            parser.add_argument(
                "--no-cache", action="store_true",
                help="disable the on-disk artifact cache for this run",
            )
            parser.add_argument(
                "--trace-out", default=None, metavar="FILE",
                help="write a Chrome trace-event JSON of the run (chrome://tracing / Perfetto)",
            )
            parser.add_argument(
                "--metrics-out", default=None, metavar="FILE",
                help="write run metrics in Prometheus text exposition format",
            )
            parser.add_argument(
                "--events-out", default=None, metavar="FILE",
                help="write the flight-recorder event log as JSONL",
            )
            parser.add_argument(
                "--progress", action="store_true",
                help="render live per-island build telemetry (heartbeats "
                     "+ resource sampler) to stderr while the command runs",
            )

    @classmethod
    def from_args(cls, args: argparse.Namespace) -> "DatasetOptions":
        """Collect the shared flags back out of a parsed namespace."""
        fields = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in vars(args).items() if k in fields and v is not None})

    def interchange(self):
        """The island-coupling config these options describe (or None)."""
        if self.epoch_hours is None and self.migrate_after_hours is None:
            return None
        from repro.slurm.interchange import InterchangeConfig

        epoch_s = (self.epoch_hours if self.epoch_hours is not None else 6.0) * 3600.0
        # --epoch-hours alone still couples the islands: coupling needs
        # an exchange, so migration defaults on (1/6 of the epoch, the
        # bench_scale coupling) unless explicitly configured.
        migrate_after_s = (
            self.migrate_after_hours * 3600.0
            if self.migrate_after_hours is not None
            else epoch_s / 6.0
        )
        return InterchangeConfig(epoch_s=epoch_s, migrate_after_s=migrate_after_s)

    def session(self) -> Session:
        """Build the pipeline session these options describe."""
        cache_dir: str | Path | None = None
        if not self.no_cache:
            cache_dir = self.cache_dir if self.cache_dir is not None else default_cache_dir()
        return Session.from_scenario(
            self.scenario,
            scale=self.scale,
            seed=self.seed,
            days=self.days,
            partitions=self.partitions,
            cohorts=self.cohorts,
            interchange=self.interchange(),
            cache_dir=cache_dir,
            workers=self.workers,
        )


def _session(args: argparse.Namespace) -> Session:
    return DatasetOptions.from_args(args).session()


def _write_obs(session: Session, args: argparse.Namespace) -> None:
    """Honour ``--trace-out``/``--metrics-out``/``--events-out``."""
    from repro.obs import prometheus_text, write_chrome_trace

    trace_out = getattr(args, "trace_out", None)
    metrics_out = getattr(args, "metrics_out", None)
    events_out = getattr(args, "events_out", None)
    if trace_out:
        path = write_chrome_trace(
            trace_out, session.tracer, metadata={"session_key": session.key}
        )
        print(f"wrote {path} ({len(session.tracer.finished())} spans)")
    if metrics_out:
        Path(metrics_out).write_text(prometheus_text(session.metrics), encoding="utf-8")
        print(f"wrote {metrics_out}")
    if events_out:
        path = session.recorder.write_jsonl(events_out)
        print(f"wrote {path} ({len(session.recorder)} events)")


def _cmd_generate(args: argparse.Namespace) -> int:
    session = _session(args)
    dataset = session.dataset()
    out = Path(args.output)
    out.mkdir(parents=True, exist_ok=True)
    write_csv(dataset.jobs, out / "jobs.csv")
    write_csv(dataset.gpu_jobs, out / "gpu_jobs.csv")
    write_csv(dataset.per_gpu, out / "per_gpu.csv")
    print(dataset.describe())
    print(f"wrote jobs.csv, gpu_jobs.csv, per_gpu.csv to {out}")
    print(session.summary())
    _write_obs(session, args)
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    from repro.figures.registry import run_all

    session = _session(args)
    (result,) = run_all(session, [args.figure_id])
    print(result.to_text())
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.figures.report import write_report

    session = _session(args)
    path = write_report(session, args.output)
    print(f"wrote {path} ({session.dataset().describe()})")
    print(session.summary())
    _write_obs(session, args)
    return 0


def _cmd_opportunities(args: argparse.Namespace) -> int:
    from repro.opportunities.checkpoint import checkpoint_study
    from repro.opportunities.colocation import colocation_study
    from repro.opportunities.powercap import powercap_study
    from repro.opportunities.tiering import tiering_study

    dataset = _session(args).dataset()
    colo = colocation_study(dataset)
    print(
        f"co-location: {colo.num_pairs} pairs of {colo.num_jobs} jobs, "
        f"{colo.gpu_savings_fraction:.0%} GPUs saved, mean slowdown {colo.mean_slowdown:.3f}"
    )
    tier = tiering_study(dataset.gpu_jobs)
    print(
        f"two-tier fleet: {tier.cost_saving_fraction:.0%} cost saving routing "
        f"{tier.routed_job_fraction:.0%} of jobs (slowdown {tier.mean_slowdown_routed:.2f}x)"
    )
    power = powercap_study(dataset.gpu_jobs)
    print("power capping:")
    print(power.to_string())
    ckpt = checkpoint_study(dataset.gpu_jobs)
    print(
        f"checkpointing: {ckpt.lossy_job_fraction:.0%} of jobs lose state; "
        f"net saving {ckpt.net_saving_gpu_hours:.0f} GPU-hours at "
        f"{ckpt.model.interval_s:.0f}s intervals"
    )
    from repro.opportunities.mig import best_partition

    mig = best_partition(dataset.gpu_jobs, sizing="mean")
    print(
        f"MIG: best static partition {'+'.join(mig.partition)} packs "
        f"{mig.capacity_multiplier:.1f} jobs per GPU "
        f"({mig.fraction_fitting:.0%} of jobs fit a slice)"
    )
    return 0


def _cmd_plot(args: argparse.Namespace) -> int:
    from repro.figures.plots import plottable_figures, save_figure_plots
    from repro.figures.registry import run_all

    session = _session(args)
    figure_ids = plottable_figures() if args.figure_id == "all" else [args.figure_id]
    written = []
    for result in run_all(session, figure_ids):
        written.extend(save_figure_plots(result, args.output))
    for path in written:
        print(f"wrote {path}")
    _write_obs(session, args)
    return 0


def _cmd_summary(args: argparse.Namespace) -> int:
    from repro.reporting import operator_summary

    print(operator_summary(_session(args)))
    return 0


def _cmd_obs(args: argparse.Namespace) -> int:
    """Observability entry point.

    With ``--trace FILE`` it summarizes an existing Chrome trace
    export.  ``repro obs top`` runs the build under the live island
    telemetry view (heartbeat table redrawn in place on a TTY) and
    finishes with the flight-recorder digest.  The default ``report``
    mode runs the dataset build (and, with ``--figures``, every
    figure) under tracing and prints the run report — the span tree
    plus the metric digest — honouring ``--trace-out`` /
    ``--metrics-out`` / ``--events-out`` like the other commands.
    """
    from repro.obs import run_report, summarize_chrome_trace, summarize_events

    if args.trace:
        print(summarize_chrome_trace(args.trace))
        return 0
    if args.mode == "top":
        return _cmd_obs_top(args)
    session = _session(args)
    session.dataset()
    if args.figures:
        session.run_figures()
    print(run_report(session.tracer, session.metrics))
    if len(session.recorder):
        print(summarize_events(session.recorder.events()))
    _write_obs(session, args)
    return 0


def _cmd_obs_top(args: argparse.Namespace) -> int:
    """``repro obs top``: live per-island telemetry around a build."""
    from repro.obs import ProgressPrinter, ResourceSampler, summarize_events
    from repro.obs.progress import use_sink

    session = _session(args)
    printer = ProgressPrinter()
    with use_sink(printer), ResourceSampler(session.metrics):
        session.dataset()
    printer.finish()
    print(session.summary())
    print(summarize_events(session.recorder.events()))
    _write_obs(session, args)
    return 0


#: The performance-smoke suite: every benchmark file that gates a perf
#: contract (see docs/performance.md), keyed by a short target name.
PERF_SMOKE = (
    ("frame", "benchmarks/bench_frame.py"),
    ("pipeline", "benchmarks/bench_pipeline.py"),
    ("obs", "benchmarks/bench_obs.py"),
    ("dataset-build", "benchmarks/bench_dataset_build.py"),
    ("stream", "benchmarks/bench_stream.py"),
    ("scale", "benchmarks/bench_scale.py"),
)


def _cmd_bench(args: argparse.Namespace) -> int:
    """Run the perf-smoke benchmark gates and print a pass/fail table.

    Each benchmark file runs in its own pytest subprocess (the gates
    time real work; sharing an interpreter would let one benchmark's
    warm caches skew another's baseline).  Unless ``--no-json``, the
    run is also serialized to ``BENCH_<n>.json`` at the repo root
    (``--json-out`` overrides the path) with per-suite wall times and
    the throughput/memory stats the suites report — see
    ``repro.bench``.
    """
    import os

    import repro
    from repro.bench import (
        check_regressions,
        next_bench_path,
        run_suite,
        trend_report,
        write_bench_json,
    )

    root = Path(repro.__file__).resolve().parents[2]
    if args.report:
        # Pure reporting mode: render the stored trajectory as-is.
        print(trend_report(root, markdown=args.markdown))
        return 0
    if args.check and not args.targets and args.no_json:
        # Pure comparator mode: judge the stored trajectory as-is.
        check = check_regressions(
            root, threshold=args.check_threshold, window=args.check_window
        )
        print(check.to_text())
        return 0 if check.ok else 3
    selected = list(PERF_SMOKE)
    if args.targets:
        by_name = dict(PERF_SMOKE)
        unknown = [t for t in args.targets if t not in by_name]
        if unknown:
            names = ", ".join(name for name, _ in PERF_SMOKE)
            print(f"unknown bench target(s) {unknown}; choose from: {names}")
            return 2
        selected = [(t, by_name[t]) for t in args.targets]
    if args.list:
        for name, rel_path in selected:
            print(f"{name:<14} {rel_path}")
        return 0
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (str(root / "src"), env.get("PYTHONPATH")) if p
    )
    results = []
    for name, rel_path in selected:
        result = run_suite(name, rel_path, root, env)
        results.append(result)
        if not result.passed:
            print(f"--- {name}: {rel_path} failed ---")
            print(result.stdout_tail)
            print(result.stderr_tail)
    print(f"{'target':<14} {'result':<6} {'seconds':>8}")
    for result in results:
        status = "pass" if result.passed else "FAIL"
        print(f"{result.name:<14} {status:<6} {result.seconds:>8.1f}")
    if not args.no_json:
        json_path = Path(args.json_out) if args.json_out else next_bench_path(root)
        write_bench_json(results, json_path)
        print(f"wrote {json_path}")
    failed = [r.name for r in results if not r.passed]
    if failed:
        print(
            f"{len(failed)}/{len(results)} benchmark gates failed: {', '.join(failed)}"
        )
        return 1
    print(f"{len(results)}/{len(results)} benchmark gates passed")
    if args.check:
        check = check_regressions(
            root, threshold=args.check_threshold, window=args.check_window
        )
        print(check.to_text())
        if not check.ok:
            return 3
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from repro.validation import pass_fraction, scorecard, validate_dataset

    session = _session(args)
    results = validate_dataset(session.dataset())
    table = scorecard(results)
    failed = table.filter(lambda t: ~_np.asarray(t["passed"], dtype=bool))
    if failed.num_rows:
        print("failed checks:")
        print(failed.to_string(max_rows=60))
    fraction = pass_fraction(results)
    print(f"\n{sum(r.passed for r in results)}/{len(results)} checks passed "
          f"({fraction:.0%}; threshold {args.min_pass:.0%})")
    print(session.summary())
    _write_obs(session, args)
    return 0 if fraction >= args.min_pass else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="supercloud-repro",
        description="Reproduction of the HPCA'22 MIT Supercloud characterization study",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    generate = sub.add_parser("generate", help="generate the dataset as CSV files")
    DatasetOptions.add_arguments(generate, session_flags=True)
    generate.add_argument("--output", default="dataset", help="output directory")
    generate.set_defaults(fn=_cmd_generate)

    figure = sub.add_parser("figure", help="reproduce one figure")
    DatasetOptions.add_arguments(figure)
    figure.add_argument("figure_id", help="e.g. fig04, table1, pareto")
    figure.set_defaults(fn=_cmd_figure)

    report = sub.add_parser("report", help="run every figure, write markdown")
    DatasetOptions.add_arguments(report, session_flags=True)
    report.add_argument("--output", default="EXPERIMENTS.md", help="output file")
    report.set_defaults(fn=_cmd_report)

    opportunities = sub.add_parser("opportunities", help="run the Sec. VI/VIII studies")
    DatasetOptions.add_arguments(opportunities)
    opportunities.set_defaults(fn=_cmd_opportunities)

    plot = sub.add_parser("plot", help="render figures as SVG charts")
    DatasetOptions.add_arguments(plot, session_flags=True)
    plot.add_argument("figure_id", help="figure id or 'all'")
    plot.add_argument("--output", default="plots", help="output directory")
    plot.set_defaults(fn=_cmd_plot)

    summary = sub.add_parser("summary", help="operator-facing text summary")
    DatasetOptions.add_arguments(summary)
    summary.set_defaults(fn=_cmd_summary)

    validate = sub.add_parser("validate", help="grade the dataset against the paper")
    DatasetOptions.add_arguments(validate, session_flags=True)
    validate.add_argument("--min-pass", type=float, default=0.85,
                          help="exit non-zero below this pass fraction")
    validate.set_defaults(fn=_cmd_validate)

    obs = sub.add_parser(
        "obs", help="observability: traced run report, live telemetry, trace exports"
    )
    obs.add_argument(
        "mode", nargs="?", default="report", choices=("report", "top"),
        help="report: traced run report (default); top: live per-island "
             "telemetry view while the dataset builds",
    )
    DatasetOptions.add_arguments(obs, session_flags=True)
    obs.add_argument(
        "--figures", action="store_true",
        help="also run every figure under the trace",
    )
    obs.add_argument(
        "--trace", default=None, metavar="FILE",
        help="summarize an existing Chrome trace JSON instead of running the pipeline",
    )
    obs.set_defaults(fn=_cmd_obs)

    bench = sub.add_parser(
        "bench", help="run the performance-smoke benchmark gates"
    )
    bench.add_argument(
        "targets", nargs="*",
        help="bench targets to run (default: all; see --list)",
    )
    bench.add_argument(
        "--list", action="store_true",
        help="list the bench targets instead of running them",
    )
    bench.add_argument(
        "--json-out", metavar="FILE",
        help="write the machine-readable results here instead of the "
             "next free BENCH_<n>.json at the repo root",
    )
    bench.add_argument(
        "--no-json", action="store_true",
        help="skip writing the machine-readable BENCH_<n>.json",
    )
    bench.add_argument(
        "--check", action="store_true",
        help="after the run (or alone with --no-json), compare the newest "
             "BENCH_<n>.json against the stored trajectory and exit 3 on a "
             "wall-time regression",
    )
    bench.add_argument(
        "--check-threshold", type=float, default=0.35, metavar="FRAC",
        help="relative slowdown vs the baseline median that counts as a "
             "regression (default: 0.35 = 35%%)",
    )
    bench.add_argument(
        "--check-window", type=int, default=5, metavar="N",
        help="number of prior comparable runs forming the baseline median "
             "(default: 5)",
    )
    bench.add_argument(
        "--report", action="store_true",
        help="render the stored BENCH_<n>.json trajectory as a per-suite "
             "trend table (sparklines + slope flags) and exit",
    )
    bench.add_argument(
        "--markdown", action="store_true",
        help="with --report, emit a GitHub-flavoured markdown table "
             "(for CI artifacts)",
    )
    bench.set_defaults(fn=_cmd_bench)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if getattr(args, "progress", False) and getattr(args, "mode", None) != "top":
        # --progress: render live island telemetry while the command
        # runs (``obs top`` installs its own printer, so skip it there).
        from repro.obs import ProgressPrinter, ResourceSampler
        from repro.obs.progress import use_sink

        printer = ProgressPrinter()
        with use_sink(printer), ResourceSampler():
            code = args.fn(args)
        printer.finish()
        return code
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
