"""Tests for the named workload scenarios."""

import numpy as np
import pytest

from repro.dataset import generate_dataset
from repro.errors import WorkloadError
from repro.workload.scenarios import SCENARIOS, make_scenario


@pytest.fixture(scope="module")
def datasets():
    """One small dataset per scenario (shared across the module)."""
    return {
        name: generate_dataset(make_scenario(name, scale=0.03, seed=5))
        for name in SCENARIOS
    }


def class_share(dataset, cls):
    classes = np.asarray(list(dataset.gpu_jobs["lifecycle_class"]))
    return float((classes == cls).mean())


class TestRegistry:
    def test_all_scenarios_build(self):
        for name in SCENARIOS:
            config = make_scenario(name, scale=0.05, seed=1)
            assert config.scale == 0.05

    def test_unknown_scenario_rejected(self):
        with pytest.raises(WorkloadError):
            make_scenario("metaverse")

    def test_paper_scenario_is_default_knobs(self):
        from repro.workload.calibration import GeneratorKnobs

        assert make_scenario("paper").knobs == GeneratorKnobs()


class TestScenarioDirections:
    def test_training_heavy_more_mature(self, datasets):
        assert class_share(datasets["training_heavy"], "mature") > class_share(
            datasets["paper"], "mature"
        )

    def test_training_heavy_more_multi_gpu(self, datasets):
        def multi(ds):
            return float((np.asarray(ds.gpu_jobs["num_gpus"]) > 1).mean())

        assert multi(datasets["training_heavy"]) > multi(datasets["paper"])

    def test_exploration_surge_more_exploratory(self, datasets):
        assert class_share(datasets["exploration_surge"], "exploratory") > class_share(
            datasets["paper"], "exploratory"
        )

    def test_interactive_campus_more_interactive(self, datasets):
        def interactive(ds):
            interfaces = np.asarray(list(ds.gpu_jobs["interface"]))
            return float((interfaces == "interactive").mean())

        assert interactive(datasets["interactive_campus"]) > 2 * interactive(
            datasets["paper"]
        )

    def test_interactive_campus_more_ide_hours(self, datasets):
        def ide_hours(ds):
            classes = np.asarray(list(ds.gpu_jobs["lifecycle_class"]))
            hours = np.asarray(ds.gpu_jobs["gpu_hours"], dtype=float)
            return float(hours[classes == "ide"].sum() / hours.sum())

        assert ide_hours(datasets["interactive_campus"]) > ide_hours(datasets["paper"])

    def test_every_scenario_runs_figures(self, datasets):
        from repro.figures.registry import run_figure

        for name, dataset in datasets.items():
            result = run_figure("fig15", dataset)
            assert result.comparisons, name
