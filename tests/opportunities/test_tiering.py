"""Tests for the two-tier fleet what-if."""

import pytest

from repro.errors import AnalysisError
from repro.frame import Table
from repro.opportunities.tiering import TierSpec, tiering_study, tiering_sweep


def class_jobs(spec):
    return Table.from_rows(
        [{"lifecycle_class": cls, "gpu_hours": hours} for cls, hours in spec]
    )


class TestTierSpec:
    def test_valid(self):
        tier = TierSpec("slow", 0.5, 0.35)
        assert tier.relative_speed == 0.5

    def test_invalid_speed(self):
        with pytest.raises(AnalysisError):
            TierSpec("slow", 0.0, 0.5)

    def test_invalid_price(self):
        with pytest.raises(AnalysisError):
            TierSpec("slow", 0.5, 0.0)


class TestTieringStudy:
    def test_ide_routing_pure_saving(self):
        # IDE jobs do not slow down, so cost drops by the price ratio.
        jobs = class_jobs([("ide", 10.0), ("mature", 10.0)])
        outcome = tiering_study(
            jobs, TierSpec("slow", 0.5, 0.4), routed_classes=("ide",)
        )
        assert outcome.tiered_cost == pytest.approx(10.0 + 10.0 * 0.4)
        assert outcome.mean_slowdown_routed == 1.0

    def test_exploratory_routing_stretches(self):
        jobs = class_jobs([("exploratory", 10.0)])
        outcome = tiering_study(
            jobs, TierSpec("slow", 0.5, 0.4), routed_classes=("exploratory",)
        )
        # 10 hours -> 20 slow-tier hours at 0.4 price = 8 cost units
        assert outcome.tiered_cost == pytest.approx(8.0)
        assert outcome.mean_slowdown_routed == pytest.approx(2.0)

    def test_nothing_routed_no_change(self):
        jobs = class_jobs([("mature", 10.0)])
        outcome = tiering_study(jobs, routed_classes=())
        assert outcome.cost_saving_fraction == 0.0

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            tiering_study(Table.empty(["lifecycle_class"]))

    def test_on_generated_data_saves_money(self, gpu_jobs):
        outcome = tiering_study(gpu_jobs)
        assert outcome.cost_saving_fraction > 0.05
        assert 0.2 <= outcome.routed_job_fraction <= 0.6

    def test_routed_fractions_consistent(self, gpu_jobs):
        outcome = tiering_study(gpu_jobs)
        assert 0.0 <= outcome.routed_hour_fraction <= 1.0


class TestSweep:
    def test_rows_per_design_point(self, gpu_jobs):
        sweep = tiering_sweep(gpu_jobs, speeds=(0.5,), prices=(0.2, 0.5))
        assert sweep.num_rows == 2

    def test_cheaper_tier_saves_more(self, gpu_jobs):
        sweep = tiering_sweep(gpu_jobs, speeds=(0.5,), prices=(0.2, 0.5))
        rows = sorted(sweep.iter_rows(), key=lambda r: r["relative_price"])
        assert rows[0]["cost_saving_fraction"] >= rows[1]["cost_saving_fraction"]

    def test_slower_tier_stretches_more(self, gpu_jobs):
        sweep = tiering_sweep(gpu_jobs, speeds=(0.3, 0.7), prices=(0.35,))
        rows = sorted(sweep.iter_rows(), key=lambda r: r["relative_speed"])
        assert rows[0]["mean_slowdown_routed"] >= rows[1]["mean_slowdown_routed"]
