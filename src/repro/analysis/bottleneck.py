"""Resource-bottleneck analysis (Fig 7b, Fig 8).

A job is bottlenecked on a resource when its *maximum* recorded
utilization of that resource reaches the device limit at any point in
the run — even if the average is low.  Pairwise bottlenecks count jobs
that saturate two resources during the same run (not necessarily at
the same instant).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import numpy as np

from repro.analysis.streaming import is_chunked
from repro.errors import AnalysisError
from repro.frame import Table

#: Resources examined, mapping display name -> max-column in the
#: job summary table.
BOTTLENECK_COLUMNS = {
    "sm": "sm_max",
    "mem_bw": "mem_bw_max",
    "mem_size": "mem_size_max",
    "pcie_tx": "pcie_tx_max",
    "pcie_rx": "pcie_rx_max",
}

#: Utilization (%) counting as "reached the limit".  nvidia-smi
#: reports integers and transient saturation rarely samples exactly at
#: 100, so the paper's methodology tolerates a small margin.
SATURATION_THRESHOLD = 99.0


@dataclass(frozen=True)
class BottleneckAnalysis:
    """Single and pairwise bottleneck fractions over a job population."""

    num_jobs: int
    single: dict[str, float]
    pairs: dict[tuple[str, str], float]

    def fraction(self, resource: str) -> float:
        if resource not in self.single:
            raise AnalysisError(f"unknown resource {resource!r}")
        return self.single[resource]

    def pair_fraction(self, a: str, b: str) -> float:
        key = tuple(sorted((a, b)))
        if key not in self.pairs:
            raise AnalysisError(f"unknown resource pair {key!r}")
        return self.pairs[key]

    @property
    def max_pair_fraction(self) -> float:
        return max(self.pairs.values()) if self.pairs else 0.0


def _flags(jobs: Table, threshold: float) -> dict[str, np.ndarray]:
    flags = {}
    for name, column in BOTTLENECK_COLUMNS.items():
        flags[name] = np.asarray(jobs[column], dtype=float) >= threshold
    return flags


def _stream_flag_counts(jobs, threshold: float):
    """One bounded pass: total rows, per-resource and per-pair counts.

    Integer counts divide into exactly the materialized
    ``mask.mean()``, so all streamed bottleneck fractions are
    bit-identical.
    """
    total = 0
    singles = {name: 0 for name in BOTTLENECK_COLUMNS}
    pairs = {key: 0 for key in itertools.combinations(sorted(BOTTLENECK_COLUMNS), 2)}
    for chunk in jobs.chunks():
        total += chunk.num_rows
        flags = _flags(chunk, threshold)
        for name, mask in flags.items():
            singles[name] += int(mask.sum())
        for a, b in pairs:
            pairs[(a, b)] += int((flags[a] & flags[b]).sum())
    if total == 0:
        raise AnalysisError("no jobs to analyse")
    return total, singles, pairs


def single_bottlenecks(jobs: Table, threshold: float = SATURATION_THRESHOLD) -> dict[str, float]:
    """Fraction of jobs saturating each resource (Fig 7b / 8a)."""
    if is_chunked(jobs):
        total, singles, _ = _stream_flag_counts(jobs, threshold)
        return {name: count / total for name, count in singles.items()}
    if jobs.num_rows == 0:
        raise AnalysisError("no jobs to analyse")
    flags = _flags(jobs, threshold)
    return {name: float(mask.mean()) for name, mask in flags.items()}


def pairwise_bottlenecks(
    jobs: Table, threshold: float = SATURATION_THRESHOLD
) -> dict[tuple[str, str], float]:
    """Fraction of jobs saturating both resources of each pair (Fig 8b)."""
    if is_chunked(jobs):
        total, _, pairs = _stream_flag_counts(jobs, threshold)
        return {key: count / total for key, count in pairs.items()}
    if jobs.num_rows == 0:
        raise AnalysisError("no jobs to analyse")
    flags = _flags(jobs, threshold)
    out = {}
    for a, b in itertools.combinations(sorted(BOTTLENECK_COLUMNS), 2):
        out[(a, b)] = float((flags[a] & flags[b]).mean())
    return out


def analyse(jobs: Table, threshold: float = SATURATION_THRESHOLD) -> BottleneckAnalysis:
    """Full bottleneck analysis of a job summary table.

    A chunked table takes a single fold for rows, single counts, and
    pair counts together (one pass instead of three).
    """
    if is_chunked(jobs):
        total, singles, pairs = _stream_flag_counts(jobs, threshold)
        return BottleneckAnalysis(
            num_jobs=total,
            single={name: count / total for name, count in singles.items()},
            pairs={key: count / total for key, count in pairs.items()},
        )
    return BottleneckAnalysis(
        num_jobs=jobs.num_rows,
        single=single_bottlenecks(jobs, threshold),
        pairs=pairwise_bottlenecks(jobs, threshold),
    )
