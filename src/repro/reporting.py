"""Operator-facing summary report.

Condenses a dataset into the kind of weekly report a system operator
would read: capacity, queue health, utilization, the life-cycle
footprint, power headroom, and the opportunity studies — rendered as
aligned text with small ASCII charts.  Exposed as
``python -m repro summary``.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.lifecycle import lifecycle_breakdown
from repro.analysis.power import power_cap_impact, power_headroom
from repro.analysis.users import pareto_stats, user_table
from repro.dataset import SupercloudDataset
from repro.monitor.overhead import monitoring_volume
from repro.plot import ascii_cdf, ascii_histogram


def _section(title: str) -> str:
    return f"\n== {title} " + "=" * max(50 - len(title), 3)


def operator_summary(source) -> str:
    """Render the full text report for one dataset.

    ``source`` is a :class:`repro.pipeline.Session` or a
    :class:`~repro.dataset.SupercloudDataset`.
    """
    from repro.pipeline.session import as_dataset

    dataset: SupercloudDataset = as_dataset(source)
    gpu = dataset.gpu_jobs
    lines: list[str] = [f"Supercloud operations summary — {dataset.describe()}"]

    # --- partition layout (sharded simulations only)
    if getattr(dataset.config, "partitions", 1) > 1:
        from repro.cluster.partition import PartitionLayout

        layout = PartitionLayout.even(
            dataset.spec.num_nodes, dataset.config.partitions
        )
        lines.append(_section("partition layout"))
        lines.append(
            f"{dataset.config.partitions} cluster islands, "
            f"{dataset.config.resolved_cohorts} user cohorts "
            "(cohort c runs on island c % partitions; see docs/scaling.md)"
        )
        lines.extend(layout.describe())

    # --- capacity & queue health
    lines.append(_section("queue health"))
    waits = np.asarray(gpu["wait_time_s"], dtype=float)
    lines.append(
        f"GPU jobs: median wait {np.median(waits):.0f} s, "
        f"{(waits < 60).mean():.0%} start within a minute"
    )
    cpu = dataset.jobs.filter(lambda t: np.asarray(t["num_gpus"]) == 0)
    if cpu.num_rows:
        cpu_waits = np.asarray(cpu["wait_time_s"], dtype=float)
        lines.append(
            f"CPU jobs: median wait {np.median(cpu_waits):.0f} s "
            f"({(cpu_waits > 60).mean():.0%} wait over a minute — whole-node requests)"
        )

    # --- utilization
    lines.append(_section("GPU utilization"))
    lines.append(
        ascii_cdf(gpu["sm_mean"], width=50, height=8, title="SM utilization CDF (%)")
    )
    sm = np.asarray(gpu["sm_mean"], dtype=float)
    lines.append(
        f"median SM {np.median(sm):.0f}%, {(sm > 50).mean():.0%} of jobs above 50% — "
        "plenty of co-location headroom"
    )

    # --- life-cycle footprint
    lines.append(_section("development life-cycle footprint"))
    breakdown = lifecycle_breakdown(gpu)
    rows = list(breakdown.iter_rows())
    lines.append(
        ascii_histogram(
            [r["lifecycle_class"] for r in rows],
            [r["gpu_hour_fraction"] for r in rows],
            width=32,
            title="share of GPU hours by class",
        )
    )
    nonmature = sum(r["gpu_hour_fraction"] for r in rows if r["lifecycle_class"] != "mature")
    lines.append(f"{nonmature:.0%} of GPU hours go to non-mature (pre-production) work")

    # --- power
    lines.append(_section("power headroom"))
    headroom = power_headroom(gpu)
    lines.append(
        f"median job: {headroom.median_avg_power_w:.0f} W avg / "
        f"{headroom.median_max_power_w:.0f} W peak of {headroom.board_power_w:.0f} W boards"
    )
    for impact in power_cap_impact(gpu, caps_w=(150.0,)):
        lines.append(
            f"a {impact.cap_w:.0f} W cap leaves {impact.unimpacted_fraction:.0%} of jobs "
            f"untouched and would fund {headroom.board_power_w / impact.cap_w:.1f}x the GPUs"
        )

    # --- users
    lines.append(_section("user population"))
    users = user_table(gpu)
    stats = pareto_stats(users)
    lines.append(
        f"{stats.num_users} active users; top 5% submit {stats.top5pct_job_share:.0%} "
        f"of jobs (Gini {stats.gini_coefficient:.2f})"
    )

    # --- monitoring cost
    lines.append(_section("monitoring data volume"))
    volume = monitoring_volume(dataset.jobs)
    lines.append(
        f"dense GPU series {volume.gpu_series_gb:.1f} GB, CPU series "
        f"{volume.cpu_series_gb:.1f} GB, {volume.epilog_file_count} epilog copy-backs"
    )

    # --- pipeline health (only when we were handed a live session)
    from repro.pipeline.session import Session

    if isinstance(source, Session):
        lines.append(_section("pipeline session"))
        inst = source.instrumentation
        lines.append(
            f"builds {inst.count('build')}, cache hits {inst.count('cache_hit')}, "
            f"figure cache hits {inst.count('figure_cache_hit')}, "
            f"memory hits {inst.count('memory_hit')}, "
            f"corrupt entries regenerated {inst.count('cache_corrupt')}"
        )
        for record in inst.stages:
            lines.append("  " + "  " * record.depth + record.formatted())
        lines.append(
            f"total stage time {inst.total_seconds():.3f} s "
            "(top-level stages; nested spans not double-counted)"
        )
    return "\n".join(lines)
