"""Exception hierarchy for the :mod:`repro` package.

Every error raised deliberately by the library derives from
:class:`ReproError` so that callers can catch library failures without
also swallowing programming errors (``TypeError`` and friends raised by
numpy are intentionally left alone).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class FrameError(ReproError):
    """Raised for structural problems in :mod:`repro.frame` tables."""


class ColumnMissingError(FrameError, KeyError):
    """Raised when a requested column does not exist in a table."""

    def __init__(self, name: str, available: tuple[str, ...]) -> None:
        super().__init__(name)
        self.name = name
        self.available = available

    def __str__(self) -> str:
        shown = ", ".join(self.available[:12])
        return f"column {self.name!r} not found (available: {shown})"


class LengthMismatchError(FrameError):
    """Raised when columns of differing lengths are combined."""


class CalibrationError(ReproError):
    """Raised when a distribution is built from inconsistent anchors."""


class SchedulerError(ReproError):
    """Raised for invalid scheduler requests or internal inconsistencies."""


class PlacementError(SchedulerError):
    """Raised when a job cannot ever be placed on the modeled cluster."""


class MonitoringError(ReproError):
    """Raised by the monitoring substrate for invalid sampling requests."""


class WorkloadError(ReproError):
    """Raised when workload-generation parameters are invalid."""


class AnalysisError(ReproError):
    """Raised when an analysis is run on unsuitable data."""
