"""Per-stage timing and row-count instrumentation for pipeline sessions.

A :class:`~repro.pipeline.session.Session` executes the dataset
pipeline as named stages (``workload → schedule → sampling →
monitor → assemble``) plus the cache interactions (``cache_load`` /
``cache_store``) and figure execution (``figures``).  Every stage run
is recorded here with wall time and the number of rows (or items) it
produced, and named counters track how often the expensive paths ran —
``build`` vs ``cache_hit`` is how callers verify that a dataset was
constructed exactly once.

Since the `repro.obs` subsystem landed, this module is a thin
back-compat adapter over it: :meth:`PipelineInstrumentation.stage`
opens a real :class:`~repro.obs.trace.Tracer` span (category
``pipeline``) and :meth:`~PipelineInstrumentation.bump` mirrors into
the session's :class:`~repro.obs.metrics.MetricsRegistry`, while the
flat :class:`StageRecord` list and counter dict keep their original
shapes for existing consumers.  Stages may now nest (a figure span
inside the ``figures`` stage, a cache probe inside a build); records
carry their nesting ``depth`` and :meth:`total_seconds` sums only
top-level stages so nested time is never double-counted.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

from repro.obs.metrics import MetricsRegistry, NULL_METRICS, NullMetrics
from repro.obs.runtime import record_event
from repro.obs.trace import NULL_TRACER, NullTracer, Tracer

#: Histogram buckets for stage latencies (seconds).
STAGE_BUCKETS = (0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 15.0, 60.0, 300.0, 1800.0)


@dataclass(frozen=True)
class StageRecord:
    """One executed pipeline stage."""

    name: str
    seconds: float
    rows: int
    from_cache: bool = False
    #: Nesting depth: 0 for top-level stages, 1 for a stage opened
    #: inside another stage, and so on.
    depth: int = 0

    def formatted(self) -> str:
        source = " [cache]" if self.from_cache else ""
        return f"{self.name}: {self.seconds:.3f} s, {self.rows} rows{source}"


class StageProbe:
    """Mutable handle a running stage uses to report its row count."""

    def __init__(self) -> None:
        self.rows = 0


class PipelineInstrumentation:
    """Stage records and counters for one session.

    Parameters
    ----------
    tracer, metrics:
        The session's observability pair.  Omitted (the default) the
        adapter records stages and counters exactly as before against
        the no-op implementations — construction stays cheap and the
        class keeps working standalone.
    """

    def __init__(
        self,
        tracer: Tracer | NullTracer | None = None,
        metrics: MetricsRegistry | NullMetrics | None = None,
    ) -> None:
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self.stages: list[StageRecord] = []
        self.counters: dict[str, int] = {}
        self._depth = 0

    @contextmanager
    def stage(self, name: str, from_cache: bool = False) -> Iterator[StageProbe]:
        """Time a stage; the yielded probe collects the row count."""
        probe = StageProbe()
        depth = self._depth
        self._depth = depth + 1
        start = time.perf_counter()
        try:
            with self.tracer.span(name, category="pipeline", from_cache=from_cache) as span:
                yield probe
                span.set(rows=int(probe.rows))
        finally:
            self._depth = depth
            seconds = time.perf_counter() - start
            self.stages.append(
                StageRecord(name, seconds, int(probe.rows), from_cache, depth)
            )
            # Stage transitions also land in the flight recorder (the
            # span-close mirror only covers sessions that wired a
            # listener; this keeps bare instrumentation observable).
            record_event(
                "stage",
                category="pipeline",
                stage=name,
                seconds=round(seconds, 6),
                rows=int(probe.rows),
                from_cache=from_cache,
            )
            metrics = self.metrics
            if metrics.enabled:
                metrics.histogram(
                    "repro_stage_seconds",
                    buckets=STAGE_BUCKETS,
                    help="pipeline stage wall time",
                    stage=name,
                ).observe(seconds)
                metrics.counter(
                    "repro_stage_rows_total",
                    help="rows produced by pipeline stages",
                    stage=name,
                ).inc(int(probe.rows))

    def bump(self, name: str, by: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + by
        metrics = self.metrics
        if metrics.enabled:
            metrics.counter(
                "repro_session_events_total",
                help="session cache/build/memo events",
                event=name,
            ).inc(by)

    def count(self, name: str) -> int:
        return self.counters.get(name, 0)

    def executed(self, name: str) -> bool:
        """Whether a stage with this name ran at least once."""
        return any(record.name == name for record in self.stages)

    def stage_names(self) -> list[str]:
        return [record.name for record in self.stages]

    def total_seconds(self) -> float:
        """Wall time across top-level stages only.

        Nested stages run inside their parent's interval, so summing
        every record would double-count them.
        """
        return sum(record.seconds for record in self.stages if record.depth == 0)

    def to_text(self) -> str:
        lines = []
        for record in self.stages:
            lines.append("  " + "  " * record.depth + "stage " + record.formatted())
        if self.counters:
            pairs = ", ".join(f"{k}={v}" for k, v in sorted(self.counters.items()))
            lines.append(f"  counters: {pairs}")
        return "\n".join(lines)
