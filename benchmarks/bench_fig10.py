"""Fig 10: per-user average job characteristics."""

from repro.figures.registry import run_figure


def test_fig10_user_averages(benchmark, dataset):
    result = benchmark(run_figure, "fig10", dataset)
    # shape: the median user averages hours-long jobs at low utilization
    assert result.get("user avg runtime median").measured > 60.0
    assert result.get("user avg SM median").measured < 30.0
